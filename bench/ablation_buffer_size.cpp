// Ablation: conveyor aggregation-buffer size vs. physical traffic and
// overall time on the triangle case study. This probes the design choice
// behind Conveyors itself ([11] "Bottleneck scenarios in use of the
// Conveyors message aggregation library"): bigger buffers mean fewer,
// larger transfers (better bandwidth utilization) but later delivery.
#include <cstdio>

#include "case_study.hpp"

int main() {
  using namespace ap;
  std::printf(
      "[Ablation] buffer size sweep — %s\n"
      "%10s %14s %14s %14s %16s %18s\n",
      "triangle counting, 2 nodes x 16 PEs, 1D Cyclic", "buffer_B",
      "local_sends", "nbi_sends", "progress", "mean_cycles/PE",
      "msgs_per_buffer");

  bench::CaseConfig base;
  base.nodes = 2;
  base.dist = graph::DistKind::Cyclic1D;
  const graph::Csr lower = bench::build_lower(base);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  for (std::size_t buf : {128u, 256u, 512u, 1024u, 4096u, 16384u}) {
    bench::CaseConfig cfg = base;
    cfg.buffer_bytes = buf;
    const auto r = bench::run_case_study(cfg, lower, expected);
    std::uint64_t total_cycles = 0;
    for (const auto& o : r.overall) total_cycles += o.t_total;
    const std::uint64_t transfers =
        r.phys_local.total() + r.phys_nbi.total();
    std::printf("%10zu %14llu %14llu %14llu %16.0f %18.1f\n", buf,
                static_cast<unsigned long long>(r.phys_local.total()),
                static_cast<unsigned long long>(r.phys_nbi.total()),
                static_cast<unsigned long long>(r.phys_progress.total()),
                static_cast<double>(total_cycles) /
                    static_cast<double>(r.overall.size()),
                transfers > 0 ? static_cast<double>(r.total_sends) /
                                    static_cast<double>(transfers)
                              : 0.0);
  }
  std::printf(
      "\nExpected: transfers fall ~linearly with buffer size; messages per\n"
      "buffer approaches buffer_B / record size; total time improves then\n"
      "flattens once aggregation amortizes the per-transfer cost.\n");
  return 0;
}
