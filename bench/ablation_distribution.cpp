// Ablation: data distribution (1D Cyclic / 1D Block / 1D Range) on the
// triangle case study — extending the paper's two-way comparison with the
// natural third option and the load-balance metrics ActorProf exposes.
// (The paper's conclusion: "try more distributions".)
#include <cstdio>

#include "case_study.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig base;
  base.nodes = 2;
  const graph::Csr lower = bench::build_lower(base);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  std::printf(
      "[Ablation] distribution sweep — triangle counting, 2 nodes x 16 "
      "PEs\n%12s %12s %14s %14s %14s %16s %12s\n",
      "dist", "msgs", "send_imbal", "recv_imbal", "ins_imbal",
      "mean_cycles/PE", "lower_tri");

  for (const auto kind : {graph::DistKind::Cyclic1D, graph::DistKind::Block1D,
                          graph::DistKind::Range1D}) {
    bench::CaseConfig cfg = base;
    cfg.dist = kind;
    const auto r = bench::run_case_study(cfg, lower, expected);
    std::uint64_t total = 0;
    for (const auto& o : r.overall) total += o.t_total;
    std::printf("%12s %12llu %14.2f %14.2f %14.2f %16.0f %12s\n",
                graph::to_string(kind).c_str(),
                static_cast<unsigned long long>(r.total_sends),
                prof::imbalance_factor(r.logical.row_sums()),
                prof::imbalance_factor(r.logical.col_sums()),
                prof::imbalance_factor(r.papi_tot_ins),
                static_cast<double>(total) /
                    static_cast<double>(r.overall.size()),
                r.logical.is_lower_triangular() ? "yes" : "no");
  }
  std::printf(
      "\nExpected: Range balances sends best (equal #nnz) but keeps recv\n"
      "imbalance; Block behaves like Range without nnz-awareness (worse\n"
      "send balance on power-law inputs); Cyclic is worst on both.\n");
  return 0;
}
