// Ablation: conveyor routing topology (1D linear vs 2D mesh vs 3D cube)
// on the same multi-node workload. The 2D mesh trades direct transfers
// for re-aggregation at intermediate hops: far fewer inter-node
// (nonblock) transfers at the cost of extra intra-node (local) ones and
// forwarded items — the core Conveyors design decision.
#include <cstdio>

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;

struct Result {
  std::uint64_t local_sends = 0, nbi_sends = 0, progress = 0, forwarded = 0;
  std::uint64_t mean_cycles = 0;
};

Result run(convey::RouteKind route, int pes, int ppn, std::size_t msgs) {
  prof::Config pc = prof::Config::all_enabled();
  pc.keep_logical_events = pc.keep_physical_events = false;
  prof::Profiler profiler(pc);
  Result res;
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = ppn;
  shmem::run(lc, [&] {
    convey::Options o;
    o.buffer_bytes = 4096;
    o.route = route;
    std::int64_t sink = 0;
    actor::Actor<std::int64_t> a{o};
    a.mb[0].process = [&sink](std::int64_t v, int) { sink += v; };
    profiler.epoch_begin();
    hclib::finish([&] {
      a.start();
      const int me = shmem::my_pe();
      for (std::size_t i = 0; i < msgs; ++i)
        a.send(1, static_cast<int>((me * 17 + i * 13) %
                                   static_cast<std::size_t>(pes)));
      a.done(0);
    });
    profiler.epoch_end();
    shmem::barrier_all();
    if (shmem::my_pe() == 0) {
      const auto t = a.conveyor(0).total_stats();
      res.local_sends = t.local_sends;
      res.nbi_sends = t.nonblock_sends;
      res.progress = t.progress_calls;
      res.forwarded = t.forwarded;
    }
    shmem::barrier_all();
  });
  std::uint64_t total = 0;
  for (const auto& r : profiler.overall()) total += r.t_total;
  res.mean_cycles = total / static_cast<std::uint64_t>(pes);
  return res;
}

}  // namespace

int main() {
  using namespace ap;
  const int pes = 24, ppn = 4;  // 6 nodes (2x3 grid for the cube)
  const struct {
    convey::RouteKind k;
    const char* name;
  } kinds[] = {{convey::RouteKind::Linear1D, "1D linear"},
               {convey::RouteKind::Mesh2D, "2D mesh"},
               {convey::RouteKind::Cube3D, "3D cube"}};
  const struct {
    const char* label;
    std::size_t msgs;
  } regimes[] = {
      // Sparse: few messages per destination pair — direct buffers leave
      // mostly empty; multi-hop re-aggregation is what Conveyors is FOR.
      {"sparse (2000 msgs/PE, aggregation-bound)", 2000},
      // Dense: buffers fill regardless; direct routing wins on hop count.
      {"dense (30000 msgs/PE, bandwidth-bound)", 30000},
  };
  for (const auto& regime : regimes) {
    std::printf(
        "[Ablation] routing topology — uniform all-to-all, %d PEs on %d "
        "nodes, %s\n%10s %14s %14s %12s %12s %16s\n",
        pes, pes / ppn, regime.label, "topology", "local_sends", "nbi_sends",
        "progress", "forwarded", "mean_cycles/PE");
    for (const auto& [k, name] : kinds) {
      const Result r = run(k, pes, ppn, regime.msgs);
      std::printf("%10s %14llu %14llu %12llu %12llu %16llu\n", name,
                  static_cast<unsigned long long>(r.local_sends),
                  static_cast<unsigned long long>(r.nbi_sends),
                  static_cast<unsigned long long>(r.progress),
                  static_cast<unsigned long long>(r.forwarded),
                  static_cast<unsigned long long>(r.mean_cycles));
    }
    std::printf("\n");
  }
  std::printf(
      "Expected: in the sparse regime the mesh/cube cut inter-node (nbi)\n"
      "transfers by re-aggregating at row hops; in the dense regime buffers\n"
      "fill either way and 1D linear's single hop is cheapest.\n");
  return 0;
}
