// Baseline: message aggregation vs. naive small messages (paper §I).
//
// The FA-BSP motivation is that BSP-model applications "sending large
// orders of small byte-sized messages (~8-32 bytes, billions in number)"
// underutilize the network, and Conveyors-style aggregation fixes it. We
// reproduce that comparison on the histogram workload: the degenerate
// 1-record buffer IS the unaggregated baseline (every message travels as
// its own transfer with its own completion), swept against growing
// aggregation buffers, plus a weak-scaling sweep over PE counts.
#include <cstdio>

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;

struct Run {
  std::uint64_t transfers = 0;
  std::uint64_t progress = 0;
  std::uint64_t mean_cycles = 0;
};

Run run_histogram(int pes, int ppn, std::size_t msgs,
                  std::size_t buffer_bytes) {
  prof::Config pc;
  pc.overall = true;
  prof::Profiler profiler(pc);
  Run out;
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = ppn;
  lc.symm_heap_bytes = 32 << 20;
  shmem::run(lc, [&] {
    convey::Options o;
    o.item_bytes = 8;
    o.buffer_bytes = buffer_bytes;
    std::int64_t sink = 0;
    actor::Actor<std::int64_t> a{o};
    a.mb[0].process = [&sink](std::int64_t v, int) { sink += v; };
    profiler.epoch_begin();
    hclib::finish([&] {
      a.start();
      const int me = shmem::my_pe();
      for (std::size_t i = 0; i < msgs; ++i)
        a.send(1, static_cast<int>((me * 31 + i * 7) %
                                   static_cast<std::size_t>(pes)));
      a.done(0);
    });
    profiler.epoch_end();
    shmem::barrier_all();
    if (shmem::my_pe() == 0) {
      const auto t = a.conveyor(0).total_stats();
      out.transfers = t.local_sends + t.nonblock_sends;
      out.progress = t.progress_calls;
    }
    shmem::barrier_all();
  });
  std::uint64_t total = 0;
  for (const auto& r : profiler.overall()) total += r.t_total;
  out.mean_cycles = total / static_cast<std::uint64_t>(pes);
  return out;
}

}  // namespace

int main() {
  using namespace ap;
  // The wire record is 8B payload + 8B routing header => a 16-byte buffer
  // holds exactly one message: the unaggregated baseline.
  constexpr std::size_t kNoAgg = 16;

  std::printf(
      "[Baseline] aggregation vs small messages — histogram, 16 PEs on 2 "
      "nodes, 20000 msgs/PE\n%12s %14s %12s %16s %10s\n",
      "buffer_B", "transfers", "progress", "mean_cycles/PE", "speedup");
  const Run base = run_histogram(16, 8, 20000, kNoAgg);
  for (std::size_t buf : {kNoAgg, std::size_t{256}, std::size_t{1024},
                          std::size_t{4096}, std::size_t{16384}}) {
    const Run r = run_histogram(16, 8, 20000, buf);
    std::printf("%12zu %14llu %12llu %16llu %9.2fx%s\n", buf,
                static_cast<unsigned long long>(r.transfers),
                static_cast<unsigned long long>(r.progress),
                static_cast<unsigned long long>(r.mean_cycles),
                static_cast<double>(base.mean_cycles) /
                    static_cast<double>(r.mean_cycles),
                buf == kNoAgg ? "   <- unaggregated baseline" : "");
  }

  std::printf(
      "\n[Baseline] weak scaling — 10000 msgs/PE, 8 PEs/node\n%8s %26s "
      "%26s %10s\n",
      "PEs", "unaggregated cycles/PE", "aggregated(4KiB) cycles/PE",
      "benefit");
  for (int pes : {8, 16, 32, 64}) {
    const Run naive = run_histogram(pes, 8, 10000, kNoAgg);
    const Run agg = run_histogram(pes, 8, 10000, 4096);
    std::printf("%8d %26llu %26llu %9.2fx\n", pes,
                static_cast<unsigned long long>(naive.mean_cycles),
                static_cast<unsigned long long>(agg.mean_cycles),
                static_cast<double>(naive.mean_cycles) /
                    static_cast<double>(agg.mean_cycles));
  }
  std::printf(
      "\nExpected: the unaggregated baseline pays one transfer (and, inter-"
      "node,\none completion) per message; aggregation amortizes both, and "
      "its benefit\ngrows with PE count as traffic fans out.\n");
  return 0;
}
