// Fiber vs. threads execution backend on the same workloads (triangle
// counting and histogram, both at 8 PEs) — the measurement behind the
// multithreaded backend's reason to exist: with real cores available,
// running PEs concurrently behind the unchanged shmem::run should beat
// the deterministic single-threaded fiber scheduler on wall time.
//
// Timing note: unlike the other --json benches this one measures WALL
// time (steady_clock), not process CPU time. The threads backend spends
// the same (or more) total CPU across workers; the win it claims is
// elapsed time, which CPU-time clocks by construction cannot show.
//
// On a single-core host the two backends are expected to tie (threads
// adds scheduling overhead for no parallelism); tools/bench.sh --check
// therefore gates the speedup by the host's core count and records the
// count in BENCH_backend.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "apps/histogram.hpp"
#include "apps/triangle.hpp"
#include "bench_json.hpp"
#include "conveyor/conveyor.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "runtime/backend.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;

constexpr int kPes = 8;

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

graph::Csr build(int scale) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 16;
  p.seed = 0x5CA1E;
  p.permute_vertices = false;
  const auto edges = graph::rmat_edges(p);
  return graph::Csr::from_edges(graph::Vertex{1} << scale, edges, true);
}

rt::LaunchConfig launch(rt::Backend backend) {
  rt::LaunchConfig lc;
  lc.num_pes = kPes;
  lc.pes_per_node = kPes;
  lc.symm_heap_bytes = 64 << 20;
  lc.backend = backend;  // explicit — wins over ACTORPROF_BACKEND
  return lc;
}

struct Run {
  double secs = 0;        // wall seconds, best of the timed repetitions
  std::uint64_t items = 0;  // conveyor pushes of one repetition
  std::int64_t answer = 0;  // backend-invariant result (correctness tie)
};

Run run_triangle(rt::Backend backend, const graph::Csr& lower, int reps) {
  Run r;
  std::int64_t triangles = 0;
  auto once = [&] {
    shmem::run(launch(backend), [&] {
      graph::RangeDistribution dist(shmem::n_pes(), lower);
      const auto res = apps::count_triangles_actor(lower, dist, nullptr);
      if (shmem::my_pe() == 0) triangles = res.triangles;
    });
  };
  once();  // warmup (first-touch, page faults, lazy init)
  for (int i = 0; i < reps; ++i) {
    convey::reset_lifetime_totals();
    const double t0 = wall_now();
    once();
    const double secs = wall_now() - t0;
    if (r.secs == 0 || secs < r.secs) r.secs = secs;
    r.items = convey::lifetime_totals().pushed;
  }
  r.answer = triangles;
  return r;
}

Run run_histogram(rt::Backend backend, std::size_t updates_per_pe,
                  int reps) {
  Run r;
  std::int64_t updates = 0;
  auto once = [&] {
    shmem::run(launch(backend), [&] {
      const auto res =
          apps::histogram_actor(std::size_t{1} << 12, updates_per_pe);
      if (shmem::my_pe() == 0) updates = res.global_updates;
    });
  };
  once();
  for (int i = 0; i < reps; ++i) {
    convey::reset_lifetime_totals();
    const double t0 = wall_now();
    once();
    const double secs = wall_now() - t0;
    if (r.secs == 0 || secs < r.secs) r.secs = secs;
    r.items = convey::lifetime_totals().pushed;
  }
  r.answer = updates;
  return r;
}

bench_json::Metrics metrics(const Run& r) {
  bench_json::Metrics m;
  m.items_per_sec = static_cast<double>(r.items) / r.secs;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ap;
  const int scale = [] {
    const char* v = std::getenv("AP_SCALE");
    return v != nullptr ? std::atoi(v) : 11;
  }();
  const std::size_t updates =
      bench_json::arg_msgs(argc, argv, 400'000) / kPes;
  const int reps = 2;
  const unsigned cores = std::thread::hardware_concurrency();

  const graph::Csr lower = build(scale);
  const Run tri_fiber = run_triangle(rt::Backend::fiber, lower, reps);
  const Run tri_threads = run_triangle(rt::Backend::threads, lower, reps);
  const Run his_fiber = run_histogram(rt::Backend::fiber, updates, reps);
  const Run his_threads = run_histogram(rt::Backend::threads, updates, reps);

  // The backends must agree on every logical result; a mismatch is a data
  // race in the threads data plane, not a perf number.
  if (tri_fiber.answer != tri_threads.answer ||
      his_fiber.answer != his_threads.answer ||
      tri_fiber.items != tri_threads.items) {
    std::fprintf(stderr,
                 "bench_backend: backend results diverge "
                 "(triangles %lld vs %lld, updates %lld vs %lld, "
                 "pushes %llu vs %llu)\n",
                 static_cast<long long>(tri_fiber.answer),
                 static_cast<long long>(tri_threads.answer),
                 static_cast<long long>(his_fiber.answer),
                 static_cast<long long>(his_threads.answer),
                 static_cast<unsigned long long>(tri_fiber.items),
                 static_cast<unsigned long long>(tri_threads.items));
    return 1;
  }

  if (const char* path = bench_json::json_path(argc, argv)) {
    char config[160];
    std::snprintf(config, sizeof config,
                  "{\"pes\": %d, \"scale\": %d, \"updates\": %zu, "
                  "\"cores\": %u, \"threads\": %d}",
                  kPes, scale, updates * kPes, cores,
                  rt::resolve_num_threads(0, kPes));
    return bench_json::write(path, "bench_backend", config,
                             {{"triangle_fiber", metrics(tri_fiber)},
                              {"triangle_threads", metrics(tri_threads)},
                              {"histogram_fiber", metrics(his_fiber)},
                              {"histogram_threads", metrics(his_threads)}})
               ? 0
               : 1;
  }

  std::printf("[Backend] fiber vs threads, %d PEs, %u core(s)\n%12s %12s %12s %9s\n",
              kPes, cores, "workload", "fiber s", "threads s", "speedup");
  auto row = [](const char* name, const Run& f, const Run& t) {
    std::printf("%12s %12.3f %12.3f %8.2fx\n", name, f.secs, t.secs,
                f.secs / t.secs);
  };
  row("triangle", tri_fiber, tri_threads);
  row("histogram", his_fiber, his_threads);
  std::printf(
      "\nExpected: ~1x on a single core (threads adds scheduling overhead\n"
      "for no parallelism), growing with core count; tools/bench.sh --check\n"
      "gates the triangle speedup by the host's core count.\n");
  return 0;
}
