// Shared --json=<path> reporting for the micro benches, consumed by
// tools/bench.sh to assemble BENCH_conveyor.json. Each bench runs one
// fixed, comparable configuration in this mode (no google-benchmark
// harness) and reports the fast-path metrics docs/PERFORMANCE.md defines:
// items/sec, wire bytes/sec, memcpys/item, allocs/item.
#pragma once

#include <chrono>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace bench_json {

struct Metrics {
  double items_per_sec = 0;
  double bytes_per_sec = 0;     // wire bytes actually transferred
  double memcpys_per_item = 0;  // ConveyorStats.memcpys / items
  double allocs_per_item = 0;   // heap allocations (whole run) / items
};

struct Section {
  std::string name;
  Metrics m;
};

/// Value of --json=<path>, or nullptr when absent (normal harness mode).
inline const char* json_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--json=", 7) == 0) return argv[i] + 7;
  return nullptr;
}

/// Value of --msgs=<n> (smoke runs shrink the workload), or `dflt`.
inline std::size_t arg_msgs(int argc, char** argv, std::size_t dflt) {
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--msgs=", 7) == 0)
      return std::strtoull(argv[i] + 7, nullptr, 10);
  return dflt;
}

/// Process-CPU-time timer. The simulator is single-threaded, so CPU time
/// is the honest per-run cost; wall time on a shared (often single-core)
/// box also charges us for whoever preempted the run — and it is what the
/// google-benchmark counters the recorded baselines used are based on.
class Timer {
 public:
  Timer() : start_(now()) {}
  [[nodiscard]] double seconds() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
#endif
  }

  double start_;
};

inline bool write(const char* path, const char* bench,
                  const std::string& config_json,
                  const std::vector<Section>& sections) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path);
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"config\": %s,\n  \"results\": {\n",
               bench, config_json.c_str());
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const Section& s = sections[i];
    std::fprintf(f,
                 "    \"%s\": {\"items_per_sec\": %.1f, \"bytes_per_sec\": "
                 "%.1f, \"memcpys_per_item\": %.4f, \"allocs_per_item\": "
                 "%.6f}%s\n",
                 s.name.c_str(), s.m.items_per_sec, s.m.bytes_per_sec,
                 s.m.memcpys_per_item, s.m.allocs_per_item,
                 i + 1 < sections.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace bench_json
