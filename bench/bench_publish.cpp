// Live-publisher overhead on the profiled run (docs/OBSERVABILITY.md,
// "Live streaming"): the same 8-PE triangle workload, fully profiled,
// with Config::publish off vs streaming into a real in-process serve
// daemon over loopback sockets. The publisher's contract is that staging
// is cheap and every socket operation lives on its own thread, so the
// profiled run's wall time must not move by more than a few percent —
// tools/bench.sh --check gates overhead_pct < 5 within this fresh run
// (never against the committed BENCH_publish.json: wall-clock numbers
// from another machine are not comparable).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "apps/triangle.hpp"
#include "bench_json.hpp"
#include "core/profiler.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "serve/http.hpp"
#include "serve/publisher.hpp"
#include "serve/registry.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;
namespace fs = std::filesystem;

constexpr int kPes = 8;

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

graph::Csr build(int scale) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 16;
  p.seed = 0x5CA1E;
  p.permute_vertices = false;
  const auto edges = graph::rmat_edges(p);
  return graph::Csr::from_edges(graph::Vertex{1} << scale, edges, true);
}

struct Run {
  double secs = 0;  // wall seconds of the profiled run, best of reps
  std::uint64_t items = 0;
  serve::Publisher::Stats pub;
};

/// One profiled triangle run per rep; only the shmem::run section is
/// timed (write_traces + flush drain the queue between reps, untimed —
/// the gate is about the run the PEs experience, not the final upload).
Run run_once(const graph::Csr& lower, const fs::path& dir, int port,
             const std::string& run_id, int reps) {
  Run r;
  for (int i = 0; i <= reps; ++i) {  // rep 0 is warmup
    prof::Config pc = prof::Config::all_enabled();
    pc.trace_dir = dir;
    pc.trace_format = prof::TraceFormat::binary;
    if (port > 0) {
      pc.publish = "127.0.0.1:" + std::to_string(port);
      pc.publish_run = run_id;
    }
    prof::Profiler profiler(pc);
    convey::reset_lifetime_totals();
    const double t0 = wall_now();
    shmem::run(
        [&] {
          rt::LaunchConfig lc;
          lc.num_pes = kPes;
          lc.pes_per_node = kPes;
          lc.symm_heap_bytes = 64 << 20;
          return lc;
        }(),
        [&] {
          graph::RangeDistribution dist(shmem::n_pes(), lower);
          apps::count_triangles_actor(lower, dist, &profiler);
        });
    const double secs = wall_now() - t0;
    profiler.write_traces();
    if (i == 0) continue;
    if (r.secs == 0 || secs < r.secs) r.secs = secs;
    r.items = convey::lifetime_totals().pushed;
    if (profiler.publisher() != nullptr) r.pub = profiler.publisher()->stats();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = [] {
    const char* v = std::getenv("AP_SCALE");
    return v != nullptr ? std::atoi(v) : 10;
  }();
  const int reps = 3;
  const graph::Csr lower = build(scale);
  const fs::path dir =
      fs::temp_directory_path() / "actorprof_bench_publish_trace";

  // A real daemon on an ephemeral loopback port, pure push mode.
  serve::ServiceRegistry reg({});
  std::atomic<int> port{0};
  std::atomic<bool> stop{false};
  serve::ServerOptions so;
  so.port = 0;
  so.poll_interval_ms = 10;
  so.bound_port = &port;
  so.stop = &stop;
  std::ostringstream sink;
  std::thread daemon([&] { serve::run_server(reg, so, sink, sink); });
  while (port.load() == 0) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  const Run off = run_once(lower, dir, 0, "", reps);
  const Run on = run_once(lower, dir, port.load(), "bench", reps);

  stop.store(true);
  daemon.join();
  fs::remove_all(dir);

  const double overhead_pct = (on.secs / off.secs - 1.0) * 100.0;
  std::printf(
      "publish off: %.3fs   on: %.3fs   overhead: %.2f%%   "
      "(%llu segments, %llu bytes, %llu dropped, %llu failed posts)\n",
      off.secs, on.secs, overhead_pct,
      static_cast<unsigned long long>(on.pub.segments_published),
      static_cast<unsigned long long>(on.pub.bytes_published),
      static_cast<unsigned long long>(on.pub.segments_dropped),
      static_cast<unsigned long long>(on.pub.posts_failed));

  if (const char* path = bench_json::json_path(argc, argv)) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_publish: cannot open %s\n", path);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"bench_publish\",\n"
        "  \"config\": {\"pes\": %d, \"scale\": %d, \"reps\": %d},\n"
        "  \"results\": {\n"
        "    \"publish_off\": {\"secs\": %.4f, \"items_per_sec\": %.1f},\n"
        "    \"publish_on\": {\"secs\": %.4f, \"items_per_sec\": %.1f, "
        "\"segments_published\": %llu, \"bytes_published\": %llu, "
        "\"segments_dropped\": %llu, \"posts_failed\": %llu},\n"
        "    \"overhead_pct\": %.2f\n"
        "  }\n"
        "}\n",
        kPes, scale, reps, off.secs,
        static_cast<double>(off.items) / off.secs, on.secs,
        static_cast<double>(on.items) / on.secs,
        static_cast<unsigned long long>(on.pub.segments_published),
        static_cast<unsigned long long>(on.pub.bytes_published),
        static_cast<unsigned long long>(on.pub.segments_dropped),
        static_cast<unsigned long long>(on.pub.posts_failed), overhead_pct);
    std::fclose(f);
  }
  return 0;
}
