// Trace-format throughput and size: CSV (buffered Sink writers + the
// from_chars scanner) vs the .apt binary columnar codec, measured on the
// records of a real FA-BSP run — the scaling_triangle workload with every
// record kind enabled. tools/bench.sh --check gates on the committed
// BENCH_trace.json: the binary format must stay >= 5x smaller than CSV
// and decode at least as fast (docs/TRACE_FORMAT.md).
//
// Sections (items = trace rows across all kinds and PEs):
//   csv_write / csv_read — Sink emission / istream parsing
//   bin_write / bin_read — columnar encode / decode (CRC verified)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "apps/triangle.hpp"
#include "bench_json.hpp"
#include "core/profiler.hpp"
#include "core/sink.hpp"
#include "core/trace_binary.hpp"
#include "core/trace_io.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;

constexpr int kPes = 8;

struct Records {
  prof::Config cfg;
  std::vector<std::vector<prof::LogicalSendRecord>> logical;
  std::vector<std::vector<prof::PapiSegmentRecord>> papi;
  std::vector<std::vector<prof::SuperstepRecord>> steps;
  std::vector<prof::PhysicalRecord> physical;
  std::uint64_t rows = 0;
};

/// One triangle-count run with every row-producing trace enabled; the
/// records stay in memory (no files) — the codecs are what's measured.
Records collect(int scale) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 16;
  p.seed = 0x5CA1E;
  p.permute_vertices = false;
  const auto edges = graph::rmat_edges(p);
  const graph::Csr lower =
      graph::Csr::from_edges(graph::Vertex{1} << scale, edges, true);

  Records r;
  r.cfg.logical = true;
  r.cfg.papi = true;
  r.cfg.supersteps = true;
  r.cfg.physical = true;
  prof::Profiler profiler(r.cfg);
  rt::LaunchConfig lc;
  lc.num_pes = kPes;
  lc.pes_per_node = kPes;
  lc.symm_heap_bytes = 64 << 20;
  shmem::run(lc, [&] {
    graph::RangeDistribution dist(shmem::n_pes(), lower);
    apps::count_triangles_actor(lower, dist, &profiler);
  });
  for (int pe = 0; pe < kPes; ++pe) {
    r.logical.push_back(profiler.logical_events(pe));
    r.papi.push_back(profiler.papi_segments(pe));
    r.steps.push_back(profiler.supersteps(pe));
    const auto& phys = profiler.physical_events(pe);
    r.physical.insert(r.physical.end(), phys.begin(), phys.end());
    r.rows += r.logical.back().size() + r.papi.back().size() +
              r.steps.back().size() + phys.size();
  }
  return r;
}

/// Best-of-3 CPU seconds of `fn` (which must keep its result alive via
/// captures so the work is not optimized away).
template <class Fn>
double best_of_3(Fn&& fn) {
  double best = 1e100;
  for (int i = 0; i < 3; ++i) {
    const bench_json::Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

std::vector<std::string> encode_csv(const Records& r) {
  std::vector<std::string> bodies;
  for (int pe = 0; pe < kPes; ++pe) {
    prof::io::Sink s;
    prof::io::write_logical(s, r.logical[static_cast<std::size_t>(pe)]);
    bodies.push_back(std::move(s).str());
  }
  for (int pe = 0; pe < kPes; ++pe) {
    prof::io::Sink s;
    prof::io::write_papi(s, r.papi[static_cast<std::size_t>(pe)], r.cfg);
    bodies.push_back(std::move(s).str());
  }
  for (int pe = 0; pe < kPes; ++pe) {
    prof::io::Sink s;
    prof::io::write_steps(s, r.steps[static_cast<std::size_t>(pe)]);
    bodies.push_back(std::move(s).str());
  }
  {
    prof::io::Sink s;
    prof::io::write_physical(s, r.physical);
    bodies.push_back(std::move(s).str());
  }
  return bodies;
}

std::vector<std::string> encode_bin(const Records& r) {
  std::vector<std::string> bodies;
  for (int pe = 0; pe < kPes; ++pe)
    bodies.push_back(
        prof::io::encode_logical(r.logical[static_cast<std::size_t>(pe)]));
  for (int pe = 0; pe < kPes; ++pe)
    bodies.push_back(
        prof::io::encode_papi(r.papi[static_cast<std::size_t>(pe)], r.cfg));
  for (int pe = 0; pe < kPes; ++pe)
    bodies.push_back(
        prof::io::encode_steps(r.steps[static_cast<std::size_t>(pe)]));
  bodies.push_back(prof::io::encode_physical(r.physical));
  return bodies;
}

std::uint64_t total_bytes(const std::vector<std::string>& bodies) {
  std::uint64_t n = 0;
  for (const auto& b : bodies) n += b.size();
  return n;
}

std::uint64_t decode_csv(const std::vector<std::string>& bodies) {
  std::uint64_t rows = 0;
  std::vector<prof::LogicalSendRecord> lg;
  std::vector<prof::PapiSegmentRecord> pp;
  std::vector<prof::SuperstepRecord> st;
  std::vector<prof::PhysicalRecord> ph;
  for (int i = 0; i < kPes; ++i) {
    lg.clear();
    std::istringstream is(bodies[static_cast<std::size_t>(i)]);
    prof::io::parse_logical_into(is, lg);
    rows += lg.size();
  }
  for (int i = 0; i < kPes; ++i) {
    pp.clear();
    std::istringstream is(bodies[static_cast<std::size_t>(kPes + i)]);
    prof::io::parse_papi_into(is, pp);
    rows += pp.size();
  }
  for (int i = 0; i < kPes; ++i) {
    st.clear();
    std::istringstream is(bodies[static_cast<std::size_t>(2 * kPes + i)]);
    prof::io::parse_steps_into(is, st);
    rows += st.size();
  }
  ph.clear();
  std::istringstream is(bodies[static_cast<std::size_t>(3 * kPes)]);
  prof::io::parse_physical_into(is, ph);
  return rows + ph.size();
}

std::uint64_t decode_bin(const std::vector<std::string>& bodies) {
  std::uint64_t rows = 0;
  std::vector<prof::LogicalSendRecord> lg;
  std::vector<prof::PapiSegmentRecord> pp;
  std::vector<prof::SuperstepRecord> st;
  std::vector<prof::PhysicalRecord> ph;
  for (int i = 0; i < kPes; ++i) {
    lg.clear();
    prof::io::decode_logical_into(bodies[static_cast<std::size_t>(i)], lg);
    rows += lg.size();
  }
  for (int i = 0; i < kPes; ++i) {
    pp.clear();
    prof::io::decode_papi_into(bodies[static_cast<std::size_t>(kPes + i)],
                               pp);
    rows += pp.size();
  }
  for (int i = 0; i < kPes; ++i) {
    st.clear();
    prof::io::decode_steps_into(
        bodies[static_cast<std::size_t>(2 * kPes + i)], st);
    rows += st.size();
  }
  ph.clear();
  prof::io::decode_physical_into(bodies[static_cast<std::size_t>(3 * kPes)],
                                 ph);
  return rows + ph.size();
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = bench_json::json_path(argc, argv);
  const char* scale_env = std::getenv("AP_SCALE");
  const int scale = scale_env != nullptr ? std::atoi(scale_env) : 10;

  const Records r = collect(scale);
  const auto rows = static_cast<double>(r.rows);

  std::vector<std::string> csv;
  const double t_csv_w = best_of_3([&] { csv = encode_csv(r); });
  std::vector<std::string> bin;
  const double t_bin_w = best_of_3([&] { bin = encode_bin(r); });
  std::uint64_t csv_rows = 0;
  const double t_csv_r = best_of_3([&] { csv_rows = decode_csv(csv); });
  std::uint64_t bin_rows = 0;
  const double t_bin_r = best_of_3([&] { bin_rows = decode_bin(bin); });
  if (csv_rows != r.rows || bin_rows != r.rows) {
    std::fprintf(stderr,
                 "bench_trace: row mismatch (run %llu, csv %llu, bin %llu)\n",
                 static_cast<unsigned long long>(r.rows),
                 static_cast<unsigned long long>(csv_rows),
                 static_cast<unsigned long long>(bin_rows));
    return 1;
  }

  const std::uint64_t csv_bytes = total_bytes(csv);
  const std::uint64_t bin_bytes = total_bytes(bin);
  const double ratio =
      static_cast<double>(csv_bytes) / static_cast<double>(bin_bytes);

  const auto section = [&](const char* name, double secs,
                           std::uint64_t bytes) {
    bench_json::Section s;
    s.name = name;
    s.m.items_per_sec = rows / secs;
    s.m.bytes_per_sec = static_cast<double>(bytes) / secs;
    return s;
  };
  std::vector<bench_json::Section> sections{
      section("csv_write", t_csv_w, csv_bytes),
      section("csv_read", t_csv_r, csv_bytes),
      section("bin_write", t_bin_w, bin_bytes),
      section("bin_read", t_bin_r, bin_bytes),
  };

  char config[256];
  std::snprintf(config, sizeof config,
                "{\"pes\": %d, \"scale\": %d, \"rows\": %llu, \"csv_bytes\": "
                "%llu, \"bin_bytes\": %llu, \"size_ratio\": %.2f}",
                kPes, scale, static_cast<unsigned long long>(r.rows),
                static_cast<unsigned long long>(csv_bytes),
                static_cast<unsigned long long>(bin_bytes), ratio);
  if (path != nullptr) {
    if (!bench_json::write(path, "bench_trace", config, sections)) return 1;
  }
  std::printf(
      "bench_trace: %llu rows | csv %llu B, bin %llu B (%.2fx smaller)\n"
      "  csv_write %.2f Mrows/s  csv_read %.2f Mrows/s\n"
      "  bin_write %.2f Mrows/s  bin_read %.2f Mrows/s\n",
      static_cast<unsigned long long>(r.rows),
      static_cast<unsigned long long>(csv_bytes),
      static_cast<unsigned long long>(bin_bytes), ratio,
      rows / t_csv_w / 1e6, rows / t_csv_r / 1e6, rows / t_bin_w / 1e6,
      rows / t_bin_r / 1e6);
  return 0;
}
