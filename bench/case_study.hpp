// Shared driver for the paper's case study (§IV): distributed triangle
// counting on an R-MAT graph, profiled with ActorProf.
//
// Every figure bench calls run_case_study() with the paper's setups
// (1 node/16 PEs, 2 nodes/32 PEs; 1D Cyclic vs 1D Range) and renders its
// own plot from the returned aggregates. Environment knobs:
//   AP_SCALE   R-MAT scale          (default 12; paper uses 16)
//   AP_EF      edge factor          (default 16, the paper's value)
//   AP_PPN     PEs per node         (default 16, the paper's value)
//   AP_BUFFER  conveyor buffer size (default 1024 bytes)
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/triangle.hpp"
#include "core/profiler.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"

namespace ap::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

struct CaseConfig {
  int nodes = 1;
  int pes_per_node = env_int("AP_PPN", 16);
  int scale = env_int("AP_SCALE", 12);
  int edge_factor = env_int("AP_EF", 16);
  std::size_t buffer_bytes =
      static_cast<std::size_t>(env_int("AP_BUFFER", 1024));
  graph::DistKind dist = graph::DistKind::Cyclic1D;
  std::uint64_t seed = 0x5EED5EED;

  [[nodiscard]] int num_pes() const { return nodes * pes_per_node; }
  [[nodiscard]] std::string label() const {
    return graph::to_string(dist) + ", " + std::to_string(nodes) +
           " node(s) x " + std::to_string(pes_per_node) + " PEs, scale " +
           std::to_string(scale);
  }
};

struct CaseResult {
  prof::CommMatrix logical;
  prof::CommMatrix phys_local;
  prof::CommMatrix phys_nbi;
  prof::CommMatrix phys_progress;
  prof::CommMatrix phys_all;
  std::vector<prof::OverallRecord> overall;
  std::vector<std::uint64_t> papi_tot_ins;
  std::vector<std::uint64_t> papi_lst_ins;
  std::int64_t triangles = 0;
  std::int64_t expected = 0;
  std::uint64_t total_sends = 0;
};

/// Build the input graph once per config (deterministic for a seed).
/// Vertex ids are NOT permuted: the paper's heatmaps (PE0 hot under 1D
/// Cyclic, Figure 6's ownership ranges) only arise when R-MAT's natural
/// id<->degree correlation is preserved, i.e. on the raw Kronecker
/// ordering of the adjacency matrix.
inline graph::Csr build_lower(const CaseConfig& c) {
  graph::RmatParams p;
  p.scale = c.scale;
  p.edge_factor = c.edge_factor;
  p.seed = c.seed;
  p.permute_vertices = false;
  const auto edges = graph::rmat_edges(p);
  return graph::Csr::from_edges(graph::Vertex{1} << c.scale, edges, true);
}

/// Run the profiled kernel; validates the triangle count like the paper
/// ("we have validated the experiments by using assertion").
inline CaseResult run_case_study(const CaseConfig& c,
                                 const graph::Csr& lower,
                                 std::int64_t expected) {
  prof::Config pc = prof::Config::all_enabled();
  // Aggregates only: per-event logs are unnecessary for the figures and
  // can reach GBs at scale 16 (the paper's §VI discusses this exact
  // problem).
  pc.keep_logical_events = false;
  pc.keep_physical_events = false;
  prof::Profiler profiler(pc);

  CaseResult r;
  r.expected = expected;

  rt::LaunchConfig lc;
  lc.num_pes = c.num_pes();
  lc.pes_per_node = c.pes_per_node;
  lc.symm_heap_bytes = 64 << 20;
  shmem::run(lc, [&] {
    const auto dist =
        graph::make_distribution(c.dist, shmem::n_pes(), lower);
    convey::Options opts;
    opts.buffer_bytes = c.buffer_bytes;
    const auto res =
        apps::count_triangles_actor(lower, *dist, opts, &profiler);
    if (shmem::my_pe() == 0) {
      r.triangles = res.triangles;
      if (res.triangles != expected)
        throw std::runtime_error("triangle validation FAILED: got " +
                                 std::to_string(res.triangles) +
                                 ", expected " + std::to_string(expected));
    }
  });

  r.logical = profiler.logical_matrix();
  r.phys_local = profiler.physical_matrix(convey::SendType::local_send);
  r.phys_nbi = profiler.physical_matrix(convey::SendType::nonblock_send);
  r.phys_progress =
      profiler.physical_matrix(convey::SendType::nonblock_progress);
  r.phys_all = profiler.physical_matrix();
  r.overall = profiler.overall();
  r.papi_tot_ins = profiler.papi_totals(papi::Event::TOT_INS);
  r.papi_lst_ins = profiler.papi_totals(papi::Event::LST_INS);
  r.total_sends = r.logical.total();
  return r;
}

inline CaseResult run_case_study(const CaseConfig& c) {
  const graph::Csr lower = build_lower(c);
  return run_case_study(c, lower, graph::count_triangles_serial(lower));
}

}  // namespace ap::bench
