// Figure 3: Logical Trace Heatmap for 1 node (LHS: 1D Cyclic, RHS: 1D
// Range). Expected shape (paper §IV-D): under 1D Cyclic, PE0 communicates
// heavily with a few PEs; under 1D Range the matrix is lower-triangular
// (the "(L) observation") and recv totals decrease monotonically with PE
// id.
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "core/aggregate.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 1;

  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  for (const auto kind :
       {graph::DistKind::Cyclic1D, graph::DistKind::Range1D}) {
    cfg.dist = kind;
    const auto r = bench::run_case_study(cfg, lower, expected);
    viz::HeatmapOptions ho;
    ho.title = "[Fig 3] Logical Trace Heatmap — " + cfg.label();
    std::cout << viz::render_heatmap(r.logical, ho);
    const auto sends = r.logical.row_sums();
    const auto recvs = r.logical.col_sums();
    std::printf(
        "triangles=%lld (validated)  total msgs=%llu  "
        "send imbalance=%.2fx  recv imbalance=%.2fx  lower_triangular=%s\n\n",
        static_cast<long long>(r.triangles),
        static_cast<unsigned long long>(r.total_sends),
        prof::imbalance_factor(sends), prof::imbalance_factor(recvs),
        r.logical.is_lower_triangular() ? "yes" : "no");
  }
  return 0;
}
