// Figure 4: Logical Trace Heatmap for 2 nodes / 32 PEs (LHS: 1D Cyclic,
// RHS: 1D Range). Same expectations as Figure 3 at twice the PE count.
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "core/aggregate.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 2;

  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  for (const auto kind :
       {graph::DistKind::Cyclic1D, graph::DistKind::Range1D}) {
    cfg.dist = kind;
    const auto r = bench::run_case_study(cfg, lower, expected);
    viz::HeatmapOptions ho;
    ho.title = "[Fig 4] Logical Trace Heatmap — " + cfg.label();
    ho.cell_width = 2;  // 32 columns
    std::cout << viz::render_heatmap(r.logical, ho);
    std::printf(
        "triangles=%lld (validated)  total msgs=%llu  "
        "send imbalance=%.2fx  recv imbalance=%.2fx  lower_triangular=%s\n\n",
        static_cast<long long>(r.triangles),
        static_cast<unsigned long long>(r.total_sends),
        prof::imbalance_factor(r.logical.row_sums()),
        prof::imbalance_factor(r.logical.col_sums()),
        r.logical.is_lower_triangular() ? "yes" : "no");
  }
  return 0;
}
