// Figure 5: Violin plot for the Logical Trace (LHS: 1 node, RHS: 2 nodes).
// Four violins per node count: Cyclic sends/recvs, Range sends/recvs.
// Expected shape (paper §IV-D): 1D Cyclic's maximum sends are far above
// 1D Range's (paper: up to ~6x sends, ~2x recvs), i.e. Cyclic violins have
// tall outliers while Range is more compact.
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  for (int nodes : {1, 2}) {
    bench::CaseConfig cfg;
    cfg.nodes = nodes;
    const graph::Csr lower = bench::build_lower(cfg);
    const std::int64_t expected = graph::count_triangles_serial(lower);

    cfg.dist = graph::DistKind::Cyclic1D;
    const auto cyc = bench::run_case_study(cfg, lower, expected);
    cfg.dist = graph::DistKind::Range1D;
    const auto rng = bench::run_case_study(cfg, lower, expected);

    viz::ViolinOptions vo;
    vo.title = "[Fig 5] Logical Trace Violin — " + std::to_string(nodes) +
               " node(s), total sends/recvs per PE";
    vo.width = 25;
    std::cout << viz::render_violins(
        {"cyclic send", "cyclic recv", "range send", "range recv"},
        {cyc.logical.row_sums(), cyc.logical.col_sums(),
         rng.logical.row_sums(), rng.logical.col_sums()},
        vo);

    const auto qc = prof::quartiles_u64(cyc.logical.row_sums());
    const auto qr = prof::quartiles_u64(rng.logical.row_sums());
    const auto qcr = prof::quartiles_u64(cyc.logical.col_sums());
    const auto qrr = prof::quartiles_u64(rng.logical.col_sums());
    std::printf(
        "cyclic-vs-range max sends ratio = %.2fx   max recvs ratio = %.2fx "
        "(paper: ~6x and ~2x)\n\n",
        qc.max / qr.max, qcr.max / qrr.max);
  }
  return 0;
}
