// Figure 6: the "(L) observation" — under the 1D Range distribution, PE q
// only communicates with PEs 0..q, so the logical matrix is lower
// triangular and total recvs decrease (roughly) monotonically with PE id.
// This bench validates both properties quantitatively and prints the
// ownership boundaries that produce them.
#include <cstdio>

#include "case_study.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 1;
  cfg.dist = graph::DistKind::Range1D;

  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  // Print the row ranges (the i, j, ... of Figure 6).
  graph::RangeDistribution dist(cfg.num_pes(), lower);
  std::printf("[Fig 6] 1D Range ownership (equal #nnz per PE):\n");
  const auto& b = dist.boundaries();
  for (int r = 0; r < cfg.num_pes(); ++r) {
    std::printf("  PE%-3d rows [%6lld, %6lld)   #nnz = %zu\n", r,
                static_cast<long long>(b[static_cast<std::size_t>(r)]),
                static_cast<long long>(b[static_cast<std::size_t>(r) + 1]),
                dist.nnz_of(r));
  }

  const auto r = bench::run_case_study(cfg, lower, expected);
  std::printf("\nlower_triangular(logical matrix) = %s  (paper: yes)\n",
              r.logical.is_lower_triangular() ? "yes" : "no");

  // Monotone-decreasing recvs: count inversions in the totals row.
  const auto recvs = r.logical.col_sums();
  int inversions = 0;
  for (std::size_t i = 1; i < recvs.size(); ++i)
    if (recvs[i] > recvs[i - 1]) ++inversions;
  std::printf(
      "recv totals monotonically decreasing: %d inversions out of %zu "
      "adjacent pairs (paper: \"monotonically decreasing fashion\")\n",
      inversions, recvs.size() - 1);
  std::printf("recv[0] = %llu, recv[last] = %llu (ratio %.1fx)\n",
              static_cast<unsigned long long>(recvs.front()),
              static_cast<unsigned long long>(recvs.back()),
              recvs.back() > 0 ? static_cast<double>(recvs.front()) /
                                     static_cast<double>(recvs.back())
                               : 0.0);
  return 0;
}
