// Figure 7: Violin plot for the Physical Trace (UP: 1 node, DOWN: 2
// nodes). Samples are per-PE totals of transferred buffers. Expected
// shape (paper §IV-D): Cyclic sends worse than Range by ~2-4x; Cyclic
// recvs worse by ~5-15%; Range still shows a recv spike (it is "an
// incomplete solution to the overall load-imbalance problem").
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  for (int nodes : {1, 2}) {
    bench::CaseConfig cfg;
    cfg.nodes = nodes;
    const graph::Csr lower = bench::build_lower(cfg);
    const std::int64_t expected = graph::count_triangles_serial(lower);

    cfg.dist = graph::DistKind::Cyclic1D;
    const auto cyc = bench::run_case_study(cfg, lower, expected);
    cfg.dist = graph::DistKind::Range1D;
    const auto rng = bench::run_case_study(cfg, lower, expected);

    viz::ViolinOptions vo;
    vo.title = "[Fig 7] Physical Trace Violin — " + std::to_string(nodes) +
               " node(s), total buffers per PE";
    vo.width = 25;
    std::cout << viz::render_violins(
        {"cyclic send", "cyclic recv", "range send", "range recv"},
        {cyc.phys_all.row_sums(), cyc.phys_all.col_sums(),
         rng.phys_all.row_sums(), rng.phys_all.col_sums()},
        vo);

    const auto qcs = prof::quartiles_u64(cyc.phys_all.row_sums());
    const auto qrs = prof::quartiles_u64(rng.phys_all.row_sums());
    const auto qcr = prof::quartiles_u64(cyc.phys_all.col_sums());
    const auto qrr = prof::quartiles_u64(rng.phys_all.col_sums());
    std::printf(
        "cyclic/range max buffer sends = %.2fx (paper: ~2-4x)   "
        "max buffer recvs = %.2fx (paper: ~1.05-1.15x)\n\n",
        qcs.max / qrs.max, qcr.max / qrr.max);
  }
  return 0;
}
