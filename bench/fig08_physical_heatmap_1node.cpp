// Figure 8: Physical Trace Heatmap for 1 node (LHS: 1D Cyclic, RHS: 1D
// Range). With one node Conveyors uses the 1D linear topology, so every
// buffer moves via local_send; the Range side shows the (L) shape.
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 1;
  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  for (const auto kind :
       {graph::DistKind::Cyclic1D, graph::DistKind::Range1D}) {
    cfg.dist = kind;
    const auto r = bench::run_case_study(cfg, lower, expected);
    viz::HeatmapOptions ho;
    ho.title = "[Fig 8] Physical Trace Heatmap (buffers) — " + cfg.label();
    std::cout << viz::render_heatmap(r.phys_all, ho);
    std::printf(
        "local_send buffers=%llu  nonblock_send buffers=%llu "
        "(1 node => 1D linear topology, all local; paper: same)\n"
        "lower_triangular=%s\n\n",
        static_cast<unsigned long long>(r.phys_local.total()),
        static_cast<unsigned long long>(r.phys_nbi.total()),
        r.phys_all.is_lower_triangular() ? "yes" : "no");
  }
  return 0;
}
