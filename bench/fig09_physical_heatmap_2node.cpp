// Figure 9: Physical Trace Heatmap for 2 nodes (UP: 1D Cyclic, BOTTOM: 1D
// Range). With two nodes Conveyors routes over the 2D mesh: local_send
// along the rows (intra-node), nonblock_send along the columns
// (inter-node, local rank preserved). The heatmaps of the two transfer
// types must reflect that topology (paper §IV-D: "the shape of the
// heatmaps ... reflects the underlying topology").
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "shmem/topology.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 2;
  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);
  const shmem::Topology topo(cfg.num_pes(), cfg.pes_per_node);

  for (const auto kind :
       {graph::DistKind::Cyclic1D, graph::DistKind::Range1D}) {
    cfg.dist = kind;
    const auto r = bench::run_case_study(cfg, lower, expected);

    viz::HeatmapOptions ho;
    ho.cell_width = 2;
    ho.title = "[Fig 9] Physical Trace Heatmap, local_send — " + cfg.label();
    std::cout << viz::render_heatmap(r.phys_local, ho);
    ho.title =
        "[Fig 9] Physical Trace Heatmap, nonblock_send — " + cfg.label();
    std::cout << viz::render_heatmap(r.phys_nbi, ho);

    // Verify the mesh-topology claim cell by cell.
    bool local_intra = true, nbi_inter_column = true;
    for (int s = 0; s < cfg.num_pes(); ++s) {
      for (int d = 0; d < cfg.num_pes(); ++d) {
        if (r.phys_local.at(s, d) > 0 && !topo.same_node(s, d))
          local_intra = false;
        if (r.phys_nbi.at(s, d) > 0 &&
            (topo.same_node(s, d) || topo.local_rank(s) != topo.local_rank(d)))
          nbi_inter_column = false;
      }
    }
    std::printf(
        "local_send strictly intra-node (row hops): %s   "
        "nonblock_send strictly inter-node same-column: %s   (paper: both)\n\n",
        local_intra ? "yes" : "NO", nbi_inter_column ? "yes" : "NO");
  }
  return 0;
}
