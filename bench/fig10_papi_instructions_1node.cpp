// Figure 10: Total Number of Instructions (PAPI_TOT_INS) per PE, 1 node
// (LHS: 1D Cyclic, RHS: 1D Range). Only user code in the MAIN and PROC
// regions is measured; Conveyors/HClib-Actor internals are excluded by
// the region machinery, matching the paper's careful PAPI start/stop
// placement. Expected shape: Cyclic's PE0 suffers up to ~4-5x imbalance;
// Range is roughly flat.
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 1;
  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  for (const auto kind :
       {graph::DistKind::Cyclic1D, graph::DistKind::Range1D}) {
    cfg.dist = kind;
    const auto r = bench::run_case_study(cfg, lower, expected);
    std::vector<std::string> labels;
    std::vector<double> values;
    for (std::size_t pe = 0; pe < r.papi_tot_ins.size(); ++pe) {
      labels.push_back("PE" + std::to_string(pe));
      values.push_back(static_cast<double>(r.papi_tot_ins[pe]));
    }
    viz::BarOptions bo;
    bo.title = "[Fig 10] PAPI_TOT_INS per PE — " + cfg.label();
    std::cout << viz::render_bars(labels, values, bo);
    std::printf("instruction imbalance (max/mean) = %.2fx  (paper: Cyclic "
                "up to ~4-5x at PE0, Range flat)\n\n",
                prof::imbalance_factor(r.papi_tot_ins));
  }
  return 0;
}
