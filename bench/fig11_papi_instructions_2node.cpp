// Figure 11: Total Number of Instructions per PE, 2 nodes / 32 PEs
// (LHS: 1D Cyclic, RHS: 1D Range). Same analysis as Figure 10.
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 2;
  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  for (const auto kind :
       {graph::DistKind::Cyclic1D, graph::DistKind::Range1D}) {
    cfg.dist = kind;
    const auto r = bench::run_case_study(cfg, lower, expected);
    std::vector<std::string> labels;
    std::vector<double> values;
    for (std::size_t pe = 0; pe < r.papi_tot_ins.size(); ++pe) {
      labels.push_back("PE" + std::to_string(pe));
      values.push_back(static_cast<double>(r.papi_tot_ins[pe]));
    }
    viz::BarOptions bo;
    bo.title = "[Fig 11] PAPI_TOT_INS per PE — " + cfg.label();
    std::cout << viz::render_bars(labels, values, bo);
    std::printf("instruction imbalance (max/mean) = %.2fx\n",
                prof::imbalance_factor(r.papi_tot_ins));
    std::printf("PAPI_LST_INS imbalance (max/mean) = %.2fx\n\n",
                prof::imbalance_factor(r.papi_lst_ins));
  }
  return 0;
}
