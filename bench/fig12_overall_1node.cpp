// Figure 12: Overall Profiling for 1 node (LHS: 1D Cyclic, RHS: 1D
// Range) — stacked MAIN/COMM/PROC bars, absolute and relative. Expected
// shape (paper §IV-D): COMM dominates both distributions; Range's total
// is ~2x better than Cyclic's; MAIN <= 5%; PROC <= 5% for Cyclic vs
// ~20-24% for Range; MAIN+PROC <= ~33%.
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "viz/render.hpp"

namespace {
void report(const ap::bench::CaseResult& r, const std::string& label,
            double* avg_total) {
  using namespace ap;
  std::uint64_t tm = 0, tc = 0, tp = 0, tt = 0;
  for (const auto& rec : r.overall) {
    tm += rec.t_main;
    tc += rec.t_comm();
    tp += rec.t_proc;
    tt += rec.t_total;
  }
  *avg_total = static_cast<double>(tt) / static_cast<double>(r.overall.size());
  std::printf(
      "%s: mean cycles/PE = %.0f   MAIN %.1f%%  COMM %.1f%%  PROC %.1f%%\n",
      label.c_str(), *avg_total, 100.0 * tm / tt, 100.0 * tc / tt,
      100.0 * tp / tt);
}
}  // namespace

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 1;
  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  cfg.dist = graph::DistKind::Cyclic1D;
  const auto cyc = bench::run_case_study(cfg, lower, expected);
  cfg.dist = graph::DistKind::Range1D;
  const auto rng = bench::run_case_study(cfg, lower, expected);

  viz::StackedBarOptions so;
  so.title = "[Fig 12] Overall Profiling (absolute) — 1D Cyclic, 1 node";
  std::cout << viz::render_overall_stacked(cyc.overall, so) << "\n";
  so.relative = true;
  so.title = "[Fig 12] Overall Profiling (relative) — 1D Cyclic, 1 node";
  std::cout << viz::render_overall_stacked(cyc.overall, so) << "\n";
  so.relative = false;
  so.title = "[Fig 12] Overall Profiling (absolute) — 1D Range, 1 node";
  std::cout << viz::render_overall_stacked(rng.overall, so) << "\n";
  so.relative = true;
  so.title = "[Fig 12] Overall Profiling (relative) — 1D Range, 1 node";
  std::cout << viz::render_overall_stacked(rng.overall, so) << "\n";

  double cyc_total = 0, rng_total = 0;
  report(cyc, "1D Cyclic", &cyc_total);
  report(rng, "1D Range ", &rng_total);
  std::printf(
      "total-time ratio Cyclic/Range = %.2fx  (paper: ~2x, COMM-driven)\n",
      cyc_total / rng_total);
  return 0;
}
