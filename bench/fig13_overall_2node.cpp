// Figure 13: Overall Profiling for 2 nodes / 32 PEs (LHS: 1D Cyclic,
// RHS: 1D Range). Same analysis as Figure 12 with inter-node transfers in
// the mix.
#include <cstdio>
#include <iostream>

#include "case_study.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  bench::CaseConfig cfg;
  cfg.nodes = 2;
  const graph::Csr lower = bench::build_lower(cfg);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  double totals[2] = {0, 0};
  int idx = 0;
  for (const auto kind :
       {graph::DistKind::Cyclic1D, graph::DistKind::Range1D}) {
    cfg.dist = kind;
    const auto r = bench::run_case_study(cfg, lower, expected);
    viz::StackedBarOptions so;
    so.title = "[Fig 13] Overall Profiling (absolute) — " + cfg.label();
    std::cout << viz::render_overall_stacked(r.overall, so) << "\n";
    so.relative = true;
    so.title = "[Fig 13] Overall Profiling (relative) — " + cfg.label();
    std::cout << viz::render_overall_stacked(r.overall, so) << "\n";

    std::uint64_t tm = 0, tc = 0, tp = 0, tt = 0;
    for (const auto& rec : r.overall) {
      tm += rec.t_main;
      tc += rec.t_comm();
      tp += rec.t_proc;
      tt += rec.t_total;
    }
    totals[idx++] = static_cast<double>(tt);
    std::printf("%s: MAIN %.1f%%  COMM %.1f%%  PROC %.1f%%\n\n",
                cfg.label().c_str(), 100.0 * tm / tt, 100.0 * tc / tt,
                100.0 * tp / tt);
  }
  std::printf("total-time ratio Cyclic/Range = %.2fx (paper: ~2x)\n",
              totals[0] / totals[1]);
  return 0;
}
