// Microbenchmarks of the Conveyors reimplementation: aggregation
// throughput across buffer sizes and topologies, plus the self-send
// memcpy count the paper's §IV-D note discusses (real Conveyors can incur
// up to six copies for one self-send; ours are observable via stats).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "conveyor/conveyor.hpp"
#include "core/alloc_probe.hpp"
#include "runtime/scheduler.hpp"
#include "shmem/shmem.hpp"

ACTORPROF_ALLOC_PROBE_DEFINE()

namespace {

using namespace ap;

void drive(convey::Conveyor& c, std::size_t msgs, int n_pes) {
  std::size_t i = 0;
  bool done = false;
  const int me = shmem::my_pe();
  while (c.advance(done)) {
    for (; i < msgs; ++i) {
      const std::int64_t v = static_cast<std::int64_t>(i);
      if (!c.push(&v, static_cast<int>((me + i) % static_cast<std::size_t>(n_pes))))
        break;
    }
    std::int64_t item;
    int from;
    while (c.pull(&item, &from)) benchmark::DoNotOptimize(item);
    done = (i == msgs);
    rt::yield();
  }
}

void BM_ConveyorThroughput(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  const int ppn = static_cast<int>(state.range(1));
  const auto buffer = static_cast<std::size_t>(state.range(2));
  const std::size_t msgs = 20000;
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = pes;
    lc.pes_per_node = ppn;
    shmem::run(lc, [&] {
      convey::Options o;
      o.buffer_bytes = buffer;
      auto c = convey::Conveyor::create(o);
      drive(*c, msgs, pes);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msgs) * pes);
  state.SetLabel(std::to_string(pes) + "pes/" + std::to_string(ppn) +
                 "ppn/" + std::to_string(buffer) + "B");
}

BENCHMARK(BM_ConveyorThroughput)
    ->Args({8, 8, 256})
    ->Args({8, 8, 1024})
    ->Args({8, 8, 8192})
    ->Args({8, 4, 256})
    ->Args({8, 4, 1024})
    ->Args({8, 4, 8192})
    ->Args({16, 16, 1024})
    ->Args({16, 8, 1024})
    ->Unit(benchmark::kMillisecond);

/// Self-send cost: the per-item copy count through the full stack.
void BM_ConveyorSelfSendCopies(benchmark::State& state) {
  std::uint64_t copies_per_item = 0;
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = 1;
    shmem::run(lc, [&] {
      convey::Options o;
      o.buffer_bytes = 1024;
      auto c = convey::Conveyor::create(o);
      const std::size_t msgs = 10000;
      std::size_t i = 0;
      bool done = false;
      while (c->advance(done)) {
        for (; i < msgs; ++i) {
          const std::int64_t v = static_cast<std::int64_t>(i);
          if (!c->push(&v, 0)) break;
        }
        std::int64_t item;
        int from;
        while (c->pull(&item, &from)) benchmark::DoNotOptimize(item);
        done = (i == msgs);
      }
      copies_per_item = c->stats().memcpys / msgs;
    });
  }
  state.counters["memcpys_per_self_send"] =
      static_cast<double>(copies_per_item);
  // Paper note: Conveyors can incur up to 6 memcpys per self-send because
  // no bypass is possible without risking out-of-order delivery.
}
BENCHMARK(BM_ConveyorSelfSendCopies)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- --json mode

/// One timed session at the comparable configuration (8 PEs / 8 per node /
/// 1024-byte buffers — the BENCH_conveyor.json reference point), consumed
/// either through pull() or through the batch drain() fast path.
bench_json::Metrics measure(bool use_drain, std::size_t msgs) {
  constexpr int kPes = 8;
  rt::LaunchConfig lc;
  lc.num_pes = kPes;
  lc.pes_per_node = kPes;
  convey::reset_lifetime_totals();
  const std::uint64_t allocs0 = prof::AllocProbe::count();
  const bench_json::Timer t;
  shmem::run(lc, [&] {
    convey::Options o;
    o.buffer_bytes = 1024;
    auto c = convey::Conveyor::create(o);
    if (use_drain) {
      std::size_t i = 0;
      bool done = false;
      const int me = shmem::my_pe();
      std::int64_t sink = 0;
      while (c->advance(done)) {
        for (; i < msgs; ++i) {
          const std::int64_t v = static_cast<std::int64_t>(i);
          if (!c->push(&v, static_cast<int>((me + i) % kPes))) break;
        }
        c->drain([&](const convey::Delivered& d) {
          std::int64_t v;
          std::memcpy(&v, d.payload, sizeof v);
          sink += v;
        });
        done = (i == msgs);
        rt::yield();
      }
      benchmark::DoNotOptimize(sink);
    } else {
      drive(*c, msgs, kPes);
    }
  });
  const double secs = t.seconds();
  const std::uint64_t allocs = prof::AllocProbe::count() - allocs0;
  const convey::ConveyorStats s = convey::lifetime_totals();
  const auto items = static_cast<double>(s.pushed);
  bench_json::Metrics m;
  m.items_per_sec = items / secs;
  m.bytes_per_sec =
      static_cast<double>(s.local_send_bytes + s.nonblock_send_bytes) / secs;
  m.memcpys_per_item = static_cast<double>(s.memcpys) / items;
  m.allocs_per_item = static_cast<double>(allocs) / items;
  return m;
}

/// Best of three timed sessions — one slow outlier (scheduler preemption,
/// cold frequency) must not end up recorded as the machine's capability.
bench_json::Metrics best_of_3(bool use_drain, std::size_t msgs) {
  bench_json::Metrics best = measure(use_drain, msgs);
  for (int r = 1; r < 3; ++r) {
    const bench_json::Metrics m = measure(use_drain, msgs);
    if (m.items_per_sec > best.items_per_sec) best = m;
  }
  return best;
}

int run_json(const char* path, std::size_t msgs) {
  measure(false, msgs);  // warmup (first-touch, page faults, code paths)
  std::vector<bench_json::Section> sections;
  sections.push_back({"pull", best_of_3(false, msgs)});
  sections.push_back({"drain", best_of_3(true, msgs)});
  char config[160];
  std::snprintf(config, sizeof config,
                "{\"pes\": 8, \"ppn\": 8, \"buffer_bytes\": 1024, "
                "\"item_bytes\": 8, \"msgs_per_pe\": %zu}",
                msgs);
  return bench_json::write(path, "micro_conveyor", config, sections) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* path = bench_json::json_path(argc, argv))
    return run_json(path, bench_json::arg_msgs(argc, argv, 20000));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
