// Microbenchmarks of the Conveyors reimplementation: aggregation
// throughput across buffer sizes and topologies, plus the self-send
// memcpy count the paper's §IV-D note discusses (real Conveyors can incur
// up to six copies for one self-send; ours are observable via stats).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "conveyor/conveyor.hpp"
#include "runtime/scheduler.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;

void drive(convey::Conveyor& c, std::size_t msgs, int n_pes) {
  std::size_t i = 0;
  bool done = false;
  const int me = shmem::my_pe();
  while (c.advance(done)) {
    for (; i < msgs; ++i) {
      const std::int64_t v = static_cast<std::int64_t>(i);
      if (!c.push(&v, static_cast<int>((me + i) % static_cast<std::size_t>(n_pes))))
        break;
    }
    std::int64_t item;
    int from;
    while (c.pull(&item, &from)) benchmark::DoNotOptimize(item);
    done = (i == msgs);
    rt::yield();
  }
}

void BM_ConveyorThroughput(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  const int ppn = static_cast<int>(state.range(1));
  const auto buffer = static_cast<std::size_t>(state.range(2));
  const std::size_t msgs = 20000;
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = pes;
    lc.pes_per_node = ppn;
    shmem::run(lc, [&] {
      convey::Options o;
      o.buffer_bytes = buffer;
      auto c = convey::Conveyor::create(o);
      drive(*c, msgs, pes);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msgs) * pes);
  state.SetLabel(std::to_string(pes) + "pes/" + std::to_string(ppn) +
                 "ppn/" + std::to_string(buffer) + "B");
}

BENCHMARK(BM_ConveyorThroughput)
    ->Args({8, 8, 256})
    ->Args({8, 8, 1024})
    ->Args({8, 8, 8192})
    ->Args({8, 4, 256})
    ->Args({8, 4, 1024})
    ->Args({8, 4, 8192})
    ->Args({16, 16, 1024})
    ->Args({16, 8, 1024})
    ->Unit(benchmark::kMillisecond);

/// Self-send cost: the per-item copy count through the full stack.
void BM_ConveyorSelfSendCopies(benchmark::State& state) {
  std::uint64_t copies_per_item = 0;
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = 1;
    shmem::run(lc, [&] {
      convey::Options o;
      o.buffer_bytes = 1024;
      auto c = convey::Conveyor::create(o);
      const std::size_t msgs = 10000;
      std::size_t i = 0;
      bool done = false;
      while (c->advance(done)) {
        for (; i < msgs; ++i) {
          const std::int64_t v = static_cast<std::int64_t>(i);
          if (!c->push(&v, 0)) break;
        }
        std::int64_t item;
        int from;
        while (c->pull(&item, &from)) benchmark::DoNotOptimize(item);
        done = (i == msgs);
      }
      copies_per_item = c->stats().memcpys / msgs;
    });
  }
  state.counters["memcpys_per_self_send"] =
      static_cast<double>(copies_per_item);
  // Paper note: Conveyors can incur up to 6 memcpys per self-send because
  // no bypass is possible without risking out-of-order delivery.
}
BENCHMARK(BM_ConveyorSelfSendCopies)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
