// Microbenchmarks of the HClib-Actor Selector: end-to-end message rate
// through the full FA-BSP stack (send -> aggregate -> transfer -> handler),
// with and without an installed profiler.
#include <benchmark/benchmark.h>

#include "actor/selector.hpp"
#include "bench_json.hpp"
#include "core/alloc_probe.hpp"
#include "core/profiler.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

ACTORPROF_ALLOC_PROBE_DEFINE()

namespace {

using namespace ap;

void run_ping_all(std::size_t msgs_per_pe, int pes, int ppn) {
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = ppn;
  shmem::run(lc, [msgs_per_pe] {
    std::int64_t sink = 0;
    actor::Actor<std::int64_t> a;
    a.mb[0].process = [&sink](std::int64_t v, int) { sink += v; };
    hclib::finish([&] {
      a.start();
      const int n = shmem::n_pes();
      for (std::size_t i = 0; i < msgs_per_pe; ++i)
        a.send(1, static_cast<int>(i % static_cast<std::size_t>(n)));
      a.done(0);
    });
    benchmark::DoNotOptimize(sink);
  });
}

void BM_SelectorMessageRate(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  const int ppn = static_cast<int>(state.range(1));
  const std::size_t msgs = 20000;
  for (auto _ : state) run_ping_all(msgs, pes, ppn);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msgs) * pes);
  state.SetLabel(std::to_string(pes) + "pes/" + std::to_string(ppn) + "ppn");
}
BENCHMARK(BM_SelectorMessageRate)
    ->Args({2, 2})
    ->Args({8, 8})
    ->Args({8, 4})
    ->Args({16, 16})
    ->Args({32, 16})
    ->Unit(benchmark::kMillisecond);

void BM_SelectorWithProfiler(benchmark::State& state) {
  const std::size_t msgs = 20000;
  for (auto _ : state) {
    prof::Config c = prof::Config::all_enabled();
    c.keep_logical_events = c.keep_physical_events = false;
    prof::Profiler profiler(c);
    rt::LaunchConfig lc;
    lc.num_pes = 8;
    lc.pes_per_node = 4;
    shmem::run(lc, [&] {
      std::int64_t sink = 0;
      actor::Actor<std::int64_t> a;
      a.mb[0].process = [&sink](std::int64_t v, int) { sink += v; };
      profiler.epoch_begin();
      hclib::finish([&] {
        a.start();
        for (std::size_t i = 0; i < msgs; ++i)
          a.send(1, static_cast<int>(i % 8));
        a.done(0);
      });
      profiler.epoch_end();
      benchmark::DoNotOptimize(sink);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msgs) * 8);
}
BENCHMARK(BM_SelectorWithProfiler)->Unit(benchmark::kMillisecond);

void BM_TwoMailboxRequestReply(benchmark::State& state) {
  const std::size_t reqs = 10000;
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = 8;
    lc.pes_per_node = 4;
    shmem::run(lc, [] {
      std::int64_t sink = 0;
      actor::Selector<2, std::int64_t> s;
      s.mb[0].process = [&s](std::int64_t v, int from) { s.send(1, v, from); };
      s.mb[1].process = [&sink](std::int64_t v, int) { sink += v; };
      hclib::finish([&] {
        s.start();
        for (std::size_t i = 0; i < reqs; ++i)
          s.send(0, 1, static_cast<int>(i % 8));
        s.done(0);
      });
      benchmark::DoNotOptimize(sink);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(reqs) * 8 * 2);
}
BENCHMARK(BM_TwoMailboxRequestReply)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- --json mode

/// One timed ping-all session (8 PEs / 8 per node) through the full
/// Selector stack; copy and message counts come from the conveyor
/// lifetime totals the session's mailbox conveyors leave behind.
bench_json::Metrics measure(std::size_t msgs) {
  convey::reset_lifetime_totals();
  const std::uint64_t allocs0 = prof::AllocProbe::count();
  const bench_json::Timer t;
  run_ping_all(msgs, 8, 8);
  const double secs = t.seconds();
  const std::uint64_t allocs = prof::AllocProbe::count() - allocs0;
  const convey::ConveyorStats s = convey::lifetime_totals();
  const auto items = static_cast<double>(s.pushed);
  bench_json::Metrics m;
  m.items_per_sec = items / secs;
  m.bytes_per_sec =
      static_cast<double>(s.local_send_bytes + s.nonblock_send_bytes) / secs;
  m.memcpys_per_item = static_cast<double>(s.memcpys) / items;
  m.allocs_per_item = static_cast<double>(allocs) / items;
  return m;
}

int run_json(const char* path, std::size_t msgs) {
  measure(msgs);  // warmup
  // Best of three: one preempted run must not define the baseline.
  bench_json::Metrics best = measure(msgs);
  for (int r = 1; r < 3; ++r) {
    const bench_json::Metrics m = measure(msgs);
    if (m.items_per_sec > best.items_per_sec) best = m;
  }
  std::vector<bench_json::Section> sections;
  sections.push_back({"ping_all", best});
  char config[120];
  std::snprintf(config, sizeof config,
                "{\"pes\": 8, \"ppn\": 8, \"msgs_per_pe\": %zu}", msgs);
  return bench_json::write(path, "micro_selector", config, sections) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* path = bench_json::json_path(argc, argv))
    return run_json(path, bench_json::arg_msgs(argc, argv, 20000));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
