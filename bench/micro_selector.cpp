// Microbenchmarks of the HClib-Actor Selector: end-to-end message rate
// through the full FA-BSP stack (send -> aggregate -> transfer -> handler),
// with and without an installed profiler.
#include <benchmark/benchmark.h>

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;

void run_ping_all(std::size_t msgs_per_pe, int pes, int ppn) {
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = ppn;
  shmem::run(lc, [msgs_per_pe] {
    std::int64_t sink = 0;
    actor::Actor<std::int64_t> a;
    a.mb[0].process = [&sink](std::int64_t v, int) { sink += v; };
    hclib::finish([&] {
      a.start();
      const int n = shmem::n_pes();
      for (std::size_t i = 0; i < msgs_per_pe; ++i)
        a.send(1, static_cast<int>(i % static_cast<std::size_t>(n)));
      a.done(0);
    });
    benchmark::DoNotOptimize(sink);
  });
}

void BM_SelectorMessageRate(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  const int ppn = static_cast<int>(state.range(1));
  const std::size_t msgs = 20000;
  for (auto _ : state) run_ping_all(msgs, pes, ppn);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msgs) * pes);
  state.SetLabel(std::to_string(pes) + "pes/" + std::to_string(ppn) + "ppn");
}
BENCHMARK(BM_SelectorMessageRate)
    ->Args({2, 2})
    ->Args({8, 8})
    ->Args({8, 4})
    ->Args({16, 16})
    ->Args({32, 16})
    ->Unit(benchmark::kMillisecond);

void BM_SelectorWithProfiler(benchmark::State& state) {
  const std::size_t msgs = 20000;
  for (auto _ : state) {
    prof::Config c = prof::Config::all_enabled();
    c.keep_logical_events = c.keep_physical_events = false;
    prof::Profiler profiler(c);
    rt::LaunchConfig lc;
    lc.num_pes = 8;
    lc.pes_per_node = 4;
    shmem::run(lc, [&] {
      std::int64_t sink = 0;
      actor::Actor<std::int64_t> a;
      a.mb[0].process = [&sink](std::int64_t v, int) { sink += v; };
      profiler.epoch_begin();
      hclib::finish([&] {
        a.start();
        for (std::size_t i = 0; i < msgs; ++i)
          a.send(1, static_cast<int>(i % 8));
        a.done(0);
      });
      profiler.epoch_end();
      benchmark::DoNotOptimize(sink);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msgs) * 8);
}
BENCHMARK(BM_SelectorWithProfiler)->Unit(benchmark::kMillisecond);

void BM_TwoMailboxRequestReply(benchmark::State& state) {
  const std::size_t reqs = 10000;
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = 8;
    lc.pes_per_node = 4;
    shmem::run(lc, [] {
      std::int64_t sink = 0;
      actor::Selector<2, std::int64_t> s;
      s.mb[0].process = [&s](std::int64_t v, int from) { s.send(1, v, from); };
      s.mb[1].process = [&sink](std::int64_t v, int) { sink += v; };
      hclib::finish([&] {
        s.start();
        for (std::size_t i = 0; i < reqs; ++i)
          s.send(0, 1, static_cast<int>(i % 8));
        s.done(0);
      });
      benchmark::DoNotOptimize(sink);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(reqs) * 8 * 2);
}
BENCHMARK(BM_TwoMailboxRequestReply)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
