// Microbenchmarks of the minishmem substrate: RMA and collective costs.
#include <benchmark/benchmark.h>

#include "shmem/shmem.hpp"

namespace {

using namespace ap;

void BM_ShmemPut(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = 2;
    shmem::run(lc, [bytes] {
      shmem::SymmArray<unsigned char> buf(bytes);
      std::vector<unsigned char> src(bytes, 0xAB);
      shmem::barrier_all();
      for (int i = 0; i < 1000; ++i)
        shmem::put(buf.data(), src.data(), bytes, 1 - shmem::my_pe());
      shmem::barrier_all();
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000 * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ShmemPut)->Arg(8)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ShmemNbiPutQuiet(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = 2;
    shmem::run(lc, [batch] {
      shmem::SymmArray<std::int64_t> buf(static_cast<std::size_t>(batch));
      std::vector<std::int64_t> src(static_cast<std::size_t>(batch), 7);
      shmem::barrier_all();
      for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < batch; ++i)
          shmem::putmem_nbi(&buf[static_cast<std::size_t>(i)],
                            &src[static_cast<std::size_t>(i)],
                            sizeof(std::int64_t), 1 - shmem::my_pe());
        shmem::quiet();
      }
      shmem::barrier_all();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 400 *
                          batch);
}
BENCHMARK(BM_ShmemNbiPutQuiet)->Arg(1)->Arg(8)->Arg(64);

void BM_ShmemBarrier(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = pes;
    shmem::run(lc, [] {
      for (int i = 0; i < 100; ++i) shmem::barrier_all();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_ShmemBarrier)->Arg(2)->Arg(16)->Arg(64);

void BM_ShmemReduce(benchmark::State& state) {
  const int pes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = pes;
    shmem::run(lc, [] {
      std::int64_t acc = 0;
      for (int i = 0; i < 100; ++i)
        acc += shmem::sum_reduce(static_cast<std::int64_t>(i));
      benchmark::DoNotOptimize(acc);
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_ShmemReduce)->Arg(2)->Arg(16)->Arg(64);

void BM_FiberContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    rt::LaunchConfig lc;
    lc.num_pes = 2;
    rt::launch(lc, [] {
      for (int i = 0; i < 10000; ++i) rt::yield();
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          20000);
}
BENCHMARK(BM_FiberContextSwitch);

}  // namespace

BENCHMARK_MAIN();
