// §IV-E: Overhead of ActorProf tracing. Runs the same FA-BSP histogram
// kernel with profiling disabled, each trace kind alone, the live-metrics
// subsystem, and everything enabled.
//
// Two front ends share the workload:
//   * default             — google-benchmark micro harness (wall time per
//                           configuration, human tables)
//   * --json[=path]       — machine-readable mode: a few repetitions per
//                           configuration, median wall time, overhead % vs
//                           the profiling-off baseline, and the measured
//                           self-overhead cycle breakdown of the metrics
//                           observers. CI parses this to catch overhead
//                           regressions.
// The paper's claim to check: software tracing adds modest overhead, and
// the rdtsc-based overall profile is the cheapest kind.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "core/profiler.hpp"
#include "metrics/self_overhead.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;

constexpr std::size_t kUpdates = 20000;
constexpr int kPes = 8;

prof::Config config_for(const std::string& mode) {
  prof::Config c;
  c.logical = c.papi = c.overall = c.physical = false;
  c.keep_logical_events = c.keep_physical_events = false;
  if (mode == "logical" || mode == "all") c.logical = true;
  if (mode == "papi" || mode == "all") c.papi = true;
  if (mode == "overall" || mode == "all") c.overall = true;
  if (mode == "physical" || mode == "all") c.physical = true;
  if (mode == "metrics" || mode == "all") c.metrics = true;
  // Superstep recording alone measures the barrier-hook cost; under "all"
  // the metrics meter also attributes it to its own "superstep" category.
  if (mode == "supersteps" || mode == "all") c.supersteps = true;
  return c;
}

void run_histogram(prof::Profiler* profiler) {
  rt::LaunchConfig lc;
  lc.num_pes = kPes;
  lc.pes_per_node = kPes / 2;
  shmem::run(lc, [profiler] {
    const auto r = apps::histogram_actor(256, kUpdates, 1234, profiler);
    benchmark::DoNotOptimize(r.global_updates);
  });
}

// ------------------------------------------------------- google-benchmark

void BM_TracingOverhead(benchmark::State& state, const std::string& mode) {
  for (auto _ : state) {
    if (mode == "off") {
      run_histogram(nullptr);
    } else {
      prof::Profiler profiler(config_for(mode));
      run_histogram(&profiler);
      benchmark::DoNotOptimize(profiler.num_pes());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kUpdates * kPes);
}

BENCHMARK_CAPTURE(BM_TracingOverhead, off, std::string("off"));
BENCHMARK_CAPTURE(BM_TracingOverhead, overall_only, std::string("overall"));
BENCHMARK_CAPTURE(BM_TracingOverhead, logical_only, std::string("logical"));
BENCHMARK_CAPTURE(BM_TracingOverhead, papi_only, std::string("papi"));
BENCHMARK_CAPTURE(BM_TracingOverhead, physical_only, std::string("physical"));
BENCHMARK_CAPTURE(BM_TracingOverhead, metrics_only, std::string("metrics"));
BENCHMARK_CAPTURE(BM_TracingOverhead, supersteps_only, std::string("supersteps"));
BENCHMARK_CAPTURE(BM_TracingOverhead, all, std::string("all"));

/// Per-event retention (what the paper's §VI trace-size worry is about):
/// keeping every logical record vs aggregation only.
void BM_TracingOverhead_KeepEvents(benchmark::State& state) {
  for (auto _ : state) {
    prof::Config c = config_for("logical");
    c.keep_logical_events = true;
    prof::Profiler profiler(c);
    run_histogram(&profiler);
    benchmark::DoNotOptimize(profiler.logical_events(0).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kUpdates * kPes);
}
BENCHMARK(BM_TracingOverhead_KeepEvents);

// ------------------------------------------------------------- JSON mode

struct ModeResult {
  std::string mode;
  double wall_ns = 0.0;  // median over reps
  double overhead_pct = 0.0;
  std::uint64_t self_overhead_cycles = 0;
  std::vector<std::pair<std::string, std::uint64_t>> by_category;
};

double median_ns(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

ModeResult measure_mode(const std::string& mode, int reps) {
  ModeResult r;
  r.mode = mode;
  std::vector<double> samples;
  for (int i = 0; i < reps; ++i) {
    if (mode == "off") {
      const auto t0 = std::chrono::steady_clock::now();
      run_histogram(nullptr);
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
    } else {
      prof::Profiler profiler(config_for(mode));
      const auto t0 = std::chrono::steady_clock::now();
      run_histogram(&profiler);
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
      if (i == reps - 1 && profiler.config().metrics) {
        const metrics::OverheadMeter& m = profiler.self_overhead();
        r.self_overhead_cycles = m.grand_total();
        for (int c = 0; c < metrics::kOverheadCategories; ++c) {
          const auto cat = static_cast<metrics::OverheadCategory>(c);
          std::uint64_t total = m.cycles(metrics::OverheadMeter::kGlobalSlot,
                                         cat);
          for (int pe = 0; pe < m.num_pes(); ++pe)
            total += m.cycles(pe, cat);
          r.by_category.emplace_back(std::string(metrics::to_string(cat)),
                                     total);
        }
      }
    }
  }
  r.wall_ns = median_ns(samples);
  return r;
}

void write_json(std::ostream& os, const std::vector<ModeResult>& results,
                double baseline_ns, int reps) {
  os << "{\n"
     << "  \"kernel\": \"histogram\",\n"
     << "  \"updates_per_pe\": " << kUpdates << ",\n"
     << "  \"num_pes\": " << kPes << ",\n"
     << "  \"reps\": " << reps << ",\n"
     << "  \"baseline_wall_ns\": " << baseline_ns << ",\n"
     << "  \"modes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    os << "    {\"mode\": \"" << r.mode << "\", \"wall_ns\": " << r.wall_ns
       << ", \"overhead_pct\": " << r.overhead_pct
       << ", \"self_overhead_cycles\": " << r.self_overhead_cycles;
    if (!r.by_category.empty()) {
      os << ", \"self_overhead_by_category\": {";
      for (std::size_t c = 0; c < r.by_category.size(); ++c)
        os << (c ? ", " : "") << "\"" << r.by_category[c].first
           << "\": " << r.by_category[c].second;
      os << "}";
    }
    os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int run_json_mode(const std::string& path) {
  constexpr int kReps = 5;
  const std::vector<std::string> modes = {
      "off",      "overall", "logical",    "papi",
      "physical", "metrics", "supersteps", "all"};
  std::vector<ModeResult> results;
  for (const std::string& mode : modes)
    results.push_back(measure_mode(mode, kReps));
  const double baseline = results.front().wall_ns;
  for (ModeResult& r : results)
    r.overhead_pct =
        baseline > 0 ? (r.wall_ns - baseline) / baseline * 100.0 : 0.0;
  if (path.empty()) {
    write_json(std::cout, results, baseline, kReps);
  } else {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "overhead_tracing: cannot open " << path << "\n";
      return 1;
    }
    write_json(os, results, baseline, kReps);
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return run_json_mode("");
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      return run_json_mode(argv[i] + 7);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
