// §IV-E: Overhead of ActorProf tracing. Runs the same FA-BSP histogram
// kernel with profiling disabled, each trace kind alone, and everything
// enabled, and reports wall time per configuration (google-benchmark).
// The paper's claim to check: software tracing adds modest overhead, and
// the rdtsc-based overall profile is the cheapest kind.
#include <benchmark/benchmark.h>

#include "apps/histogram.hpp"
#include "core/profiler.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace ap;

constexpr std::size_t kUpdates = 20000;
constexpr int kPes = 8;

prof::Config config_for(const std::string& mode) {
  prof::Config c;
  c.logical = c.papi = c.overall = c.physical = false;
  c.keep_logical_events = c.keep_physical_events = false;
  if (mode == "logical" || mode == "all") c.logical = true;
  if (mode == "papi" || mode == "all") c.papi = true;
  if (mode == "overall" || mode == "all") c.overall = true;
  if (mode == "physical" || mode == "all") c.physical = true;
  return c;
}

void run_histogram(prof::Profiler* profiler) {
  rt::LaunchConfig lc;
  lc.num_pes = kPes;
  lc.pes_per_node = kPes / 2;
  shmem::run(lc, [profiler] {
    const auto r = apps::histogram_actor(256, kUpdates, 1234, profiler);
    benchmark::DoNotOptimize(r.global_updates);
  });
}

void BM_TracingOverhead(benchmark::State& state, const std::string& mode) {
  for (auto _ : state) {
    if (mode == "off") {
      run_histogram(nullptr);
    } else {
      prof::Profiler profiler(config_for(mode));
      run_histogram(&profiler);
      benchmark::DoNotOptimize(profiler.num_pes());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kUpdates * kPes);
}

BENCHMARK_CAPTURE(BM_TracingOverhead, off, std::string("off"));
BENCHMARK_CAPTURE(BM_TracingOverhead, overall_only, std::string("overall"));
BENCHMARK_CAPTURE(BM_TracingOverhead, logical_only, std::string("logical"));
BENCHMARK_CAPTURE(BM_TracingOverhead, papi_only, std::string("papi"));
BENCHMARK_CAPTURE(BM_TracingOverhead, physical_only, std::string("physical"));
BENCHMARK_CAPTURE(BM_TracingOverhead, all, std::string("all"));

/// Per-event retention (what the paper's §VI trace-size worry is about):
/// keeping every logical record vs aggregation only.
void BM_TracingOverhead_KeepEvents(benchmark::State& state) {
  for (auto _ : state) {
    prof::Config c = config_for("logical");
    c.keep_logical_events = true;
    prof::Profiler profiler(c);
    run_histogram(&profiler);
    benchmark::DoNotOptimize(profiler.logical_events(0).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kUpdates * kPes);
}
BENCHMARK(BM_TracingOverhead_KeepEvents);

}  // namespace

BENCHMARK_MAIN();
