// Four PAPI counters in one run — the paper's "-lp ... bar graph for four
// PAPI counters in one run" and the PAPI four-event hardware limit
// (§III-A). Profiles the triangle kernel recording PAPI_TOT_INS,
// PAPI_LST_INS, PAPI_L1_DCM and PAPI_BR_MSP simultaneously, and prints
// one bar graph per counter.
#include <cstdio>
#include <iostream>

#include "apps/triangle.hpp"
#include "core/profiler.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"

int main() {
  using namespace ap;
  const int scale = [] {
    const char* v = std::getenv("AP_SCALE");
    return v != nullptr ? std::atoi(v) : 11;
  }();

  graph::RmatParams gp;
  gp.scale = scale;
  gp.edge_factor = 16;
  gp.permute_vertices = false;
  const auto edges = graph::rmat_edges(gp);
  const auto L =
      graph::Csr::from_edges(graph::Vertex{1} << scale, edges, true);

  prof::Config pc = prof::Config::all_enabled();
  pc.keep_logical_events = pc.keep_physical_events = false;
  pc.papi_events = {papi::Event::TOT_INS, papi::Event::LST_INS,
                    papi::Event::L1_DCM, papi::Event::BR_MSP};
  prof::Profiler profiler(pc);

  rt::LaunchConfig lc;
  lc.num_pes = 16;
  lc.pes_per_node = 16;
  lc.symm_heap_bytes = 64 << 20;
  shmem::run(lc, [&] {
    graph::CyclicDistribution dist(shmem::n_pes());
    apps::count_triangles_actor(L, dist, &profiler);
  });

  std::printf(
      "[PAPI] four concurrent counters over MAIN+PROC segments — triangle "
      "counting, 1D Cyclic, scale %d\n\n",
      scale);
  for (papi::Event e : {papi::Event::TOT_INS, papi::Event::LST_INS,
                        papi::Event::L1_DCM, papi::Event::BR_MSP}) {
    const auto totals = profiler.papi_totals(e);
    std::vector<std::string> labels;
    std::vector<double> values;
    for (std::size_t pe = 0; pe < totals.size(); ++pe) {
      labels.push_back("PE" + std::to_string(pe));
      values.push_back(static_cast<double>(totals[pe]));
    }
    viz::BarOptions bo;
    bo.title = std::string(papi::name(e)) + " per PE";
    std::cout << viz::render_bars(labels, values, bo);
    std::printf("imbalance (max/mean) = %.2fx\n\n",
                prof::imbalance_factor(totals));
  }
  std::printf(
      "All four counters skew together at the hot PE: memory (LST/L1_DCM)\n"
      "and branch (BR_MSP) pressure follow the instruction imbalance, the\n"
      "inference pattern §III-A describes for HPC run-time designers.\n");
  return 0;
}
