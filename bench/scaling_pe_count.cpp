// PE-count scaling bench: runs the two workhorse kernels (histogram and
// triangle counting) at 256 / 1024 / 2048 simulated PEs on the fiber
// backend and reports, per run:
//
//   items_per_sec      — actor messages through the conveyors / CPU second
//   alloc_bytes_per_pe — heap bytes allocated during the run / PE count
//   peak_rss_mb        — process high-watermark RSS after the run (MiB;
//                        monotone, so runs go in ascending PE order and the
//                        number is informational, not a gate)
//
// alloc_bytes_per_pe is the metric docs/PERFORMANCE.md ("Memory at scale")
// gates on: with lazy per-destination buffers and sparse aggregation it
// stays flat as P grows, while any O(P^2) structure makes it grow linearly
// in P — tools/bench.sh --check fails if 2048 PEs costs more than 2x the
// per-PE bytes of 256 PEs, or regresses vs the committed BENCH_scaling.json.
#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/histogram.hpp"
#include "apps/triangle.hpp"
#include "bench_json.hpp"
#include "conveyor/conveyor.hpp"
#include "core/alloc_probe.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "runtime/scheduler.hpp"
#include "shmem/shmem.hpp"

ACTORPROF_ALLOC_PROBE_DEFINE()

namespace {

using namespace ap;

constexpr int kPeCounts[] = {256, 1024, 2048};
constexpr int kPpn = 32;
constexpr std::size_t kUpdatesPerPe = 256;
constexpr int kGraphScale = 11;

struct RunResult {
  double items_per_sec = 0;
  double alloc_bytes_per_pe = 0;
  double peak_rss_mb = 0;
};

double peak_rss_mb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

rt::LaunchConfig config_for(int pes, int ppn) {
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = ppn;
  // Thousands of fibers: the 1 MiB default stack would dominate the
  // per-PE byte count with pure stack memory; both kernels run shallow.
  lc.stack_bytes = 128 * 1024;
  return lc;
}

template <typename Fn>
RunResult measure(int pes, int ppn, Fn&& body) {
  convey::reset_lifetime_totals();
  const std::uint64_t bytes0 = prof::AllocProbe::bytes_allocated();
  const bench_json::Timer t;
  shmem::run(config_for(pes, ppn), body);
  const double secs = t.seconds();
  const std::uint64_t bytes = prof::AllocProbe::bytes_allocated() - bytes0;
  RunResult r;
  r.items_per_sec =
      static_cast<double>(convey::lifetime_totals().pushed) / secs;
  r.alloc_bytes_per_pe = static_cast<double>(bytes) / pes;
  r.peak_rss_mb = peak_rss_mb();
  return r;
}

// Single node => direct (Linear1D) routing: each PE's buffers follow the
// destinations its sends actually touch, which the fixed per-PE update
// count bounds — exactly the first-touch contract, so bytes/PE must stay
// flat as the fleet grows.
RunResult run_histogram(int pes) {
  return measure(pes, /*ppn=*/0, [] {
    apps::histogram_actor(/*buckets_per_pe=*/64, kUpdatesPerPe,
                          /*seed=*/0x5CA1E);
  });
}

// 32 PEs/node => Mesh2D routing with inter-node staging: per-PE buffers
// follow the route's O(ppn + num_nodes) hop fan-out, and the fixed graph
// spreads over more PEs, so bytes/PE must not grow either.
RunResult run_triangle(const graph::Csr& lower, int pes) {
  return measure(pes, kPpn, [&] {
    const auto dist =
        graph::make_distribution(graph::DistKind::Cyclic1D, shmem::n_pes(),
                                 lower);
    apps::count_triangles_actor(lower, *dist);
  });
}

graph::Csr build_graph() {
  graph::RmatParams p;
  p.scale = kGraphScale;
  p.edge_factor = 8;
  p.seed = 0x5CA1E;
  p.permute_vertices = false;
  const auto edges = graph::rmat_edges(p);
  return graph::Csr::from_edges(graph::Vertex{1} << kGraphScale, edges, true);
}

int write_json(const char* path,
               const std::vector<std::pair<std::string, RunResult>>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "scaling_pe_count: cannot open %s\n", path);
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"scaling_pe_count\",\n"
               "  \"config\": {\"pe_counts\": [256, 1024, 2048], "
               "\"histogram_ppn\": 0, \"triangle_ppn\": %d, "
               "\"updates_per_pe\": %zu, "
               "\"graph_scale\": %d, \"edge_factor\": 8},\n"
               "  \"results\": {\n",
               kPpn, kUpdatesPerPe, kGraphScale);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [name, r] = rows[i];
    std::fprintf(f,
                 "    \"%s\": {\"items_per_sec\": %.1f, "
                 "\"alloc_bytes_per_pe\": %.1f, \"peak_rss_mb\": %.1f}%s\n",
                 name.c_str(), r.items_per_sec, r.alloc_bytes_per_pe,
                 r.peak_rss_mb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // The fiber scheduler is what thousands of PEs exercise; a threads run
  // at these counts only measures oversubscription.
  setenv("ACTORPROF_BACKEND", "fiber", 1);

  const graph::Csr lower = build_graph();
  std::vector<std::pair<std::string, RunResult>> rows;
  // Ascending PE order so peak_rss_mb (a high-watermark) tracks the
  // largest fleet of each kernel.
  for (const int pes : kPeCounts)
    rows.emplace_back("histogram_" + std::to_string(pes), run_histogram(pes));
  for (const int pes : kPeCounts)
    rows.emplace_back("triangle_" + std::to_string(pes),
                      run_triangle(lower, pes));

  if (const char* path = bench_json::json_path(argc, argv))
    return write_json(path, rows);

  std::printf("[Scaling] PE-count scaling — fiber backend (histogram:\n"
              "1 node/direct route; triangle: %d PEs/node/Mesh2D)\n"
              "%-16s %14s %20s %12s\n",
              kPpn, "run", "items/sec", "alloc bytes/PE", "peak RSS MB");
  for (const auto& [name, r] : rows)
    std::printf("%-16s %14.0f %20.0f %12.1f\n", name.c_str(), r.items_per_sec,
                r.alloc_bytes_per_pe, r.peak_rss_mb);
  std::printf(
      "\nExpected: alloc bytes/PE stays flat (within 2x) from 256 to 2048\n"
      "PEs on both kernels — per-destination buffers are first-touch lazy\n"
      "and aggregation is sparse, so per-PE heap tracks the hops a PE\n"
      "actually sends through, not the fleet size.\n");
  return 0;
}
