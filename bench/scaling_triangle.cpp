// Strong and weak scaling of FA-BSP triangle counting — the introduction's
// claim that FA-BSP applications show "promising strong/weak scaling".
//
// Scope note: the simulator serializes all PEs on one core and its
// virtual COMM time includes polling/wait modeling, so end-to-end wall
// time is not a scaling metric here. What the model does capture is the
// *compute critical path* — the busiest PE's MAIN+PROC cycles, i.e. the
// user work that an ideal overlap would leave on the critical path — and
// that is what this bench reports.
#include <cstdio>

#include "apps/triangle.hpp"
#include <cstdlib>

#include "bench_json.hpp"
#include "conveyor/conveyor.hpp"
#include "core/alloc_probe.hpp"
#include "core/profiler.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"

ACTORPROF_ALLOC_PROBE_DEFINE()

namespace {

using namespace ap;

graph::Csr build(int scale) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 16;
  p.seed = 0x5CA1E;
  p.permute_vertices = false;
  const auto edges = graph::rmat_edges(p);
  return graph::Csr::from_edges(graph::Vertex{1} << scale, edges, true);
}

std::uint64_t run_cycles(const graph::Csr& lower, int pes, int ppn) {
  prof::Config pc;
  pc.overall = true;
  prof::Profiler profiler(pc);
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = ppn;
  lc.symm_heap_bytes = 64 << 20;
  shmem::run(lc, [&] {
    graph::RangeDistribution dist(shmem::n_pes(), lower);
    apps::count_triangles_actor(lower, dist, &profiler);
  });
  std::uint64_t mx = 0;
  for (const auto& r : profiler.overall())
    mx = std::max(mx, r.t_main + r.t_proc);
  return mx;  // compute critical path = the busiest PE's user work
}

/// --json mode: one timed triangle-count run (8 PEs / 8 per node); items
/// are the actor messages the app pushed through its conveyors.
int run_json(const char* path, int scale) {
  const graph::Csr lower = build(scale);
  run_cycles(lower, 8, 8);  // warmup
  convey::reset_lifetime_totals();
  const std::uint64_t allocs0 = prof::AllocProbe::count();
  const bench_json::Timer t;
  run_cycles(lower, 8, 8);
  const double secs = t.seconds();
  const std::uint64_t allocs = prof::AllocProbe::count() - allocs0;
  const convey::ConveyorStats s = convey::lifetime_totals();
  const auto items = static_cast<double>(s.pushed);
  bench_json::Metrics m;
  m.items_per_sec = items / secs;
  m.bytes_per_sec =
      static_cast<double>(s.local_send_bytes + s.nonblock_send_bytes) / secs;
  m.memcpys_per_item = static_cast<double>(s.memcpys) / items;
  m.allocs_per_item = static_cast<double>(allocs) / items;
  char config[120];
  std::snprintf(config, sizeof config,
                "{\"pes\": 8, \"ppn\": 8, \"scale\": %d, \"edge_factor\": 16}",
                scale);
  return bench_json::write(path, "scaling_triangle", config,
                           {{"triangle_count", m}})
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ap;
  const int scale = [] {
    const char* v = std::getenv("AP_SCALE");
    return v != nullptr ? std::atoi(v) : 11;
  }();
  if (const char* path = bench_json::json_path(argc, argv))
    return run_json(path, scale);

  std::printf("[Scaling] strong scaling — triangle counting, 1D Range, "
              "scale %d, 8 PEs/node\n%8s %18s %12s\n",
              scale, "PEs", "MAIN+PROC max", "speedup");
  const graph::Csr lower = build(scale);
  const std::uint64_t base = run_cycles(lower, 4, 8);
  for (int pes : {4, 8, 16, 32, 64}) {
    const std::uint64_t c = run_cycles(lower, pes, 8);
    std::printf("%8d %18llu %11.2fx\n", pes,
                static_cast<unsigned long long>(c),
                static_cast<double>(base) / static_cast<double>(c));
  }

  std::printf("\n[Scaling] weak scaling — problem grows with PEs "
              "(scale %d at 8 PEs, +1 per doubling)\n%8s %8s %18s %12s\n",
              scale - 1, "PEs", "scale", "MAIN+PROC max", "efficiency");
  std::uint64_t weak_base = 0;
  int s = scale - 1;
  for (int pes : {8, 16, 32, 64}) {
    const graph::Csr g = build(s);
    const std::uint64_t c = run_cycles(g, pes, 8);
    if (weak_base == 0) weak_base = c;
    std::printf("%8d %8d %18llu %11.2f\n", pes, s,
                static_cast<unsigned long long>(c),
                static_cast<double>(weak_base) / static_cast<double>(c));
    ++s;
  }
  std::printf(
      "\nExpected: strong-scaling speedup grows but sublinearly (power-law\n"
      "hubs bound the busiest PE); weak-scaling efficiency degrades as\n"
      "wedge counts grow superlinearly with scale. End-to-end wall-time\n"
      "scaling needs a real parallel machine and is out of the simulator's\n"
      "scope (see EXPERIMENTS.md).\n");
  return 0;
}
