file(REMOVE_RECURSE
  "CMakeFiles/baseline_aggregation.dir/baseline_aggregation.cpp.o"
  "CMakeFiles/baseline_aggregation.dir/baseline_aggregation.cpp.o.d"
  "baseline_aggregation"
  "baseline_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
