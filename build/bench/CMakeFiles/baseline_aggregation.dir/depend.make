# Empty dependencies file for baseline_aggregation.
# This may be replaced when dependencies are built.
