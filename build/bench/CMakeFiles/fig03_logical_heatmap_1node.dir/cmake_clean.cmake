file(REMOVE_RECURSE
  "CMakeFiles/fig03_logical_heatmap_1node.dir/fig03_logical_heatmap_1node.cpp.o"
  "CMakeFiles/fig03_logical_heatmap_1node.dir/fig03_logical_heatmap_1node.cpp.o.d"
  "fig03_logical_heatmap_1node"
  "fig03_logical_heatmap_1node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_logical_heatmap_1node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
