# Empty dependencies file for fig03_logical_heatmap_1node.
# This may be replaced when dependencies are built.
