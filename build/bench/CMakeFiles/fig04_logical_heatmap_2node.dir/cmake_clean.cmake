file(REMOVE_RECURSE
  "CMakeFiles/fig04_logical_heatmap_2node.dir/fig04_logical_heatmap_2node.cpp.o"
  "CMakeFiles/fig04_logical_heatmap_2node.dir/fig04_logical_heatmap_2node.cpp.o.d"
  "fig04_logical_heatmap_2node"
  "fig04_logical_heatmap_2node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_logical_heatmap_2node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
