# Empty dependencies file for fig04_logical_heatmap_2node.
# This may be replaced when dependencies are built.
