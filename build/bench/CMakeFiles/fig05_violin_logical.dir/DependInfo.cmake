
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig05_violin_logical.cpp" "bench/CMakeFiles/fig05_violin_logical.dir/fig05_violin_logical.cpp.o" "gcc" "bench/CMakeFiles/fig05_violin_logical.dir/fig05_violin_logical.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viz/CMakeFiles/actorprof_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/fabsp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fabsp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/actorprof.dir/DependInfo.cmake"
  "/root/repo/build/src/actor/CMakeFiles/hclib_actor.dir/DependInfo.cmake"
  "/root/repo/build/src/conveyor/CMakeFiles/conveyor.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/minishmem.dir/DependInfo.cmake"
  "/root/repo/build/src/papi/CMakeFiles/sim_papi.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fabsp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
