file(REMOVE_RECURSE
  "CMakeFiles/fig05_violin_logical.dir/fig05_violin_logical.cpp.o"
  "CMakeFiles/fig05_violin_logical.dir/fig05_violin_logical.cpp.o.d"
  "fig05_violin_logical"
  "fig05_violin_logical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_violin_logical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
