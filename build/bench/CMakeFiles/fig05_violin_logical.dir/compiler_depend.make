# Empty compiler generated dependencies file for fig05_violin_logical.
# This may be replaced when dependencies are built.
