file(REMOVE_RECURSE
  "CMakeFiles/fig06_L_observation.dir/fig06_L_observation.cpp.o"
  "CMakeFiles/fig06_L_observation.dir/fig06_L_observation.cpp.o.d"
  "fig06_L_observation"
  "fig06_L_observation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_L_observation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
