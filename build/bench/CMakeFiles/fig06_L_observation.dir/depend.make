# Empty dependencies file for fig06_L_observation.
# This may be replaced when dependencies are built.
