file(REMOVE_RECURSE
  "CMakeFiles/fig07_violin_physical.dir/fig07_violin_physical.cpp.o"
  "CMakeFiles/fig07_violin_physical.dir/fig07_violin_physical.cpp.o.d"
  "fig07_violin_physical"
  "fig07_violin_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_violin_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
