# Empty dependencies file for fig07_violin_physical.
# This may be replaced when dependencies are built.
