file(REMOVE_RECURSE
  "CMakeFiles/fig08_physical_heatmap_1node.dir/fig08_physical_heatmap_1node.cpp.o"
  "CMakeFiles/fig08_physical_heatmap_1node.dir/fig08_physical_heatmap_1node.cpp.o.d"
  "fig08_physical_heatmap_1node"
  "fig08_physical_heatmap_1node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_physical_heatmap_1node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
