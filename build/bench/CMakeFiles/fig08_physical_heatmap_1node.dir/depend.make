# Empty dependencies file for fig08_physical_heatmap_1node.
# This may be replaced when dependencies are built.
