file(REMOVE_RECURSE
  "CMakeFiles/fig09_physical_heatmap_2node.dir/fig09_physical_heatmap_2node.cpp.o"
  "CMakeFiles/fig09_physical_heatmap_2node.dir/fig09_physical_heatmap_2node.cpp.o.d"
  "fig09_physical_heatmap_2node"
  "fig09_physical_heatmap_2node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_physical_heatmap_2node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
