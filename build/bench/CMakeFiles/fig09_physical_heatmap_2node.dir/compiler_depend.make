# Empty compiler generated dependencies file for fig09_physical_heatmap_2node.
# This may be replaced when dependencies are built.
