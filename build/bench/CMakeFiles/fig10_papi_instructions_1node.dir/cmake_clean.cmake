file(REMOVE_RECURSE
  "CMakeFiles/fig10_papi_instructions_1node.dir/fig10_papi_instructions_1node.cpp.o"
  "CMakeFiles/fig10_papi_instructions_1node.dir/fig10_papi_instructions_1node.cpp.o.d"
  "fig10_papi_instructions_1node"
  "fig10_papi_instructions_1node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_papi_instructions_1node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
