# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_papi_instructions_1node.
