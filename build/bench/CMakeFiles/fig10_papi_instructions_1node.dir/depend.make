# Empty dependencies file for fig10_papi_instructions_1node.
# This may be replaced when dependencies are built.
