file(REMOVE_RECURSE
  "CMakeFiles/fig11_papi_instructions_2node.dir/fig11_papi_instructions_2node.cpp.o"
  "CMakeFiles/fig11_papi_instructions_2node.dir/fig11_papi_instructions_2node.cpp.o.d"
  "fig11_papi_instructions_2node"
  "fig11_papi_instructions_2node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_papi_instructions_2node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
