# Empty compiler generated dependencies file for fig11_papi_instructions_2node.
# This may be replaced when dependencies are built.
