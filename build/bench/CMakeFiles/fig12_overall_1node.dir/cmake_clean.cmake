file(REMOVE_RECURSE
  "CMakeFiles/fig12_overall_1node.dir/fig12_overall_1node.cpp.o"
  "CMakeFiles/fig12_overall_1node.dir/fig12_overall_1node.cpp.o.d"
  "fig12_overall_1node"
  "fig12_overall_1node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_overall_1node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
