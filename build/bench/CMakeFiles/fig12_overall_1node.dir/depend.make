# Empty dependencies file for fig12_overall_1node.
# This may be replaced when dependencies are built.
