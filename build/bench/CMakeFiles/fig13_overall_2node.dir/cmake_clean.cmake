file(REMOVE_RECURSE
  "CMakeFiles/fig13_overall_2node.dir/fig13_overall_2node.cpp.o"
  "CMakeFiles/fig13_overall_2node.dir/fig13_overall_2node.cpp.o.d"
  "fig13_overall_2node"
  "fig13_overall_2node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overall_2node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
