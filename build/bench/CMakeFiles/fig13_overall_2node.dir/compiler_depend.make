# Empty compiler generated dependencies file for fig13_overall_2node.
# This may be replaced when dependencies are built.
