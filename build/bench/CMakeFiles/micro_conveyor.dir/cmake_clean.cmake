file(REMOVE_RECURSE
  "CMakeFiles/micro_conveyor.dir/micro_conveyor.cpp.o"
  "CMakeFiles/micro_conveyor.dir/micro_conveyor.cpp.o.d"
  "micro_conveyor"
  "micro_conveyor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_conveyor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
