# Empty compiler generated dependencies file for micro_conveyor.
# This may be replaced when dependencies are built.
