file(REMOVE_RECURSE
  "CMakeFiles/micro_shmem.dir/micro_shmem.cpp.o"
  "CMakeFiles/micro_shmem.dir/micro_shmem.cpp.o.d"
  "micro_shmem"
  "micro_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
