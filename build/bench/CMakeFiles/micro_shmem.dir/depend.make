# Empty dependencies file for micro_shmem.
# This may be replaced when dependencies are built.
