file(REMOVE_RECURSE
  "CMakeFiles/overhead_tracing.dir/overhead_tracing.cpp.o"
  "CMakeFiles/overhead_tracing.dir/overhead_tracing.cpp.o.d"
  "overhead_tracing"
  "overhead_tracing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_tracing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
