# Empty compiler generated dependencies file for overhead_tracing.
# This may be replaced when dependencies are built.
