file(REMOVE_RECURSE
  "CMakeFiles/papi_four_counters.dir/papi_four_counters.cpp.o"
  "CMakeFiles/papi_four_counters.dir/papi_four_counters.cpp.o.d"
  "papi_four_counters"
  "papi_four_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papi_four_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
