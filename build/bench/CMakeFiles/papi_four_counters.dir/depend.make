# Empty dependencies file for papi_four_counters.
# This may be replaced when dependencies are built.
