file(REMOVE_RECURSE
  "CMakeFiles/scaling_triangle.dir/scaling_triangle.cpp.o"
  "CMakeFiles/scaling_triangle.dir/scaling_triangle.cpp.o.d"
  "scaling_triangle"
  "scaling_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
