# Empty dependencies file for scaling_triangle.
# This may be replaced when dependencies are built.
