file(REMOVE_RECURSE
  "CMakeFiles/index_gather_reqrep.dir/index_gather_reqrep.cpp.o"
  "CMakeFiles/index_gather_reqrep.dir/index_gather_reqrep.cpp.o.d"
  "index_gather_reqrep"
  "index_gather_reqrep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_gather_reqrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
