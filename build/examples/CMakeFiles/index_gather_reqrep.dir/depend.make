# Empty dependencies file for index_gather_reqrep.
# This may be replaced when dependencies are built.
