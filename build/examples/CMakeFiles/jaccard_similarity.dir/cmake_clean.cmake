file(REMOVE_RECURSE
  "CMakeFiles/jaccard_similarity.dir/jaccard_similarity.cpp.o"
  "CMakeFiles/jaccard_similarity.dir/jaccard_similarity.cpp.o.d"
  "jaccard_similarity"
  "jaccard_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaccard_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
