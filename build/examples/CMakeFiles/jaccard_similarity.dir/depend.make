# Empty dependencies file for jaccard_similarity.
# This may be replaced when dependencies are built.
