file(REMOVE_RECURSE
  "CMakeFiles/pagerank_push.dir/pagerank_push.cpp.o"
  "CMakeFiles/pagerank_push.dir/pagerank_push.cpp.o.d"
  "pagerank_push"
  "pagerank_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
