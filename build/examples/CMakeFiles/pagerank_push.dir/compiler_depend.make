# Empty compiler generated dependencies file for pagerank_push.
# This may be replaced when dependencies are built.
