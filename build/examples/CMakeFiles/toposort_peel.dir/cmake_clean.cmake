file(REMOVE_RECURSE
  "CMakeFiles/toposort_peel.dir/toposort_peel.cpp.o"
  "CMakeFiles/toposort_peel.dir/toposort_peel.cpp.o.d"
  "toposort_peel"
  "toposort_peel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toposort_peel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
