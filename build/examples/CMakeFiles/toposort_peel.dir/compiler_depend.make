# Empty compiler generated dependencies file for toposort_peel.
# This may be replaced when dependencies are built.
