file(REMOVE_RECURSE
  "CMakeFiles/triangle_case_study.dir/triangle_case_study.cpp.o"
  "CMakeFiles/triangle_case_study.dir/triangle_case_study.cpp.o.d"
  "triangle_case_study"
  "triangle_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
