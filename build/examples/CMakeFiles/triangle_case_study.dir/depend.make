# Empty dependencies file for triangle_case_study.
# This may be replaced when dependencies are built.
