file(REMOVE_RECURSE
  "CMakeFiles/hclib_actor.dir/observer.cpp.o"
  "CMakeFiles/hclib_actor.dir/observer.cpp.o.d"
  "libhclib_actor.a"
  "libhclib_actor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hclib_actor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
