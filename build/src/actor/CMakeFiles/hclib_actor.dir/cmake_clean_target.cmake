file(REMOVE_RECURSE
  "libhclib_actor.a"
)
