# Empty compiler generated dependencies file for hclib_actor.
# This may be replaced when dependencies are built.
