
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bfs.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/bfs.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/bfs.cpp.o.d"
  "/root/repo/src/apps/histogram.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/histogram.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/histogram.cpp.o.d"
  "/root/repo/src/apps/index_gather.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/index_gather.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/index_gather.cpp.o.d"
  "/root/repo/src/apps/influence_max.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/influence_max.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/influence_max.cpp.o.d"
  "/root/repo/src/apps/jaccard.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/jaccard.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/jaccard.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/pagerank.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/pagerank.cpp.o.d"
  "/root/repo/src/apps/randperm.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/randperm.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/randperm.cpp.o.d"
  "/root/repo/src/apps/toposort.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/toposort.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/toposort.cpp.o.d"
  "/root/repo/src/apps/triangle.cpp" "src/apps/CMakeFiles/fabsp_apps.dir/triangle.cpp.o" "gcc" "src/apps/CMakeFiles/fabsp_apps.dir/triangle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/actorprof.dir/DependInfo.cmake"
  "/root/repo/build/src/actor/CMakeFiles/hclib_actor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/fabsp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/minishmem.dir/DependInfo.cmake"
  "/root/repo/build/src/papi/CMakeFiles/sim_papi.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fabsp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/conveyor/CMakeFiles/conveyor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
