file(REMOVE_RECURSE
  "CMakeFiles/fabsp_apps.dir/bfs.cpp.o"
  "CMakeFiles/fabsp_apps.dir/bfs.cpp.o.d"
  "CMakeFiles/fabsp_apps.dir/histogram.cpp.o"
  "CMakeFiles/fabsp_apps.dir/histogram.cpp.o.d"
  "CMakeFiles/fabsp_apps.dir/index_gather.cpp.o"
  "CMakeFiles/fabsp_apps.dir/index_gather.cpp.o.d"
  "CMakeFiles/fabsp_apps.dir/influence_max.cpp.o"
  "CMakeFiles/fabsp_apps.dir/influence_max.cpp.o.d"
  "CMakeFiles/fabsp_apps.dir/jaccard.cpp.o"
  "CMakeFiles/fabsp_apps.dir/jaccard.cpp.o.d"
  "CMakeFiles/fabsp_apps.dir/pagerank.cpp.o"
  "CMakeFiles/fabsp_apps.dir/pagerank.cpp.o.d"
  "CMakeFiles/fabsp_apps.dir/randperm.cpp.o"
  "CMakeFiles/fabsp_apps.dir/randperm.cpp.o.d"
  "CMakeFiles/fabsp_apps.dir/toposort.cpp.o"
  "CMakeFiles/fabsp_apps.dir/toposort.cpp.o.d"
  "CMakeFiles/fabsp_apps.dir/triangle.cpp.o"
  "CMakeFiles/fabsp_apps.dir/triangle.cpp.o.d"
  "libfabsp_apps.a"
  "libfabsp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
