file(REMOVE_RECURSE
  "libfabsp_apps.a"
)
