# Empty dependencies file for fabsp_apps.
# This may be replaced when dependencies are built.
