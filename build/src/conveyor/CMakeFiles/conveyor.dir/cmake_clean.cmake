file(REMOVE_RECURSE
  "CMakeFiles/conveyor.dir/conveyor.cpp.o"
  "CMakeFiles/conveyor.dir/conveyor.cpp.o.d"
  "CMakeFiles/conveyor.dir/elastic.cpp.o"
  "CMakeFiles/conveyor.dir/elastic.cpp.o.d"
  "libconveyor.a"
  "libconveyor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conveyor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
