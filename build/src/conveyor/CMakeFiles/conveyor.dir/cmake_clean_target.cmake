file(REMOVE_RECURSE
  "libconveyor.a"
)
