# Empty dependencies file for conveyor.
# This may be replaced when dependencies are built.
