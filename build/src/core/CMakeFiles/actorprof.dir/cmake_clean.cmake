file(REMOVE_RECURSE
  "CMakeFiles/actorprof.dir/advisor.cpp.o"
  "CMakeFiles/actorprof.dir/advisor.cpp.o.d"
  "CMakeFiles/actorprof.dir/aggregate.cpp.o"
  "CMakeFiles/actorprof.dir/aggregate.cpp.o.d"
  "CMakeFiles/actorprof.dir/chrome_trace.cpp.o"
  "CMakeFiles/actorprof.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/actorprof.dir/profiler.cpp.o"
  "CMakeFiles/actorprof.dir/profiler.cpp.o.d"
  "CMakeFiles/actorprof.dir/trace_io.cpp.o"
  "CMakeFiles/actorprof.dir/trace_io.cpp.o.d"
  "libactorprof.a"
  "libactorprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actorprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
