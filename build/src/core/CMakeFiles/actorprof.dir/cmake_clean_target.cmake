file(REMOVE_RECURSE
  "libactorprof.a"
)
