# Empty dependencies file for actorprof.
# This may be replaced when dependencies are built.
