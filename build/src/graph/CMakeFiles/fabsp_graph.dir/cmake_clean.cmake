file(REMOVE_RECURSE
  "CMakeFiles/fabsp_graph.dir/csr.cpp.o"
  "CMakeFiles/fabsp_graph.dir/csr.cpp.o.d"
  "CMakeFiles/fabsp_graph.dir/distribution.cpp.o"
  "CMakeFiles/fabsp_graph.dir/distribution.cpp.o.d"
  "CMakeFiles/fabsp_graph.dir/rmat.cpp.o"
  "CMakeFiles/fabsp_graph.dir/rmat.cpp.o.d"
  "libfabsp_graph.a"
  "libfabsp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
