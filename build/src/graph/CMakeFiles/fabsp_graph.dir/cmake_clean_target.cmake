file(REMOVE_RECURSE
  "libfabsp_graph.a"
)
