# Empty compiler generated dependencies file for fabsp_graph.
# This may be replaced when dependencies are built.
