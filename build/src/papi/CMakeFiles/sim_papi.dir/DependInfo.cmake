
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/papi/cycles.cpp" "src/papi/CMakeFiles/sim_papi.dir/cycles.cpp.o" "gcc" "src/papi/CMakeFiles/sim_papi.dir/cycles.cpp.o.d"
  "/root/repo/src/papi/papi.cpp" "src/papi/CMakeFiles/sim_papi.dir/papi.cpp.o" "gcc" "src/papi/CMakeFiles/sim_papi.dir/papi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/fabsp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
