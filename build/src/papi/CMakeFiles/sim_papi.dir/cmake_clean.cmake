file(REMOVE_RECURSE
  "CMakeFiles/sim_papi.dir/cycles.cpp.o"
  "CMakeFiles/sim_papi.dir/cycles.cpp.o.d"
  "CMakeFiles/sim_papi.dir/papi.cpp.o"
  "CMakeFiles/sim_papi.dir/papi.cpp.o.d"
  "libsim_papi.a"
  "libsim_papi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_papi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
