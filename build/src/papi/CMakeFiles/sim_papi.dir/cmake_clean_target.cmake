file(REMOVE_RECURSE
  "libsim_papi.a"
)
