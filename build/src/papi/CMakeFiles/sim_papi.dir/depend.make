# Empty dependencies file for sim_papi.
# This may be replaced when dependencies are built.
