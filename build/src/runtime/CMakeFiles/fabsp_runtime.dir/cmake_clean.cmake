file(REMOVE_RECURSE
  "CMakeFiles/fabsp_runtime.dir/fiber.cpp.o"
  "CMakeFiles/fabsp_runtime.dir/fiber.cpp.o.d"
  "CMakeFiles/fabsp_runtime.dir/finish.cpp.o"
  "CMakeFiles/fabsp_runtime.dir/finish.cpp.o.d"
  "CMakeFiles/fabsp_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/fabsp_runtime.dir/scheduler.cpp.o.d"
  "libfabsp_runtime.a"
  "libfabsp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabsp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
