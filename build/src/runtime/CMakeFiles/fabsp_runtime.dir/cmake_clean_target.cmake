file(REMOVE_RECURSE
  "libfabsp_runtime.a"
)
