# Empty compiler generated dependencies file for fabsp_runtime.
# This may be replaced when dependencies are built.
