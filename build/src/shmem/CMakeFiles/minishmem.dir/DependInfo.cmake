
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shmem/profiling_interface.cpp" "src/shmem/CMakeFiles/minishmem.dir/profiling_interface.cpp.o" "gcc" "src/shmem/CMakeFiles/minishmem.dir/profiling_interface.cpp.o.d"
  "/root/repo/src/shmem/shmem.cpp" "src/shmem/CMakeFiles/minishmem.dir/shmem.cpp.o" "gcc" "src/shmem/CMakeFiles/minishmem.dir/shmem.cpp.o.d"
  "/root/repo/src/shmem/symmetric_heap.cpp" "src/shmem/CMakeFiles/minishmem.dir/symmetric_heap.cpp.o" "gcc" "src/shmem/CMakeFiles/minishmem.dir/symmetric_heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/papi/CMakeFiles/sim_papi.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/fabsp_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
