file(REMOVE_RECURSE
  "CMakeFiles/minishmem.dir/profiling_interface.cpp.o"
  "CMakeFiles/minishmem.dir/profiling_interface.cpp.o.d"
  "CMakeFiles/minishmem.dir/shmem.cpp.o"
  "CMakeFiles/minishmem.dir/shmem.cpp.o.d"
  "CMakeFiles/minishmem.dir/symmetric_heap.cpp.o"
  "CMakeFiles/minishmem.dir/symmetric_heap.cpp.o.d"
  "libminishmem.a"
  "libminishmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minishmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
