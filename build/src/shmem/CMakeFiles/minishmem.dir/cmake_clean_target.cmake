file(REMOVE_RECURSE
  "libminishmem.a"
)
