# Empty dependencies file for minishmem.
# This may be replaced when dependencies are built.
