file(REMOVE_RECURSE
  "CMakeFiles/actorprof_viz.dir/render.cpp.o"
  "CMakeFiles/actorprof_viz.dir/render.cpp.o.d"
  "CMakeFiles/actorprof_viz.dir/svg.cpp.o"
  "CMakeFiles/actorprof_viz.dir/svg.cpp.o.d"
  "libactorprof_viz.a"
  "libactorprof_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actorprof_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
