file(REMOVE_RECURSE
  "libactorprof_viz.a"
)
