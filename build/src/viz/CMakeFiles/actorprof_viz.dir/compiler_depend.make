# Empty compiler generated dependencies file for actorprof_viz.
# This may be replaced when dependencies are built.
