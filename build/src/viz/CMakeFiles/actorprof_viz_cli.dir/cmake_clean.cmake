file(REMOVE_RECURSE
  "CMakeFiles/actorprof_viz_cli.dir/cli.cpp.o"
  "CMakeFiles/actorprof_viz_cli.dir/cli.cpp.o.d"
  "actorprof_viz"
  "actorprof_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actorprof_viz_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
