# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for actorprof_viz_cli.
