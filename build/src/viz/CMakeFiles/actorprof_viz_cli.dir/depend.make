# Empty dependencies file for actorprof_viz_cli.
# This may be replaced when dependencies are built.
