# Empty compiler generated dependencies file for conveyor_test.
# This may be replaced when dependencies are built.
