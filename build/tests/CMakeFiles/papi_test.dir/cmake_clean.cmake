file(REMOVE_RECURSE
  "CMakeFiles/papi_test.dir/papi_test.cpp.o"
  "CMakeFiles/papi_test.dir/papi_test.cpp.o.d"
  "papi_test"
  "papi_test.pdb"
  "papi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
