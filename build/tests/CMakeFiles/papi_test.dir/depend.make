# Empty dependencies file for papi_test.
# This may be replaced when dependencies are built.
