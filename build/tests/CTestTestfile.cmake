# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/shmem_test[1]_include.cmake")
include("/root/repo/build/tests/conveyor_test[1]_include.cmake")
include("/root/repo/build/tests/actor_test[1]_include.cmake")
include("/root/repo/build/tests/papi_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/timeline_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/elastic_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
