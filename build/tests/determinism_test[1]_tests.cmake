add_test([=[Determinism.TraceFilesAreByteIdenticalAcrossRuns]=]  /root/repo/build/tests/determinism_test [==[--gtest_filter=Determinism.TraceFilesAreByteIdenticalAcrossRuns]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Determinism.TraceFilesAreByteIdenticalAcrossRuns]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  determinism_test_TESTS Determinism.TraceFilesAreByteIdenticalAcrossRuns)
