// Level-synchronous BFS with actors, profiled per the FA-BSP model. One of
// the irregular-application classes the paper's introduction motivates
// (graph500-style traversal), demonstrating multi-superstep profiling:
// each BFS level is one finish epoch; ActorProf's single epoch spans all
// of them, so the overall breakdown covers the whole traversal.
//
//   $ ./examples/bfs_frontier [scale] [pes]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "apps/bfs.hpp"
#include "core/profiler.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  using namespace ap;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const int pes = argc > 2 ? std::atoi(argv[2]) : 16;

  graph::RmatParams gp;
  gp.scale = scale;
  gp.edge_factor = 16;
  const auto edges = graph::rmat_edges(gp);
  const auto adj =
      graph::Csr::from_edges(graph::Vertex{1} << scale, edges, false);

  // Serial ground truth.
  const auto serial = apps::bfs_serial(adj, 0);
  std::int64_t expect_reached = 0;
  for (auto l : serial)
    if (l >= 0) ++expect_reached;

  prof::Config pc = prof::Config::all_enabled();
  pc.keep_logical_events = false;
  pc.keep_physical_events = false;
  pc.check = prof::Config::from_env().check;  // honor ACTORPROF_CHECK=1
  pc.trace_format =
      prof::Config::from_env().trace_format;  // ACTORPROF_TRACE_FORMAT
  prof::Profiler profiler(pc);

  std::int64_t reached = 0, levels = 0;
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = pes / 2 > 0 ? pes / 2 : pes;  // two nodes
  shmem::run(lc, [&] {
    const auto r = apps::bfs_actor(adj, 0, &profiler);
    if (shmem::my_pe() == 0) {
      reached = r.reached;
      levels = r.levels;
    }
  });

  std::printf("BFS from vertex 0: reached %lld vertices (expected %lld) in "
              "%lld levels — %s\n\n",
              static_cast<long long>(reached),
              static_cast<long long>(expect_reached),
              static_cast<long long>(levels),
              reached == expect_reached ? "VALIDATED" : "MISMATCH!");

  viz::HeatmapOptions ho;
  ho.title = "BFS logical trace (visit messages, all levels)";
  ho.cell_width = 2;
  std::cout << viz::render_heatmap(profiler.logical_matrix(), ho) << "\n";
  viz::StackedBarOptions so;
  so.title = "BFS overall breakdown";
  so.relative = true;
  std::cout << viz::render_overall_stacked(profiler.overall(), so);
  return reached == expect_reached ? 0 : 1;
}
