// Chaos harness for the fault-injection stack (docs/FAULT_INJECTION.md):
// triangle counting under whatever ACTORPROF_FI_* plan the environment
// carries, always writing traces — even when a PE was killed mid-run.
//
//   $ ACTORPROF_FI_SEED=7 ACTORPROF_FI_KILL_PE=3 ACTORPROF_TRACE_DIR=/tmp/t \
//     ./examples/chaos_triangle [scale] [pes] [pes_per_node]
//
// Exit code 0 means the faults were contained: the launch terminated, the
// trace directory is loadable (tools/chaos.sh then renders it with
// --tolerate-partial), and — when no PE was killed — the triangle count
// matched the serial reference. Unlike triangle_case_study, a killed PE is
// not a failure here; a wrong count without any kill is.
#include <cstdio>
#include <cstdlib>

#include "apps/triangle.hpp"
#include "core/profiler.hpp"
#include "faultinject/faultinject.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"

int main(int argc, char** argv) {
  using namespace ap;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 8;
  const int pes = argc > 2 ? std::atoi(argv[2]) : 8;
  const int ppn = argc > 3 ? std::atoi(argv[3]) : 4;

  graph::RmatParams gp;
  gp.scale = scale;
  gp.edge_factor = 8;
  gp.permute_vertices = false;
  const auto edges = graph::rmat_edges(gp);
  const auto lower =
      graph::Csr::from_edges(graph::Vertex{1} << scale, edges, true);
  const std::int64_t expected = graph::count_triangles_serial(lower);

  // Config::from_env picks up ACTORPROF_TRACE_DIR and defaults crash_safe
  // on when ACTORPROF_FI_KILL_PE is set; shmem::run auto-installs the
  // ACTORPROF_FI_* plan itself.
  prof::Config pc = prof::Config::from_env();
  pc.logical = pc.papi = pc.overall = pc.physical = true;
  prof::Profiler profiler(pc);

  std::int64_t got = 0;
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = ppn;
  lc.symm_heap_bytes = 64 << 20;
  shmem::run(lc, [&] {
    const auto dist = graph::make_distribution(graph::DistKind::Cyclic1D,
                                               shmem::n_pes(), lower);
    const auto r = apps::count_triangles_actor(lower, *dist, &profiler);
    if (shmem::my_pe() == 0) got = r.triangles;
  });

  // Traces first: the whole point is that a faulted run still leaves a
  // loadable (possibly partial) trace directory behind.
  profiler.write_traces();
  std::printf("trace dir: %s\n", pc.trace_dir.string().c_str());

  const auto& killed = fi::killed_pes();
  for (int pe : killed) std::printf("killed: PE%d\n", pe);
  if (!killed.empty()) {
    std::printf("run contained %zu kill(s); count not validated\n",
                killed.size());
    return 0;
  }
  if (got != expected) {
    std::fprintf(stderr, "FAIL: %lld triangles, expected %lld\n",
                 static_cast<long long>(got),
                 static_cast<long long>(expected));
    return 1;
  }
  std::printf("OK: %lld triangles (injections changed nothing)\n",
              static_cast<long long>(got));
  return 0;
}
