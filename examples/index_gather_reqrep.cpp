// Index-gather (bale "ig"): the canonical two-mailbox request/reply
// selector. Demonstrates dependent-mailbox termination — the user only
// calls done(0); mailbox 1 terminates automatically when mailbox 0 does —
// and per-mailbox PAPI segment rows in the trace.
//
//   $ ./examples/index_gather_reqrep [requests_per_pe] [pes]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "apps/index_gather.hpp"
#include "core/profiler.hpp"
#include "core/trace_io.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  using namespace ap;
  const std::size_t reqs =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 20000;
  const int pes = argc > 2 ? std::atoi(argv[2]) : 8;

  prof::Config pc = prof::Config::all_enabled();
  pc.keep_logical_events = false;
  pc.keep_physical_events = false;
  pc.check = prof::Config::from_env().check;  // honor ACTORPROF_CHECK=1
  pc.trace_format =
      prof::Config::from_env().trace_format;  // ACTORPROF_TRACE_FORMAT
  prof::Profiler profiler(pc);

  bool ok = true;
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = pes / 2 > 0 ? pes / 2 : pes;
  shmem::run(lc, [&] {
    const auto r = apps::index_gather_actor(4096, reqs, 0xD00D, &profiler);
    for (std::int64_t v : r.values) {
      if (v < 0 || (v - 1) % 3 != 0) ok = false;  // table holds 3g+1
    }
    shmem::barrier_all();
  });

  std::printf("index-gather: %zu requests/PE on %d PEs — %s\n\n", reqs, pes,
              ok ? "all replies VALIDATED" : "MISMATCH!");

  // Per-mailbox segment rows: mailbox 0 = requests, mailbox 1 = replies.
  for (int pe = 0; pe < 2 && pe < pes; ++pe) {
    std::printf("PAPI segments of PE%d (per mailbox):\n", pe);
    for (const auto& row : profiler.papi_segments(pe)) {
      std::printf(
          "  mb=%d %s dst=PE%-3d num=%llu PAPI_TOT_INS=%llu PAPI_LST_INS=%llu\n",
          row.mailbox_id, row.is_proc ? "PROC" : "MAIN", row.dst_pe,
          static_cast<unsigned long long>(row.num_sends),
          static_cast<unsigned long long>(row.counters[0]),
          static_cast<unsigned long long>(row.counters[1]));
    }
  }

  viz::StackedBarOptions so;
  so.title = "\nindex-gather overall breakdown";
  so.relative = true;
  std::cout << viz::render_overall_stacked(profiler.overall(), so);
  return ok ? 0 : 1;
}
