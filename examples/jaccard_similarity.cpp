// Jaccard similarity over vertex neighborhoods — the workload of the
// genome-comparison paper the authors profile with ActorProf (§IV-A).
// Computes J(u,v) for every edge of an R-MAT graph with a two-mailbox
// wedge-query selector, validates against the serial reference, and
// shows where the time goes.
//
//   $ ./examples/jaccard_similarity [scale] [pes]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "apps/jaccard.hpp"
#include "core/profiler.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  using namespace ap;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 10;
  const int pes = argc > 2 ? std::atoi(argv[2]) : 8;

  graph::RmatParams gp;
  gp.scale = scale;
  gp.edge_factor = 8;
  const auto edges = graph::rmat_edges(gp);
  const auto lower =
      graph::Csr::from_edges(graph::Vertex{1} << scale, edges, true);
  const auto serial = apps::jaccard_serial(lower);

  prof::Config pc = prof::Config::all_enabled();
  pc.keep_logical_events = pc.keep_physical_events = false;
  pc.check = prof::Config::from_env().check;  // honor ACTORPROF_CHECK=1
  pc.trace_format =
      prof::Config::from_env().trace_format;  // ACTORPROF_TRACE_FORMAT
  prof::Profiler profiler(pc);

  bool ok = true;
  double top = 0;
  std::uint64_t msgs = 0;
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = pes / 2 > 0 ? pes / 2 : pes;
  shmem::run(lc, [&] {
    graph::CyclicDistribution dist(shmem::n_pes());
    const auto r = apps::jaccard_actor(lower, dist, &profiler);
    // Spot-validate this PE's edges against the serial order.
    std::size_t local_idx = 0, global_idx = 0;
    for (graph::Vertex i = 0; i < lower.num_vertices(); ++i) {
      for (std::size_t a = 0; a < lower.degree(i); ++a, ++global_idx) {
        if (dist.owner(i) != shmem::my_pe()) continue;
        if (r.local_similarity[local_idx] != serial[global_idx]) ok = false;
        ++local_idx;
      }
    }
    double local_top = 0;
    for (double s : r.local_similarity) local_top = std::max(local_top, s);
    const double t = shmem::sum_reduce(local_top);  // crude max proxy
    const std::int64_t m = shmem::sum_reduce(
        static_cast<std::int64_t>(r.wedge_messages));
    shmem::barrier_all();
    if (shmem::my_pe() == 0) {
      top = t;
      msgs = static_cast<std::uint64_t>(m);
    }
  });

  std::printf(
      "Jaccard over %zu edges, %llu wedge queries — %s (sum of per-PE max "
      "J = %.3f)\n\n",
      serial.size(), static_cast<unsigned long long>(msgs),
      ok ? "VALIDATED against serial" : "MISMATCH!", top);

  viz::StackedBarOptions so;
  so.title = "Jaccard overall breakdown";
  so.relative = true;
  std::cout << viz::render_overall_stacked(profiler.overall(), so);
  return ok ? 0 : 1;
}
