// Push-style PageRank with actors: an iterative FA-BSP workload where
// every superstep sends O(edges) small contribution messages — exactly
// the message-aggregation regime Conveyors was designed for. Validated
// against a serial power iteration; profiled with ActorProf.
//
//   $ ./examples/pagerank_push [scale] [pes] [iterations]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "apps/pagerank.hpp"
#include "core/profiler.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  using namespace ap;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 10;
  const int pes = argc > 2 ? std::atoi(argv[2]) : 8;
  const int iters = argc > 3 ? std::atoi(argv[3]) : 15;

  graph::RmatParams gp;
  gp.scale = scale;
  gp.edge_factor = 8;
  const auto edges = graph::rmat_edges(gp);
  const auto adj =
      graph::Csr::from_edges(graph::Vertex{1} << scale, edges, false);

  apps::PageRankOptions opts;
  opts.iterations = iters;
  const auto serial = apps::pagerank_serial(adj, opts);

  prof::Config pc = prof::Config::all_enabled();
  pc.keep_logical_events = false;
  pc.keep_physical_events = false;
  pc.check = prof::Config::from_env().check;  // honor ACTORPROF_CHECK=1
  pc.trace_format =
      prof::Config::from_env().trace_format;  // ACTORPROF_TRACE_FORMAT
  prof::Profiler profiler(pc);

  double max_err = 0, sum = 0;
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = pes;
  shmem::run(lc, [&] {
    const auto r = apps::pagerank_actor(adj, opts, &profiler);
    // Per-PE error vs serial reference.
    double local_err = 0;
    const int me = shmem::my_pe();
    const int n = shmem::n_pes();
    for (std::size_t s = 0; s < r.local_rank.size(); ++s) {
      const auto v = static_cast<std::size_t>(me) + s * static_cast<std::size_t>(n);
      local_err = std::max(local_err, std::abs(r.local_rank[s] - serial[v]));
    }
    const double err = shmem::sum_reduce(local_err);  // ~max since tiny
    shmem::barrier_all();
    if (me == 0) {
      max_err = err;
      sum = r.global_sum;
    }
  });

  std::printf("PageRank: %d iterations, sum=%.12f, max |err| vs serial = "
              "%.3e — %s\n\n",
              iters, sum, max_err, max_err < 1e-9 ? "VALIDATED" : "MISMATCH!");

  viz::StackedBarOptions so;
  so.title = "PageRank overall breakdown (all supersteps)";
  so.relative = true;
  std::cout << viz::render_overall_stacked(profiler.overall(), so);

  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t pe = 0;
       pe < profiler.papi_totals(papi::Event::TOT_INS).size(); ++pe) {
    labels.push_back("PE" + std::to_string(pe));
    values.push_back(
        static_cast<double>(profiler.papi_totals(papi::Event::TOT_INS)[pe]));
  }
  viz::BarOptions bo;
  bo.title = "PAPI_TOT_INS per PE (user code)";
  std::cout << "\n" << viz::render_bars(labels, values, bo);
  return max_err < 1e-9 ? 0 : 1;
}
