// Quickstart: the paper's Listing 1/2 program (a distributed histogram
// actor), profiled end to end with ActorProf.
//
//   $ ./examples/quickstart
//
// What it shows:
//   1. writing an FA-BSP actor (Selector with one mailbox, no atomics),
//   2. running it SPMD over simulated PEs/nodes,
//   3. collecting all four ActorProf traces,
//   4. rendering the heatmap / stacked-bar / violin plots in the terminal,
//   5. writing the paper's trace files for the actorprof_viz CLI.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"

namespace {

// Listing 2: the actor. Handlers run one message at a time per PE, so the
// increment needs no atomics.
class MyActor : public ap::actor::Selector<1, std::int64_t> {
 public:
  explicit MyActor(std::vector<std::int64_t>* larray) : larray_(larray) {
    mb[0].process = [this](std::int64_t idx, int sender_rank) {
      this->process(idx, sender_rank);
    };
  }

 private:
  void process(std::int64_t idx, int sender_rank) {
    (void)sender_rank;
    (*larray_)[static_cast<std::size_t>(idx)] += 1;  // no atomics
  }

  std::vector<std::int64_t>* larray_;
};

constexpr int kN = 4096;  // messages per PE
constexpr int kSlots = 64;

}  // namespace

int main() {
  using namespace ap;

  prof::Config cfg = prof::Config::all_enabled();
  cfg.trace_dir = "quickstart_trace";
  cfg.timeline = true;  // also record a Google Trace Events timeline
  const prof::Config env = prof::Config::from_env();
  cfg.check = env.check;                  // honor ACTORPROF_CHECK=1
  cfg.trace_format = env.trace_format;    // ACTORPROF_TRACE_FORMAT
  cfg.trace_compress = env.trace_compress;  // ACTORPROF_TRACE_COMPRESS=1
  cfg.publish = env.publish;              // ACTORPROF_PUBLISH=host:port
  cfg.publish_run = env.publish_run;      // ACTORPROF_PUBLISH_RUN
  prof::Profiler profiler(cfg);

  rt::LaunchConfig lc;
  lc.num_pes = 8;
  lc.pes_per_node = 4;  // two simulated nodes => 2D-mesh aggregation

  shmem::run(lc, [&profiler] {
    const int me = shmem::my_pe();
    const int n = shmem::n_pes();

    // Listing 1: SPMD body.
    std::vector<std::int64_t> larray(kSlots, 0);
    auto actor_ptr = std::make_unique<MyActor>(&larray);

    profiler.epoch_begin();
    hclib::finish([&] {
      actor_ptr->start();
      for (int i = 0; i < kN; ++i) {
        const int dst = (me * 131 + i * 7) % n;  // "random" destination
        actor_ptr->send(i % kSlots, dst);        // asynchronous SEND
      }
      actor_ptr->done(0);
    });
    profiler.epoch_end();

    std::int64_t local = 0;
    for (std::int64_t x : larray) local += x;
    const std::int64_t total = shmem::sum_reduce(local);
    shmem::barrier_all();
    if (me == 0) {
      std::printf("histogram updates delivered: %lld (expected %d)\n\n",
                  static_cast<long long>(total), kN * n);
    }
  });

  // Render the profile.
  viz::HeatmapOptions ho;
  ho.title = "Logical trace (application sends)";
  std::cout << viz::render_heatmap(profiler.logical_matrix(), ho) << "\n";

  viz::StackedBarOptions so;
  so.title = "Overall breakdown (virtual rdtsc cycles)";
  so.relative = true;
  std::cout << viz::render_overall_stacked(profiler.overall(), so) << "\n";

  const auto m = profiler.logical_matrix();
  viz::ViolinOptions vo;
  vo.title = "Send/recv balance across PEs";
  vo.width = 25;
  std::cout << viz::render_violins({"sends", "recvs"},
                                   {m.row_sums(), m.col_sums()}, vo);

  profiler.write_traces();
  prof::write_chrome_trace_file("quickstart_trace/timeline.json", profiler);
  std::printf(
      "\ntraces written to ./quickstart_trace — try:\n"
      "  actorprof_viz -l -s -p --violin --num-pes 8 quickstart_trace\n"
      "timeline.json loads in chrome://tracing or ui.perfetto.dev\n");
  return 0;
}
