// Toposort (bale kernel): recover the hidden upper-triangular structure
// of a scrambled matrix by asynchronously peeling degree-1 rows. Shows a
// data-dependent, multi-wave FA-BSP computation whose message volume is
// discovered at run time — and what its profile looks like.
//
//   $ ./examples/toposort_peel [n] [pes]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "apps/toposort.hpp"
#include "core/profiler.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  using namespace ap;
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 2000;
  const int pes = argc > 2 ? std::atoi(argv[2]) : 8;

  const auto m = apps::make_morally_triangular(n, 4.0, 0xBADD1CE);
  std::printf("scrambled matrix: n=%lld, nnz=%zu\n",
              static_cast<long long>(n), m.nnz());

  prof::Config pc = prof::Config::all_enabled();
  pc.keep_logical_events = pc.keep_physical_events = false;
  pc.check = prof::Config::from_env().check;  // honor ACTORPROF_CHECK=1
  pc.trace_format =
      prof::Config::from_env().trace_format;  // ACTORPROF_TRACE_FORMAT
  prof::Profiler profiler(pc);

  bool ok = false;
  std::int64_t waves = 0;
  std::uint64_t msgs = 0;
  rt::LaunchConfig lc;
  lc.num_pes = pes;
  lc.pes_per_node = pes / 2 > 0 ? pes / 2 : pes;
  lc.symm_heap_bytes = 64 << 20;
  shmem::run(lc, [&] {
    const auto res = apps::toposort_actor(m, &profiler);
    shmem::barrier_all();
    if (shmem::my_pe() == 0) {
      ok = apps::toposort_valid(m, res);
      waves = res.waves;
      msgs = res.decrement_messages;
    }
    shmem::barrier_all();
  });

  std::printf(
      "toposort: %lld waves, %llu decrement messages — %s\n\n",
      static_cast<long long>(waves), static_cast<unsigned long long>(msgs),
      ok ? "permutations VALIDATED (upper triangular restored)"
         : "INVALID result!");

  viz::StackedBarOptions so;
  so.title = "toposort overall breakdown (all waves)";
  so.relative = true;
  std::cout << viz::render_overall_stacked(profiler.overall(), so);
  return ok ? 0 : 1;
}
