// The paper's §IV case study as a runnable example: distributed triangle
// counting on an R-MAT graph, 1D Cyclic vs 1D Range distribution, with
// the full ActorProf pipeline (trace files + terminal plots).
//
//   $ ./examples/triangle_case_study [scale] [pes] [pes_per_node]
//
// Defaults: scale 10, 16 PEs, 16 PEs/node (one node). The run validates
// the triangle count against the serial reference, exactly like the
// paper's assertion-based validation.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "analysis/analysis.hpp"
#include "apps/triangle.hpp"
#include "core/advisor.hpp"
#include "core/profiler.hpp"
#include "core/trace_io.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"

int main(int argc, char** argv) {
  using namespace ap;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 10;
  const int pes = argc > 2 ? std::atoi(argv[2]) : 16;
  const int ppn = argc > 3 ? std::atoi(argv[3]) : 16;

  graph::RmatParams gp;
  gp.scale = scale;
  gp.edge_factor = 16;
  gp.permute_vertices = false;  // keep the paper's id<->degree correlation
  const auto edges = graph::rmat_edges(gp);
  const auto lower =
      graph::Csr::from_edges(graph::Vertex{1} << scale, edges, true);
  const std::int64_t expected = graph::count_triangles_serial(lower);
  std::printf("R-MAT scale %d, %zu lower-triangular entries, %lld "
              "triangles (serial reference)\n\n",
              scale, lower.num_entries(), static_cast<long long>(expected));

  for (const auto kind :
       {graph::DistKind::Cyclic1D, graph::DistKind::Range1D}) {
    prof::Config pc = prof::Config::all_enabled();
    pc.keep_logical_events = false;  // aggregates are enough for plots
    pc.keep_physical_events = true;
    const prof::Config env = prof::Config::from_env();
    pc.check = env.check;                  // honor ACTORPROF_CHECK=1
    pc.trace_format = env.trace_format;    // ACTORPROF_TRACE_FORMAT
    pc.trace_compress = env.trace_compress;  // ACTORPROF_TRACE_COMPRESS=1
    const char* tag = kind == graph::DistKind::Cyclic1D ? "cyclic" : "range";
    pc.trace_dir = std::string("triangle_trace_") + tag;
    if (!env.publish.empty()) {  // ACTORPROF_PUBLISH=host:port live-streams
      pc.publish = env.publish;  // each distribution as its own run id
      pc.publish_run =
          (env.publish_run.empty() ? "triangle_" : env.publish_run + "_") +
          std::string(tag);
    }
    prof::Profiler profiler(pc);

    std::int64_t got = 0;
    rt::LaunchConfig lc;
    lc.num_pes = pes;
    lc.pes_per_node = ppn;
    lc.symm_heap_bytes = 64 << 20;
    shmem::run(lc, [&] {
      const auto dist = graph::make_distribution(kind, shmem::n_pes(), lower);
      const auto r = apps::count_triangles_actor(lower, *dist, &profiler);
      if (shmem::my_pe() == 0) got = r.triangles;
    });

    std::printf("== %s ==\n", graph::to_string(kind).c_str());
    std::printf("triangles: %lld  %s\n", static_cast<long long>(got),
                got == expected ? "(VALIDATED)" : "(MISMATCH!)");
    if (got != expected) return 1;

    const auto m = profiler.logical_matrix();
    viz::HeatmapOptions ho;
    ho.title = "logical trace heatmap";
    ho.cell_width = 2;
    std::cout << viz::render_heatmap(m, ho);
    std::printf("send imbalance %.2fx, recv imbalance %.2fx, "
                "lower-triangular: %s\n",
                prof::imbalance_factor(m.row_sums()),
                prof::imbalance_factor(m.col_sums()),
                m.is_lower_triangular() ? "yes" : "no");

    viz::StackedBarOptions so;
    so.title = "overall breakdown";
    so.relative = true;
    std::cout << viz::render_overall_stacked(profiler.overall(), so);
    std::cout << prof::format_report(prof::advise(profiler));

    profiler.write_traces();
    std::uintmax_t trace_bytes = 0;
    for (const auto& e :
         std::filesystem::directory_iterator(pc.trace_dir))
      if (e.is_regular_file()) trace_bytes += e.file_size();
    std::printf("traces -> ./%s (%ju bytes, %s format)\n\n",
                pc.trace_dir.string().c_str(), trace_bytes,
                pc.trace_format == prof::TraceFormat::binary ? "binary .apt"
                                                             : "csv");

    // Superstep-resolved analysis of the trace we just wrote — the same
    // report `actorprof analyze <dir>` produces from the files on disk.
    const prof::io::TraceDir trace = prof::io::load_trace_dir(pc.trace_dir, pes);
    const auto an = prof::analysis::analyze(trace);
    prof::analysis::write_text(std::cout, an);
    prof::Report barrier_report;
    barrier_report.findings = prof::analysis::barrier_wait_findings(an);
    std::cout << prof::format_report(barrier_report) << '\n';
  }

  // Both distributions are now on disk — the rest of the §IV comparison
  // works from the files alone (docs/TRACE_FORMAT.md, OBSERVABILITY.md §8):
  std::printf(
      "next steps:\n"
      "  ACTORPROF_TRACE_FORMAT=binary %s   # rerun with ~90x smaller "
      ".apt shards\n"
      "  actorprof serve triangle_trace_range        # live HTTP: "
      "curl :7077/analyze\n"
      "  curl -s 'localhost:7077/diff?base=triangle_trace_cyclic'  # "
      "Range vs Cyclic\n"
      "  actorprof export --csv triangle_trace_range -o csv_copy   # "
      "CSV interchange\n"
      "live streaming (docs/OBSERVABILITY.md, \"Live streaming\"):\n"
      "  actorprof serve triangle_trace_range --port 7077 &   # the "
      "collector daemon\n"
      "  ACTORPROF_PUBLISH=127.0.0.1:7077 %s        # streams both runs "
      "into it\n"
      "  actorprof tail 127.0.0.1:7077 --run triangle_range   # "
      "superstep deltas as they close\n"
      "  curl -s 'localhost:7077/analyze?run=triangle_range'  # same "
      "bytes as the file-based report\n",
      argv[0], argv[0]);
  return 0;
}
