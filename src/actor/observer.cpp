#include "actor/observer.hpp"

namespace ap::actor {

namespace {
thread_local ActorObserver* g_observer = nullptr;
thread_local std::uint64_t g_next_flow = 0;
}  // namespace

void set_actor_observer(ActorObserver* obs) { g_observer = obs; }
ActorObserver* actor_observer() { return g_observer; }

std::uint64_t next_flow_id() { return ++g_next_flow; }

}  // namespace ap::actor
