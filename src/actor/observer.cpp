#include "actor/observer.hpp"

namespace ap::actor {

namespace {
thread_local ActorObserver* g_observer = nullptr;
}

void set_actor_observer(ActorObserver* obs) { g_observer = obs; }
ActorObserver* actor_observer() { return g_observer; }

}  // namespace ap::actor
