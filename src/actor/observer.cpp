#include "actor/observer.hpp"

#include <atomic>

namespace ap::actor {

namespace {
// Plain global (was thread_local): observers are installed on the
// launching thread before a launch creates worker threads, so thread
// creation orders the pointer for every worker under the threads backend.
ActorObserver* g_observer = nullptr;
// Atomic: flow ids are minted from every worker's send path concurrently.
std::atomic<std::uint64_t> g_next_flow{0};
}  // namespace

void set_actor_observer(ActorObserver* obs) { g_observer = obs; }
ActorObserver* actor_observer() { return g_observer; }

std::uint64_t next_flow_id() {
  return g_next_flow.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace ap::actor
