// Instrumentation seam between HClib-Actor and ActorProf.
//
// The Selector reports application-level events: every send() *before*
// aggregation (the logical trace of §III-A), handler entry/exit (the PROC
// region), and entry/exit of the communication internals (the COMM region
// used to derive T_COMM in §III-B). A null observer costs one branch.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ap::actor {

class ActorObserver {
 public:
  virtual ~ActorObserver() = default;

  /// An application send of `bytes` payload to `dst_pe` on mailbox `mb`
  /// (fires before the message enters any aggregation buffer). `flow_id`
  /// is non-zero only when the observer asked for flow correlation
  /// (wants_flow_ids); the same id reappears at on_handler_begin on the
  /// destination PE and on the physical transfer that carried the message,
  /// linking Send -> Transfer -> Proc across the stack.
  virtual void on_send(int mb, int dst_pe, std::size_t bytes,
                       std::uint64_t flow_id) = 0;

  /// The user message handler for mailbox `mb` is about to run / just ran
  /// for a message of `bytes` payload from `src_pe`. `flow_id` is the id
  /// assigned at the originating send (0 when flow ids are off).
  virtual void on_handler_begin(int mb, int src_pe, std::size_t bytes,
                                std::uint64_t flow_id) = 0;
  virtual void on_handler_end(int mb) = 0;

  /// The runtime entered/left conveyor progress work (advance, flush,
  /// delivery, termination detection) on the current PE.
  virtual void on_comm_begin() = 0;
  virtual void on_comm_end() = 0;

  /// Observers that only need aggregate counts (metrics, sampling) can
  /// return false here: the selector then skips the per-message
  /// on_handler_begin/on_handler_end pairs on the batch-drain path and
  /// reports each delivered batch once via on_handler_batch with an
  /// explicit count. Trace-producing observers keep the default (true) so
  /// PROC segments, PAPI attribution, and Chrome traces stay exact.
  [[nodiscard]] virtual bool wants_per_message_events() const { return true; }

  /// A batch of `count` messages of `bytes_per_msg` payload each was
  /// dispatched on mailbox `mb` (only called when
  /// wants_per_message_events() is false). Default no-op.
  virtual void on_handler_batch(int mb, std::size_t count,
                                std::size_t bytes_per_msg) {
    (void)mb;
    (void)count;
    (void)bytes_per_msg;
  }

  /// Actor API protocol misuse on the calling PE (send before start, send
  /// after done on the same mailbox, double start). Fires *before* the
  /// selector throws, so the conformance checker records the violation even
  /// when a harness catches the exception. Default no-op.
  virtual void on_actor_misuse(const char* what) { (void)what; }

  /// Opt in to per-message flow ids. When true, selectors allocate a
  /// monotonically increasing id per send and conveyors carry it through
  /// aggregation (8 extra wire bytes per record) so physical transfers and
  /// remote handlers can be correlated with the logical send. Off by
  /// default: the wire format — and its tested per-record overhead — is
  /// unchanged unless a flow-aware observer is installed.
  [[nodiscard]] virtual bool wants_flow_ids() const { return false; }
};

void set_actor_observer(ActorObserver* obs);
ActorObserver* actor_observer();

/// Next process-wide logical-send flow id (1-based; 0 means "no flow").
/// Raw ids are only required to be unique — exporters renumber densely, so
/// the counter is never reset.
std::uint64_t next_flow_id();

}  // namespace ap::actor
