// Instrumentation seam between HClib-Actor and ActorProf.
//
// The Selector reports application-level events: every send() *before*
// aggregation (the logical trace of §III-A), handler entry/exit (the PROC
// region), and entry/exit of the communication internals (the COMM region
// used to derive T_COMM in §III-B). A null observer costs one branch.
#pragma once

#include <cstddef>

namespace ap::actor {

class ActorObserver {
 public:
  virtual ~ActorObserver() = default;

  /// An application send of `bytes` payload to `dst_pe` on mailbox `mb`
  /// (fires before the message enters any aggregation buffer).
  virtual void on_send(int mb, int dst_pe, std::size_t bytes) = 0;

  /// The user message handler for mailbox `mb` is about to run / just ran
  /// for a message of `bytes` payload from `src_pe`.
  virtual void on_handler_begin(int mb, int src_pe, std::size_t bytes) = 0;
  virtual void on_handler_end(int mb) = 0;

  /// The runtime entered/left conveyor progress work (advance, flush,
  /// delivery, termination detection) on the current PE.
  virtual void on_comm_begin() = 0;
  virtual void on_comm_end() = 0;
};

void set_actor_observer(ActorObserver* obs);
ActorObserver* actor_observer();

}  // namespace ap::actor
