// HClib-Actor: actors and selectors for FA-BSP programming (paper §II-A).
//
// A Selector is an actor with NMB guarded mailboxes. Each mailbox carries
// fixed-type messages over its own Conveyor, so sends aggregate
// automatically and handlers run one message at a time on the owning PE —
// no atomics are ever needed in user handlers (each PE is single-threaded).
//
// The canonical program shape is the paper's Listing 1/2:
//
//   class MyActor : public ap::actor::Selector<1, int> {
//     int* larray;
//     void process(int idx, int sender) { larray[idx] += 1; }
//    public:
//     explicit MyActor(int* a) : larray(a) {
//       mb[0].process = [this](int idx, int s) { process(idx, s); };
//     }
//   };
//   ...
//   ap::hclib::finish([&] {
//     actor->start();
//     for (...) actor->send(i, dst);
//     actor->done(0);
//   });
//
// done(k) declares that this PE pushes no more messages into mailbox k.
// When mailbox k terminates globally, done(k+1) fires automatically on
// every PE (HClib-Actor's dependent-mailbox chaining), which is what makes
// request/reply patterns across mailboxes terminate.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <type_traits>

#include "actor/observer.hpp"
#include "conveyor/conveyor.hpp"
#include "papi/papi.hpp"
#include "runtime/finish.hpp"
#include "runtime/scheduler.hpp"

namespace ap::actor {

/// Safety valve: a Selector whose pump spins this many rounds without any
/// global progress aborts with a diagnostic — the usual cause is a missing
/// done() on some PE, which would otherwise livelock silently.
inline constexpr std::uint64_t kStallLimit = 5'000'000;

namespace detail {
/// RAII COMM-region marker around runtime internals.
class CommRegion {
 public:
  CommRegion() {
    if (ActorObserver* o = actor_observer()) o->on_comm_begin();
  }
  ~CommRegion() {
    if (ActorObserver* o = actor_observer()) o->on_comm_end();
  }
  CommRegion(const CommRegion&) = delete;
  CommRegion& operator=(const CommRegion&) = delete;
};
}  // namespace detail

template <int NMB = 1, typename MsgT = std::int64_t>
class Selector {
  static_assert(NMB >= 1, "Selector needs at least one mailbox");
  static_assert(std::is_trivially_copyable_v<MsgT>,
                "Selector messages travel by memcpy; MsgT must be "
                "trivially copyable");

 public:
  struct Mailbox {
    /// User handler: (message, sender PE). Runs on the owning PE, one
    /// message at a time.
    std::function<void(MsgT, int)> process;
  };

  /// The guarded mailboxes; assign mb[k].process before start().
  std::array<Mailbox, NMB> mb;

  Selector() : Selector(default_options()) {}

  explicit Selector(const convey::Options& conveyor_options)
      : opts_(conveyor_options) {
    opts_.item_bytes = sizeof(MsgT);
  }

  virtual ~Selector() = default;
  Selector(const Selector&) = delete;
  Selector& operator=(const Selector&) = delete;

  /// Collective: create the conveyors and register this selector's worker
  /// with the innermost finish scope. Must be called inside hclib::finish
  /// by every PE.
  void start() {
    if (started_) {
      report_misuse("actor: start() called twice on one selector");
      throw std::logic_error("Selector::start called twice");
    }
    for (int k = 0; k < NMB; ++k) {
      if (!mb[static_cast<std::size_t>(k)].process)
        throw std::logic_error(
            "Selector::start: every mailbox needs a process handler");
    }
    {
      detail::CommRegion comm;
      // Flow correlation is an observer decision made at conveyor-creation
      // time: all PEs run the same profiler config, so this stays
      // collective-consistent.
      if (ActorObserver* o = actor_observer())
        opts_.carry_flow_ids = o->wants_flow_ids();
      for (int k = 0; k < NMB; ++k)
        state_[static_cast<std::size_t>(k)].conveyor =
            convey::Conveyor::create(opts_);
    }
    started_ = true;
    auto* scope = hclib::FinishScope::current();
    if (scope == nullptr)
      throw std::logic_error("Selector::start must run inside hclib::finish");
    scope->register_pump([this] { return pump(); });
  }

  /// Asynchronously send `msg` to mailbox `mb_id` of the actor on `dst_pe`.
  /// May pump communication (and run local handlers) while aggregation
  /// buffers are full — that interleaving IS the FA-BSP model.
  void send(int mb_id, const MsgT& msg, int dst_pe) {
    check_mailbox(mb_id);
    if (!started_) {
      report_misuse("actor: send() before start()");
      throw std::logic_error("Selector::send before start()");
    }
    MailboxState& st = state_[static_cast<std::size_t>(mb_id)];
    if (st.user_done) {
      report_misuse("actor: send() after done() on the same mailbox");
      throw std::logic_error("Selector::send after done() on this mailbox");
    }

    std::uint64_t flow = 0;
    if (ActorObserver* o = actor_observer()) {
      if (st.conveyor->options().carry_flow_ids) flow = next_flow_id();
      o->on_send(mb_id, dst_pe, sizeof(MsgT), flow);
      papi::account_message_construct(sizeof(MsgT));
    } else {
      // No observer: defer the (exactly linear) construct accounting and
      // charge it once per batch. Flushed before any virtual-clock sync so
      // the totals are identical to the per-message path.
      ++pending_constructs_;
    }

    while (!st.conveyor->push(&msg, dst_pe, flow)) {
      flush_construct_accounting();
      {
        detail::CommRegion comm;
        // Progress EVERY mailbox, not just the blocked one: a peer may be
        // stuck inside a handler pushing to another mailbox of ours, and
        // only our advance() on that conveyor acks its ring slots. (A
        // request/reply selector livelocks otherwise.)
        for (MailboxState& other : state_) {
          if (other.conveyor && !other.complete)
            (void)other.conveyor->advance(false);
        }
        papi::sync_virtual_clock();  // back-pressure wait == COMM
      }
      drain_handlers();  // FA-BSP: process incoming while we send
      rt::yield();       // let peers consume what we flushed
    }
    // Periodically deliver + run handlers even when sends never block, so
    // message processing interleaves with the send loop (Figure 1's RED
    // segments inside the BLUE one) and receive queues stay small.
    if (++sends_since_poll_ >= kPollInterval) {
      sends_since_poll_ = 0;
      flush_construct_accounting();
      {
        detail::CommRegion comm;
        (void)st.conveyor->advance(false);
      }
      drain_handlers();
    }
  }

  /// Single-mailbox convenience (the paper's actor_ptr->send(msg, dst)).
  void send(const MsgT& msg, int dst_pe) { send(0, msg, dst_pe); }

  /// Declare that this PE sends no more messages to mailbox `mb_id`.
  void done(int mb_id) {
    check_mailbox(mb_id);
    if (!started_) throw std::logic_error("Selector::done before start()");
    flush_construct_accounting();
    state_[static_cast<std::size_t>(mb_id)].user_done = true;
  }

  /// True once every mailbox's conveyor has globally terminated.
  [[nodiscard]] bool terminated() const {
    for (const MailboxState& st : state_)
      if (!st.complete) return false;
    return true;
  }

  /// The conveyor backing mailbox `mb_id` (stats / tests).
  [[nodiscard]] const convey::Conveyor& conveyor(int mb_id = 0) const {
    check_mailbox(mb_id);
    return *state_[static_cast<std::size_t>(mb_id)].conveyor;
  }

  /// Messages this PE handled per mailbox.
  [[nodiscard]] std::uint64_t handled(int mb_id = 0) const {
    check_mailbox(mb_id);
    return state_[static_cast<std::size_t>(mb_id)].handled;
  }

 private:
  struct MailboxState {
    std::shared_ptr<convey::Conveyor> conveyor;
    bool user_done = false;
    bool done_passed = false;  // done flag already handed to advance()
    bool complete = false;     // conveyor terminated globally
    std::uint64_t handled = 0;
  };

  static convey::Options default_options() {
    convey::Options o;
    o.item_bytes = sizeof(MsgT);
    return o;
  }

  void check_mailbox(int mb_id) const {
    if (mb_id < 0 || mb_id >= NMB)
      throw std::out_of_range("Selector: mailbox id out of range");
  }

  /// Conformance seam: hand protocol misuse to the observer (and through
  /// it to the BSP checker) before the selector throws.
  static void report_misuse(const char* what) {
    if (ActorObserver* o = actor_observer()) o->on_actor_misuse(what);
  }

  /// One progress round over all mailboxes; returns true when the whole
  /// selector has terminated. Registered as the finish-scope pump.
  bool pump() {
    flush_construct_accounting();
    bool all_complete = true;
    std::uint64_t progress_stamp = 0;
    for (int k = 0; k < NMB; ++k) {
      MailboxState& st = state_[static_cast<std::size_t>(k)];
      if (st.complete) continue;
      bool still_running;
      {
        detail::CommRegion comm;
        still_running = st.conveyor->advance(st.user_done);
        st.done_passed = st.user_done;
      }
      // Drain everything delivered this round; handlers may send() to
      // other mailboxes of this selector (or other selectors).
      if (!in_dispatch_) drain_mailbox(k);
      if (!still_running) {
        st.complete = true;
        // Dependent-mailbox chaining: termination of mailbox k is the
        // runtime's signal that no handler can feed mailbox k+1 anymore.
        if (k + 1 < NMB) state_[static_cast<std::size_t>(k + 1)].user_done = true;
      } else {
        all_complete = false;
      }
      // Progress stamp for the livelock guard. Own-endpoint stats() is a
      // plain single-writer read; delivered_total() is the group's relaxed
      // atomic delivery counter and is what captures *remote* PEs'
      // progress mid-run (total_stats() would race with their plain
      // counter bumps under the threads backend). Remote pushes that have
      // not yet delivered are bounded by buffer capacity before a flush
      // publishes them, so any system-wide progress moves the stamp
      // within a bounded number of rounds.
      progress_stamp += st.conveyor->stats().pushed +
                        st.conveyor->stats().pulled +
                        st.conveyor->delivered_total();
    }
    if (all_complete) return true;

    // Still waiting on peers: on a real cluster this PE would be burning
    // wall-clock polling the network; advance the virtual clock to the
    // fleet maximum so the overall profile sees the wait as COMM.
    {
      detail::CommRegion comm;
      papi::sync_virtual_clock();
    }

    // Livelock guard (missing done() somewhere).
    for (const MailboxState& st : state_) {
      if (!st.complete) progress_stamp += st.user_done ? 1u : 0u;
    }
    if (progress_stamp == last_progress_stamp_) {
      if (++stalled_rounds_ > kStallLimit)
        throw std::runtime_error(
            "Selector: no progress for too long — did every PE call done() "
            "on every mailbox?");
    } else {
      stalled_rounds_ = 0;
      last_progress_stamp_ = progress_stamp;
    }
    return false;
  }

  /// Run handlers for everything already delivered, unless we are already
  /// inside a handler (keeps handler recursion depth at one).
  void drain_handlers() {
    if (in_dispatch_) return;
    for (int k = 0; k < NMB; ++k) {
      if (state_[static_cast<std::size_t>(k)].conveyor) drain_mailbox(k);
    }
  }

  /// Dispatch every record delivered to mailbox `k` straight off the
  /// conveyor's receive queue (zero per-item copy or queue bookkeeping).
  /// With a trace-producing observer installed every record still gets its
  /// begin/end hooks; otherwise handler accounting is charged once per
  /// batch with an explicit count. Loops because handlers may advance()
  /// and deliver more.
  void drain_mailbox(int k) {
    MailboxState& st = state_[static_cast<std::size_t>(k)];
    ActorObserver* o = actor_observer();
    const bool per_message = o != nullptr && o->wants_per_message_events();
    for (;;) {
      std::size_t n;
      if (per_message) {
        n = st.conveyor->drain([&](const convey::Delivered& r) {
          MsgT msg;
          std::memcpy(&msg, r.payload, sizeof msg);
          dispatch(k, msg, r.src, r.flow);
        });
      } else {
        n = st.conveyor->drain([&](const convey::Delivered& r) {
          MsgT msg;
          std::memcpy(&msg, r.payload, sizeof msg);
          in_dispatch_ = true;
          try {
            mb[static_cast<std::size_t>(k)].process(msg, r.src);
          } catch (...) {
            in_dispatch_ = false;
            throw;
          }
          in_dispatch_ = false;
          ++st.handled;
        });
        if (n != 0) {
          papi::account_message_handle_n(sizeof(MsgT), n);
          if (o != nullptr) o->on_handler_batch(k, n, sizeof(MsgT));
        }
      }
      if (n == 0) break;
    }
  }

  /// Land deferred construct charges (no-observer fast path) before any
  /// progress or virtual-clock sync observes the counters.
  void flush_construct_accounting() {
    if (pending_constructs_ == 0) return;
    papi::account_message_construct_n(sizeof(MsgT), pending_constructs_);
    pending_constructs_ = 0;
  }

  void dispatch(int mb_id, const MsgT& msg, int from, std::uint64_t flow = 0) {
    MailboxState& st = state_[static_cast<std::size_t>(mb_id)];
    if (ActorObserver* o = actor_observer())
      o->on_handler_begin(mb_id, from, sizeof(MsgT), flow);
    papi::account_message_handle(sizeof(MsgT));
    in_dispatch_ = true;
    try {
      mb[static_cast<std::size_t>(mb_id)].process(msg, from);
    } catch (...) {
      in_dispatch_ = false;
      if (ActorObserver* o = actor_observer()) o->on_handler_end(mb_id);
      throw;
    }
    in_dispatch_ = false;
    ++st.handled;
    if (ActorObserver* o = actor_observer()) o->on_handler_end(mb_id);
  }

  /// How many uncontended sends may pass before we poll for incoming work.
  static constexpr int kPollInterval = 32;

  convey::Options opts_;
  std::array<MailboxState, NMB> state_{};
  bool started_ = false;
  bool in_dispatch_ = false;
  int sends_since_poll_ = 0;
  std::uint64_t pending_constructs_ = 0;
  std::uint64_t last_progress_stamp_ = 0;
  std::uint64_t stalled_rounds_ = 0;
};

/// A plain actor is a selector with one mailbox (paper terminology).
template <typename MsgT = std::int64_t>
using Actor = Selector<1, MsgT>;

}  // namespace ap::actor
