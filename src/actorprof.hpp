// Umbrella header: the whole public API in one include.
//
//   #include "actorprof.hpp"
//
// pulls in the SPMD runtime (ap::rt, ap::hclib), the OpenSHMEM substrate
// (ap::shmem), Conveyors (ap::convey), HClib-Actor (ap::actor), sim-PAPI
// (ap::papi), the ActorProf profiler with traces/advisor/exports
// (ap::prof), the visualization renderers (ap::viz), and the graph +
// application toolkits (ap::graph, ap::apps).
#pragma once

#include "actor/selector.hpp"
#include "apps/bfs.hpp"
#include "apps/histogram.hpp"
#include "apps/index_gather.hpp"
#include "apps/influence_max.hpp"
#include "apps/jaccard.hpp"
#include "apps/pagerank.hpp"
#include "apps/randperm.hpp"
#include "apps/toposort.hpp"
#include "apps/triangle.hpp"
#include "conveyor/conveyor.hpp"
#include "conveyor/elastic.hpp"
#include "core/advisor.hpp"
#include "core/chrome_trace.hpp"
#include "core/profiler.hpp"
#include "core/trace_io.hpp"
#include "graph/csr.hpp"
#include "graph/distribution.hpp"
#include "graph/rmat.hpp"
#include "papi/cycles.hpp"
#include "papi/papi.hpp"
#include "runtime/finish.hpp"
#include "runtime/scheduler.hpp"
#include "shmem/profiling_interface.hpp"
#include "shmem/shmem.hpp"
#include "viz/render.hpp"
#include "viz/svg.hpp"
