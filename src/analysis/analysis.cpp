#include "analysis/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace ap::prof::analysis {

namespace {

/// Fixed-width fractional formatting: JSON output must be byte-identical
/// for identical inputs, so every double goes through snprintf.
std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

Component dominant_component(const SuperstepRecord& r) {
  // Ties resolve in MAIN, PROC, COMM order (deterministic).
  Component c = Component::main;
  std::uint64_t best = r.t_main;
  if (r.t_proc > best) {
    best = r.t_proc;
    c = Component::proc;
  }
  if (r.t_comm > best) c = Component::comm;
  return c;
}

std::uint64_t component_cycles(const SuperstepRecord& r, Component c) {
  switch (c) {
    case Component::main: return r.t_main;
    case Component::proc: return r.t_proc;
    case Component::comm: return r.t_comm;
  }
  return 0;
}

}  // namespace

std::string_view to_string(Component c) {
  switch (c) {
    case Component::main: return "MAIN";
    case Component::proc: return "PROC";
    case Component::comm: return "COMM";
  }
  return "?";
}

Analysis analyze(const io::TraceDir& t, const Options& opts) {
  Analysis a;
  a.num_pes = t.num_pes;
  a.gated_cycles_by_pe.assign(static_cast<std::size_t>(t.num_pes), 0);

  // Group every PE's records by (epoch, step). std::map keeps the global
  // (epoch, step) order for free.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::vector<SuperstepRecord>>
      by_step;
  for (const auto& per_pe : t.steps)
    for (const SuperstepRecord& r : per_pe)
      by_step[{r.epoch, r.step}].push_back(r);

  std::uint64_t wall = 0;
  for (auto& [key, recs] : by_step) {
    std::sort(recs.begin(), recs.end(),
              [](const SuperstepRecord& x, const SuperstepRecord& y) {
                return x.pe < y.pe;
              });
    StepStat s;
    s.epoch = key.first;
    s.step = key.second;
    s.recs = std::move(recs);
    for (const SuperstepRecord& r : s.recs) {
      if (r.work() > s.duration ||
          (s.straggler_pe < 0 && r.work() == s.duration)) {
        s.duration = r.work();
        s.straggler_pe = r.pe;
        s.gate = dominant_component(r);
      }
    }
    wall += s.duration;
    s.release = wall;
    s.wait.reserve(s.recs.size());
    for (const SuperstepRecord& r : s.recs) {
      const std::uint64_t w = s.duration - r.work();
      s.wait.push_back(w);
      s.total_wait += w;
    }
    if (s.straggler_pe >= 0 &&
        s.straggler_pe < static_cast<int>(a.gated_cycles_by_pe.size())) {
      a.gated_cycles_by_pe[static_cast<std::size_t>(s.straggler_pe)] +=
          s.duration;
      a.gated_cycles_by_component[static_cast<std::size_t>(s.gate)] +=
          s.duration;
    }
    a.steps.push_back(std::move(s));
  }
  a.total_cycles = wall;

  // What-if ranking: for every (PE, component) with any cycles, re-run the
  // per-step max with that component shaved by `factor` on that PE only.
  if (a.total_cycles > 0 && opts.what_if_factor > 0) {
    for (int pe = 0; pe < a.num_pes; ++pe) {
      for (int ci = 0; ci < 3; ++ci) {
        const auto comp = static_cast<Component>(ci);
        std::uint64_t comp_total = 0;
        for (const StepStat& s : a.steps)
          for (const SuperstepRecord& r : s.recs)
            if (r.pe == pe) comp_total += component_cycles(r, comp);
        if (comp_total == 0) continue;
        std::uint64_t new_total = 0;
        for (const StepStat& s : a.steps) {
          std::uint64_t dur = 0;
          for (const SuperstepRecord& r : s.recs) {
            std::uint64_t w = r.work();
            if (r.pe == pe)
              w -= static_cast<std::uint64_t>(
                  opts.what_if_factor *
                  static_cast<double>(component_cycles(r, comp)));
            dur = std::max(dur, w);
          }
          new_total += dur;
        }
        WhatIf wi;
        wi.pe = pe;
        wi.component = comp;
        wi.factor = opts.what_if_factor;
        wi.new_total = new_total;
        wi.speedup_pct = 100.0 *
                         static_cast<double>(a.total_cycles - new_total) /
                         static_cast<double>(a.total_cycles);
        a.what_ifs.push_back(wi);
      }
    }
    std::sort(a.what_ifs.begin(), a.what_ifs.end(),
              [](const WhatIf& x, const WhatIf& y) {
                if (x.new_total != y.new_total)
                  return x.new_total < y.new_total;
                if (x.pe != y.pe) return x.pe < y.pe;
                return static_cast<int>(x.component) <
                       static_cast<int>(y.component);
              });
    if (a.what_ifs.size() > opts.max_what_ifs)
      a.what_ifs.resize(opts.max_what_ifs);
  }
  return a;
}

void write_text(std::ostream& os, const Analysis& a) {
  os << "Superstep analysis — " << a.num_pes << " PE(s), " << a.steps.size()
     << " superstep(s), reconstructed BSP makespan " << a.total_cycles
     << " cycles\n";
  if (a.steps.empty()) {
    os << "  (no superstep records — was the run profiled with "
          "Config::supersteps / ACTORPROF_SUPERSTEPS=1?)\n";
    return;
  }
  os << "  epoch  step    duration     release  straggler  gate  fleet "
        "wait\n";
  for (const StepStat& s : a.steps) {
    os << std::setw(7) << s.epoch << std::setw(6) << s.step << std::setw(12)
       << s.duration << std::setw(12) << s.release << std::setw(9)
       << ("PE" + std::to_string(s.straggler_pe)) << std::setw(6)
       << to_string(s.gate) << std::setw(12) << s.total_wait << "\n";
  }

  os << "Critical path (chain of per-step stragglers):\n";
  for (int pe = 0; pe < a.num_pes; ++pe) {
    const std::uint64_t g = a.gated_cycles_by_pe[static_cast<std::size_t>(pe)];
    if (g == 0) continue;
    const double share =
        a.total_cycles == 0
            ? 0.0
            : 100.0 * static_cast<double>(g) /
                  static_cast<double>(a.total_cycles);
    os << "  PE" << pe << " gates " << g << " cycles (" << fixed(share, 1)
       << "% of the run)\n";
  }
  os << "  by component: MAIN " << a.gated_cycles_by_component[0] << ", PROC "
     << a.gated_cycles_by_component[1] << ", COMM "
     << a.gated_cycles_by_component[2] << "\n";

  if (!a.what_ifs.empty()) {
    os << "What-if estimates (component "
       << fixed(100.0 * a.what_ifs.front().factor, 0) << "% faster):\n";
    for (const WhatIf& w : a.what_ifs) {
      os << "  PE" << w.pe << " " << to_string(w.component) << " -> total "
         << w.new_total << " cycles (-" << fixed(w.speedup_pct, 2) << "%)\n";
    }
  }
}

void write_json(std::ostream& os, const Analysis& a) {
  os << "{\n\"num_pes\": " << a.num_pes
     << ",\n\"total_cycles\": " << a.total_cycles << ",\n\"steps\": [";
  bool first_step = true;
  for (const StepStat& s : a.steps) {
    if (!first_step) os << ",";
    first_step = false;
    os << "\n  {\"epoch\": " << s.epoch << ", \"step\": " << s.step
       << ", \"duration\": " << s.duration << ", \"release\": " << s.release
       << ", \"straggler_pe\": " << s.straggler_pe << ", \"gate\": \""
       << to_string(s.gate) << "\", \"total_wait\": " << s.total_wait
       << ", \"pes\": [";
    for (std::size_t i = 0; i < s.recs.size(); ++i) {
      const SuperstepRecord& r = s.recs[i];
      if (i > 0) os << ",";
      os << "\n    {\"pe\": " << r.pe << ", \"work\": " << r.work()
         << ", \"wait\": " << s.wait[i] << ", \"t_main\": " << r.t_main
         << ", \"t_proc\": " << r.t_proc << ", \"t_comm\": " << r.t_comm
         << ", \"msgs_sent\": " << r.msgs_sent
         << ", \"bytes_sent\": " << r.bytes_sent
         << ", \"msgs_handled\": " << r.msgs_handled << "}";
    }
    os << "]}";
  }
  os << "\n],\n\"gated_cycles_by_pe\": [";
  for (std::size_t pe = 0; pe < a.gated_cycles_by_pe.size(); ++pe)
    os << (pe ? ", " : "") << a.gated_cycles_by_pe[pe];
  os << "],\n\"gated_cycles_by_component\": {\"MAIN\": "
     << a.gated_cycles_by_component[0]
     << ", \"PROC\": " << a.gated_cycles_by_component[1]
     << ", \"COMM\": " << a.gated_cycles_by_component[2] << "}";
  os << ",\n\"what_ifs\": [";
  for (std::size_t i = 0; i < a.what_ifs.size(); ++i) {
    const WhatIf& w = a.what_ifs[i];
    os << (i ? "," : "") << "\n  {\"pe\": " << w.pe << ", \"component\": \""
       << to_string(w.component) << "\", \"factor\": " << fixed(w.factor, 4)
       << ", \"new_total\": " << w.new_total
       << ", \"speedup_pct\": " << fixed(w.speedup_pct, 4) << "}";
  }
  os << "\n]\n}\n";
}

// ------------------------------------------------------------------- diff

std::vector<StepDelta> Diff::regressions() const {
  std::vector<StepDelta> out;
  for (const StepDelta& s : steps)
    if (s.in_a && s.in_b && s.rel_change() > threshold) out.push_back(s);
  return out;
}

bool Diff::any_regression() const {
  if (total_a > 0 &&
      static_cast<double>(total_b) / static_cast<double>(total_a) - 1.0 >
          threshold)
    return true;
  for (const StepDelta& s : steps)
    if (s.in_a && s.in_b && s.rel_change() > threshold) return true;
  return false;
}

Diff diff(const Analysis& a, const Analysis& b, double threshold) {
  Diff d;
  d.threshold = threshold;
  d.total_a = a.total_cycles;
  d.total_b = b.total_cycles;
  std::map<std::pair<std::uint32_t, std::uint32_t>, StepDelta> merged;
  for (const StepStat& s : a.steps) {
    StepDelta& e = merged[{s.epoch, s.step}];
    e.epoch = s.epoch;
    e.step = s.step;
    e.in_a = true;
    e.duration_a = s.duration;
  }
  for (const StepStat& s : b.steps) {
    StepDelta& e = merged[{s.epoch, s.step}];
    e.epoch = s.epoch;
    e.step = s.step;
    e.in_b = true;
    e.duration_b = s.duration;
  }
  d.steps.reserve(merged.size());
  for (auto& [key, e] : merged) d.steps.push_back(e);
  return d;
}

void write_diff_text(std::ostream& os, const Diff& d) {
  const double total_change =
      d.total_a == 0 ? 0.0
                     : 100.0 * (static_cast<double>(d.total_b) /
                                    static_cast<double>(d.total_a) -
                                1.0);
  os << "Superstep diff — total " << d.total_a << " -> " << d.total_b
     << " cycles (" << (total_change >= 0 ? "+" : "")
     << fixed(total_change, 2) << "%), threshold "
     << fixed(100.0 * d.threshold, 1) << "%\n";
  os << "  epoch  step  duration A  duration B    change\n";
  for (const StepDelta& s : d.steps) {
    os << std::setw(7) << s.epoch << std::setw(6) << s.step;
    if (s.in_a)
      os << std::setw(12) << s.duration_a;
    else
      os << std::setw(12) << "-";
    if (s.in_b)
      os << std::setw(12) << s.duration_b;
    else
      os << std::setw(12) << "-";
    if (s.in_a && s.in_b) {
      const double c = 100.0 * s.rel_change();
      os << std::setw(9) << ((c >= 0 ? "+" : "") + fixed(c, 2)) << "%";
      if (s.rel_change() > d.threshold) os << "  REGRESSED";
    } else {
      os << "  only in " << (s.in_a ? "A" : "B");
    }
    os << "\n";
  }
  const auto regs = d.regressions();
  if (d.any_regression())
    os << "REGRESSION: " << regs.size()
       << " superstep(s) beyond the threshold"
       << (d.total_a > 0 && static_cast<double>(d.total_b) /
                                        static_cast<double>(d.total_a) -
                                    1.0 >
                                d.threshold
               ? " (total regressed too)"
               : "")
       << "\n";
  else
    os << "no regression beyond the threshold\n";
}

void write_diff_json(std::ostream& os, const Diff& d) {
  os << "{\n\"threshold\": " << fixed(d.threshold, 4)
     << ",\n\"total_a\": " << d.total_a << ",\n\"total_b\": " << d.total_b
     << ",\n\"any_regression\": " << (d.any_regression() ? "true" : "false")
     << ",\n\"steps\": [";
  for (std::size_t i = 0; i < d.steps.size(); ++i) {
    const StepDelta& s = d.steps[i];
    os << (i ? "," : "") << "\n  {\"epoch\": " << s.epoch
       << ", \"step\": " << s.step << ", \"in_a\": "
       << (s.in_a ? "true" : "false")
       << ", \"in_b\": " << (s.in_b ? "true" : "false")
       << ", \"duration_a\": " << s.duration_a
       << ", \"duration_b\": " << s.duration_b
       << ", \"rel_change\": " << fixed(s.rel_change(), 4)
       << ", \"regressed\": "
       << ((s.in_a && s.in_b && s.rel_change() > d.threshold) ? "true"
                                                              : "false")
       << "}";
  }
  os << "\n]\n}\n";
}

// --------------------------------------------------------------- advisor

std::vector<Finding> barrier_wait_findings(const Analysis& a,
                                           double notice_share,
                                           double warning_share) {
  std::vector<Finding> out;
  if (a.total_cycles == 0 || a.steps.empty()) return out;
  // Rank PEs by the share of the run they gate; report every PE past the
  // notice threshold, worst first.
  std::vector<int> pes;
  for (int pe = 0; pe < a.num_pes; ++pe)
    if (a.gated_cycles_by_pe[static_cast<std::size_t>(pe)] > 0)
      pes.push_back(pe);
  std::sort(pes.begin(), pes.end(), [&](int x, int y) {
    const auto gx = a.gated_cycles_by_pe[static_cast<std::size_t>(x)];
    const auto gy = a.gated_cycles_by_pe[static_cast<std::size_t>(y)];
    if (gx != gy) return gx > gy;
    return x < y;
  });
  bool first = true;
  for (int pe : pes) {
    const double share =
        static_cast<double>(
            a.gated_cycles_by_pe[static_cast<std::size_t>(pe)]) /
        static_cast<double>(a.total_cycles);
    // The single worst PE is always reported (someone must gate every
    // step); the rest only past the notice threshold.
    if (!first && share < notice_share) break;
    // The worst step this PE gated: most fleet cycles burned waiting.
    const StepStat* worst = nullptr;
    for (const StepStat& s : a.steps)
      if (s.straggler_pe == pe &&
          (worst == nullptr || s.total_wait > worst->total_wait))
        worst = &s;
    if (worst == nullptr) continue;
    Finding f;
    f.kind = Finding::Kind::BarrierWait;
    f.severity = share >= warning_share  ? Finding::Severity::warning
                 : share >= notice_share ? Finding::Severity::notice
                                         : Finding::Severity::info;
    f.metric = share;
    f.subject = pe;
    std::ostringstream msg;
    msg << "PE" << pe << " gates " << fixed(100.0 * share, 1)
        << "% of the reconstructed runtime; worst at superstep "
        << worst->epoch << "/" << worst->step << " (" << to_string(worst->gate)
        << "-bound), where the fleet waited " << worst->total_wait
        << " cycles on it";
    f.message = msg.str();
    f.recommendation =
        "Rebalance that PE's " + std::string(to_string(worst->gate)) +
        " work (try another data distribution) or overlap it with "
        "communication; `actorprof analyze` ranks the expected gains "
        "under \"What-if estimates\".";
    out.push_back(std::move(f));
    first = false;
  }
  return out;
}

}  // namespace ap::prof::analysis
