// Superstep analysis (the tentpole of the ActorProf "analyze"/"diff"
// workflow; cf. Scalasca's wait-state and critical-path analyses).
//
// The recording side (Config::supersteps) stamps each PE's barrier arrival
// with its *own* virtual busy clock — per-PE clocks only advance during
// that PE's accounted work, never while it blocks in a barrier. Recorded
// stamps therefore cannot be compared across PEs directly; this module
// reconstructs the global bulk-synchronous timeline analytically:
//
//   W(0)      = 0
//   W(k)      = W(k-1) + max_p work_p(k)          (barrier k's release)
//   wait_p(k) = W(k) - (W(k-1) + work_p(k))       (PE p's wait at barrier k)
//
// where work_p(k) = t_main + t_proc + t_comm of PE p's step k. The PE with
// the maximum work is the step's *straggler*: every other PE's wait is
// attributed to it, and to whichever of its MAIN/PROC/COMM components is
// largest (the *gate*). The critical path through the run is the chain of
// stragglers — total runtime is exactly the sum of their per-step work —
// and the what-if model re-evaluates that sum with one PE's component
// scaled down, answering "PE 3's PROC 20% faster => total -x%".
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "core/advisor.hpp"
#include "core/records.hpp"
#include "core/trace_io.hpp"

namespace ap::prof::analysis {

/// The region a straggler's step cost (and hence the fleet's wait) is
/// attributed to.
enum class Component : int { main, proc, comm };
[[nodiscard]] std::string_view to_string(Component c);

/// One reconstructed superstep of the global timeline.
struct StepStat {
  std::uint32_t epoch = 0;
  std::uint32_t step = 0;
  /// Reconstructed step duration: max over present PEs of work().
  std::uint64_t duration = 0;
  /// Reconstructed release time W(k): cumulative duration up to and
  /// including this step.
  std::uint64_t release = 0;
  /// The PE whose work equals `duration` (lowest PE wins ties) — the PE
  /// every other PE waited on.
  int straggler_pe = -1;
  /// The dominant component of the straggler's work.
  Component gate = Component::main;
  /// Sum over non-straggler PEs of their reconstructed wait.
  std::uint64_t total_wait = 0;
  /// The PEs' records for this step, sorted by PE (a PE killed before this
  /// barrier is absent), with `wait` parallel to `recs`.
  std::vector<SuperstepRecord> recs;
  std::vector<std::uint64_t> wait;
};

/// One entry of the what-if ranking: "shave `factor` off this PE's
/// component, re-run the reconstruction".
struct WhatIf {
  int pe = -1;
  Component component = Component::main;
  double factor = 0.0;
  std::uint64_t new_total = 0;
  double speedup_pct = 0.0;  ///< 100 * (total - new_total) / total
};

struct Options {
  /// Fractional reduction the what-if model applies (0.2 = "20% faster").
  double what_if_factor = 0.2;
  /// Keep only the most promising what-ifs.
  std::size_t max_what_ifs = 5;
};

struct Analysis {
  int num_pes = 0;
  std::vector<StepStat> steps;  ///< global (epoch, step) order
  /// Reconstructed BSP makespan: sum of step durations.
  std::uint64_t total_cycles = 0;
  /// Critical-path attribution: cycles of the run each PE gated (sum of
  /// durations of the steps where it was the straggler).
  std::vector<std::uint64_t> gated_cycles_by_pe;
  /// Same, split by the gating component (indexed by Component).
  std::array<std::uint64_t, 3> gated_cycles_by_component{};
  std::vector<WhatIf> what_ifs;  ///< sorted by speedup, best first
};

/// Reconstruct the global superstep timeline from a loaded trace dir
/// (uses TraceDir::steps; every other field is ignored).
[[nodiscard]] Analysis analyze(const io::TraceDir& t,
                               const Options& opts = {});

/// Human-readable report: per-superstep table, barrier-wait attribution,
/// the critical path, and the what-if ranking.
void write_text(std::ostream& os, const Analysis& a);
/// Machine-readable report. Byte-stable for identical inputs (fixed-width
/// fractional formatting), so determinism tests can compare it verbatim.
void write_json(std::ostream& os, const Analysis& a);

// ---- run-to-run diff -------------------------------------------------------

/// One (epoch, step)-aligned pair of step durations.
struct StepDelta {
  std::uint32_t epoch = 0;
  std::uint32_t step = 0;
  bool in_a = false, in_b = false;
  std::uint64_t duration_a = 0, duration_b = 0;
  /// b/a - 1 (0 when a is missing or zero); > threshold means regressed.
  [[nodiscard]] double rel_change() const {
    if (!in_a || !in_b || duration_a == 0) return 0.0;
    return static_cast<double>(duration_b) /
               static_cast<double>(duration_a) -
           1.0;
  }
};

struct Diff {
  double threshold = 0.10;  ///< fractional regression gate
  std::uint64_t total_a = 0, total_b = 0;
  std::vector<StepDelta> steps;  ///< (epoch, step) order, union of both runs
  /// Steps present in both runs whose duration grew beyond the threshold.
  [[nodiscard]] std::vector<StepDelta> regressions() const;
  /// True when any step — or the reconstructed total — regressed beyond
  /// the threshold. What `actorprof diff` gates its exit code on.
  [[nodiscard]] bool any_regression() const;
};

/// Epoch-align two analyses and compare per-superstep durations.
[[nodiscard]] Diff diff(const Analysis& a, const Analysis& b,
                        double threshold = 0.10);

void write_diff_text(std::ostream& os, const Diff& d);
void write_diff_json(std::ostream& os, const Diff& d);

// ---- advisor bridge --------------------------------------------------------

/// Advisor findings derived from the reconstruction: a BarrierWait finding
/// for the worst gating (PE, superstep, component), plus one per further
/// PE whose gated share of the run passes `notice_share`.
[[nodiscard]] std::vector<Finding> barrier_wait_findings(
    const Analysis& a, double notice_share = 0.10,
    double warning_share = 0.25);

}  // namespace ap::prof::analysis
