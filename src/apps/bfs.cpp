#include "apps/bfs.hpp"

#include <deque>

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "papi/papi.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

std::vector<std::int64_t> bfs_serial(const graph::Csr& adj,
                                     graph::Vertex root) {
  std::vector<std::int64_t> level(
      static_cast<std::size_t>(adj.num_vertices()), -1);
  std::deque<graph::Vertex> q;
  level[static_cast<std::size_t>(root)] = 0;
  q.push_back(root);
  while (!q.empty()) {
    const graph::Vertex u = q.front();
    q.pop_front();
    for (graph::Vertex v : adj.neighbors(u)) {
      if (level[static_cast<std::size_t>(v)] < 0) {
        level[static_cast<std::size_t>(v)] =
            level[static_cast<std::size_t>(u)] + 1;
        q.push_back(v);
      }
    }
  }
  return level;
}

BfsResult bfs_actor(const graph::Csr& adj, graph::Vertex root,
                    prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const int n = shmem::n_pes();
  const graph::Vertex nv = adj.num_vertices();
  const std::size_t local_slots =
      static_cast<std::size_t>((nv - me + n - 1) / n);

  BfsResult r;
  r.local_level.assign(local_slots, -1);
  std::vector<graph::Vertex> frontier;

  auto owner = [n](graph::Vertex v) { return static_cast<int>(v % n); };
  auto slot = [n](graph::Vertex v) {
    return static_cast<std::size_t>(v / n);
  };

  if (owner(root) == me) {
    r.local_level[slot(root)] = 0;
    frontier.push_back(root);
  }

  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();

  std::int64_t level = 0;
  for (;;) {
    std::vector<graph::Vertex> next;
    // One FA-BSP superstep: expand the frontier.
    actor::Actor<std::int64_t> visit;
    visit.mb[0].process = [&](std::int64_t v64, int) {
      const auto v = static_cast<graph::Vertex>(v64);
      if (r.local_level[slot(v)] < 0) {
        r.local_level[slot(v)] = level + 1;
        next.push_back(v);
      }
    };
    hclib::finish([&] {
      visit.start();
      for (graph::Vertex u : frontier) {
        papi::account_loop_iters(adj.degree(u));
        for (graph::Vertex v : adj.neighbors(u))
          visit.send(static_cast<std::int64_t>(v), owner(v));
      }
      visit.done(0);
    });
    frontier = std::move(next);
    const std::int64_t frontier_total =
        shmem::sum_reduce(static_cast<std::int64_t>(frontier.size()));
    ++level;
    if (frontier_total == 0) break;
  }

  if (profiler != nullptr) profiler->epoch_end();
  shmem::barrier_all();

  std::int64_t reached_local = 0;
  std::int64_t max_level_local = -1;
  for (std::int64_t l : r.local_level) {
    if (l >= 0) {
      ++reached_local;
      max_level_local = std::max(max_level_local, l);
    }
  }
  r.reached = shmem::sum_reduce(reached_local);
  r.levels = shmem::max_reduce(max_level_local) + 1;
  return r;
}

}  // namespace ap::apps
