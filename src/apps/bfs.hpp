// Level-synchronous distributed BFS with actors — one of the irregular
// applications the paper's introduction motivates (graph500-style).
//
// Vertices are distributed 1D-cyclic. Each level is one FA-BSP superstep:
// frontier owners push "visit v" messages to the owners of the neighbors;
// handlers claim unvisited vertices (no atomics — handlers are serial per
// PE) and build the next frontier.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

struct BfsResult {
  /// level[v] for vertices owned by this PE (cyclic: v % n_pes == my_pe);
  /// -1 for unreachable. Indexed by local slot v / n_pes.
  std::vector<std::int64_t> local_level;
  std::int64_t reached = 0;  // global number of reached vertices
  std::int64_t levels = 0;   // eccentricity of the root + 1
};

/// SPMD. `adj` must be the full symmetric adjacency.
BfsResult bfs_actor(const graph::Csr& adj, graph::Vertex root,
                    prof::Profiler* profiler = nullptr);

/// Serial reference BFS levels (ground truth).
std::vector<std::int64_t> bfs_serial(const graph::Csr& adj,
                                     graph::Vertex root);

}  // namespace ap::apps
