#include "apps/histogram.hpp"

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "graph/rmat.hpp"  // SplitMix64
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

namespace {
/// The MyActor of Listing 2.
class HistoActor final : public actor::Actor<std::int64_t> {
 public:
  explicit HistoActor(std::vector<std::int64_t>* larray) : larray_(larray) {
    mb[0].process = [this](std::int64_t idx, int sender_rank) {
      (void)sender_rank;
      (*larray_)[static_cast<std::size_t>(idx)] += 1;  // no atomics
    };
  }

 private:
  std::vector<std::int64_t>* larray_;
};
}  // namespace

HistogramResult histogram_actor(std::size_t buckets_per_pe,
                                std::size_t updates_per_pe,
                                std::uint64_t seed,
                                prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const int n = shmem::n_pes();
  HistogramResult r;
  r.local_buckets.assign(buckets_per_pe, 0);

  HistoActor actor_obj(&r.local_buckets);
  graph::SplitMix64 rng(seed + static_cast<std::uint64_t>(me) * 0x9E37ull);

  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();
  hclib::finish([&] {
    actor_obj.start();
    const std::uint64_t global_buckets =
        static_cast<std::uint64_t>(n) * buckets_per_pe;
    for (std::size_t i = 0; i < updates_per_pe; ++i) {
      const std::uint64_t g = rng.next_below(global_buckets);
      const int dst = static_cast<int>(g % static_cast<std::uint64_t>(n));
      const std::int64_t idx =
          static_cast<std::int64_t>(g / static_cast<std::uint64_t>(n));
      actor_obj.send(idx, dst);
    }
    actor_obj.done(0);
  });
  if (profiler != nullptr) profiler->epoch_end();
  shmem::barrier_all();

  r.sends = actor_obj.conveyor(0).stats().pushed;
  std::int64_t local = 0;
  for (std::int64_t b : r.local_buckets) local += b;
  r.global_updates = shmem::sum_reduce(local);
  return r;
}

}  // namespace ap::apps
