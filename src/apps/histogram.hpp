// Distributed histogram — the paper's Listing 1/2 program and bale's
// classic "histo" kernel: every PE fires random increments at remote
// array slots; handlers bump local counters without atomics.
#pragma once

#include <cstdint>
#include <vector>

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

struct HistogramResult {
  /// This PE's local bucket array after the run.
  std::vector<std::int64_t> local_buckets;
  std::uint64_t sends = 0;
  /// Sum over all PEs of all buckets (== total updates globally).
  std::int64_t global_updates = 0;
};

/// SPMD: each PE sends `updates_per_pe` increments to pseudo-random
/// (seeded, deterministic) global bucket indices; bucket g lives on
/// PE g % n_pes at slot g / n_pes.
HistogramResult histogram_actor(std::size_t buckets_per_pe,
                                std::size_t updates_per_pe,
                                std::uint64_t seed = 0xB16B00B5,
                                prof::Profiler* profiler = nullptr);

}  // namespace ap::apps
