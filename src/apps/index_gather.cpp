#include "apps/index_gather.hpp"

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "graph/rmat.hpp"  // SplitMix64
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

namespace {

struct IgMsg {
  std::int64_t payload;  // request: local table slot; reply: value
  std::int32_t slot;     // requester-side result slot
  std::int32_t pad = 0;
};

/// mb0 = requests (handled by the table owner), mb1 = replies.
class IgSelector final : public actor::Selector<2, IgMsg> {
 public:
  IgSelector(const std::vector<std::int64_t>& table,
             std::vector<std::int64_t>* results)
      : table_(table), results_(results) {
    mb[0].process = [this](IgMsg m, int sender_rank) {
      const std::int64_t value =
          table_[static_cast<std::size_t>(m.payload)];
      send(1, IgMsg{value, m.slot}, sender_rank);
    };
    mb[1].process = [this](IgMsg m, int) {
      (*results_)[static_cast<std::size_t>(m.slot)] = m.payload;
    };
  }

 private:
  const std::vector<std::int64_t>& table_;
  std::vector<std::int64_t>* results_;
};

}  // namespace

IndexGatherResult index_gather_actor(std::size_t table_per_pe,
                                     std::size_t requests_per_pe,
                                     std::uint64_t seed,
                                     prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const int n = shmem::n_pes();

  // Local slice of the table: global entry g = me + n*slot, value 3g+1.
  std::vector<std::int64_t> table(table_per_pe);
  for (std::size_t s = 0; s < table_per_pe; ++s)
    table[s] = 3 * (static_cast<std::int64_t>(s) * n + me) + 1;

  IndexGatherResult r;
  r.values.assign(requests_per_pe, -1);

  IgSelector sel(table, &r.values);
  graph::SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(me) << 32));

  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();
  hclib::finish([&] {
    sel.start();
    const std::uint64_t global = static_cast<std::uint64_t>(n) * table_per_pe;
    for (std::size_t i = 0; i < requests_per_pe; ++i) {
      const std::uint64_t g = rng.next_below(global);
      const int owner = static_cast<int>(g % static_cast<std::uint64_t>(n));
      const std::int64_t slot_on_owner =
          static_cast<std::int64_t>(g / static_cast<std::uint64_t>(n));
      sel.send(0, IgMsg{slot_on_owner, static_cast<std::int32_t>(i)}, owner);
    }
    sel.done(0);
    // done(1) fires automatically when mailbox 0 terminates globally.
  });
  if (profiler != nullptr) profiler->epoch_end();
  shmem::barrier_all();

  r.requests = sel.conveyor(0).stats().pushed;
  r.replies = sel.handled(1);
  return r;
}

}  // namespace ap::apps
