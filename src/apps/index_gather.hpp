// Index-gather ("ig") — the second classic bale kernel: each PE holds a
// table slice and a list of random global indices; for every index it asks
// the owner (mailbox 0) and the owner replies with the value (mailbox 1).
// A two-mailbox request/reply Selector — the pattern that exercises
// dependent-mailbox termination chaining.
#pragma once

#include <cstdint>
#include <vector>

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

struct IndexGatherResult {
  /// Gathered values, one per requested index, in request order.
  std::vector<std::int64_t> values;
  std::uint64_t requests = 0;
  std::uint64_t replies = 0;
};

/// SPMD. The global table has n_pes * table_per_pe entries; entry g holds
/// the value 3*g+1 (bale's convention) and lives on PE g % n_pes.
IndexGatherResult index_gather_actor(std::size_t table_per_pe,
                                     std::size_t requests_per_pe,
                                     std::uint64_t seed = 0xDEC0DE,
                                     prof::Profiler* profiler = nullptr);

}  // namespace ap::apps
