#include "apps/influence_max.hpp"

#include <algorithm>
#include <cmath>

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

namespace {

/// Discounted degree of DegreeDiscount: dd = d - 2t - (d - t) * t * p.
double discounted_degree(std::size_t degree, std::int64_t t, double p) {
  const double d = static_cast<double>(degree);
  const double td = static_cast<double>(t);
  return d - 2.0 * td - (d - td) * td * p;
}

/// Pack (dd, vertex) into one int64 for deterministic max-reduction:
/// higher dd wins; ties break toward the smaller vertex id.
std::int64_t pack_candidate(double dd, graph::Vertex v,
                            graph::Vertex num_vertices) {
  // dd is bounded by the max degree; scale to keep 3 fractional digits.
  const auto scaled =
      static_cast<std::int64_t>(std::llround(dd * 1000.0)) + (1ll << 40);
  return scaled * (num_vertices + 1) + (num_vertices - v);
}

graph::Vertex unpack_vertex(std::int64_t packed,
                            graph::Vertex num_vertices) {
  return num_vertices - packed % (num_vertices + 1);
}

}  // namespace

std::vector<graph::Vertex> influence_max_serial(
    const graph::Csr& adj, const InfluenceMaxOptions& opts) {
  const graph::Vertex n = adj.num_vertices();
  std::vector<std::int64_t> t(static_cast<std::size_t>(n), 0);
  std::vector<bool> selected(static_cast<std::size_t>(n), false);
  std::vector<graph::Vertex> seeds;
  const int k = std::min<std::int64_t>(opts.seeds, n);
  for (int round = 0; round < k; ++round) {
    std::int64_t best = INT64_MIN;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (selected[static_cast<std::size_t>(v)]) continue;
      const double dd = discounted_degree(
          adj.degree(v), t[static_cast<std::size_t>(v)], opts.propagation);
      best = std::max(best, pack_candidate(dd, v, n));
    }
    const graph::Vertex s = unpack_vertex(best, n);
    selected[static_cast<std::size_t>(s)] = true;
    seeds.push_back(s);
    for (graph::Vertex u : adj.neighbors(s))
      if (!selected[static_cast<std::size_t>(u)])
        t[static_cast<std::size_t>(u)]++;
  }
  return seeds;
}

InfluenceMaxResult influence_max_actor(const graph::Csr& adj,
                                       const InfluenceMaxOptions& opts,
                                       prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const int n_ranks = shmem::n_pes();
  const graph::Vertex n = adj.num_vertices();
  auto owner = [n_ranks](graph::Vertex v) {
    return static_cast<int>(v % n_ranks);
  };

  std::vector<std::int64_t> t(static_cast<std::size_t>(n), 0);  // local rows only
  std::vector<bool> selected(static_cast<std::size_t>(n), false);

  InfluenceMaxResult res;
  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();

  const int k = static_cast<int>(std::min<std::int64_t>(opts.seeds, n));
  for (int round = 0; round < k; ++round) {
    // Local best over owned, unselected vertices.
    std::int64_t local_best = INT64_MIN;
    for (graph::Vertex v = me; v < n; v += n_ranks) {
      if (selected[static_cast<std::size_t>(v)]) continue;
      const double dd = discounted_degree(
          adj.degree(v), t[static_cast<std::size_t>(v)], opts.propagation);
      local_best = std::max(local_best, pack_candidate(dd, v, n));
    }
    const std::int64_t global_best = shmem::max_reduce(local_best);
    const graph::Vertex s = unpack_vertex(global_best, n);
    selected[static_cast<std::size_t>(s)] = true;
    res.seeds.push_back(s);

    // The winner's owner fans out discount updates to neighbor owners.
    actor::Actor<std::int64_t> discount;
    discount.mb[0].process = [&](std::int64_t v64, int) {
      const auto v = static_cast<graph::Vertex>(v64);
      if (!selected[static_cast<std::size_t>(v)])
        t[static_cast<std::size_t>(v)]++;
    };
    hclib::finish([&] {
      discount.start();
      if (owner(s) == me) {
        for (graph::Vertex u : adj.neighbors(s)) {
          discount.send(static_cast<std::int64_t>(u), owner(u));
          ++res.discount_messages;
        }
      }
      discount.done(0);
    });
  }

  if (profiler != nullptr) profiler->epoch_end();
  shmem::barrier_all();
  return res;
}

}  // namespace ap::apps
