// Influence maximization — the other workload the paper reports profiling
// with ActorProf (§IV-A, citing the authors' SC'24 IM paper [19]).
//
// We implement the classic DegreeDiscount heuristic (Chen et al., KDD'09)
// distributed over actors: vertices are 1D-cyclic; each of the k rounds
// picks the globally best discounted degree (deterministic tie-break on
// vertex id), and the winner's owner sends discount updates to the owners
// of its neighbors — exactly the small-message fan-out FA-BSP aggregates.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

struct InfluenceMaxOptions {
  int seeds = 10;            ///< k
  double propagation = 0.01;  ///< IC-model edge probability p
};

struct InfluenceMaxResult {
  /// Selected seed vertices in selection order (identical on every PE).
  std::vector<graph::Vertex> seeds;
  std::uint64_t discount_messages = 0;
};

/// SPMD; `adj` is the full symmetric adjacency.
InfluenceMaxResult influence_max_actor(const graph::Csr& adj,
                                       const InfluenceMaxOptions& opts = {},
                                       prof::Profiler* profiler = nullptr);

/// Serial reference (identical arithmetic and tie-breaking).
std::vector<graph::Vertex> influence_max_serial(
    const graph::Csr& adj, const InfluenceMaxOptions& opts = {});

}  // namespace ap::apps
