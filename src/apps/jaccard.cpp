#include "apps/jaccard.hpp"

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "papi/papi.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

namespace {

struct WedgeQuery {
  std::int32_t j;
  std::int32_t k;
  std::int32_t reply_slot;
  std::int32_t pad = 0;
};

/// mb0: "does l_jk exist?" answered by the owner of row j; a hit is
/// replied on mb1, which increments the asker's per-edge counter.
class JaccardSelector final : public actor::Selector<2, WedgeQuery> {
 public:
  JaccardSelector(const graph::Csr& lower,
                  std::vector<std::uint32_t>* common)
      : lower_(lower), common_(common) {
    mb[0].process = [this](WedgeQuery q, int sender_rank) {
      papi::account_random_access(lower_.num_entries() * sizeof(graph::Vertex),
                                  1);
      if (lower_.has_entry(q.j, q.k)) send(1, q, sender_rank);
    };
    mb[1].process = [this](WedgeQuery q, int) {
      (*common_)[static_cast<std::size_t>(q.reply_slot)]++;
    };
  }

 private:
  const graph::Csr& lower_;
  std::vector<std::uint32_t>* common_;
};

}  // namespace

std::vector<double> jaccard_serial(const graph::Csr& lower) {
  std::vector<double> out;
  for (graph::Vertex i = 0; i < lower.num_vertices(); ++i) {
    const auto ni = lower.neighbors(i);
    for (graph::Vertex j : ni) {
      const auto nj = lower.neighbors(j);
      std::size_t x = 0, y = 0, common = 0;
      while (x < ni.size() && y < nj.size()) {
        if (ni[x] < nj[y]) {
          ++x;
        } else if (ni[x] > nj[y]) {
          ++y;
        } else {
          ++common;
          ++x;
          ++y;
        }
      }
      const double uni = static_cast<double>(ni.size() + nj.size() - common);
      out.push_back(uni == 0 ? 0.0 : static_cast<double>(common) / uni);
    }
  }
  return out;
}

JaccardResult jaccard_actor(const graph::Csr& lower,
                            const graph::Distribution& dist,
                            prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const graph::Vertex n = lower.num_vertices();

  // Enumerate this PE's edges (row asc, neighbor asc) -> reply slots.
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges;  // (i, j)
  for (graph::Vertex i = 0; i < n; ++i) {
    if (dist.owner(i) != me) continue;
    for (graph::Vertex j : lower.neighbors(i)) edges.emplace_back(i, j);
  }
  std::vector<std::uint32_t> common(edges.size(), 0);

  JaccardSelector sel(lower, &common);
  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();

  std::uint64_t sent = 0;
  hclib::finish([&] {
    sel.start();
    std::size_t slot = 0;
    for (graph::Vertex i = 0; i < n; ++i) {
      if (dist.owner(i) != me) continue;
      const auto ni = lower.neighbors(i);
      papi::account_loop_iters(ni.size());
      // Slots for this row: neighbors in order.
      for (std::size_t a = 0; a < ni.size(); ++a, ++slot) {
        const graph::Vertex j = ni[a];
        const int pe = dist.owner(j);
        // Common neighbors k of the edge (i, j) satisfy k < j and l_ik=1;
        // ask owner(j) whether l_jk exists for each candidate k.
        for (std::size_t b = 0; b < a; ++b) {
          const graph::Vertex k = ni[b];
          if (k >= j) break;  // neighbors are sorted; k must be < j
          sel.send(0,
                   WedgeQuery{static_cast<std::int32_t>(j),
                              static_cast<std::int32_t>(k),
                              static_cast<std::int32_t>(slot)},
                   pe);
          ++sent;
        }
      }
    }
    sel.done(0);
    // mb1 (replies) terminates via dependent-mailbox chaining.
  });

  if (profiler != nullptr) profiler->epoch_end();
  shmem::barrier_all();

  JaccardResult r;
  r.wedge_messages = sent;
  r.local_similarity.reserve(edges.size());
  for (std::size_t s = 0; s < edges.size(); ++s) {
    const auto [i, j] = edges[s];
    const double uni = static_cast<double>(lower.degree(i) +
                                           lower.degree(j) - common[s]);
    r.local_similarity.push_back(
        uni == 0 ? 0.0 : static_cast<double>(common[s]) / uni);
  }
  return r;
}

}  // namespace ap::apps
