// Distributed Jaccard similarity with actors — one of the workloads the
// paper reports using ActorProf on (§IV-A, citing the ISC'24 genome-
// comparison paper [7]).
//
// For every edge {u, v} of the lower-triangular matrix, compute
//   J(u, v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|
// over the *lower* neighborhoods, with the same wedge-message pattern as
// triangle counting: the owner of row j receives (j, k, edge-slot) and
// checks l_jk, accumulating common-neighbor counts per edge.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/distribution.hpp"

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

struct JaccardResult {
  /// One similarity per locally-owned edge, ordered as (row-major) within
  /// this PE's rows of L.
  std::vector<double> local_similarity;
  std::uint64_t wedge_messages = 0;
};

/// SPMD; every PE passes the same lower-triangular matrix and
/// distribution. Row ownership (dist) decides both which edges a PE
/// reports and who answers wedge queries.
JaccardResult jaccard_actor(const graph::Csr& lower,
                            const graph::Distribution& dist,
                            prof::Profiler* profiler = nullptr);

/// Serial reference, same edge order as the distributed kernel produces
/// when concatenating PEs' edges by row.
std::vector<double> jaccard_serial(const graph::Csr& lower);

}  // namespace ap::apps
