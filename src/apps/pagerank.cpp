#include "apps/pagerank.hpp"

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

std::vector<double> pagerank_serial(const graph::Csr& adj,
                                    const PageRankOptions& opts) {
  const auto n = static_cast<std::size_t>(adj.num_vertices());
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (int it = 0; it < opts.iterations; ++it) {
    double dangling = 0;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t u = 0; u < n; ++u) {
      const auto deg = adj.degree(static_cast<graph::Vertex>(u));
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(deg);
      for (graph::Vertex v : adj.neighbors(static_cast<graph::Vertex>(u)))
        next[static_cast<std::size_t>(v)] += share;
    }
    const double base =
        (1.0 - opts.damping) / static_cast<double>(n) +
        opts.damping * dangling / static_cast<double>(n);
    for (std::size_t v = 0; v < n; ++v)
      next[v] = base + opts.damping * next[v];
    rank.swap(next);
  }
  return rank;
}

PageRankResult pagerank_actor(const graph::Csr& adj,
                              const PageRankOptions& opts,
                              prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const int n_ranks = shmem::n_pes();
  const graph::Vertex nv = adj.num_vertices();
  const std::size_t slots =
      me < nv ? static_cast<std::size_t>((nv - me + n_ranks - 1) / n_ranks)
              : 0;

  auto owner = [n_ranks](graph::Vertex v) {
    return static_cast<int>(v % n_ranks);
  };
  auto slot = [n_ranks](graph::Vertex v) {
    return static_cast<std::size_t>(v / n_ranks);
  };

  PageRankResult r;
  r.local_rank.assign(slots, 1.0 / static_cast<double>(nv));
  std::vector<double> accum(slots, 0.0);

  struct Contribution {
    std::int64_t v;
    double share;
  };

  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();

  for (int it = 0; it < opts.iterations; ++it) {
    std::fill(accum.begin(), accum.end(), 0.0);
    double dangling_local = 0;

    actor::Actor<Contribution> push;
    push.mb[0].process = [&](Contribution c, int) {
      accum[slot(static_cast<graph::Vertex>(c.v))] += c.share;
    };
    hclib::finish([&] {
      push.start();
      for (graph::Vertex u = me; u < nv; u += n_ranks) {
        const auto deg = adj.degree(u);
        const double ru = r.local_rank[slot(u)];
        if (deg == 0) {
          dangling_local += ru;
          continue;
        }
        const double share = ru / static_cast<double>(deg);
        for (graph::Vertex v : adj.neighbors(u))
          push.send(Contribution{static_cast<std::int64_t>(v), share},
                    owner(v));
      }
      push.done(0);
    });

    const double dangling = shmem::sum_reduce(dangling_local);
    const double base =
        (1.0 - opts.damping) / static_cast<double>(nv) +
        opts.damping * dangling / static_cast<double>(nv);
    for (std::size_t s = 0; s < slots; ++s)
      r.local_rank[s] = base + opts.damping * accum[s];
  }

  if (profiler != nullptr) profiler->epoch_end();
  shmem::barrier_all();

  double local_sum = 0;
  for (double x : r.local_rank) local_sum += x;
  r.global_sum = shmem::sum_reduce(local_sum);
  return r;
}

}  // namespace ap::apps
