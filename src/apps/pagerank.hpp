// Distributed PageRank with actors (push-style power iteration).
//
// Vertices are 1D-cyclic. Each iteration is one FA-BSP superstep: every
// owner pushes rank(u)/outdeg(u) contributions to the owners of u's
// neighbors; handlers accumulate into the next-rank vector (serial per PE,
// no atomics). Dangling mass and the damping factor follow the standard
// formulation, so the result matches a serial reference to floating-point
// tolerance.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

struct PageRankOptions {
  int iterations = 20;
  double damping = 0.85;
};

struct PageRankResult {
  /// rank[slot] for locally-owned vertices (v % n_pes == my_pe).
  std::vector<double> local_rank;
  double global_sum = 0;  // should stay ~1.0
};

/// SPMD. `adj` is the full symmetric adjacency (directed both ways).
PageRankResult pagerank_actor(const graph::Csr& adj,
                              const PageRankOptions& opts = {},
                              prof::Profiler* profiler = nullptr);

/// Serial reference with identical iteration count.
std::vector<double> pagerank_serial(const graph::Csr& adj,
                                    const PageRankOptions& opts = {});

}  // namespace ap::apps
