#include "apps/randperm.hpp"

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "graph/rmat.hpp"  // SplitMix64
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

namespace {
struct Dart {
  std::int64_t value;
  std::int64_t slot;  // global board slot
};
}  // namespace

RandPermResult random_permutation_actor(std::size_t per_pe,
                                        std::uint64_t seed,
                                        prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const int n = shmem::n_pes();
  const std::int64_t board_size =
      static_cast<std::int64_t>(per_pe) * static_cast<std::int64_t>(n);

  RandPermResult r;
  r.local_perm.assign(per_pe, -1);  // board slice: slot t lives at t/n on t%n

  // The values this PE must place (cyclic ownership of the value space).
  std::vector<std::int64_t> pending;
  for (std::int64_t v = me; v < board_size; v += n) pending.push_back(v);

  graph::SplitMix64 rng(seed ^ (static_cast<std::uint64_t>(me) * 0x51ED270Bull));

  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();

  // Round-based dart throwing: each round is one FA-BSP superstep; darts
  // rejected (slot already taken) are re-thrown next round.
  for (;;) {
    const std::int64_t remaining =
        shmem::sum_reduce(static_cast<std::int64_t>(pending.size()));
    if (remaining == 0) break;

    std::vector<std::int64_t> rejected;
    actor::Selector<2, Dart> sel;
    sel.mb[0].process = [&](Dart d, int sender_rank) {
      const auto idx = static_cast<std::size_t>(d.slot / n);
      if (r.local_perm[idx] < 0) {
        r.local_perm[idx] = d.value;  // dart sticks
      } else {
        sel.send(1, d, sender_rank);  // bounce it back
      }
    };
    sel.mb[1].process = [&](Dart d, int) {
      rejected.push_back(d.value);
      ++r.rejections;
    };
    hclib::finish([&] {
      sel.start();
      for (std::int64_t v : pending) {
        const auto t = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(board_size)));
        sel.send(0, Dart{v, t}, static_cast<int>(t % n));
        ++r.darts_thrown;
      }
      sel.done(0);
    });
    pending = std::move(rejected);
  }

  if (profiler != nullptr) profiler->epoch_end();
  shmem::barrier_all();
  return r;
}

}  // namespace ap::apps
