// Distributed random permutation — bale's "randperm" kernel, the classic
// dart-board algorithm: every PE throws darts (candidate values) at random
// slots of a distributed board; the slot owner accepts the first dart and
// rejects the rest, and rejected darts are re-thrown. A two-mailbox
// request/reply selector with data-dependent retries — heavier on the
// termination protocol than histogram or ig.
#pragma once

#include <cstdint>
#include <vector>

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

struct RandPermResult {
  /// This PE's slice of the permutation: slot s holds perm[s * n_pes + me].
  std::vector<std::int64_t> local_perm;
  std::uint64_t darts_thrown = 0;  // includes re-throws
  std::uint64_t rejections = 0;
};

/// SPMD. Builds a random permutation of [0, n_pes*per_pe) distributed
/// cyclically. Deterministic for a given seed.
RandPermResult random_permutation_actor(std::size_t per_pe,
                                        std::uint64_t seed = 0x9E3779B9,
                                        prof::Profiler* profiler = nullptr);

}  // namespace ap::apps
