#include "apps/toposort.hpp"

#include <numeric>
#include <stdexcept>

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

SparseMatrix make_morally_triangular(std::int64_t n, double extra_per_row,
                                     std::uint64_t seed) {
  graph::SplitMix64 rng(seed);
  // Random permutations for rows and columns.
  auto random_perm = [&rng, n] {
    std::vector<std::int64_t> p(static_cast<std::size_t>(n));
    std::iota(p.begin(), p.end(), std::int64_t{0});
    for (std::size_t i = p.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
      std::swap(p[i - 1], p[j]);
    }
    return p;
  };
  const auto pr = random_perm();
  const auto pc = random_perm();

  SparseMatrix m;
  m.n = n;
  m.rows.resize(static_cast<std::size_t>(n));
  const std::uint64_t extra_threshold = static_cast<std::uint64_t>(
      extra_per_row / static_cast<double>(n) * 18446744073709551615.0);
  for (std::int64_t i = 0; i < n; ++i) {
    // Unit diagonal guarantees the sort succeeds.
    m.rows[static_cast<std::size_t>(pr[static_cast<std::size_t>(i)])]
        .push_back(pc[static_cast<std::size_t>(i)]);
    for (std::int64_t j = i + 1; j < n; ++j) {
      if (rng.next() < extra_threshold) {
        m.rows[static_cast<std::size_t>(pr[static_cast<std::size_t>(i)])]
            .push_back(pc[static_cast<std::size_t>(j)]);
      }
    }
  }
  return m;
}

namespace {
struct Decrement {
  std::int64_t row;
  std::int64_t col;
};
}  // namespace

TopoResult toposort_actor(const SparseMatrix& m, prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const int n_ranks = shmem::n_pes();
  const std::int64_t n = m.n;

  auto owner_row = [n_ranks](std::int64_t r) {
    return static_cast<int>(r % n_ranks);
  };
  auto owner_col = [n_ranks](std::int64_t c) {
    return static_cast<int>(c % n_ranks);
  };

  // Local row state: remaining count + sum of remaining column indices
  // (the bale trick: when count == 1 the sum IS the last column).
  std::vector<std::int64_t> row_cnt(static_cast<std::size_t>(n), 0);
  std::vector<std::int64_t> row_sum(static_cast<std::size_t>(n), 0);
  // Transpose lists: which rows use column c. The input matrix is shared
  // read-only in our single-process simulation, so every PE can build the
  // full transpose; in a genuinely distributed setting this slice would
  // live on owner_col(c) and the eliminator would route one fan-out
  // request there instead.
  std::vector<std::vector<std::int64_t>> col_rows(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c : m.rows[static_cast<std::size_t>(r)]) {
      if (owner_row(r) == me) {
        row_cnt[static_cast<std::size_t>(r)]++;
        row_sum[static_cast<std::size_t>(r)] += c;
      }
      col_rows[static_cast<std::size_t>(c)].push_back(r);
    }
  }

  // Symmetric state: the global position counter (on PE0) and the
  // gathered permutations (every PE holds full arrays; owners write their
  // entries via puts — n is modest in our workloads).
  shmem::SymmArray<std::int64_t> counter(1);
  shmem::SymmArray<std::int64_t> rperm(static_cast<std::size_t>(n));
  shmem::SymmArray<std::int64_t> cperm(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    rperm[static_cast<std::size_t>(i)] = -1;
    cperm[static_cast<std::size_t>(i)] = -1;
  }
  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();

  std::vector<std::int64_t> pending;  // locally-owned degree-1 rows
  for (std::int64_t r = me; r < n; r += n_ranks)
    if (row_cnt[static_cast<std::size_t>(r)] == 1) pending.push_back(r);

  TopoResult res;
  res.rperm.assign(static_cast<std::size_t>(n), -1);
  res.cperm.assign(static_cast<std::size_t>(n), -1);

  for (;;) {
    const std::int64_t wave_size =
        shmem::sum_reduce(static_cast<std::int64_t>(pending.size()));
    if (wave_size == 0) break;
    ++res.waves;

    std::vector<std::int64_t> next_pending;
    actor::Actor<Decrement> dec;
    dec.mb[0].process = [&](Decrement d, int) {
      auto& cnt = row_cnt[static_cast<std::size_t>(d.row)];
      if (cnt <= 0) return;  // row already eliminated
      --cnt;
      row_sum[static_cast<std::size_t>(d.row)] -= d.col;
      if (cnt == 1) next_pending.push_back(d.row);
    };
    hclib::finish([&] {
      dec.start();
      for (std::int64_t r : pending) {
        const std::int64_t c = row_sum[static_cast<std::size_t>(r)];
        row_cnt[static_cast<std::size_t>(r)] = 0;
        const std::int64_t pos =
            n - 1 - shmem::atomic_fetch_add(&counter[0], 1, 0);
        // Record the pair; owners publish into the gathered arrays.
        shmem::put(&rperm[static_cast<std::size_t>(r)], &pos, sizeof pos,
                   owner_row(r));
        shmem::put(&cperm[static_cast<std::size_t>(c)], &pos, sizeof pos,
                   owner_col(c));
        // Column c is gone: decrement every other row that used it.
        for (std::int64_t rr : col_rows[static_cast<std::size_t>(c)]) {
          if (rr == r) continue;
          dec.send(Decrement{rr, c}, owner_row(rr));
          ++res.decrement_messages;
        }
      }
      dec.done(0);
    });
    pending = std::move(next_pending);
  }

  if (profiler != nullptr) profiler->epoch_end();
  // Publish all perm entries everywhere: owners hold the authoritative
  // values; broadcast by summing the (-1 aware) arrays is messy, so each
  // owner puts its entries to every PE.
  shmem::barrier_all();
  for (std::int64_t i = 0; i < n; ++i) {
    if (owner_row(i) == me && rperm[static_cast<std::size_t>(i)] >= 0) {
      const std::int64_t v = rperm[static_cast<std::size_t>(i)];
      for (int p = 0; p < n_ranks; ++p)
        if (p != me)
          shmem::put(&rperm[static_cast<std::size_t>(i)], &v,
                     sizeof(std::int64_t), p);
    }
    if (owner_col(i) == me && cperm[static_cast<std::size_t>(i)] >= 0) {
      const std::int64_t v = cperm[static_cast<std::size_t>(i)];
      for (int p = 0; p < n_ranks; ++p)
        if (p != me)
          shmem::put(&cperm[static_cast<std::size_t>(i)], &v,
                     sizeof(std::int64_t), p);
    }
  }
  shmem::barrier_all();

  for (std::int64_t i = 0; i < n; ++i) {
    res.rperm[static_cast<std::size_t>(i)] = rperm[static_cast<std::size_t>(i)];
    res.cperm[static_cast<std::size_t>(i)] = cperm[static_cast<std::size_t>(i)];
    if (res.rperm[static_cast<std::size_t>(i)] < 0 ||
        res.cperm[static_cast<std::size_t>(i)] < 0)
      throw std::runtime_error(
          "toposort: matrix is not morally upper-triangular");
  }
  return res;
}

bool toposort_valid(const SparseMatrix& m, const TopoResult& res) {
  const auto n = static_cast<std::size_t>(m.n);
  if (res.rperm.size() != n || res.cperm.size() != n) return false;
  std::vector<bool> seen_r(n, false), seen_c(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t pr = res.rperm[i], pc = res.cperm[i];
    if (pr < 0 || pr >= m.n || pc < 0 || pc >= m.n) return false;
    if (seen_r[static_cast<std::size_t>(pr)]) return false;
    if (seen_c[static_cast<std::size_t>(pc)]) return false;
    seen_r[static_cast<std::size_t>(pr)] = true;
    seen_c[static_cast<std::size_t>(pc)] = true;
  }
  for (std::int64_t r = 0; r < m.n; ++r)
    for (std::int64_t c : m.rows[static_cast<std::size_t>(r)])
      if (res.rperm[static_cast<std::size_t>(r)] >
          res.cperm[static_cast<std::size_t>(c)])
        return false;
  return true;
}

}  // namespace ap::apps
