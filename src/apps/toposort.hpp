// Distributed toposort — the third classic bale kernel (paper ref [22]):
// given a "morally upper-triangular" sparse matrix (an upper-triangular
// matrix with unit diagonal whose rows and columns were scrambled by
// unknown permutations), find row/column permutations that restore the
// upper-triangular form.
//
// The algorithm peels degree-1 rows: such a row's single remaining column
// is paired with it and both get the next position from a global counter
// (shmem atomic); eliminating the column decrements the counts of every
// row that uses it — those decrements are the asynchronous messages — and
// rows that reach degree 1 form the next wave. The classic row_sum trick
// (keep the sum of remaining column indices) identifies the last column
// without storing per-row column sets.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/rmat.hpp"

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

/// A sparse 0/1 matrix as row-major coordinate lists (row -> columns).
struct SparseMatrix {
  std::int64_t n = 0;
  std::vector<std::vector<std::int64_t>> rows;

  [[nodiscard]] std::size_t nnz() const {
    std::size_t t = 0;
    for (const auto& r : rows) t += r.size();
    return t;
  }
};

/// Build an upper-triangular matrix with unit diagonal and ~extra random
/// entries per row, then scramble it with random row/col permutations.
/// Deterministic for a seed.
SparseMatrix make_morally_triangular(std::int64_t n, double extra_per_row,
                                     std::uint64_t seed);

struct TopoResult {
  /// rperm[r] / cperm[c]: the position assigned to row r / column c
  /// (gathered on every PE for convenience; the kernel itself is
  /// distributed). Applying them makes the matrix upper triangular.
  std::vector<std::int64_t> rperm;
  std::vector<std::int64_t> cperm;
  std::int64_t waves = 0;
  std::uint64_t decrement_messages = 0;
};

/// SPMD: every PE passes the same matrix; rows and columns are owned
/// cyclically. Throws if the matrix is not morally upper-triangular.
TopoResult toposort_actor(const SparseMatrix& m,
                          prof::Profiler* profiler = nullptr);

/// Check the result: rperm/cperm are permutations and every nonzero
/// (r, c) satisfies rperm[r] <= cperm[c] (upper triangular after
/// permutation).
bool toposort_valid(const SparseMatrix& m, const TopoResult& res);

}  // namespace ap::apps
