#include "apps/triangle.hpp"

#include "actor/selector.hpp"
#include "core/profiler.hpp"
#include "papi/papi.hpp"
#include "runtime/finish.hpp"
#include "shmem/shmem.hpp"

namespace ap::apps {

namespace {

/// Message of Algorithm 1: "does edge l_jk exist?" Packed as two 32-bit
/// halves — the paper stresses that FA-BSP messages are 8–32 bytes.
struct EdgeQuery {
  std::int32_t j;
  std::int32_t k;
};

class TriangleActor final : public actor::Actor<EdgeQuery> {
 public:
  TriangleActor(const graph::Csr& lower, std::int64_t* counter,
                const convey::Options& opts)
      : actor::Actor<EdgeQuery>(opts), lower_(lower), counter_(counter) {
    mb[0].process = [this](EdgeQuery q, int sender_rank) {
      (void)sender_rank;
      // ACTORPROCESS(j, k): if l_jk exists, count one triangle. The binary
      // search over row j is charged to the cost model as irregular access
      // over this PE's share of L.
      papi::account_random_access(lower_.num_entries() * sizeof(graph::Vertex),
                                  1);
      if (lower_.has_entry(q.j, q.k)) ++*counter_;
    };
  }

 private:
  const graph::Csr& lower_;
  std::int64_t* counter_;
};

}  // namespace

TriangleResult count_triangles_actor(const graph::Csr& lower,
                                     const graph::Distribution& dist,
                                     prof::Profiler* profiler) {
  return count_triangles_actor(lower, dist, convey::Options{}, profiler);
}

TriangleResult count_triangles_actor(const graph::Csr& lower,
                                     const graph::Distribution& dist,
                                     const convey::Options& conveyor_options,
                                     prof::Profiler* profiler) {
  const int me = shmem::my_pe();
  const graph::Vertex n = lower.num_vertices();

  std::int64_t local_count = 0;
  TriangleActor triangle_actor(lower, &local_count, conveyor_options);

  shmem::barrier_all();
  if (profiler != nullptr) profiler->epoch_begin();

  hclib::finish([&] {
    triangle_actor.start();
    for (graph::Vertex i = 0; i < n; ++i) {
      if (dist.owner(i) != me) continue;
      const auto ni = lower.neighbors(i);
      papi::account_loop_iters(ni.size());
      // Two distinct neighbors l_ij, l_ik with k < j.
      for (std::size_t a = 1; a < ni.size(); ++a) {
        const graph::Vertex j = ni[a];
        const int pe = dist.owner(j);  // FINDOWNER(l_jk): row owner of j
        for (std::size_t b = 0; b < a; ++b) {
          const graph::Vertex k = ni[b];
          triangle_actor.send(EdgeQuery{static_cast<std::int32_t>(j),
                                        static_cast<std::int32_t>(k)},
                              pe);
        }
      }
    }
    triangle_actor.done(0);
  });

  if (profiler != nullptr) profiler->epoch_end();
  shmem::barrier_all();

  TriangleResult r;
  r.triangles = shmem::sum_reduce(local_count);
  r.sends = triangle_actor.conveyor(0).stats().pushed;
  r.handled = triangle_actor.handled(0);
  return r;
}

}  // namespace ap::apps
