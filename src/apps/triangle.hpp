// Distributed triangle counting with actors — the paper's Algorithm 1 and
// the workload of its whole evaluation (§IV).
//
// Each PE owns the rows of the lower-triangular matrix L assigned by the
// data distribution. For every local vertex i and every neighbor pair
// (j, k) with k < j, an asynchronous message (j, k) goes to the owner of
// row j; the handler checks l_jk and bumps a local counter. The result is
// the all-reduce of the per-PE counters, validated against the serial
// reference (the paper validates "the number of triangles obtained by the
// application with the theoretical answer").
#pragma once

#include <cstdint>

#include "conveyor/conveyor.hpp"
#include "graph/csr.hpp"
#include "graph/distribution.hpp"

namespace ap::prof {
class Profiler;
}

namespace ap::apps {

struct TriangleResult {
  std::int64_t triangles = 0;
  /// Messages this PE sent / handled (from the actor runtime).
  std::uint64_t sends = 0;
  std::uint64_t handled = 0;
};

/// Run the triangle-counting kernel on the calling PE (SPMD: every PE must
/// call with the same arguments). `lower` is the full L, shared read-only
/// in our single-process simulation; ownership is logical, dictated by
/// `dist`. If `profiler` is non-null, the kernel (and only the kernel) is
/// wrapped in a profiling epoch, matching §IV-D's scoping.
TriangleResult count_triangles_actor(const graph::Csr& lower,
                                     const graph::Distribution& dist,
                                     prof::Profiler* profiler = nullptr);

/// Variant with explicit conveyor options (buffer-size sweeps in benches).
TriangleResult count_triangles_actor(const graph::Csr& lower,
                                     const graph::Distribution& dist,
                                     const convey::Options& conveyor_options,
                                     prof::Profiler* profiler);

}  // namespace ap::apps
