#include "check/checker.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ap::check {

namespace {

const char* basename_of(const char* file) {
  if (file == nullptr) return "";
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p)
    if (*p == '/' || *p == '\\') base = p + 1;
  return base;
}

/// CSV rows and one-line reports must stay one field / one line: commas
/// and newlines in free text become ';'.
std::string sanitize(std::string s) {
  for (char& c : s)
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  return s;
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

bool ranges_overlap(std::uint64_t a0, std::uint64_t a1, std::uint64_t b0,
                    std::uint64_t b1) {
  return a0 < b1 && b0 < a1;
}

}  // namespace

const char* to_string(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::WriteReadRace: return "write_read_race";
    case Violation::Kind::ReadBeforeQuiet: return "read_before_quiet";
    case Violation::Kind::UnquiescedAtBarrier: return "unquiesced_at_barrier";
    case Violation::Kind::NbiReordered: return "nbi_reordered";
    case Violation::Kind::NbiDuplicated: return "nbi_duplicated";
    case Violation::Kind::QuietInterrupted: return "quiet_interrupted";
    case Violation::Kind::ApiMisuse: return "api_misuse";
  }
  return "unknown";
}

bool kind_from_string(std::string_view s, Violation::Kind& out) {
  using K = Violation::Kind;
  for (K k : {K::WriteReadRace, K::ReadBeforeQuiet, K::UnquiescedAtBarrier,
              K::NbiReordered, K::NbiDuplicated, K::QuietInterrupted,
              K::ApiMisuse}) {
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

void write_text(std::ostream& os, const std::vector<Violation>& v,
                std::uint64_t dropped) {
  if (v.empty() && dropped == 0) {
    os << "no BSP conformance violations\n";
    return;
  }
  for (const Violation& x : v) {
    os << "  [" << to_string(x.kind) << "] pe " << x.pe;
    if (x.other_pe >= 0) os << " (peer " << x.other_pe << ")";
    os << " superstep " << x.superstep;
    if (x.bytes != 0)
      os << " heap[" << x.offset << ",+" << x.bytes << ")";
    if (!x.callsite.empty()) os << " at " << x.callsite;
    if (!x.detail.empty()) os << ": " << x.detail;
    os << "\n";
  }
  os << v.size() << " violation(s)";
  if (dropped != 0) os << " (+" << dropped << " dropped past cap)";
  os << "\n";
}

void write_json(std::ostream& os, const std::vector<Violation>& v,
                std::uint64_t dropped) {
  os << "{\n  \"count\": " << v.size() << ",\n  \"dropped\": " << dropped
     << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Violation& x = v[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"kind\": \"" << to_string(x.kind) << "\", \"pe\": " << x.pe
       << ", \"other_pe\": " << x.other_pe
       << ", \"superstep\": " << x.superstep << ", \"offset\": " << x.offset
       << ", \"bytes\": " << x.bytes << ", \"callsite\": ";
    json_escape(os, x.callsite);
    os << ", \"detail\": ";
    json_escape(os, x.detail);
    os << "}";
  }
  os << (v.empty() ? "]" : "\n  ]") << "\n}\n";
}

void Checker::bind(int num_pes) {
  num_pes_ = num_pes;
  live_ = num_pes;
  arrived_ = 0;
  alive_.assign(static_cast<std::size_t>(num_pes), 1);
  vc_.assign(static_cast<std::size_t>(num_pes),
             std::vector<std::uint64_t>(static_cast<std::size_t>(num_pes), 0));
  writes_.assign(static_cast<std::size_t>(num_pes), {});
  staged_.assign(static_cast<std::size_t>(num_pes), {});
  quiet_.assign(static_cast<std::size_t>(num_pes), {});
  step_.assign(static_cast<std::size_t>(num_pes), 0);
}

void Checker::clear() {
  num_pes_ = 0;
  live_ = 0;
  arrived_ = 0;
  alive_.clear();
  vc_.clear();
  writes_.clear();
  staged_.clear();
  quiet_.clear();
  step_.clear();
  violations_.clear();
  dropped_ = 0;
}

std::uint32_t Checker::superstep_of(int pe) const {
  if (pe < 0 || pe >= num_pes_) return 0;
  return step_[static_cast<std::size_t>(pe)];
}

std::string Checker::format_callsite(const char* file, unsigned line) {
  if (file == nullptr || *file == '\0') return {};
  std::ostringstream os;
  os << basename_of(file) << ':' << line;
  return os.str();
}

void Checker::record(Violation v) {
  if (violations_.size() >= kMaxViolations) {
    ++dropped_;
    return;
  }
  v.callsite = sanitize(std::move(v.callsite));
  v.detail = sanitize(std::move(v.detail));
  violations_.push_back(std::move(v));
}

void Checker::insert_write(int target, std::uint64_t off, std::uint64_t n,
                           int writer, const char* file, unsigned line) {
  if (n == 0) return;
  auto& wvc = vc_[static_cast<std::size_t>(writer)];
  const std::uint64_t tick = ++wvc[static_cast<std::size_t>(writer)];
  auto& m = writes_[static_cast<std::size_t>(target)];
  const std::uint64_t end = off + n;

  auto it = m.lower_bound(off);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > off) it = prev;
  }
  while (it != m.end() && it->first < end) {
    const std::uint64_t old_start = it->first;
    const WriteRec old = it->second;
    it = m.erase(it);
    if (old_start < off) {
      WriteRec left = old;
      left.end = off;
      m.emplace(old_start, left);
    }
    if (old.end > end) {
      it = m.emplace(end, old).first;  // key=end keeps [end, old.end)
    }
  }
  m.emplace(off, WriteRec{end, writer, tick, file, line});
}

void Checker::on_store(int writer, int target, std::uint64_t off,
                       std::uint64_t n, const char* file, unsigned line) {
  if (!bound() || n == 0) return;
  insert_write(target, off, n, writer, file, line);
}

void Checker::on_nbi_staged(int initiator, int target, std::uint64_t off,
                            std::uint64_t n, const char* file, unsigned line) {
  if (!bound() || n == 0) return;
  staged_[static_cast<std::size_t>(initiator)].push_back(
      Staged{target, off, n, file, line});
}

void Checker::on_quiet_begin(int pe, std::size_t outstanding) {
  if (!bound()) return;
  QuietStream& q = quiet_[static_cast<std::size_t>(pe)];
  q.active = true;
  q.expected = outstanding;
  q.max_index = -1;
  q.seen.assign(outstanding, 0);
}

void Checker::on_nbi_applied(int pe, std::size_t index) {
  if (!bound()) return;
  QuietStream& q = quiet_[static_cast<std::size_t>(pe)];
  if (!q.active) return;
  if (index >= q.seen.size()) q.seen.resize(index + 1, 0);

  const auto& staged = staged_[static_cast<std::size_t>(pe)];
  int dst = -1;
  std::uint64_t off = 0, bytes = 0;
  std::string site;
  if (index < staged.size()) {
    dst = staged[index].dst;
    off = staged[index].off;
    bytes = staged[index].bytes;
    site = format_callsite(staged[index].file, staged[index].line);
  }

  if (q.seen[index]) {
    Violation v;
    v.kind = Violation::Kind::NbiDuplicated;
    v.pe = pe;
    v.other_pe = dst;
    v.superstep = superstep_of(pe);
    v.offset = off;
    v.bytes = bytes;
    v.callsite = site;
    std::ostringstream d;
    d << "staged put #" << index << " of " << q.expected
      << " applied more than once in one quiet()";
    v.detail = d.str();
    record(std::move(v));
  } else if (static_cast<long>(index) < q.max_index) {
    Violation v;
    v.kind = Violation::Kind::NbiReordered;
    v.pe = pe;
    v.other_pe = dst;
    v.superstep = superstep_of(pe);
    v.offset = off;
    v.bytes = bytes;
    v.callsite = site;
    std::ostringstream d;
    d << "staged put #" << index << " applied after put #" << q.max_index
      << " — quiet() broke staging order";
    v.detail = d.str();
    record(std::move(v));
  }
  q.seen[index] = 1;
  q.max_index = std::max(q.max_index, static_cast<long>(index));
}

void Checker::on_quiet_suspend(int pe, std::size_t applied,
                               std::size_t remaining) {
  if (!bound()) return;
  Violation v;
  v.kind = Violation::Kind::QuietInterrupted;
  v.pe = pe;
  v.superstep = superstep_of(pe);
  std::ostringstream d;
  d << "quiet() yielded after applying " << applied << " staged put(s) with "
    << remaining << " still invisible — peers may observe partial state";
  v.detail = d.str();
  record(std::move(v));
}

void Checker::on_quiet_end(int pe) {
  if (!bound()) return;
  auto& staged = staged_[static_cast<std::size_t>(pe)];
  for (const Staged& s : staged)
    insert_write(s.dst, s.off, s.bytes, pe, s.file, s.line);
  staged.clear();
  quiet_[static_cast<std::size_t>(pe)].active = false;
}

void Checker::on_plain_read(int reader, int target, std::uint64_t off,
                            std::uint64_t n, const char* file, unsigned line) {
  if (!bound() || n == 0) return;
  const std::uint64_t end = off + n;

  // Reads of a range some PE has staged an nbi put into: the data is not
  // visible until that PE's quiet(), so the read observes stale bytes.
  for (int i = 0; i < num_pes_; ++i) {
    for (const Staged& s : staged_[static_cast<std::size_t>(i)]) {
      if (s.dst != target || !ranges_overlap(off, end, s.off, s.off + s.bytes))
        continue;
      Violation v;
      v.kind = Violation::Kind::ReadBeforeQuiet;
      v.pe = reader;
      v.other_pe = i;
      v.superstep = superstep_of(reader);
      v.offset = std::max(off, s.off);
      v.bytes = std::min(end, s.off + s.bytes) - v.offset;
      v.callsite = format_callsite(file, line);
      std::ostringstream d;
      d << "read overlaps nbi put staged at "
        << format_callsite(s.file, s.line) << " by pe " << i
        << " with no quiet() yet";
      v.detail = d.str();
      record(std::move(v));
    }
  }

  // Same-superstep write/read conflict: the read races any overlapping
  // write whose tick the reader has not acquired (via wait_until, a
  // publication-flag poll, or a barrier — barriers wipe the write set).
  auto& m = writes_[static_cast<std::size_t>(target)];
  auto& rvc = vc_[static_cast<std::size_t>(reader)];
  auto it = m.lower_bound(off);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > off) it = prev;
  }
  for (; it != m.end() && it->first < end; ++it) {
    const WriteRec& w = it->second;
    if (w.writer == reader) continue;
    auto& seen = rvc[static_cast<std::size_t>(w.writer)];
    if (seen < w.tick) {
      Violation v;
      v.kind = Violation::Kind::WriteReadRace;
      v.pe = reader;
      v.other_pe = w.writer;
      v.superstep = superstep_of(reader);
      v.offset = std::max(off, it->first);
      v.bytes = std::min(end, w.end) - v.offset;
      v.callsite = format_callsite(file, line);
      std::ostringstream d;
      d << "read races write from pe " << w.writer << " at "
        << format_callsite(w.file, w.line)
        << " in the same superstep with no synchronization";
      v.detail = d.str();
      record(std::move(v));
      // Merge anyway so one unsynchronized site reports once, not per read.
      seen = w.tick;
    }
  }
}

void Checker::on_acquire_read(int reader, std::uint64_t off, std::uint64_t n) {
  if (!bound() || n == 0) return;
  const std::uint64_t end = off + n;
  auto& m = writes_[static_cast<std::size_t>(reader)];
  auto& rvc = vc_[static_cast<std::size_t>(reader)];
  auto it = m.lower_bound(off);
  if (it != m.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > off) it = prev;
  }
  for (; it != m.end() && it->first < end; ++it) {
    const WriteRec& w = it->second;
    if (w.writer == reader) continue;
    auto& seen = rvc[static_cast<std::size_t>(w.writer)];
    seen = std::max(seen, w.tick);
  }
}

void Checker::on_atomic(int pe, int target, std::uint64_t off,
                        const char* file, unsigned line) {
  if (!bound()) return;
  const std::uint64_t end = off + 8;
  for (int i = 0; i < num_pes_; ++i) {
    for (const Staged& s : staged_[static_cast<std::size_t>(i)]) {
      if (s.dst != target || !ranges_overlap(off, end, s.off, s.off + s.bytes))
        continue;
      Violation v;
      v.kind = Violation::Kind::ReadBeforeQuiet;
      v.pe = pe;
      v.other_pe = i;
      v.superstep = superstep_of(pe);
      v.offset = std::max(off, s.off);
      v.bytes = std::min(end, s.off + s.bytes) - v.offset;
      v.callsite = format_callsite(file, line);
      std::ostringstream d;
      d << "atomic access overlaps nbi put staged at "
        << format_callsite(s.file, s.line) << " by pe " << i
        << " with no quiet() yet";
      v.detail = d.str();
      record(std::move(v));
    }
  }
}

void Checker::on_collective_arrive(int pe) {
  if (!bound()) return;
  // barrier_all quiets before arriving, so its staged set is empty here;
  // sync_all / reductions / broadcast do not — outstanding staged puts at
  // those boundaries start the next superstep with invisible writes.
  for (const Staged& s : staged_[static_cast<std::size_t>(pe)]) {
    Violation v;
    v.kind = Violation::Kind::UnquiescedAtBarrier;
    v.pe = pe;
    v.other_pe = s.dst;
    v.superstep = superstep_of(pe);
    v.offset = s.off;
    v.bytes = s.bytes;
    v.callsite = format_callsite(s.file, s.line);
    std::ostringstream d;
    d << "nbi put to pe " << s.dst
      << " still un-quiesced at collective entry";
    v.detail = d.str();
    record(std::move(v));
  }
  ++step_[static_cast<std::size_t>(pe)];
  ++arrived_;
  if (arrived_ >= live_) complete_round();
}

void Checker::on_pe_dead(int pe) {
  if (!bound() || pe < 0 || pe >= num_pes_) return;
  if (!alive_[static_cast<std::size_t>(pe)]) return;
  alive_[static_cast<std::size_t>(pe)] = 0;
  --live_;
  staged_[static_cast<std::size_t>(pe)].clear();
  quiet_[static_cast<std::size_t>(pe)].active = false;
  // Mirror shmem's collective logic: a death can complete the round the
  // survivors are already waiting in.
  if (arrived_ > 0 && arrived_ >= live_) complete_round();
}

void Checker::on_misuse(int pe, const char* what) {
  if (!bound()) return;
  Violation v;
  v.kind = Violation::Kind::ApiMisuse;
  v.pe = pe;
  v.superstep = superstep_of(pe);
  v.detail = what != nullptr ? what : "";
  record(std::move(v));
}

void Checker::complete_round() {
  arrived_ = 0;
  // The barrier orders everything before it on any PE before everything
  // after it on any PE: wipe the epoch's write set and join all clocks.
  for (auto& m : writes_) m.clear();
  std::vector<std::uint64_t> joined(static_cast<std::size_t>(num_pes_), 0);
  for (int p = 0; p < num_pes_; ++p) {
    if (!alive_[static_cast<std::size_t>(p)]) continue;
    const auto& pvc = vc_[static_cast<std::size_t>(p)];
    for (int c = 0; c < num_pes_; ++c) {
      auto idx = static_cast<std::size_t>(c);
      joined[idx] = std::max(joined[idx], pvc[idx]);
    }
  }
  for (int p = 0; p < num_pes_; ++p) {
    if (alive_[static_cast<std::size_t>(p)])
      vc_[static_cast<std::size_t>(p)] = joined;
  }
}

}  // namespace ap::check
