// BSP conformance checker (docs/CHECKING.md).
//
// Models each barrier-to-barrier superstep as a vector-clock epoch over the
// symmetric heap and flags violations of the FA-BSP memory model on the
// fly: remote-write/local-read conflicts on the same heap range within one
// superstep, reads of nbi-put targets before the owning quiet(), staged
// puts still outstanding when a PE enters a non-quiescing collective, and
// conveyor/actor API misuse. The approach follows TASKPROF's insight
// (PAPERS.md) that an on-the-fly happens-before checker can ride the
// profiler's existing instrumentation seams: every event below arrives via
// the RmaObserver/TransferObserver/ActorObserver hooks the profiler already
// owns — the checker adds no instrumentation of its own.
//
// The checker is deliberately standalone (stdlib only, no runtime/shmem
// includes): the profiler feeds it plain PE indices, heap offsets, and
// callsite strings, which keeps it unit-testable without a world and keeps
// trace replay (check.csv) independent of the live runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ap::check {

/// One detected BSP-model violation. All fields are deterministic
/// functions of the program + fault-injection seed (logical ticks, no wall
/// time), so reports — including their JSON rendering — are byte-stable
/// across runs.
struct Violation {
  enum class Kind {
    /// A PE read a heap range another PE wrote in the same superstep with
    /// no intervening synchronization (quiet-publish, wait_until, barrier).
    WriteReadRace,
    /// A heap range with a staged (un-quiesced) nbi put targeting it was
    /// read before the initiating PE called quiet().
    ReadBeforeQuiet,
    /// A PE entered a collective (sync_all / reduction / broadcast) with
    /// staged nbi puts still outstanding — the next superstep starts with
    /// this PE's writes invisible.
    UnquiescedAtBarrier,
    /// quiet() applied staged puts out of staging order (fault injection).
    NbiReordered,
    /// quiet() applied the same staged put more than once (fault injection).
    NbiDuplicated,
    /// quiet() suspended mid-application, exposing partially-applied state
    /// to other fibers (fault injection).
    QuietInterrupted,
    /// Conveyor or actor API protocol misuse (pull during drain, nested
    /// drain_begin, push after done, send after done, ...).
    ApiMisuse,
  };

  Kind kind = Kind::WriteReadRace;
  int pe = -1;        ///< PE the violation is attributed to (the reader /
                      ///< the PE entering the collective / the misuser)
  int other_pe = -1;  ///< peer involved (the writer / put initiator), or -1
  std::uint32_t superstep = 0;  ///< superstep index of `pe` when flagged
  std::uint64_t offset = 0;     ///< symmetric-heap offset of the range
  std::uint64_t bytes = 0;      ///< length of the range (0 when N/A)
  std::string callsite;         ///< "file:line" of the reading/misusing
                                ///< call, empty when unknown
  std::string detail;           ///< human-readable specifics (comma-free)
};

[[nodiscard]] const char* to_string(Violation::Kind k);
/// Parses the exact strings to_string produces. Returns false on unknown.
[[nodiscard]] bool kind_from_string(std::string_view s, Violation::Kind& out);

/// Render violations as an aligned human-readable report (one line each,
/// plus a trailing summary). Used by `actorprof check` and test failures.
void write_text(std::ostream& os, const std::vector<Violation>& v,
                std::uint64_t dropped);
/// Render violations as deterministic JSON: {"violations":[...],
/// "dropped":N,"count":N}. Byte-identical for identical inputs.
void write_json(std::ostream& os, const std::vector<Violation>& v,
                std::uint64_t dropped);

/// The happens-before engine. One instance checks one world (bind() per
/// topology); all methods are called from PE fiber context by the profiler,
/// which serializes them (the runtime is single-threaded by design).
class Checker {
 public:
  /// (Re)initialize for a world of `num_pes`. Clears all prior state
  /// except recorded violations (a harness may run several worlds and read
  /// the union at the end; call clear() for a full reset).
  void bind(int num_pes);
  [[nodiscard]] bool bound() const { return num_pes_ > 0; }

  // --- event intake (mirrors the RmaObserver conformance hooks) ---
  void on_store(int writer, int target, std::uint64_t off, std::uint64_t n,
                const char* file, unsigned line);
  void on_nbi_staged(int initiator, int target, std::uint64_t off,
                     std::uint64_t n, const char* file, unsigned line);
  void on_quiet_begin(int pe, std::size_t outstanding);
  void on_nbi_applied(int pe, std::size_t index);
  void on_quiet_suspend(int pe, std::size_t applied, std::size_t remaining);
  void on_quiet_end(int pe);
  void on_plain_read(int reader, int target, std::uint64_t off,
                     std::uint64_t n, const char* file, unsigned line);
  void on_acquire_read(int reader, std::uint64_t off, std::uint64_t n);
  void on_atomic(int pe, int target, std::uint64_t off, const char* file,
                 unsigned line);
  void on_collective_arrive(int pe);
  void on_pe_dead(int pe);
  void on_misuse(int pe, const char* what);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  /// Violations suppressed once the report cap was hit.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint32_t superstep_of(int pe) const;

  /// Drop everything, including recorded violations.
  void clear();

  /// Report cap: at most this many violations are stored; the rest only
  /// bump dropped(). Keeps a hopelessly racy run from ballooning memory.
  static constexpr std::size_t kMaxViolations = 4096;

 private:
  /// One recorded write interval [start, end) on some PE's heap.
  struct WriteRec {
    std::uint64_t end = 0;
    int writer = -1;
    std::uint64_t tick = 0;  ///< writer's VC component when it wrote
    const char* file = nullptr;
    unsigned line = 0;
  };
  /// One staged (un-quiesced) nbi put.
  struct Staged {
    int dst = -1;
    std::uint64_t off = 0;
    std::uint64_t bytes = 0;
    const char* file = nullptr;
    unsigned line = 0;
  };
  /// Per-PE quiet() application-order tracker.
  struct QuietStream {
    bool active = false;
    std::size_t expected = 0;
    long max_index = -1;
    std::vector<char> seen;
  };

  void record(Violation v);
  void insert_write(int target, std::uint64_t off, std::uint64_t n,
                    int writer, const char* file, unsigned line);
  void complete_round();
  [[nodiscard]] static std::string format_callsite(const char* file,
                                                   unsigned line);

  int num_pes_ = 0;
  int live_ = 0;
  int arrived_ = 0;
  std::vector<char> alive_;
  std::vector<std::vector<std::uint64_t>> vc_;  // vc_[pe][component]
  std::vector<std::map<std::uint64_t, WriteRec>> writes_;  // per target PE
  std::vector<std::vector<Staged>> staged_;                // per initiator
  std::vector<QuietStream> quiet_;
  std::vector<std::uint32_t> step_;
  std::vector<Violation> violations_;
  std::uint64_t dropped_ = 0;
};

}  // namespace ap::check
