#include "conveyor/conveyor.hpp"

#include <atomic>
#include <cassert>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "faultinject/faultinject.hpp"
#include "papi/papi.hpp"
#include "runtime/scheduler.hpp"

namespace ap::convey {

namespace {
// Plain global (was thread_local): observers are installed on the
// launching thread before a launch creates worker threads (threads
// backend), so thread creation orders the pointer for every worker.
TransferObserver* g_observer = nullptr;

void notify(SendType t, std::size_t bytes, int src, int dst,
            std::uint64_t first_flow) {
  if (g_observer != nullptr)
    g_observer->on_transfer(t, bytes, src, dst, first_flow);
}

void notify_misuse(const char* what) {
  if (g_observer != nullptr) g_observer->on_conveyor_misuse(what);
}
}  // namespace

void set_transfer_observer(TransferObserver* obs) { g_observer = obs; }
TransferObserver* transfer_observer() { return g_observer; }

// ---------------------------------------------------------------------------
// Wire format: every item travels as a fixed-size record
//   [int32 final_dst][int32 orig_src][payload item_bytes]
// so intermediate hops can re-aggregate without understanding the payload.
// With Options::carry_flow_ids a uint64 flow id rides between the header
// and the payload:
//   [int32 final_dst][int32 orig_src][uint64 flow][payload item_bytes]
// Delivered records keep the full wire layout (final_dst included) so a
// contiguous run of records for this PE moves from the landing buffer into
// the receive queue with a single memcpy; pull()/drain() skip the header.
// The copy budget per record is documented in docs/PERFORMANCE.md.
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kRecordHeader = 2 * sizeof(std::int32_t);

/// Endpoint bookkeeping mode switch: up to this many PEs every per-hop /
/// per-source structure is a dense array indexed by PE id (one array load
/// on the hot paths — the layout every micro-bench baseline was recorded
/// against). Above it the endpoint goes *compact*: per-hop state is
/// created on first send toward that hop and per-source state on first
/// announced transfer, so a P-PE fleet costs O(P * touched-destinations)
/// instead of O(P^2) (docs/PERFORMANCE.md, "Memory at scale").
constexpr int kCompactThreshold = 64;

std::int32_t load_dst(const std::byte* record) {
  std::int32_t d = 0;
  std::memcpy(&d, record, sizeof d);
  return d;
}

// ConveyorStats fields are single-writer: only the owning PE bumps its
// endpoint's counters, and under the threads backend a PE's fiber is only
// ever resumed on its owning worker. Increments stay plain on purpose —
// even a relaxed atomic_ref load+store pair acts as a compiler
// optimization barrier on the per-item hot paths and costs double-digit
// percent on the micro_conveyor pull/drain gates. The price is a
// quiescence contract on readers: total_stats() may only be called when
// the caller is barrier-separated from every remote PE's conveyor
// activity (e.g. after shmem::barrier_all(), or after advance() has
// returned false on all PEs and a barrier followed). Mid-run progress
// probes must use the owning endpoint's stats() or the group's atomic
// delivered_total() instead (the selector pump does exactly that).
void bump(std::uint64_t& counter, std::uint64_t delta = 1) {
  counter += delta;
}

/// Minimal open-addressed int32 -> int32 map for the compact mode's
/// hop-id -> hops[] slot lookup. Touched-hop counts under the mesh routes
/// are O(sqrt P), so the table stays a few cache lines; linear probing
/// with a power-of-two size keeps the hot-path probe branch-light.
class FlatMap32 {
 public:
  [[nodiscard]] std::int32_t get(std::int32_t key) const {
    if (slots_.empty()) return -1;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.key == kEmpty) return -1;
      if (s.key == key) return s.value;
    }
  }

  void put(std::int32_t key, std::int32_t value) {
    if (slots_.empty()) slots_.assign(16, Slot{});
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    insert(key, value);
  }

 private:
  static constexpr std::int32_t kEmpty = -1;
  struct Slot {
    std::int32_t key = kEmpty;
    std::int32_t value = 0;
  };

  static std::size_t hash(std::int32_t key) {
    auto x = static_cast<std::uint32_t>(key);
    x ^= x >> 16;
    x *= 0x45d9f3bu;
    x ^= x >> 16;
    return x;
  }

  void insert(std::int32_t key, std::int32_t value) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.key == kEmpty) {
        s.key = key;
        s.value = value;
        ++size_;
        return;
      }
      if (s.key == key) {
        s.value = value;
        return;
      }
    }
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    size_ = 0;
    for (const Slot& s : old)
      if (s.key != kEmpty) insert(s.key, s.value);
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};
}  // namespace

/// Flat byte queue with a consumed prefix. Used for outgoing aggregation
/// buffers (one per next-hop PE) and for the receive queue. Storage is
/// reserved once (first use) and then recycled: append() writes in place,
/// compact() reclaims the consumed prefix without freeing. User pushes are
/// back-pressured at one buffer's worth; forwarded items may overflow
/// (they must never be dropped or the route deadlocks) and only that rare
/// overflow can grow the storage.
struct OutBuf {
  std::vector<std::byte> bytes;  // storage; size() == capacity in use
  std::size_t head = 0;          // start of unconsumed data
  std::size_t tail = 0;          // end of valid data

  [[nodiscard]] std::size_t pending() const { return tail - head; }

  /// Reclaim consumed space: cheap reset when fully drained, memmove the
  /// live suffix down once the dead prefix exceeds half the storage (so
  /// forwarded-overflow buffers on long routes stop growing monotonically).
  void compact() {
    if (head == tail) {
      head = tail = 0;
    } else if (head >= bytes.size() / 2) {
      std::memmove(bytes.data(), bytes.data() + head, tail - head);
      tail -= head;
      head = 0;
    }
  }

  /// Reserve a writable slot of `n` bytes at the tail and return it.
  /// `capacity_hint` sizes the first allocation; afterwards the storage is
  /// stable unless forwarded overflow outgrows it.
  std::byte* append(std::size_t n, std::size_t capacity_hint) {
    if (tail + n > bytes.size()) {
      compact();
      if (tail + n > bytes.size()) {
        std::size_t want = bytes.size() * 2;
        if (want < tail + n) want = tail + n;
        if (want < capacity_hint) want = capacity_hint;
        bytes.resize(want);
      }
    }
    std::byte* slot = bytes.data() + tail;
    tail += n;
    return slot;
  }
};

struct Conveyor::Group {
  Options opts;
  shmem::Topology topo;
  Router router;
  std::size_t flow_bytes;   // 0, or sizeof(uint64) when carrying flow ids
  std::size_t record_bytes;
  std::size_t records_per_buffer;
  std::size_t slot_stride;  // 8-byte length header + payload capacity

  // Shared progress counters, updated from every PE's worker under the
  // threads backend. injected is fed in per-advance batches (see
  // Endpoint::injected_unpublished); delivered in per-run batches inside
  // deliver_incoming() — neither takes a shared RMW per item.
  std::atomic<std::uint64_t> injected{0};
  std::atomic<std::uint64_t> delivered{0};
  /// Items dropped because a fault-injected PE died holding (or being the
  /// destination of) them. Counted toward termination: a conveyor is
  /// complete when injected == delivered + lost. (Fault injection is
  /// fiber-backend-only, so these adds are never contended.)
  std::atomic<std::uint64_t> lost{0};
  std::atomic<int> done_count{0};
  std::vector<char> done_flags;      // per-PE done (for dead-PE termination)
  std::vector<Endpoint*> endpoints;  // registered per PE (for stats)
  /// Serializes endpoint retirement against total_stats(): a destructor
  /// folds its stats into `retired` and clears its endpoints[] slot under
  /// this mutex, so a concurrent total_stats() never reads a freed
  /// endpoint and never loses a retired PE's counts.
  std::mutex retire_mu;
  ConveyorStats retired;

  Group(const Options& o, const shmem::Topology& t)
      : opts(o),
        topo(t),
        router(t, o.route),
        flow_bytes(o.carry_flow_ids ? sizeof(std::uint64_t) : 0),
        record_bytes(kRecordHeader + flow_bytes + o.item_bytes),
        records_per_buffer(o.buffer_bytes / record_bytes),
        slot_stride(sizeof(std::int64_t) +
                    records_per_buffer * record_bytes) {
    if (o.item_bytes == 0)
      throw std::invalid_argument("Conveyor: item_bytes must be > 0");
    if (o.slots < 1)
      throw std::invalid_argument("Conveyor: slots must be >= 1");
    if (records_per_buffer == 0)
      throw std::invalid_argument(
          "Conveyor: buffer_bytes too small for even one record");
    endpoints.assign(static_cast<std::size_t>(t.num_pes()), nullptr);
    done_flags.assign(static_cast<std::size_t>(t.num_pes()), 0);
  }

  [[nodiscard]] std::size_t payload_capacity() const {
    return records_per_buffer * record_bytes;
  }

  /// First-allocation size of an out/recv buffer: two full buffers, so a
  /// freshly flushed buffer (head == capacity) still leaves a whole
  /// buffer's worth of tail room before compact() has anything to do.
  [[nodiscard]] std::size_t outbuf_capacity() const {
    return 2 * payload_capacity();
  }
};

namespace {
/// Per-next-hop state, created on first send toward that hop (compact
/// mode) or eagerly for every PE (dense mode, small fleets). The out
/// buffer's storage and the nbi staging block are both first-touch lazy
/// either way: a hop that is never flushed inter-node never allocates its
/// staging, so per-endpoint memory follows the hops actually used.
struct HopState {
  int hop = -1;
  OutBuf out;
  std::int64_t seq_flushed = 0;    // buffers flushed toward this hop
  std::int64_t seq_published = 0;  // buffers published toward this hop
  /// Compact mode: whether this endpoint has announced itself to the
  /// hop's landing ring (see the announcement protocol in try_flush).
  bool announced = false;
  /// nbi source-stability block, slots * slot_stride bytes, sized on the
  /// first inter-node flush and stable afterwards (pending putmem_nbi
  /// reads it until quiet; vector moves keep the heap block alive).
  std::vector<std::byte> staging;
};

/// Per-source delivery cursor (compact mode): appended when the source
/// announces itself, in announcement order.
struct SrcState {
  int src = -1;
  std::int64_t consumed = 0;  // buffers consumed from this source
};
}  // namespace

struct Conveyor::Endpoint {
  int pe = -1;
  /// True above kCompactThreshold PEs: per-hop/per-source state is lazy
  /// and keyed, not dense (see kCompactThreshold).
  bool compact = false;

  // --- symmetric-heap communication state --------------------------------
  /// Landing rings: slots * n_pes buffers, indexed [src][slot]. Dense in
  /// *address space*; the symmetric heap's demand-zero arena keeps slots
  /// nobody writes from ever becoming resident.
  std::byte* ring = nullptr;
  /// published_from[s]: number of buffers PE s has made visible to me.
  std::int64_t* published_from = nullptr;
  /// acked_by[r]: number of my buffers PE r has consumed (r writes it here).
  std::int64_t* acked_by = nullptr;
  /// Compact mode announcement ring (MPSC, wait-free): a sender's first
  /// transfer toward me reserves a slot via atomic_fetch_add(ann_head) and
  /// release-stores (its PE id + 1) into ann_slots[slot]. deliver_incoming
  /// scans forward from ann_cursor and stops at the first empty slot, so
  /// my per-advance poll covers announced sources only — O(touched), not
  /// O(P). A reserved-but-unwritten slot is simply retried next round.
  std::int64_t* ann_head = nullptr;
  std::int64_t* ann_slots = nullptr;

  // --- plain per-PE state --------------------------------------------------
  /// Dense mode: hops[h] is next-hop h, hop_of_dense is the routing table,
  /// consumed_dense[s] the per-source cursor — all index-by-PE arrays.
  /// Compact mode: hops holds touched next-hops in first-touch order
  /// (hop_slot maps hop id -> index), srcs holds announced sources in
  /// announcement order; the dense vectors stay empty.
  std::vector<HopState> hops;
  std::vector<std::int32_t> hop_of_dense;
  std::vector<std::int64_t> consumed_dense;
  FlatMap32 hop_slot;
  std::vector<SrcState> srcs;
  int ann_cursor = 0;  // next ann_slots index to scan

  OutBuf recv;       // delivered wire records
  OutBuf drain_buf;  // batch snapshot being drained
  /// Pushes not yet added to Group::injected. push() only bumps this plain
  /// per-PE counter (no shared-cacheline RMW per item); advance() publishes
  /// the batch into the group counter before anything else moves — in
  /// particular before this PE can declare done — so the termination
  /// equality below never reads a short injected count.
  std::uint64_t injected_unpublished = 0;
  bool draining = false;
  bool done_reported = false;
  /// Cached TransferObserver::wants_conformance_events() — refreshed at
  /// construction and once per advance(), so the checker-off data plane
  /// pays one bool test, not a virtual call, per annotated site.
  bool check_events = false;
  ConveyorStats stats;

  /// Next hop toward `dst`: one array load in dense mode; the router's
  /// topology math in compact mode (no O(P) table per endpoint).
  [[nodiscard]] int hop_for(const Group& g, int dst) const {
    return compact ? g.router.next_hop(pe, dst)
                   : hop_of_dense[static_cast<std::size_t>(dst)];
  }

  /// State for `hop`, or nullptr when this endpoint never sent toward it.
  [[nodiscard]] HopState* find_hop(int hop) {
    if (!compact) return &hops[static_cast<std::size_t>(hop)];
    const std::int32_t idx = hop_slot.get(hop);
    return idx < 0 ? nullptr : &hops[static_cast<std::size_t>(idx)];
  }

  /// State for `hop`, created on first touch in compact mode. May grow
  /// `hops` — callers must not hold HopState references across a call.
  [[nodiscard]] HopState& hop_state(int hop) {
    if (!compact) return hops[static_cast<std::size_t>(hop)];
    const std::int32_t idx = hop_slot.get(hop);
    if (idx >= 0) return hops[static_cast<std::size_t>(idx)];
    hops.emplace_back();
    hops.back().hop = hop;
    hop_slot.put(hop, static_cast<std::int32_t>(hops.size() - 1));
    return hops.back();
  }
};

std::shared_ptr<Conveyor> Conveyor::create(const Options& opts) {
  const shmem::Topology& topo = shmem::topology();
  auto group = rt::collective<Group>(
      [&] { return std::make_shared<Group>(opts, topo); });
  if (group->opts.item_bytes != opts.item_bytes ||
      group->opts.buffer_bytes != opts.buffer_bytes ||
      group->opts.slots != opts.slots ||
      group->opts.carry_flow_ids != opts.carry_flow_ids)
    throw std::logic_error("Conveyor::create: PEs disagree on options");
  return std::shared_ptr<Conveyor>(new Conveyor(group, shmem::my_pe()));
}

Conveyor::Conveyor(std::shared_ptr<Group> group, int pe)
    : group_(std::move(group)), self_(std::make_unique<Endpoint>()) {
  Group& g = *group_;
  const int n = g.topo.num_pes();
  Endpoint& e = *self_;
  e.pe = pe;
  e.compact = n > kCompactThreshold;
  e.check_events =
      g_observer != nullptr && g_observer->wants_conformance_events();

  // Symmetric structures are allocated dense over P for addressability
  // (remote offsets must be computable without coordination) but cost
  // virtual memory only: the heap's demand-zero arena makes untouched
  // ring slots and counters free. Every PE takes the same branch (same n),
  // so the allocation sequence stays symmetric.
  const std::size_t ring_bytes =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(g.opts.slots) *
      g.slot_stride;
  e.ring = static_cast<std::byte*>(shmem::symm_malloc(ring_bytes));
  e.published_from = shmem::calloc_n<std::int64_t>(static_cast<std::size_t>(n));
  e.acked_by = shmem::calloc_n<std::int64_t>(static_cast<std::size_t>(n));
  if (e.compact) {
    e.ann_head = shmem::calloc_n<std::int64_t>(1);
    e.ann_slots = shmem::calloc_n<std::int64_t>(static_cast<std::size_t>(n));
  } else {
    // Dense heap-side bookkeeping for small fleets: identical hot-path
    // cost to the recorded micro-bench baselines.
    e.hop_of_dense = g.router.table_for(pe);
    e.hops.resize(static_cast<std::size_t>(n));
    for (int h = 0; h < n; ++h)
      e.hops[static_cast<std::size_t>(h)].hop = h;
    e.consumed_dense.assign(static_cast<std::size_t>(n), 0);
  }

  g.endpoints[static_cast<std::size_t>(pe)] = &e;
  // Everyone must see everyone's rings allocated before any transfer. This
  // barrier can throw fi::PeKilledError (a kill placed at conveyor setup);
  // the destructor won't run for a throwing constructor, so deregister and
  // free here or survivors' total_stats() would read the freed endpoint.
  try {
    shmem::barrier_all();
  } catch (...) {
    g.endpoints[static_cast<std::size_t>(pe)] = nullptr;
    shmem::symm_free(e.ring);
    shmem::symm_free(e.published_from);
    shmem::symm_free(e.acked_by);
    if (e.ann_head != nullptr) shmem::symm_free(e.ann_head);
    if (e.ann_slots != nullptr) shmem::symm_free(e.ann_slots);
    throw;
  }
}

namespace {
std::mutex g_lifetime_mu;
ConveyorStats g_lifetime{};

/// Fold `s` into `t`. Sources may belong to a PE running on another
/// worker (total_stats); the plain reads are safe only under the
/// quiescence contract documented at bump() above — callers must be
/// barrier-separated from the remote writers.
void accumulate(ConveyorStats& t, const ConveyorStats& s) {
  t.pushed += s.pushed;
  t.pulled += s.pulled;
  t.forwarded += s.forwarded;
  t.local_sends += s.local_sends;
  t.nonblock_sends += s.nonblock_sends;
  t.progress_calls += s.progress_calls;
  t.local_send_bytes += s.local_send_bytes;
  t.nonblock_send_bytes += s.nonblock_send_bytes;
  t.memcpys += s.memcpys;
  t.drains += s.drains;
}
}  // namespace

ConveyorStats lifetime_totals() {
  std::lock_guard<std::mutex> lk(g_lifetime_mu);
  return g_lifetime;
}
void reset_lifetime_totals() {
  std::lock_guard<std::mutex> lk(g_lifetime_mu);
  g_lifetime = ConveyorStats{};
}

Conveyor::~Conveyor() {
  Endpoint& e = *self_;
  {
    std::lock_guard<std::mutex> lk(g_lifetime_mu);
    accumulate(g_lifetime, e.stats);
  }
  // Pushes never published through an advance() must still reach the group
  // counter: a killed PE's unflushed records are counted as *lost* below,
  // and the survivors' termination equality (injected == delivered + lost)
  // would otherwise never balance.
  if (group_ && e.injected_unpublished != 0) {
    group_->injected.fetch_add(e.injected_unpublished,
                               std::memory_order_release);
    e.injected_unpublished = 0;
  }
  // A killed PE's endpoint is destroyed while its body unwinds (the PE is
  // already marked dead at that point). Everything it still holds — queued,
  // staged, or landed-but-unconsumed records — will never be delivered;
  // account it as lost so the survivors' advance() loops can terminate.
  if (group_ && rt::in_spmd_region() && fi::active() && e.pe >= 0 &&
      !shmem::pe_alive(e.pe))
    account_dead_endpoint();
  if (group_ && e.pe >= 0 &&
      static_cast<std::size_t>(e.pe) < group_->endpoints.size()) {
    std::lock_guard<std::mutex> lk(group_->retire_mu);
    accumulate(group_->retired, e.stats);
    group_->endpoints[static_cast<std::size_t>(e.pe)] = nullptr;
  }
  // Frees must run on the owning PE's fiber while the world is alive; the
  // SPMD structure of HClib-Actor programs guarantees that.
  if (rt::in_spmd_region()) {
    shmem::symm_free(e.ring);
    shmem::symm_free(e.published_from);
    shmem::symm_free(e.acked_by);
    if (e.ann_head != nullptr) shmem::symm_free(e.ann_head);
    if (e.ann_slots != nullptr) shmem::symm_free(e.ann_slots);
  }
}

void Conveyor::account_dead_endpoint() {
  Group& g = *group_;
  Endpoint& e = *self_;
  std::size_t bytes = e.recv.pending() + e.drain_buf.pending();
  for (const HopState& hs : e.hops) bytes += hs.out.pending();
  std::uint64_t lost = bytes / g.record_bytes;
  // Flushed into staging but never published: the staged nbi puts were
  // dropped when the PE was marked dead, so these records are gone.
  for (const HopState& hs : e.hops) {
    for (std::int64_t seq = hs.seq_published; seq < hs.seq_flushed; ++seq) {
      // flushed > published implies at least one inter-node flush, which
      // sized the staging block.
      const std::byte* stage =
          hs.staging.data() +
          static_cast<std::size_t>(seq % g.opts.slots) * g.slot_stride;
      std::int64_t len = 0;
      std::memcpy(&len, stage, sizeof len);
      lost += static_cast<std::uint64_t>(len) / g.record_bytes;
    }
  }
  // Landed in this PE's ring (published by senders) but never consumed.
  const auto count_landed = [&](int src, std::int64_t consumed) {
    const auto s = static_cast<std::size_t>(src);
    const std::int64_t pub =
        std::atomic_ref<std::int64_t>(e.published_from[s])
            .load(std::memory_order_acquire);
    for (std::int64_t seq = consumed; seq < pub; ++seq) {
      const std::byte* base =
          e.ring + (s * static_cast<std::size_t>(g.opts.slots) +
                    static_cast<std::size_t>(seq % g.opts.slots)) *
                       g.slot_stride;
      std::int64_t len = 0;
      std::memcpy(&len, base, sizeof len);
      lost += static_cast<std::uint64_t>(len) / g.record_bytes;
    }
  };
  if (e.compact) {
    // Drain announcements not yet scanned; fault injection is fiber-only,
    // so no half-made announcement can be in flight here.
    const int n = g.topo.num_pes();
    while (e.ann_cursor < n) {
      const std::int64_t v =
          std::atomic_ref<std::int64_t>(e.ann_slots[e.ann_cursor])
              .load(std::memory_order_acquire);
      if (v == 0) break;
      e.srcs.push_back(SrcState{static_cast<int>(v - 1), 0});
      ++e.ann_cursor;
    }
    for (const SrcState& ss : e.srcs) count_landed(ss.src, ss.consumed);
  } else {
    const int n = g.topo.num_pes();
    for (int src = 0; src < n; ++src)
      count_landed(src, e.consumed_dense[static_cast<std::size_t>(src)]);
  }
  g.lost.fetch_add(lost, std::memory_order_relaxed);
}

const Options& Conveyor::options() const { return group_->opts; }
const ConveyorStats& Conveyor::stats() const { return self_->stats; }
const Router& Conveyor::router() const { return group_->router; }
std::size_t Conveyor::record_bytes() const { return group_->record_bytes; }

ConveyorStats Conveyor::total_stats() const {
  std::lock_guard<std::mutex> lk(group_->retire_mu);
  ConveyorStats t = group_->retired;
  for (const Endpoint* e : group_->endpoints) {
    if (e == nullptr) continue;
    accumulate(t, e->stats);
  }
  return t;
}

std::uint64_t Conveyor::delivered_total() const {
  return group_->delivered.load(std::memory_order_relaxed);
}

std::uint64_t Conveyor::items_in_flight() const {
  return group_->injected.load(std::memory_order_relaxed) -
         group_->delivered.load(std::memory_order_relaxed) -
         group_->lost.load(std::memory_order_relaxed);
}

// --------------------------------------------------------------------- push

bool Conveyor::push(const void* item, int dst_pe, std::uint64_t flow_id) {
  Group& g = *group_;
  Endpoint& e = *self_;
  if (e.done_reported) {
    if (e.check_events)
      notify_misuse("conveyor: push() after done was declared");
    throw std::logic_error("Conveyor::push after done was declared");
  }
  if (dst_pe < 0 || dst_pe >= g.topo.num_pes())
    throw std::out_of_range("Conveyor::push: destination PE out of range");

  const int hop = e.hop_for(g, dst_pe);
  OutBuf& ob = e.hop_state(hop).out;

  // Back-pressure: a user push never flushes — appending is MAIN-region
  // work (paper §III-B); all buffer movement happens inside advance(),
  // which the runtime attributes to COMM.
  if (ob.pending() >= g.payload_capacity()) return false;

  // Write the record in place: header + flow + payload land directly in
  // the preallocated aggregation buffer (no scratch build, no heap).
  std::byte* rec = ob.append(g.record_bytes, g.outbuf_capacity());
  const std::int32_t dst32 = dst_pe;
  const std::int32_t src32 = e.pe;
  std::memcpy(rec, &dst32, sizeof dst32);
  std::memcpy(rec + sizeof dst32, &src32, sizeof src32);
  if (g.flow_bytes != 0)
    std::memcpy(rec + kRecordHeader, &flow_id, sizeof flow_id);
  std::memcpy(rec + kRecordHeader + g.flow_bytes, item, g.opts.item_bytes);
  bump(e.stats.memcpys);
  bump(e.stats.pushed);
  e.injected_unpublished++;
  return true;
}

// --------------------------------------------------------------------- flush

bool Conveyor::try_flush(int next_hop) {
  Group& g = *group_;
  Endpoint& e = *self_;
  HopState* hsp = e.find_hop(next_hop);
  if (hsp == nullptr) return true;  // never sent toward this hop
  HopState& hs = *hsp;
  OutBuf& ob = hs.out;
  ob.compact();
  if (ob.pending() == 0) return true;

  // A dead next hop consumes nothing ever again: drop everything queued
  // toward it and account the records as lost (checked before the ring
  // availability test — dead receivers stop acking too).
  if (fi::active() && !shmem::pe_alive(next_hop)) {
    g.lost.fetch_add(ob.pending() / g.record_bytes,
                     std::memory_order_relaxed);
    ob.head = ob.tail;
    ob.compact();
    return true;
  }

  const auto hop_idx = static_cast<std::size_t>(next_hop);
  // The ack counter is written by the receiver via shmem::put; polling it
  // (an acquire load — the receiver's put is a release store) is what lets
  // us reuse the acked ring slots: the receiver read the slot before it
  // released the ack, so our next write cannot race its read.
  if (e.check_events)
    shmem::annotate_acquire_read(e.acked_by + hop_idx, sizeof(std::int64_t));
  const auto acked = [&] {
    return std::atomic_ref<std::int64_t>(e.acked_by[hop_idx])
        .load(std::memory_order_acquire);
  };
  // Free ring slot available? Double buffering: with `slots` buffers per
  // pair, the (slots+1)-th flush needs the oldest one acked.
  if (hs.seq_flushed - acked() >= static_cast<std::int64_t>(g.opts.slots)) {
    // Unpublished nbi buffers can never be acked: run the progress
    // protocol (quiet + signal) and re-check — this is exactly the
    // "second buffer full triggers shmem_quiet" behaviour from the paper.
    if (hs.seq_published < hs.seq_flushed) {
      progress_pending();
      if (hs.seq_flushed - acked() >= static_cast<std::int64_t>(g.opts.slots))
        return false;
    } else {
      return false;  // receiver has not consumed yet; retry later
    }
  }

  // Compact mode: the receiver polls announced sources only, so the first
  // transfer toward this hop must announce *before* anything is published
  // (program order on our side; the receiver's acquire scan of ann_slots
  // stops at the first empty slot and retries later, so a concurrently
  // reserved slot is never skipped, only deferred).
  if (e.compact && !hs.announced) {
    const std::int64_t idx = shmem::atomic_fetch_add(e.ann_head, 1, next_hop);
    assert(idx >= 0 && idx < g.topo.num_pes());
    const std::int64_t tagged = e.pe + 1;
    shmem::put(static_cast<void*>(e.ann_slots + idx), &tagged, sizeof tagged,
               next_hop);
    hs.announced = true;
  }

  const std::size_t chunk = std::min(ob.pending(), g.payload_capacity());
  // Never split a record across buffers.
  assert(chunk % g.record_bytes == 0);

  // The flow id of the first aggregated record anchors this physical
  // transfer to one logical send in the trace (0 when not carried).
  std::uint64_t first_flow = 0;
  if (g.flow_bytes != 0)
    std::memcpy(&first_flow, ob.bytes.data() + ob.head + kRecordHeader,
                sizeof first_flow);

  const std::int64_t seq = hs.seq_flushed;  // 0-based buffer index
  const std::size_t slot =
      static_cast<std::size_t>(seq % g.opts.slots);
  // The landing slot inside the *receiver's* ring for source `e.pe`:
  const std::size_t slot_off =
      (static_cast<std::size_t>(e.pe) * static_cast<std::size_t>(g.opts.slots) +
       slot) *
      g.slot_stride;

  const bool intra_node = g.topo.same_node(e.pe, next_hop);
  if (intra_node) {
    // local_send: direct memcpy through shmem_ptr, immediately published.
    auto* dst = static_cast<std::byte*>(
        shmem::ptr(static_cast<void*>(e.ring + slot_off), next_hop));
    assert(dst != nullptr);
    const std::int64_t len = static_cast<std::int64_t>(chunk);
    std::memcpy(dst, &len, sizeof len);
    std::memcpy(dst + sizeof len, ob.bytes.data() + ob.head, chunk);
    bump(e.stats.memcpys);
    papi::account_buffer_copy(chunk);
    papi::account_local_flush(chunk);
    if (e.check_events)
      shmem::annotate_store(static_cast<void*>(e.ring + slot_off),
                            sizeof len + chunk, next_hop);
    // Publish instantly (shared memory): bump receiver's published_from[me].
    // Release store: orders the slot memcpy above before the flag for the
    // receiver's acquire poll in deliver_incoming().
    auto* pub = static_cast<std::int64_t*>(shmem::ptr(
        static_cast<void*>(e.published_from + e.pe), next_hop));
    std::atomic_ref<std::int64_t>(*pub).store(seq + 1,
                                              std::memory_order_release);
    if (e.check_events)
      shmem::annotate_store(static_cast<void*>(e.published_from + e.pe),
                            sizeof(std::int64_t), next_hop);
    hs.seq_flushed = seq + 1;
    hs.seq_published = seq + 1;
    bump(e.stats.local_sends);
    bump(e.stats.local_send_bytes, chunk);
    notify(SendType::local_send, chunk, e.pe, next_hop, first_flow);
  } else {
    // nonblock_send: stage (nbi source must stay stable until quiet), then
    // shmem_putmem_nbi into the receiver's ring. NOT visible until the
    // nonblock_progress below publishes it. The staging block is sized on
    // the hop's first inter-node flush (first touch) and recycled after —
    // steady state allocates nothing.
    if (hs.staging.empty())
      hs.staging.resize(static_cast<std::size_t>(g.opts.slots) *
                        g.slot_stride);
    std::byte* stage = hs.staging.data() + slot * g.slot_stride;
    const std::int64_t len = static_cast<std::int64_t>(chunk);
    std::memcpy(stage, &len, sizeof len);
    std::memcpy(stage + sizeof len, ob.bytes.data() + ob.head, chunk);
    bump(e.stats.memcpys);
    papi::account_buffer_copy(chunk);
    shmem::putmem_nbi(static_cast<void*>(e.ring + slot_off), stage,
                      sizeof len + chunk, next_hop);
    papi::account_remote_put(chunk);
    hs.seq_flushed = seq + 1;
    bump(e.stats.nonblock_sends);
    bump(e.stats.nonblock_send_bytes, chunk);
    notify(SendType::nonblock_send, chunk, e.pe, next_hop, first_flow);
  }

  ob.head += chunk;
  ob.compact();
  return true;
}

void Conveyor::flush_all() {
  Endpoint& e = *self_;
  // Flush as much as slot availability allows toward each touched hop.
  for (std::size_t i = 0; i < e.hops.size(); ++i) {
    const int hop = e.hops[i].hop;
    while (e.hops[i].out.pending() > 0) {
      if (!try_flush(hop)) break;
    }
  }
}

void Conveyor::progress_pending() {
  Group& g = *group_;
  Endpoint& e = *self_;
  bool any = false;
  for (const HopState& hs : e.hops) {
    if (hs.seq_published < hs.seq_flushed) {
      any = true;
      break;
    }
  }
  if (!any) return;

  // nonblock_progress: one quiet completes *all* outstanding puts of this
  // PE (that is what the OpenSHMEM semantics mandate — see the paper's
  // SKaMPI discussion), then each destination gets a signal put.
  const std::size_t outstanding = shmem::pending_nbi_puts();
  shmem::quiet();
  papi::account_quiet(outstanding);
  bump(e.stats.progress_calls);
  for (HopState& hs : e.hops) {
    if (hs.seq_published >= hs.seq_flushed) continue;
    const int hop = hs.hop;
    if (fi::active() && !shmem::pe_alive(hop)) {
      // The receiver died between our flush and this publish: nobody will
      // ever consume these buffers. Retire the slots and count the staged
      // records as lost instead of signalling a corpse.
      for (std::int64_t seq = hs.seq_published; seq < hs.seq_flushed; ++seq) {
        const std::byte* stage =
            hs.staging.data() +
            static_cast<std::size_t>(seq % g.opts.slots) * g.slot_stride;
        std::int64_t len = 0;
        std::memcpy(&len, stage, sizeof len);
        g.lost.fetch_add(static_cast<std::uint64_t>(len) / g.record_bytes,
                         std::memory_order_relaxed);
      }
      hs.seq_published = hs.seq_flushed;
      continue;
    }
    const std::int64_t pub = hs.seq_flushed;
    shmem::put(static_cast<void*>(e.published_from + e.pe), &pub, sizeof pub,
               hop);
    papi::account_signal_put();
    hs.seq_published = pub;
    notify(SendType::nonblock_progress, sizeof pub, e.pe, hop, 0);
  }
}

// ------------------------------------------------------------------- deliver

void Conveyor::deliver_incoming() {
  Group& g = *group_;
  Endpoint& e = *self_;
  const std::size_t rec_sz = g.record_bytes;

  const auto deliver_from = [&](int src, std::int64_t& consumed) {
    const auto s = static_cast<std::size_t>(src);
    // Polling the publication flag with an acquire load is the edge that
    // orders the sender's ring writes (memcpy or quiet-completed nbi put,
    // both sequenced before its release store of the flag) before the
    // slot reads below.
    const std::int64_t pub =
        std::atomic_ref<std::int64_t>(e.published_from[s])
            .load(std::memory_order_acquire);
    if (e.check_events && consumed < pub)
      shmem::annotate_acquire_read(e.published_from + s,
                                   sizeof(std::int64_t));
    bool consumed_any = false;
    while (consumed < pub) {
      const std::int64_t seq = consumed;
      const std::size_t slot = static_cast<std::size_t>(seq % g.opts.slots);
      const std::byte* base =
          e.ring +
          (s * static_cast<std::size_t>(g.opts.slots) + slot) * g.slot_stride;
      std::int64_t len = 0;
      std::memcpy(&len, base, sizeof len);
      const std::byte* data = base + sizeof len;
      if (e.check_events)
        shmem::annotate_local_read(
            base, sizeof len + static_cast<std::size_t>(len));
      papi::account_buffer_copy(static_cast<std::size_t>(len));
      assert(len >= 0 &&
             static_cast<std::size_t>(len) % rec_sz == 0);
      // Scan the landing buffer for contiguous runs of records that share
      // a fate — final delivery here, or forwarding toward one next hop —
      // and move each run with a single memcpy instead of per-record
      // inserts.
      const std::size_t end = static_cast<std::size_t>(len);
      std::size_t off = 0;
      while (off < end) {
        const std::int32_t dst = load_dst(data + off);
        std::size_t run = rec_sz;
        if (fi::active() && dst != e.pe &&
            !shmem::pe_alive(static_cast<int>(dst))) {
          // Forwarding toward a dead destination would park the records in
          // a queue nobody drains; drop the whole run here and account it.
          while (off + run < end && load_dst(data + off + run) == dst)
            run += rec_sz;
          g.lost.fetch_add(run / rec_sz, std::memory_order_relaxed);
        } else if (dst == e.pe) {
          while (off + run < end && load_dst(data + off + run) == e.pe)
            run += rec_sz;
          // Final destination: wire records land verbatim in the recv
          // queue (pull/drain skip the header fields).
          std::memcpy(e.recv.append(run, g.outbuf_capacity()), data + off,
                      run);
          bump(e.stats.memcpys);
          g.delivered.fetch_add(run / rec_sz, std::memory_order_relaxed);
        } else {
          const std::int32_t hop = e.hop_for(g, dst);
          while (off + run < end) {
            const std::int32_t d2 = load_dst(data + off + run);
            if (d2 == e.pe || e.hop_for(g, d2) != hop) break;
            run += rec_sz;
          }
          // Intermediate hop: re-aggregate the whole run toward the next
          // hop. Forwarded records may exceed the buffer capacity (the
          // route deadlocks if they are dropped); append() grows for them.
          OutBuf& ob = e.hop_state(hop).out;
          std::memcpy(ob.append(run, g.outbuf_capacity()), data + off, run);
          bump(e.stats.memcpys);
          bump(e.stats.forwarded, run / rec_sz);
          while (ob.pending() >= g.payload_capacity()) {
            if (!try_flush(hop)) break;  // opportunistic; advance retries
          }
        }
        off += run;
      }
      consumed = seq + 1;
      consumed_any = true;
    }
    if (consumed_any) {
      // Ack so the sender can reuse its ring slots. acked_by[r] on the
      // sender holds what receiver r consumed; we are r, the sender is src.
      const std::int64_t acked = consumed;
      shmem::put(static_cast<void*>(e.acked_by + e.pe), &acked, sizeof acked,
                 src);
    }
  };

  if (e.compact) {
    // Pick up newly announced sources, then poll only those: the per-
    // advance delivery scan is O(sources that ever sent here), not O(P).
    const int n = g.topo.num_pes();
    while (e.ann_cursor < n) {
      const std::int64_t v =
          std::atomic_ref<std::int64_t>(e.ann_slots[e.ann_cursor])
              .load(std::memory_order_acquire);
      if (v == 0) break;  // first empty slot: later slots retried next round
      if (e.check_events)
        shmem::annotate_acquire_read(e.ann_slots + e.ann_cursor,
                                     sizeof(std::int64_t));
      e.srcs.push_back(SrcState{static_cast<int>(v - 1), 0});
      ++e.ann_cursor;
    }
    for (SrcState& ss : e.srcs) deliver_from(ss.src, ss.consumed);
  } else {
    const int n = g.topo.num_pes();
    for (int src = 0; src < n; ++src)
      deliver_from(src, e.consumed_dense[static_cast<std::size_t>(src)]);
  }
}

// -------------------------------------------------------------- pull / drain

bool Conveyor::pull(void* item, int* from_pe, std::uint64_t* flow_id) {
  Group& g = *group_;
  Endpoint& e = *self_;
  // Documented misuse (see drain() in conveyor.hpp): a pull inside a drain
  // batch consumes from the swapped-in queue, losing ordering against the
  // batch being handed out.
  if (e.check_events && e.draining)
    notify_misuse("conveyor: pull() inside a drain batch loses ordering");
  if (e.recv.pending() < g.record_bytes) {
    e.recv.compact();
    return false;
  }
  const std::byte* rec = e.recv.bytes.data() + e.recv.head;
  std::int32_t src32 = 0;
  std::memcpy(&src32, rec + sizeof(std::int32_t), sizeof src32);
  std::uint64_t flow = 0;
  if (g.flow_bytes != 0)
    std::memcpy(&flow, rec + kRecordHeader, sizeof flow);
  std::memcpy(item, rec + kRecordHeader + g.flow_bytes, g.opts.item_bytes);
  bump(e.stats.memcpys);
  e.recv.head += g.record_bytes;
  if (e.recv.head == e.recv.tail) e.recv.compact();
  if (from_pe != nullptr) *from_pe = src32;
  if (flow_id != nullptr) *flow_id = flow;
  bump(e.stats.pulled);
  return true;
}

Conveyor::DrainBatch Conveyor::drain_begin() {
  Group& g = *group_;
  Endpoint& e = *self_;
  if (e.draining) {
    if (e.check_events)
      notify_misuse("conveyor: nested drain_begin() while a batch is open");
    return DrainBatch{nullptr, 0, 0, 0};
  }
  if (e.recv.pending() == 0) return DrainBatch{nullptr, 0, 0, 0};
  // Snapshot by swapping buffers: the callback may advance() and deliver
  // new records, which land in the (now empty) recv queue without
  // invalidating the views handed out over this batch. Both buffers keep
  // their storage, so steady state allocates nothing.
  std::swap(e.recv, e.drain_buf);
  e.draining = true;
  const std::size_t count = e.drain_buf.pending() / g.record_bytes;
  return DrainBatch{e.drain_buf.bytes.data() + e.drain_buf.head, count,
                    g.record_bytes, g.flow_bytes};
}

void Conveyor::drain_end(std::size_t count) {
  Endpoint& e = *self_;
  e.drain_buf.head = e.drain_buf.tail = 0;
  e.draining = false;
  bump(e.stats.pulled, count);
  bump(e.stats.drains);
}

void Conveyor::drain_abort(std::size_t consumed) {
  Group& g = *group_;
  Endpoint& e = *self_;
  // The record the callback threw on counts as consumed (pull semantics:
  // the message left the queue before the handler ran). Requeue the rest
  // ahead of anything delivered meanwhile.
  e.drain_buf.head += consumed * g.record_bytes;
  const std::size_t rest = e.drain_buf.pending();
  if (rest != 0) {
    OutBuf merged;
    merged.bytes.resize(rest + e.recv.pending());
    std::memcpy(merged.bytes.data(),
                e.drain_buf.bytes.data() + e.drain_buf.head, rest);
    if (e.recv.pending() != 0)  // empty recv has a null data()
      std::memcpy(merged.bytes.data() + rest,
                  e.recv.bytes.data() + e.recv.head, e.recv.pending());
    merged.tail = merged.bytes.size();
    std::swap(e.recv, merged);
  }
  e.drain_buf.head = e.drain_buf.tail = 0;
  e.draining = false;
  bump(e.stats.pulled, consumed);
  bump(e.stats.drains);
}

// ------------------------------------------------------------------ advance

bool Conveyor::advance(bool done) {
  Group& g = *group_;
  Endpoint& e = *self_;
  e.check_events =
      g_observer != nullptr && g_observer->wants_conformance_events();

  if (fi::active() && fi::on_advance(e.pe)) {
    // Stalled progress cycle: the fault plan decided this PE's progress
    // loop "was not called" this round — no delivery, no flush, no
    // publish. Windows are bounded, so termination is only delayed.
    papi::account_poll();
    return true;
  }

  papi::account_poll();
  if (g_observer != nullptr) {
    // Backpressure snapshot before this round moves anything: bytes queued
    // toward all touched next hops plus bytes delivered here but not yet
    // pulled.
    std::size_t out_pending = 0;
    for (const HopState& hs : e.hops) out_pending += hs.out.pending();
    g_observer->on_advance(out_pending,
                           e.recv.pending() + e.drain_buf.pending());
  }
  deliver_incoming();

  if (done && !e.done_reported) {
    // Publish this PE's injection count before its done declaration —
    // push() throws after done, so the private counter is final here. The
    // release done_count increment paired with the acquire done_count read
    // in the termination check guarantees that once every PE is seen done,
    // every injection is in the counter: the equality can never terminate
    // the conveyor while records it has not counted are still in flight.
    // (Keeping the group counter out of the steady-state advance path also
    // keeps the per-round cost free of lock-prefixed instructions.)
    if (e.injected_unpublished != 0) {
      g.injected.fetch_add(e.injected_unpublished,
                           std::memory_order_release);
      e.injected_unpublished = 0;
    }
    e.done_reported = true;
    g.done_flags[static_cast<std::size_t>(e.pe)] = 1;
    g.done_count.fetch_add(1, std::memory_order_release);
  }

  if (e.done_reported) {
    // Endgame: drain partial buffers and publish everything (the lazy-send
    // policy only defers while more pushes may come).
    flush_all();
    progress_pending();
  } else {
    // Steady state: move out any full buffers that back-pressure left.
    flush_all();
  }

  deliver_incoming();

  // The acquire here pairs with every PE's release increment: seeing the
  // full count means seeing every injection published before each PE went
  // done. Short-circuit order matters — test done_count FIRST, then the
  // balance; read the other way a stale injected could equal a fresh
  // delivered and terminate early.
  bool all_done =
      g.done_count.load(std::memory_order_acquire) == g.topo.num_pes();
  if (!all_done && fi::active()) {
    // A killed PE never declares done; count it as done so the survivors'
    // termination does not wait for a corpse.
    all_done = true;
    for (int pe = 0; pe < g.topo.num_pes(); ++pe) {
      if (!g.done_flags[static_cast<std::size_t>(pe)] &&
          shmem::pe_alive(pe)) {
        all_done = false;
        break;
      }
    }
  }
  const bool globally_done =
      all_done && g.injected.load(std::memory_order_relaxed) ==
                      g.delivered.load(std::memory_order_relaxed) +
                          g.lost.load(std::memory_order_relaxed);
  const bool locally_drained =
      e.recv.pending() == 0 && e.drain_buf.pending() == 0;
  return !(globally_done && locally_drained);
}

}  // namespace ap::convey
