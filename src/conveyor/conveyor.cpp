#include "conveyor/conveyor.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "papi/papi.hpp"
#include "runtime/scheduler.hpp"

namespace ap::convey {

namespace {
thread_local TransferObserver* g_observer = nullptr;

void notify(SendType t, std::size_t bytes, int src, int dst,
            std::uint64_t first_flow) {
  if (g_observer != nullptr)
    g_observer->on_transfer(t, bytes, src, dst, first_flow);
}
}  // namespace

void set_transfer_observer(TransferObserver* obs) { g_observer = obs; }
TransferObserver* transfer_observer() { return g_observer; }

// ---------------------------------------------------------------------------
// Wire format: every item travels as a fixed-size record
//   [int32 final_dst][int32 orig_src][payload item_bytes]
// so intermediate hops can re-aggregate without understanding the payload.
// With Options::carry_flow_ids a uint64 flow id rides between the header
// and the payload:
//   [int32 final_dst][int32 orig_src][uint64 flow][payload item_bytes]
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kRecordHeader = 2 * sizeof(std::int32_t);

struct RecordView {
  std::int32_t dst;
  std::int32_t src;
  const std::byte* payload;
};
}  // namespace

/// Outgoing aggregation buffer toward one next-hop PE. User pushes are
/// back-pressured at one buffer's worth; forwarded items may overflow
/// (they must never be dropped or the route deadlocks).
struct OutBuf {
  std::vector<std::byte> bytes;
  std::size_t head = 0;

  [[nodiscard]] std::size_t pending() const { return bytes.size() - head; }
  void compact() {
    if (head == bytes.size()) {
      bytes.clear();
      head = 0;
    }
  }
};

struct Conveyor::Endpoint {
  int pe = -1;

  // --- symmetric-heap communication state --------------------------------
  /// Landing rings: slots * n_pes buffers, indexed [src][slot].
  std::byte* ring = nullptr;
  /// published_from[s]: number of buffers PE s has made visible to me.
  std::int64_t* published_from = nullptr;
  /// acked_by[r]: number of my buffers PE r has consumed (r writes it here).
  std::int64_t* acked_by = nullptr;

  // --- plain per-PE state --------------------------------------------------
  std::vector<OutBuf> out;                 // per next-hop
  std::vector<std::int64_t> seq_flushed;   // buffers flushed toward hop
  std::vector<std::int64_t> seq_published; // buffers published toward hop
  std::vector<std::vector<std::byte>> staging;  // nbi source stability, per hop*slot
  std::vector<std::int64_t> consumed_from; // buffers consumed per source
  std::vector<std::byte> recv;             // delivered records (src+payload)
  std::size_t recv_head = 0;
  bool done_reported = false;
  ConveyorStats stats;
};

struct Conveyor::Group {
  Options opts;
  shmem::Topology topo;
  Router router;
  std::size_t flow_bytes;   // 0, or sizeof(uint64) when carrying flow ids
  std::size_t record_bytes;
  std::size_t records_per_buffer;
  std::size_t slot_stride;  // 8-byte length header + payload capacity

  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  int done_count = 0;
  std::vector<Endpoint*> endpoints;  // registered per PE (for stats)

  Group(const Options& o, const shmem::Topology& t)
      : opts(o),
        topo(t),
        router(t, o.route),
        flow_bytes(o.carry_flow_ids ? sizeof(std::uint64_t) : 0),
        record_bytes(kRecordHeader + flow_bytes + o.item_bytes),
        records_per_buffer(o.buffer_bytes / record_bytes),
        slot_stride(sizeof(std::int64_t) +
                    records_per_buffer * record_bytes) {
    if (o.item_bytes == 0)
      throw std::invalid_argument("Conveyor: item_bytes must be > 0");
    if (o.slots < 1)
      throw std::invalid_argument("Conveyor: slots must be >= 1");
    if (records_per_buffer == 0)
      throw std::invalid_argument(
          "Conveyor: buffer_bytes too small for even one record");
    endpoints.assign(static_cast<std::size_t>(t.num_pes()), nullptr);
  }

  [[nodiscard]] std::size_t payload_capacity() const {
    return records_per_buffer * record_bytes;
  }
};

std::shared_ptr<Conveyor> Conveyor::create(const Options& opts) {
  const shmem::Topology& topo = shmem::topology();
  auto group = rt::collective<Group>(
      [&] { return std::make_shared<Group>(opts, topo); });
  if (group->opts.item_bytes != opts.item_bytes ||
      group->opts.buffer_bytes != opts.buffer_bytes ||
      group->opts.slots != opts.slots ||
      group->opts.carry_flow_ids != opts.carry_flow_ids)
    throw std::logic_error("Conveyor::create: PEs disagree on options");
  return std::shared_ptr<Conveyor>(new Conveyor(group, shmem::my_pe()));
}

Conveyor::Conveyor(std::shared_ptr<Group> group, int pe)
    : group_(std::move(group)), self_(std::make_unique<Endpoint>()) {
  Group& g = *group_;
  const int n = g.topo.num_pes();
  Endpoint& e = *self_;
  e.pe = pe;

  const std::size_t ring_bytes =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(g.opts.slots) *
      g.slot_stride;
  e.ring = static_cast<std::byte*>(shmem::symm_malloc(ring_bytes));
  e.published_from = shmem::calloc_n<std::int64_t>(static_cast<std::size_t>(n));
  e.acked_by = shmem::calloc_n<std::int64_t>(static_cast<std::size_t>(n));

  e.out.resize(static_cast<std::size_t>(n));
  e.seq_flushed.assign(static_cast<std::size_t>(n), 0);
  e.seq_published.assign(static_cast<std::size_t>(n), 0);
  e.staging.resize(static_cast<std::size_t>(n) *
                   static_cast<std::size_t>(g.opts.slots));
  e.consumed_from.assign(static_cast<std::size_t>(n), 0);

  g.endpoints[static_cast<std::size_t>(pe)] = &e;
  // Everyone must see everyone's rings allocated before any transfer.
  shmem::barrier_all();
}

Conveyor::~Conveyor() {
  Endpoint& e = *self_;
  if (group_ && e.pe >= 0 &&
      static_cast<std::size_t>(e.pe) < group_->endpoints.size())
    group_->endpoints[static_cast<std::size_t>(e.pe)] = nullptr;
  // Frees must run on the owning PE's fiber while the world is alive; the
  // SPMD structure of HClib-Actor programs guarantees that.
  if (rt::in_spmd_region()) {
    shmem::symm_free(e.ring);
    shmem::symm_free(e.published_from);
    shmem::symm_free(e.acked_by);
  }
}

const Options& Conveyor::options() const { return group_->opts; }
const ConveyorStats& Conveyor::stats() const { return self_->stats; }
const Router& Conveyor::router() const { return group_->router; }

ConveyorStats Conveyor::total_stats() const {
  ConveyorStats t;
  for (const Endpoint* e : group_->endpoints) {
    if (e == nullptr) continue;
    t.pushed += e->stats.pushed;
    t.pulled += e->stats.pulled;
    t.forwarded += e->stats.forwarded;
    t.local_sends += e->stats.local_sends;
    t.nonblock_sends += e->stats.nonblock_sends;
    t.progress_calls += e->stats.progress_calls;
    t.local_send_bytes += e->stats.local_send_bytes;
    t.nonblock_send_bytes += e->stats.nonblock_send_bytes;
    t.memcpys += e->stats.memcpys;
  }
  return t;
}

std::uint64_t Conveyor::items_in_flight() const {
  return group_->injected - group_->delivered;
}

// --------------------------------------------------------------------- push

bool Conveyor::route_into_buffer(const void* record, int dst_pe,
                                 bool is_forward) {
  Group& g = *group_;
  Endpoint& e = *self_;
  const int hop = g.router.next_hop(e.pe, dst_pe);
  OutBuf& ob = e.out[static_cast<std::size_t>(hop)];

  // Back-pressure: a user push never flushes — appending is MAIN-region
  // work (paper §III-B); all buffer movement happens inside advance(),
  // which the runtime attributes to COMM. Forwarded items may exceed the
  // capacity (dropping them would deadlock the route); advance drains them.
  if (!is_forward && ob.pending() >= g.payload_capacity()) return false;

  const std::byte* rec = static_cast<const std::byte*>(record);
  ob.bytes.insert(ob.bytes.end(), rec, rec + g.record_bytes);
  e.stats.memcpys++;
  if (is_forward) {
    e.stats.forwarded++;
    if (ob.pending() >= g.payload_capacity())
      (void)try_flush(hop);  // opportunistic; failure is fine, advance retries
  }
  return true;
}

bool Conveyor::push(const void* item, int dst_pe, std::uint64_t flow_id) {
  Group& g = *group_;
  Endpoint& e = *self_;
  if (e.done_reported)
    throw std::logic_error("Conveyor::push after done was declared");
  if (dst_pe < 0 || dst_pe >= g.topo.num_pes())
    throw std::out_of_range("Conveyor::push: destination PE out of range");

  // Build the record in a small stack buffer (item sizes are tiny by
  // design: the whole point of aggregation is 8..64-byte messages).
  std::byte local[512];
  std::vector<std::byte> heap;
  std::byte* rec = local;
  if (g.record_bytes > sizeof(local)) {
    heap.resize(g.record_bytes);
    rec = heap.data();
  }
  const std::int32_t dst32 = dst_pe;
  const std::int32_t src32 = e.pe;
  std::memcpy(rec, &dst32, sizeof dst32);
  std::memcpy(rec + sizeof dst32, &src32, sizeof src32);
  if (g.flow_bytes != 0)
    std::memcpy(rec + kRecordHeader, &flow_id, sizeof flow_id);
  std::memcpy(rec + kRecordHeader + g.flow_bytes, item, g.opts.item_bytes);

  if (!route_into_buffer(rec, dst_pe, /*is_forward=*/false)) return false;
  e.stats.pushed++;
  g.injected++;
  return true;
}

// --------------------------------------------------------------------- flush

bool Conveyor::try_flush(int next_hop) {
  Group& g = *group_;
  Endpoint& e = *self_;
  OutBuf& ob = e.out[static_cast<std::size_t>(next_hop)];
  ob.compact();
  if (ob.pending() == 0) return true;

  const auto hop_idx = static_cast<std::size_t>(next_hop);
  // Free ring slot available? Double buffering: with `slots` buffers per
  // pair, the (slots+1)-th flush needs the oldest one acked.
  if (e.seq_flushed[hop_idx] - e.acked_by[hop_idx] >=
      static_cast<std::int64_t>(g.opts.slots)) {
    // Unpublished nbi buffers can never be acked: run the progress
    // protocol (quiet + signal) and re-check — this is exactly the
    // "second buffer full triggers shmem_quiet" behaviour from the paper.
    if (e.seq_published[hop_idx] < e.seq_flushed[hop_idx]) {
      progress_pending();
      if (e.seq_flushed[hop_idx] - e.acked_by[hop_idx] >=
          static_cast<std::int64_t>(g.opts.slots))
        return false;
    } else {
      return false;  // receiver has not consumed yet; retry later
    }
  }

  const std::size_t chunk = std::min(ob.pending(), g.payload_capacity());
  // Never split a record across buffers.
  assert(chunk % g.record_bytes == 0);

  // The flow id of the first aggregated record anchors this physical
  // transfer to one logical send in the trace (0 when not carried).
  std::uint64_t first_flow = 0;
  if (g.flow_bytes != 0)
    std::memcpy(&first_flow, ob.bytes.data() + ob.head + kRecordHeader,
                sizeof first_flow);

  const std::int64_t seq = e.seq_flushed[hop_idx];  // 0-based buffer index
  const std::size_t slot =
      static_cast<std::size_t>(seq % g.opts.slots);
  // The landing slot inside the *receiver's* ring for source `e.pe`:
  const std::size_t slot_off =
      (static_cast<std::size_t>(e.pe) * static_cast<std::size_t>(g.opts.slots) +
       slot) *
      g.slot_stride;

  const bool intra_node = g.topo.same_node(e.pe, next_hop);
  if (intra_node) {
    // local_send: direct memcpy through shmem_ptr, immediately published.
    auto* dst = static_cast<std::byte*>(
        shmem::ptr(static_cast<void*>(e.ring + slot_off), next_hop));
    assert(dst != nullptr);
    const std::int64_t len = static_cast<std::int64_t>(chunk);
    std::memcpy(dst, &len, sizeof len);
    std::memcpy(dst + sizeof len, ob.bytes.data() + ob.head, chunk);
    e.stats.memcpys++;
    papi::account_buffer_copy(chunk);
    papi::account_local_flush(chunk);
    // Publish instantly (shared memory): bump receiver's published_from[me].
    auto* pub = static_cast<std::int64_t*>(shmem::ptr(
        static_cast<void*>(e.published_from + e.pe), next_hop));
    *pub = seq + 1;
    e.seq_flushed[hop_idx] = seq + 1;
    e.seq_published[hop_idx] = seq + 1;
    e.stats.local_sends++;
    e.stats.local_send_bytes += chunk;
    notify(SendType::local_send, chunk, e.pe, next_hop, first_flow);
  } else {
    // nonblock_send: stage (nbi source must stay stable until quiet), then
    // shmem_putmem_nbi into the receiver's ring. NOT visible until the
    // nonblock_progress below publishes it.
    auto& stage = e.staging[hop_idx * static_cast<std::size_t>(g.opts.slots) +
                            slot];
    stage.resize(sizeof(std::int64_t) + chunk);
    const std::int64_t len = static_cast<std::int64_t>(chunk);
    std::memcpy(stage.data(), &len, sizeof len);
    std::memcpy(stage.data() + sizeof len, ob.bytes.data() + ob.head, chunk);
    e.stats.memcpys++;
    papi::account_buffer_copy(chunk);
    shmem::putmem_nbi(static_cast<void*>(e.ring + slot_off), stage.data(),
                      stage.size(), next_hop);
    papi::account_remote_put(chunk);
    e.seq_flushed[hop_idx] = seq + 1;
    e.stats.nonblock_sends++;
    e.stats.nonblock_send_bytes += chunk;
    notify(SendType::nonblock_send, chunk, e.pe, next_hop, first_flow);
  }

  ob.head += chunk;
  ob.compact();
  return true;
}

void Conveyor::flush_all() {
  const int n = group_->topo.num_pes();
  for (int hop = 0; hop < n; ++hop) {
    // Flush as much as slot availability allows toward each hop.
    while (self_->out[static_cast<std::size_t>(hop)].pending() > 0) {
      if (!try_flush(hop)) break;
    }
  }
}

void Conveyor::progress_pending() {
  Group& g = *group_;
  Endpoint& e = *self_;
  bool any = false;
  const int n = g.topo.num_pes();
  for (int hop = 0; hop < n; ++hop) {
    if (e.seq_published[static_cast<std::size_t>(hop)] <
        e.seq_flushed[static_cast<std::size_t>(hop)]) {
      any = true;
      break;
    }
  }
  if (!any) return;

  // nonblock_progress: one quiet completes *all* outstanding puts of this
  // PE (that is what the OpenSHMEM semantics mandate — see the paper's
  // SKaMPI discussion), then each destination gets a signal put.
  const std::size_t outstanding = shmem::pending_nbi_puts();
  shmem::quiet();
  papi::account_quiet(outstanding);
  e.stats.progress_calls++;
  for (int hop = 0; hop < n; ++hop) {
    const auto h = static_cast<std::size_t>(hop);
    if (e.seq_published[h] >= e.seq_flushed[h]) continue;
    const std::int64_t pub = e.seq_flushed[h];
    shmem::put(static_cast<void*>(e.published_from + e.pe), &pub, sizeof pub,
               hop);
    papi::account_signal_put();
    e.seq_published[h] = pub;
    notify(SendType::nonblock_progress, sizeof pub, e.pe, hop, 0);
  }
}

// ------------------------------------------------------------------- deliver

void Conveyor::deliver_incoming() {
  Group& g = *group_;
  Endpoint& e = *self_;
  const int n = g.topo.num_pes();
  for (int src = 0; src < n; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const std::int64_t pub = e.published_from[s];
    bool consumed_any = false;
    while (e.consumed_from[s] < pub) {
      const std::int64_t seq = e.consumed_from[s];
      const std::size_t slot = static_cast<std::size_t>(seq % g.opts.slots);
      const std::byte* base =
          e.ring +
          (s * static_cast<std::size_t>(g.opts.slots) + slot) * g.slot_stride;
      std::int64_t len = 0;
      std::memcpy(&len, base, sizeof len);
      const std::byte* data = base + sizeof len;
      papi::account_buffer_copy(static_cast<std::size_t>(len));
      assert(len >= 0 &&
             static_cast<std::size_t>(len) % g.record_bytes == 0);
      for (std::size_t off = 0; off < static_cast<std::size_t>(len);
           off += g.record_bytes) {
        std::int32_t dst32 = 0;
        std::memcpy(&dst32, data + off, sizeof dst32);
        if (dst32 == e.pe) {
          // Final destination: move [src|payload] into the recv queue.
          e.recv.insert(e.recv.end(), data + off + sizeof(std::int32_t),
                        data + off + g.record_bytes);
          e.stats.memcpys++;
          g.delivered++;
        } else {
          // Intermediate hop: re-aggregate toward the next hop.
          (void)route_into_buffer(data + off, dst32, /*is_forward=*/true);
        }
      }
      e.consumed_from[s] = seq + 1;
      consumed_any = true;
    }
    if (consumed_any) {
      // Ack so the sender can reuse its ring slots. acked_by[r] on the
      // sender holds what receiver r consumed; we are r, the sender is src.
      const std::int64_t acked = e.consumed_from[s];
      shmem::put(static_cast<void*>(e.acked_by + e.pe), &acked, sizeof acked,
                 src);
    }
  }
}

// -------------------------------------------------------------------- pull

bool Conveyor::pull(void* item, int* from_pe, std::uint64_t* flow_id) {
  Group& g = *group_;
  Endpoint& e = *self_;
  // Delivered records keep their wire layout minus the dst field:
  // [int32 src][flow?][payload].
  const std::size_t rec = sizeof(std::int32_t) + g.flow_bytes + g.opts.item_bytes;
  if (e.recv.size() - e.recv_head < rec) {
    if (e.recv_head == e.recv.size()) {
      e.recv.clear();
      e.recv_head = 0;
    }
    return false;
  }
  std::int32_t src32 = 0;
  std::memcpy(&src32, e.recv.data() + e.recv_head, sizeof src32);
  std::uint64_t flow = 0;
  if (g.flow_bytes != 0)
    std::memcpy(&flow, e.recv.data() + e.recv_head + sizeof src32, sizeof flow);
  std::memcpy(item, e.recv.data() + e.recv_head + sizeof src32 + g.flow_bytes,
              g.opts.item_bytes);
  e.stats.memcpys++;
  e.recv_head += rec;
  if (e.recv_head == e.recv.size()) {
    e.recv.clear();
    e.recv_head = 0;
  }
  if (from_pe != nullptr) *from_pe = src32;
  if (flow_id != nullptr) *flow_id = flow;
  e.stats.pulled++;
  return true;
}

// ------------------------------------------------------------------ advance

bool Conveyor::advance(bool done) {
  Group& g = *group_;
  Endpoint& e = *self_;

  papi::account_poll();
  if (g_observer != nullptr) {
    // Backpressure snapshot before this round moves anything: bytes queued
    // toward all next hops plus bytes delivered here but not yet pulled.
    std::size_t out_pending = 0;
    for (const OutBuf& ob : e.out) out_pending += ob.pending();
    g_observer->on_advance(out_pending, e.recv.size() - e.recv_head);
  }
  deliver_incoming();

  if (done && !e.done_reported) {
    e.done_reported = true;
    g.done_count++;
  }

  if (e.done_reported) {
    // Endgame: drain partial buffers and publish everything (the lazy-send
    // policy only defers while more pushes may come).
    flush_all();
    progress_pending();
  } else {
    // Steady state: move out any full buffers that back-pressure left.
    flush_all();
  }

  deliver_incoming();

  const bool globally_done =
      g.done_count == g.topo.num_pes() && g.injected == g.delivered;
  const bool locally_drained = e.recv.size() == e.recv_head;
  return !(globally_done && locally_drained);
}

}  // namespace ap::convey
