// Conveyors-style message aggregation over minishmem (paper §II-B, [4]).
//
// A Conveyor moves fixed-size items between PEs with push-style
// aggregation: items headed for the same next hop are packed into a
// buffer; full buffers travel as one transfer (intra-node: memcpy through
// shmem_ptr; inter-node: shmem_putmem_nbi with double buffering, published
// by shmem_quiet + a signal put). Multi-hop routes (2D mesh / 3D cube)
// re-aggregate at intermediate PEs.
//
// Steady-state usage is the classic Conveyors loop — identical to the real
// library's:
//
//   auto c = Conveyor::create(opts);           // collective
//   std::size_t i = 0;
//   bool done = false;
//   while (c->advance(done)) {
//     for (; i < n; ++i)
//       if (!c->push(&items[i], dest_of(i))) break;
//     T item; int from;
//     while (c->pull(&item, &from)) handle(item, from);
//     done = (i == n);
//     ap::rt::yield();                          // let other PEs progress
//   }
//
// push() may refuse (buffer/back-pressure); the caller must then advance().
// advance(done) keeps returning true until *every* PE passed done=true and
// every in-flight item has been pulled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "conveyor/observer.hpp"
#include "conveyor/routing.hpp"
#include "shmem/shmem.hpp"

namespace ap::convey {

struct Options {
  /// Size of one item in bytes (fixed per conveyor, like convey_begin).
  std::size_t item_bytes = 8;
  /// Payload capacity of one aggregation buffer (one ring slot).
  std::size_t buffer_bytes = 4096;
  RouteKind route = RouteKind::Auto;
  /// Ring slots per directed pair; 2 == the double buffering the paper
  /// describes (quiet fires when the second buffer is needed again).
  int slots = 2;
  /// Carry a 64-bit flow id per record through aggregation (8 extra wire
  /// bytes each). Off by default so the baseline wire format — and every
  /// byte-count users may depend on — is unchanged; the profiler turns it
  /// on when flow-correlated traces are requested.
  bool carry_flow_ids = false;
};

/// Per-endpoint statistics (this PE's view).
struct ConveyorStats {
  std::uint64_t pushed = 0;
  std::uint64_t pulled = 0;
  std::uint64_t forwarded = 0;       // items re-aggregated at this hop
  std::uint64_t local_sends = 0;
  std::uint64_t nonblock_sends = 0;
  std::uint64_t progress_calls = 0;  // quiet+signal rounds
  std::uint64_t local_send_bytes = 0;
  std::uint64_t nonblock_send_bytes = 0;
  std::uint64_t memcpys = 0;         // per-item copies incl. self-sends
};

class Conveyor {
 public:
  /// Collective construction: every PE must call with identical options.
  static std::shared_ptr<Conveyor> create(const Options& opts);

  ~Conveyor();
  Conveyor(const Conveyor&) = delete;
  Conveyor& operator=(const Conveyor&) = delete;

  /// Try to enqueue one item for PE `dst`. Returns false when aggregation
  /// buffers are full and back-pressure requires an advance() first.
  /// `flow_id` is carried with the record iff Options::carry_flow_ids
  /// (ignored otherwise) and resurfaces at the destination's pull().
  bool push(const void* item, int dst_pe, std::uint64_t flow_id = 0);

  /// Dequeue one delivered item. Returns false when none is available
  /// right now. `from_pe` receives the original sender; `flow_id` (when
  /// non-null) the id given to push, or 0 if the conveyor does not carry
  /// flow ids.
  bool pull(void* item, int* from_pe, std::uint64_t* flow_id = nullptr);

  /// Make communication progress. `done` declares that this PE will push
  /// no more items. Returns false once the conveyor is globally complete.
  bool advance(bool done);

  [[nodiscard]] const Options& options() const;
  [[nodiscard]] const ConveyorStats& stats() const;
  [[nodiscard]] const Router& router() const;
  /// Sum of stats over all PEs (any PE may call).
  [[nodiscard]] ConveyorStats total_stats() const;
  /// Items pushed but not yet pulled anywhere (global).
  [[nodiscard]] std::uint64_t items_in_flight() const;

 private:
  struct Group;     // state shared by all endpoints
  struct Endpoint;  // this PE's state

  Conveyor(std::shared_ptr<Group> group, int pe);

  void deliver_incoming();
  bool try_flush(int next_hop);
  void flush_all();
  void progress_pending();
  bool route_into_buffer(const void* record, int dst_pe, bool is_forward);

  std::shared_ptr<Group> group_;
  std::unique_ptr<Endpoint> self_;
};

}  // namespace ap::convey
