// Conveyors-style message aggregation over minishmem (paper §II-B, [4]).
//
// A Conveyor moves fixed-size items between PEs with push-style
// aggregation: items headed for the same next hop are packed into a
// buffer; full buffers travel as one transfer (intra-node: memcpy through
// shmem_ptr; inter-node: shmem_putmem_nbi with double buffering, published
// by shmem_quiet + a signal put). Multi-hop routes (2D mesh / 3D cube)
// re-aggregate at intermediate PEs.
//
// The data plane is zero-copy-per-item by design (docs/PERFORMANCE.md):
// push() writes the wire record in place into a preallocated flat buffer,
// next hops come from a per-endpoint lookup table, delivery moves
// contiguous runs of records with one memcpy per run, and drain() hands
// the application views into the receive queue without copying.
//
// Steady-state usage is the classic Conveyors loop — identical to the real
// library's:
//
//   auto c = Conveyor::create(opts);           // collective
//   std::size_t i = 0;
//   bool done = false;
//   while (c->advance(done)) {
//     for (; i < n; ++i)
//       if (!c->push(&items[i], dest_of(i))) break;
//     c->drain([&](const ap::convey::Delivered& d) { handle(d); });
//     done = (i == n);
//     ap::rt::yield();                          // let other PEs progress
//   }
//
// push() may refuse (buffer/back-pressure); the caller must then advance().
// advance(done) keeps returning true until *every* PE passed done=true and
// every in-flight item has been drained. The per-item pull() remains as a
// compatibility shim over the same receive queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "conveyor/observer.hpp"
#include "conveyor/routing.hpp"
#include "shmem/shmem.hpp"

namespace ap::convey {

struct Options {
  /// Size of one item in bytes (fixed per conveyor, like convey_begin).
  std::size_t item_bytes = 8;
  /// Payload capacity of one aggregation buffer (one ring slot).
  std::size_t buffer_bytes = 4096;
  RouteKind route = RouteKind::Auto;
  /// Ring slots per directed pair; 2 == the double buffering the paper
  /// describes (quiet fires when the second buffer is needed again).
  int slots = 2;
  /// Carry a 64-bit flow id per record through aggregation (8 extra wire
  /// bytes each). Off by default so the baseline wire format — and every
  /// byte-count users may depend on — is unchanged; the profiler turns it
  /// on when flow-correlated traces are requested.
  bool carry_flow_ids = false;
};

/// Per-endpoint statistics (this PE's view).
struct ConveyorStats {
  std::uint64_t pushed = 0;
  std::uint64_t pulled = 0;          // items consumed via pull() or drain()
  std::uint64_t forwarded = 0;       // items re-aggregated at this hop
  std::uint64_t local_sends = 0;
  std::uint64_t nonblock_sends = 0;
  std::uint64_t progress_calls = 0;  // quiet+signal rounds
  std::uint64_t local_send_bytes = 0;
  std::uint64_t nonblock_send_bytes = 0;
  std::uint64_t memcpys = 0;         // copy operations (runs count once)
  std::uint64_t drains = 0;          // drain() batches handed out
};

/// Process-wide stats accumulated from every endpoint at its destruction
/// (the fiber simulator runs all PEs in one process). Lets harnesses report
/// per-message copy costs for whole app runs without holding conveyor
/// handles: snapshot, run, subtract.
ConveyorStats lifetime_totals();
void reset_lifetime_totals();

/// One delivered record, viewed in place inside the receive queue. The
/// payload pointer is only valid for the duration of the drain callback;
/// it may be unaligned for types stricter than 4 bytes — memcpy out.
struct Delivered {
  int src;                 ///< originating PE
  std::uint64_t flow;      ///< flow id given to push (0 when not carried)
  const void* payload;     ///< item_bytes of payload, in the wire buffer
};

class Conveyor {
 public:
  /// Collective construction: every PE must call with identical options.
  static std::shared_ptr<Conveyor> create(const Options& opts);

  ~Conveyor();
  Conveyor(const Conveyor&) = delete;
  Conveyor& operator=(const Conveyor&) = delete;

  /// Try to enqueue one item for PE `dst`. Returns false when aggregation
  /// buffers are full and back-pressure requires an advance() first.
  /// `flow_id` is carried with the record iff Options::carry_flow_ids
  /// (ignored otherwise) and resurfaces at the destination's pull().
  bool push(const void* item, int dst_pe, std::uint64_t flow_id = 0);

  /// Dequeue one delivered item. Returns false when none is available
  /// right now. `from_pe` receives the original sender; `flow_id` (when
  /// non-null) the id given to push, or 0 if the conveyor does not carry
  /// flow ids. Compatibility shim: drain() is the batch fast path.
  bool pull(void* item, int* from_pe, std::uint64_t* flow_id = nullptr);

  /// Batch-drain everything currently delivered: invokes `fn(Delivered)`
  /// once per record, in arrival order, directly over the receive queue —
  /// no per-item copy, no per-item queue bookkeeping. Returns the number
  /// of records handled. The callback may push() (including to this
  /// conveyor) and may call advance(); newly delivered records land in a
  /// fresh queue and are picked up by the next drain() call. Do not mix
  /// pull() into a drain callback — ordering across the two would be lost.
  /// If the callback throws, the record it threw on counts as consumed and
  /// the remainder of the batch is requeued ahead of later deliveries.
  template <class Fn>
  std::size_t drain(Fn&& fn) {
    const DrainBatch b = drain_begin();
    if (b.count == 0) return 0;
    std::size_t consumed = 0;
    try {
      const std::byte* p = b.data;
      for (std::size_t i = 0; i < b.count; ++i, p += b.stride) {
        Delivered d;
        std::int32_t src32 = 0;
        std::memcpy(&src32, p + sizeof(std::int32_t), sizeof src32);
        d.src = src32;
        d.flow = 0;
        if (b.flow_bytes != 0)
          std::memcpy(&d.flow, p + 2 * sizeof(std::int32_t), sizeof d.flow);
        d.payload = p + 2 * sizeof(std::int32_t) + b.flow_bytes;
        ++consumed;
        fn(static_cast<const Delivered&>(d));
      }
    } catch (...) {
      drain_abort(consumed);
      throw;
    }
    drain_end(b.count);
    return b.count;
  }

  /// Make communication progress. `done` declares that this PE will push
  /// no more items. Returns false once the conveyor is globally complete.
  bool advance(bool done);

  [[nodiscard]] const Options& options() const;
  [[nodiscard]] const ConveyorStats& stats() const;
  [[nodiscard]] const Router& router() const;
  /// Bytes of one wire record: header + optional flow id + payload.
  [[nodiscard]] std::size_t record_bytes() const;
  /// Sum of stats over all PEs (any PE may call). Under the threads
  /// backend the per-endpoint counters are plain single-writer values:
  /// call this only when barrier-separated from remote PEs' conveyor
  /// activity (e.g. after shmem::barrier_all()). For a mid-run progress
  /// probe use stats() (own endpoint) plus delivered_total().
  [[nodiscard]] ConveyorStats total_stats() const;
  /// Items delivered group-wide so far (relaxed atomic — safe to poll
  /// mid-run from any worker; captures remote PEs' progress).
  [[nodiscard]] std::uint64_t delivered_total() const;
  /// Items pushed but not yet pulled anywhere (global).
  [[nodiscard]] std::uint64_t items_in_flight() const;

 private:
  struct Group;     // state shared by all endpoints
  struct Endpoint;  // this PE's state

  /// One drained batch: `count` records of `stride` bytes each starting at
  /// `data`, laid out [int32 dst][int32 src][flow?][payload].
  struct DrainBatch {
    const std::byte* data;
    std::size_t count;
    std::size_t stride;
    std::size_t flow_bytes;
  };

  Conveyor(std::shared_ptr<Group> group, int pe);

  DrainBatch drain_begin();
  void drain_end(std::size_t count);
  void drain_abort(std::size_t consumed);

  void deliver_incoming();
  bool try_flush(int next_hop);
  void flush_all();
  void progress_pending();
  /// Count everything a dying PE's endpoint still holds as lost (fault
  /// injection; called from the destructor during the kill unwind).
  void account_dead_endpoint();

  std::shared_ptr<Group> group_;
  std::unique_ptr<Endpoint> self_;
};

}  // namespace ap::convey
