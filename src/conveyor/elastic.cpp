#include "conveyor/elastic.hpp"

#include <cstring>
#include <stdexcept>

#include "runtime/scheduler.hpp"
#include "shmem/shmem.hpp"

namespace ap::convey {

/// Wire record carried by the fixed-size transport underneath. `used` is
/// the number of payload bytes valid in this fragment; `remaining` is the
/// total bytes of the message still expected *including* this fragment,
/// so the receiver knows both the message boundary and the end.
struct ElasticConveyor::Fragment {
  std::uint32_t used;
  std::uint32_t remaining;
  // payload bytes follow (frag_payload_ of them, trailing part unused)
};

std::shared_ptr<ElasticConveyor> ElasticConveyor::create(
    const Options& base, std::size_t fragment_payload) {
  if (fragment_payload == 0)
    throw std::invalid_argument("ElasticConveyor: fragment_payload == 0");
  Options o = base;
  o.item_bytes = sizeof(Fragment) + fragment_payload;
  if (o.buffer_bytes < o.item_bytes + 2 * sizeof(std::int32_t))
    o.buffer_bytes = 4 * (o.item_bytes + 2 * sizeof(std::int32_t));
  auto inner = Conveyor::create(o);
  return std::shared_ptr<ElasticConveyor>(
      new ElasticConveyor(std::move(inner), fragment_payload));
}

ElasticConveyor::ElasticConveyor(std::shared_ptr<Conveyor> inner,
                                 std::size_t frag_payload)
    : inner_(std::move(inner)), frag_payload_(frag_payload) {
  partial_.resize(static_cast<std::size_t>(shmem::n_pes()));
}

bool ElasticConveyor::epush(const void* data, std::size_t len, int dst_pe) {
  const auto* bytes = static_cast<const std::byte*>(data);
  std::vector<std::byte> record(sizeof(Fragment) + frag_payload_);

  std::size_t off = 0;
  bool first = true;
  while (off < len || (len == 0 && first)) {
    const std::size_t chunk = std::min(frag_payload_, len - off);
    Fragment h;
    h.used = static_cast<std::uint32_t>(chunk);
    h.remaining = static_cast<std::uint32_t>(len - off);
    std::memcpy(record.data(), &h, sizeof h);
    if (chunk > 0)
      std::memcpy(record.data() + sizeof h, bytes + off, chunk);

    if (!inner_->push(record.data(), dst_pe)) {
      if (first) return false;  // clean refusal, nothing committed
      // Mid-message: we must finish (fragments of one message have to be
      // contiguous per pair). Make progress until the transport accepts.
      while (!inner_->push(record.data(), dst_pe)) {
        (void)inner_->advance(false);
        drain_transport();
        rt::yield();
      }
    }
    first = false;
    off += chunk;
    if (len == 0) break;  // zero-length message: single empty fragment
  }
  return true;
}

void ElasticConveyor::drain_transport() {
  // Batch-drain fragments in place: no per-fragment pull copy, no scratch
  // record — reassembly reads straight out of the receive queue views.
  inner_->drain([&](const Delivered& r) {
    const auto* rec = static_cast<const std::byte*>(r.payload);
    Fragment h;
    std::memcpy(&h, rec, sizeof h);
    Partial& p = partial_[static_cast<std::size_t>(r.src)];
    if (p.expected == 0) p.expected = h.remaining;  // message start
    p.data.insert(p.data.end(), rec + sizeof h, rec + sizeof h + h.used);
    if (h.remaining == h.used) {
      ready_.push_back(Ready{std::move(p.data), r.src});
      p.data.clear();
      p.expected = 0;
    } else {
      p.expected -= h.used;
    }
  });
}

bool ElasticConveyor::epull(std::vector<std::byte>& out, int* from_pe) {
  drain_transport();
  if (ready_head_ >= ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
    return false;
  }
  out = std::move(ready_[ready_head_].data);
  if (from_pe != nullptr) *from_pe = ready_[ready_head_].from;
  ++ready_head_;
  if (ready_head_ >= ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  return true;
}

bool ElasticConveyor::advance(bool done) {
  const bool running = inner_->advance(done);
  drain_transport();
  // The inner conveyor drains its recv queue into our reassembly buffers,
  // so "locally drained" must also account for assembled messages.
  return running || ready_head_ < ready_.size();
}

}  // namespace ap::convey
