// Elastic conveyors: variable-length messages (the convey_epush /
// convey_epull half of the real Conveyors API [4]).
//
// Variable-length payloads are fragmented into fixed-size records and
// reassembled at the destination. Because the underlying conveyor delivers
// per-(source, destination) FIFO, the fragments of one message arrive in
// order and contiguously relative to other messages from the same source,
// so reassembly needs only one partial buffer per source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "conveyor/conveyor.hpp"

namespace ap::convey {

class ElasticConveyor {
 public:
  /// Collective construction (like Conveyor::create). `base.item_bytes`
  /// is ignored; `fragment_payload` sets the payload bytes carried per
  /// fragment (the fixed record size of the transport underneath).
  static std::shared_ptr<ElasticConveyor> create(
      const Options& base = Options{}, std::size_t fragment_payload = 56);

  /// Try to enqueue a variable-length message. Returns false — with no
  /// side effects — when back-pressure refuses the first fragment; the
  /// caller must advance() and retry. Once the first fragment is in, the
  /// rest are pushed with internal progress (like Selector::send).
  bool epush(const void* data, std::size_t len, int dst_pe);

  /// Dequeue one complete message; false when none is fully assembled.
  bool epull(std::vector<std::byte>& out, int* from_pe);

  /// Progress + termination, exactly like Conveyor::advance.
  bool advance(bool done);

  [[nodiscard]] const Conveyor& transport() const { return *inner_; }
  [[nodiscard]] std::size_t fragment_payload() const { return frag_payload_; }
  /// Messages fully assembled and waiting for epull on this PE.
  [[nodiscard]] std::size_t assembled_pending() const {
    return ready_.size();
  }

 private:
  struct Fragment;  // wire record

  ElasticConveyor(std::shared_ptr<Conveyor> inner, std::size_t frag_payload);
  void drain_transport();

  std::shared_ptr<Conveyor> inner_;
  std::size_t frag_payload_;
  /// Per-source partial reassembly: expected remaining bytes + data.
  struct Partial {
    std::vector<std::byte> data;
    std::size_t expected = 0;
  };
  std::vector<Partial> partial_;  // indexed by source PE
  struct Ready {
    std::vector<std::byte> data;
    int from;
  };
  std::vector<Ready> ready_;
  std::size_t ready_head_ = 0;
};

}  // namespace ap::convey
