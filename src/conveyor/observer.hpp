// Instrumentation seam between Conveyors and ActorProf (physical trace).
//
// The conveyor calls the registered observer at exactly the three transfer
// sites the paper instruments (§III-C): local_send (intra-node memcpy via
// shmem_ptr), nonblock_send (shmem_putmem_nbi), and nonblock_progress
// (shmem_quiet + signal put). No profiling logic lives in the conveyor —
// a null observer means zero work beyond one branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ap::convey {

enum class SendType { local_send, nonblock_send, nonblock_progress };

[[nodiscard]] constexpr std::string_view to_string(SendType t) {
  switch (t) {
    case SendType::local_send: return "local_send";
    case SendType::nonblock_send: return "nonblock_send";
    case SendType::nonblock_progress: return "nonblock_progress";
  }
  return "unknown";
}

class TransferObserver {
 public:
  virtual ~TransferObserver() = default;
  /// A network-level transfer of `buffer_bytes` from `src_pe` to `dst_pe`.
  /// `first_flow_id` is the flow id of the first aggregated record in the
  /// buffer (0 when the conveyor is not carrying flow ids) — enough to
  /// anchor a Send -> Transfer -> Proc chain without scanning the payload.
  virtual void on_transfer(SendType type, std::size_t buffer_bytes,
                           int src_pe, int dst_pe,
                           std::uint64_t first_flow_id) = 0;
  /// Called once per advance() on the calling PE with the bytes currently
  /// sitting in its outgoing (unflushed + in-flight) and received
  /// (undelivered) buffers — the backpressure signal the metrics sampler
  /// tracks. Default no-op so transfer-only observers need no change.
  virtual void on_advance(std::size_t out_pending_bytes,
                          std::size_t recv_pending_bytes) {
    (void)out_pending_bytes;
    (void)recv_pending_bytes;
  }
  /// Gate for the conformance instrumentation (docs/CHECKING.md): when
  /// true, the conveyor annotates its raw heap accesses (intra-node ring
  /// writes, publication-flag polls) through shmem::annotate_* and reports
  /// protocol misuse below. Endpoints cache this per advance(), so the
  /// default-false answer costs the data plane nothing.
  virtual bool wants_conformance_events() const { return false; }
  /// Conveyor API protocol misuse on the calling PE (pull() inside a drain
  /// batch, nested drain_begin, push after done). Default no-op.
  virtual void on_conveyor_misuse(const char* what) { (void)what; }
};

/// Install/read the process-wide (per-thread) observer. The profiler owns
/// the registration; nullptr disables physical tracing.
void set_transfer_observer(TransferObserver* obs);
TransferObserver* transfer_observer();

}  // namespace ap::convey
