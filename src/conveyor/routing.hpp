// Conveyors routing topologies (paper §III-C / [4][11]).
//
// Conveyors arranges PEs in a logical grid and routes every message along a
// static multi-hop path: 1D linear (direct), 2D mesh (one hop along the
// sender's row — intra-node — then one along the destination column —
// inter-node), or 3D cube. The grid rows coincide with cluster nodes, so
// row hops travel over shared memory (local_send) and column hops over the
// network (nonblock_send), exactly the behaviour Figures 8–9 visualize.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "shmem/topology.hpp"

namespace ap::convey {

enum class RouteKind {
  Auto,      ///< Linear1D when 1 node, Mesh2D otherwise (Conveyors' default)
  Linear1D,  ///< direct source->destination
  Mesh2D,    ///< row hop (intra-node), then column hop (inter-node)
  Cube3D     ///< row hop, then two node-grid hops (requires composite node count)
};

/// Computes the next hop of the static route from `me` toward `dst`.
class Router {
 public:
  Router(const shmem::Topology& topo, RouteKind kind)
      : topo_(topo), kind_(resolve(topo, kind)) {
    if (kind_ == RouteKind::Cube3D) {
      // Factor the node count into two near-square dimensions a*b.
      const int nodes = topo_.num_nodes();
      int a = 1;
      for (int d = 1; d * d <= nodes; ++d)
        if (nodes % d == 0) a = d;
      dim_a_ = a;
      dim_b_ = nodes / a;
      if (dim_a_ == 1 && dim_b_ > 1 && nodes > 1) {
        // Prime node count: the cube degenerates to a mesh in that axis.
      }
    }
  }

  [[nodiscard]] RouteKind kind() const { return kind_; }

  /// The PE the message must be handed to next (may be `dst` itself, or
  /// `me` when me == dst).
  [[nodiscard]] int next_hop(int me, int dst) const {
    switch (kind_) {
      case RouteKind::Linear1D:
        return dst;
      case RouteKind::Mesh2D: {
        if (topo_.same_node(me, dst)) return dst;  // row hop finishes it
        const int col = topo_.local_rank(dst);
        if (topo_.local_rank(me) != col) {
          // Row hop to the destination's column — unless the grid is
          // ragged (uneven last node) and that PE does not exist, in which
          // case the route degenerates to a direct hop.
          const int mid = grid_pe(topo_.node_of(me), col);
          return mid >= 0 ? mid : dst;
        }
        return dst;  // column hop
      }
      case RouteKind::Cube3D: {
        if (topo_.same_node(me, dst)) return dst;
        const int col = topo_.local_rank(dst);
        if (topo_.local_rank(me) != col) {
          const int mid = grid_pe(topo_.node_of(me), col);  // axis 0 (row)
          return mid >= 0 ? mid : dst;
        }
        const int my_node = topo_.node_of(me);
        const int dst_node = topo_.node_of(dst);
        const int my_a = my_node % dim_a_;
        const int dst_a = dst_node % dim_a_;
        if (my_a != dst_a) {
          // axis 1: move within the node-grid row.
          const int mid_node = (my_node / dim_a_) * dim_a_ + dst_a;
          const int mid = grid_pe(mid_node, col);
          return mid >= 0 ? mid : dst;
        }
        return dst;  // axis 2: final node-grid hop
      }
      case RouteKind::Auto:
        break;
    }
    throw std::logic_error("Router: unresolved route kind");
  }

  /// Dense next-hop table for one endpoint: table[d] == next_hop(me, d).
  /// Computed once at conveyor construction so the per-item hot path does
  /// one array load instead of the division-heavy topology math above.
  [[nodiscard]] std::vector<std::int32_t> table_for(int me) const {
    std::vector<std::int32_t> t(static_cast<std::size_t>(topo_.num_pes()));
    for (int d = 0; d < topo_.num_pes(); ++d)
      t[static_cast<std::size_t>(d)] = next_hop(me, d);
    return t;
  }

  /// Number of hops the full route s->d takes.
  [[nodiscard]] int hop_count(int src, int dst) const {
    int hops = 0;
    int at = src;
    if (src == dst) return 1;  // self-send still traverses the stack once
    while (at != dst) {
      at = next_hop(at, dst);
      ++hops;
      if (hops > 4)
        throw std::logic_error("Router: route does not converge");
    }
    return hops;
  }

  static RouteKind resolve(const shmem::Topology& topo, RouteKind kind) {
    if (kind != RouteKind::Auto) return kind;
    return topo.num_nodes() <= 1 ? RouteKind::Linear1D : RouteKind::Mesh2D;
  }

 private:
  /// PE at (node, local_rank), or -1 when the grid is ragged there.
  [[nodiscard]] int grid_pe(int node, int local_rank) const {
    const int pe = node * topo_.pes_per_node() + local_rank;
    return pe < topo_.num_pes() ? pe : -1;
  }

  shmem::Topology topo_;
  RouteKind kind_;
  int dim_a_ = 1;
  int dim_b_ = 1;
};

}  // namespace ap::convey
