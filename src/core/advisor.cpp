#include "core/advisor.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "core/profiler.hpp"

namespace ap::prof {

namespace {

int argmax(const std::vector<std::uint64_t>& v) {
  if (v.empty()) return -1;
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

std::string fmt(double x, int prec = 2) {
  std::ostringstream os;
  os.precision(prec);
  os << std::fixed << x;
  return os.str();
}

void add_imbalance_finding(Report& rep, const std::vector<std::uint64_t>& per_pe,
                           Finding::Kind kind, const char* what,
                           const char* recommendation,
                           const AdvisorOptions& opts) {
  const double f = imbalance_factor(per_pe);
  if (f < opts.imbalance_notice) return;
  Finding fin;
  fin.kind = kind;
  fin.severity = f >= opts.imbalance_warning ? Finding::Severity::warning
                                             : Finding::Severity::notice;
  fin.metric = f;
  fin.subject = argmax(per_pe);
  fin.message = std::string(what) + " imbalance: PE" +
                std::to_string(fin.subject) + " carries " + fmt(f) +
                "x the mean";
  fin.recommendation = recommendation;
  rep.findings.push_back(std::move(fin));
}

}  // namespace

CommMatrix collapse_to_nodes(const CommMatrix& m,
                             const shmem::Topology& topo) {
  CommMatrix out(topo.num_nodes());
  for (int s = 0; s < m.size(); ++s)
    for (int d = 0; d < m.size(); ++d)
      if (m.at(s, d) > 0) out.add(topo.node_of(s), topo.node_of(d), m.at(s, d));
  return out;
}

CommMatrix collapse_to_nodes(const SparseCommMatrix& m,
                             const shmem::Topology& topo) {
  // O(nonzero cells): large-P callers collapse without ever holding the
  // dense PE-level matrix (the node-level result is small by definition).
  CommMatrix out(topo.num_nodes());
  m.for_each([&](int s, int d, std::uint64_t v) {
    out.add(topo.node_of(s), topo.node_of(d), v);
  });
  return out;
}

Report advise(const CommMatrix& logical, const CommMatrix& physical,
              const std::vector<OverallRecord>& overall,
              const std::vector<std::uint64_t>& papi_tot_ins,
              const shmem::Topology& topo, const AdvisorOptions& opts) {
  Report rep;

  // ---- logical trace: load balance & shape (paper §IV-D heatmap reads).
  if (logical.size() > 0 && logical.total() > 0) {
    add_imbalance_finding(
        rep, logical.row_sums(), Finding::Kind::SendImbalance, "send",
        "experiment with data distributions (the paper's own advice): "
        "1D Range balances #nnz; also consider Edge Cut or Cartesian "
        "Vertex-Cut partitionings",
        opts);
    add_imbalance_finding(
        rep, logical.col_sums(), Finding::Kind::RecvImbalance, "recv",
        "receive-side hotspots persist even under 1D Range; consider "
        "distributions that split hot rows, or two-sided work stealing",
        opts);
    if (logical.is_lower_triangular() && logical.size() > 1) {
      Finding f;
      f.kind = Finding::Kind::LowerTriangularShape;
      f.severity = Finding::Severity::info;
      f.metric = 1.0;
      f.message =
          "communication matrix is lower-triangular — the \"(L) "
          "observation\" of a range-style (contiguous, nnz-balanced) "
          "distribution on a triangular input";
      f.recommendation =
          "expected for 1D Range on lower-triangular inputs; low-rank PEs "
          "will dominate receives";
      rep.findings.push_back(std::move(f));
    }
    // Self traffic.
    std::uint64_t self = 0;
    for (int p = 0; p < logical.size(); ++p) self += logical.at(p, p);
    const double self_share =
        static_cast<double>(self) / static_cast<double>(logical.total());
    if (self_share > 0.25) {
      Finding f;
      f.kind = Finding::Kind::HeavySelfTraffic;
      f.severity = Finding::Severity::notice;
      f.metric = self_share;
      f.message = "self-sends are " + fmt(100 * self_share, 1) +
                  "% of all messages and still pay the full conveyor "
                  "copy chain (no bypass, to preserve ordering)";
      f.recommendation =
          "handle locally-owned destinations before send() where message "
          "ordering allows it";
      rep.findings.push_back(std::move(f));
    }
  }

  // ---- physical trace: node hotspots & aggregation efficiency.
  if (physical.size() > 0 && physical.total() > 0) {
    const CommMatrix nodes = collapse_to_nodes(physical, topo);
    if (nodes.size() > 1) {
      const auto node_out = nodes.row_sums();
      const double f = imbalance_factor(node_out);
      if (f >= opts.imbalance_notice) {
        Finding fin;
        fin.kind = Finding::Kind::NodeHotspot;
        fin.severity = f >= opts.imbalance_warning
                           ? Finding::Severity::warning
                           : Finding::Severity::notice;
        fin.metric = f;
        fin.subject = argmax(node_out);
        fin.message = "node " + std::to_string(fin.subject) + " sources " +
                      fmt(f) + "x the mean network buffers";
        fin.recommendation =
            "rebalance ownership across nodes or widen the node's share of "
            "the routing grid";
        rep.findings.push_back(std::move(fin));
      }
    }
    if (logical.total() > 0) {
      const double per_buffer = static_cast<double>(logical.total()) /
                                static_cast<double>(physical.total());
      if (per_buffer < opts.thrash_msgs_per_buffer) {
        Finding f;
        f.kind = Finding::Kind::SmallBufferThrash;
        f.severity = Finding::Severity::warning;
        f.metric = per_buffer;
        f.message = "only " + fmt(per_buffer, 1) +
                    " messages per transferred buffer — aggregation is "
                    "barely paying for itself";
        f.recommendation =
            "increase the conveyor buffer size, or batch sends per "
            "destination";
        rep.findings.push_back(std::move(f));
      }
    }
  }

  // ---- overall profile: what is the program bound by? (paper Fig 12/13)
  if (!overall.empty()) {
    std::uint64_t tm = 0, tc = 0, tp = 0, tt = 0;
    for (const OverallRecord& r : overall) {
      tm += r.t_main;
      tc += r.t_comm();
      tp += r.t_proc;
      tt += r.t_total;
    }
    if (tt > 0) {
      const double main_share = static_cast<double>(tm) / static_cast<double>(tt);
      const double comm_share = static_cast<double>(tc) / static_cast<double>(tt);
      const double proc_share = static_cast<double>(tp) / static_cast<double>(tt);
      auto bound = [&](Finding::Kind k, double share, const char* name,
                       const char* reco) {
        if (share < opts.bound_threshold) return;
        Finding f;
        f.kind = k;
        f.severity = Finding::Severity::notice;
        f.metric = share;
        f.message = std::string(name) + " accounts for " +
                    fmt(100 * share, 1) + "% of the profiled cycles";
        f.recommendation = reco;
        rep.findings.push_back(std::move(f));
      };
      bound(Finding::Kind::CommBound, comm_share, "COMM",
            "the kernel is communication-bound: exploit more overlap "
            "between computation and communication, try better data "
            "distributions, or raise aggregation buffer sizes");
      bound(Finding::Kind::ProcBound, proc_share, "PROC",
            "message handlers dominate: optimize the handler body (it runs "
            "once per message) or reduce message counts algorithmically");
      bound(Finding::Kind::MainBound, main_share, "MAIN",
            "local computation dominates: profile the MAIN segments with "
            "PAPI counters to find the hot loops");
    }
  }

  // ---- PAPI totals.
  if (!papi_tot_ins.empty()) {
    add_imbalance_finding(
        rep, papi_tot_ins, Finding::Kind::InstructionImbalance,
        "instruction (PAPI_TOT_INS)",
        "the skewed PE executes disproportionate user code in its send/recv "
        "segments; rebalance the data it owns",
        opts);
  }

  // Most severe first, then by metric.
  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity)
                       return static_cast<int>(a.severity) >
                              static_cast<int>(b.severity);
                     return a.metric > b.metric;
                   });
  return rep;
}

Report advise(const Profiler& prof, const AdvisorOptions& opts) {
  std::vector<std::uint64_t> ins;
  try {
    ins = prof.papi_totals(papi::Event::TOT_INS);
  } catch (const std::invalid_argument&) {
    // TOT_INS not configured; proceed without instruction findings.
  }
  Report rep = advise(prof.logical_matrix(), prof.physical_matrix(),
                      prof.overall(), ins, prof.topo(), opts);

  // Live-metrics findings (only the profiler overload can see them; the
  // matrix-based core stays file-replayable).
  if (prof.config().metrics) {
    // Fold the anomaly stream into one finding per (kind, PE): report the
    // count and the worst divergence rather than thousands of rows.
    struct Agg {
      int count = 0;
      double worst_ratio = 0.0;
      double value = 0.0, median = 0.0;
    };
    std::map<std::pair<metrics::AnomalyKind, int>, Agg> by_pe;
    for (const metrics::Anomaly& a : prof.anomalies().items()) {
      Agg& g = by_pe[{a.kind, a.pe}];
      g.count++;
      const double ratio =
          a.fleet_median > 0 ? a.value / a.fleet_median : a.value;
      if (ratio > g.worst_ratio) {
        g.worst_ratio = ratio;
        g.value = a.value;
        g.median = a.fleet_median;
      }
    }
    for (const auto& [key, g] : by_pe) {
      const auto [kind, pe] = key;
      Finding f;
      f.subject = pe;
      f.metric = g.worst_ratio;
      f.severity = g.worst_ratio >= opts.imbalance_warning
                       ? Finding::Severity::warning
                       : Finding::Severity::notice;
      std::ostringstream msg;
      if (kind == metrics::AnomalyKind::ProcBacklog) {
        f.kind = Finding::Kind::Straggler;
        msg << "PE" << pe << " fell behind in " << g.count
            << " sample(s): unprocessed backlog peaked at " << g.value
            << " messages vs a fleet median of " << g.median;
        f.recommendation =
            "Rebalance the data distribution feeding this PE, or cut its "
            "handler cost — the fleet is waiting on its PROC queue.";
      } else {
        f.kind = Finding::Kind::Backpressure;
        msg << "PE" << pe << " was communication-bound in " << g.count
            << " sample(s): COMM share peaked at " << g.value / 10.0
            << "% vs a fleet median of " << g.median / 10.0 << "%";
        f.recommendation =
            "This PE stalls on aggregation buffers/quiet; grow "
            "buffer_bytes or spread its destinations to relieve "
            "backpressure.";
      }
      f.message = msg.str();
      rep.findings.push_back(std::move(f));
    }

    // Self-overhead share relative to the busiest PE's measured cycles.
    std::uint64_t max_total = 0;
    for (const OverallRecord& r : prof.overall())
      max_total = std::max(max_total, r.t_total);
    const std::uint64_t own = prof.self_overhead().grand_total();
    if (max_total > 0 && own > 0) {
      const double share =
          static_cast<double>(own) / static_cast<double>(max_total);
      if (share >= opts.overhead_notice) {
        Finding f;
        f.kind = Finding::Kind::ProfilerOverhead;
        f.severity = share >= opts.overhead_warning
                         ? Finding::Severity::warning
                         : Finding::Severity::notice;
        f.metric = share;
        std::ostringstream msg;
        msg << "ActorProf itself consumed " << own << " cycles ("
            << share * 100.0 << "% of the busiest PE)";
        f.message = msg.str();
        f.recommendation =
            "Raise ACTORPROF_METRICS_INTERVAL_MS, disable per-event "
            "retention (keep_*_events), or sample (sample_every) to cut "
            "instrumentation cost.";
        rep.findings.push_back(std::move(f));
      }
    }

    std::stable_sort(rep.findings.begin(), rep.findings.end(),
                     [](const Finding& a, const Finding& b) {
                       if (a.severity != b.severity)
                         return static_cast<int>(a.severity) >
                                static_cast<int>(b.severity);
                       return a.metric > b.metric;
                     });
  }

  // Conformance findings (Config::check): one finding per violation kind,
  // carrying the count and the first instance — the full list lives in
  // check.csv / `actorprof check`.
  if (prof.config().check && !prof.bsp_violations().empty()) {
    std::map<check::Violation::Kind, std::pair<int, const check::Violation*>>
        by_kind;
    for (const check::Violation& v : prof.bsp_violations()) {
      auto& slot = by_kind[v.kind];
      slot.first++;
      if (slot.second == nullptr) slot.second = &v;
    }
    for (const auto& [kind, slot] : by_kind) {
      const auto& [count, first] = slot;
      Finding f;
      f.kind = Finding::Kind::BspViolation;
      f.severity = Finding::Severity::warning;
      f.subject = first->pe;
      f.metric = count;
      std::ostringstream msg;
      msg << count << " " << check::to_string(kind)
          << " violation(s); first: pe " << first->pe << " superstep "
          << first->superstep;
      if (!first->callsite.empty()) msg << " at " << first->callsite;
      if (!first->detail.empty()) msg << " (" << first->detail << ")";
      f.message = msg.str();
      f.recommendation =
          "Run `actorprof check <trace_dir>` for the full report; each "
          "violation names the PE, superstep and heap range — add the "
          "missing quiet()/wait_until or move the access past the barrier.";
      rep.findings.push_back(std::move(f));
    }
    if (prof.bsp_violations_dropped() > 0) {
      Finding f;
      f.kind = Finding::Kind::BspViolation;
      f.severity = Finding::Severity::warning;
      f.metric = static_cast<double>(prof.bsp_violations_dropped());
      std::ostringstream msg;
      msg << prof.bsp_violations_dropped()
          << " further violation(s) dropped past the checker's report cap";
      f.message = msg.str();
      f.recommendation =
          "Fix the reported violations first; the dropped ones are "
          "usually repeats of the same sites.";
      rep.findings.push_back(std::move(f));
    }
  }
  return rep;
}

std::string format_report(const Report& report) {
  std::ostringstream os;
  if (report.findings.empty()) {
    os << "ActorProf advisor: no findings — the profile looks balanced.\n";
    return os.str();
  }
  os << "ActorProf advisor — " << report.findings.size() << " finding(s):\n";
  for (const Finding& f : report.findings) {
    const char* sev = f.severity == Finding::Severity::warning ? "WARNING"
                      : f.severity == Finding::Severity::notice ? "notice "
                                                                : "info   ";
    os << "  [" << sev << "] " << f.message << "\n            -> "
       << f.recommendation << "\n";
  }
  return os.str();
}

}  // namespace ap::prof
