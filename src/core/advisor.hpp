// Bottleneck advisor: turns ActorProf's aggregates into the inferences the
// paper walks through by hand in §IV — load imbalance and hot PEs from the
// logical trace, node hotspots from the physical trace, the MAIN/COMM/PROC
// classification from the overall profile, "(L)"-shape detection, and the
// paper's own recommendations ("experimenting with data-distributions",
// "exploit more overlap between computation and communication").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/records.hpp"
#include "shmem/topology.hpp"

namespace ap::prof {

class Profiler;

/// One diagnostic finding with a severity and a recommendation.
struct Finding {
  enum class Severity { info, notice, warning };
  enum class Kind {
    SendImbalance,      ///< per-PE send totals are skewed
    RecvImbalance,      ///< per-PE recv totals are skewed
    InstructionImbalance,  ///< PAPI_TOT_INS skewed across PEs
    CommBound,          ///< T_COMM dominates the overall profile
    ProcBound,          ///< T_PROC dominates
    MainBound,          ///< T_MAIN dominates (rare for FA-BSP programs)
    LowerTriangularShape,  ///< the "(L) observation" (range-style dist)
    NodeHotspot,        ///< one node sources/sinks most network traffic
    HeavySelfTraffic,   ///< self-sends dominate (conveyor still pays copies)
    SmallBufferThrash,  ///< many tiny physical transfers per message
    // Live-metrics findings (Config::metrics; profiler overload only):
    Straggler,          ///< online detector flagged a PROC backlog outlier
    Backpressure,       ///< online detector flagged a COMM-share outlier
    ProfilerOverhead,   ///< ActorProf's own cost is a notable share of MAIN
    // Superstep-analysis findings (analysis::barrier_wait_findings):
    BarrierWait,        ///< one PE gates a barrier, fleet waits on it
    // Conformance findings (Config::check; profiler overload only):
    BspViolation        ///< happens-before checker flagged BSP-model breaks
  };
  Kind kind;
  Severity severity;
  /// Human-readable statement with the numbers filled in.
  std::string message;
  /// What to try, in the paper's spirit.
  std::string recommendation;
  /// Primary quantitative evidence (ratio / percentage, kind-specific).
  double metric = 0.0;
  /// PE or node the finding points at, -1 when global.
  int subject = -1;
};

struct AdvisorOptions {
  /// max/mean factor above which an imbalance is worth reporting.
  double imbalance_notice = 1.5;
  double imbalance_warning = 3.0;
  /// Region share above which the profile counts as bound by it.
  double bound_threshold = 0.5;
  /// Average messages per physical buffer below which aggregation is
  /// considered ineffective.
  double thrash_msgs_per_buffer = 4.0;
  /// Self-overhead as a share of the busiest PE's total cycles: notice and
  /// warning thresholds for the ProfilerOverhead finding.
  double overhead_notice = 0.02;
  double overhead_warning = 0.10;
};

struct Report {
  std::vector<Finding> findings;
  [[nodiscard]] bool has(Finding::Kind k) const {
    for (const Finding& f : findings)
      if (f.kind == k) return true;
    return false;
  }
  [[nodiscard]] const Finding* find(Finding::Kind k) const {
    for (const Finding& f : findings)
      if (f.kind == k) return &f;
    return nullptr;
  }
};

/// Analyze collected traces. Any of the inputs may be empty (disabled
/// trace kinds simply produce no findings of that family).
Report advise(const CommMatrix& logical, const CommMatrix& physical,
              const std::vector<OverallRecord>& overall,
              const std::vector<std::uint64_t>& papi_tot_ins,
              const shmem::Topology& topo,
              const AdvisorOptions& opts = {});

/// Convenience overload pulling everything from a profiler.
Report advise(const Profiler& prof, const AdvisorOptions& opts = {});

/// Render a report as terminal text.
std::string format_report(const Report& report);

/// Collapse a PE-level matrix to node granularity (the paper's "hotspots
/// of node from the network sends"). The sparse overload never densifies
/// at PE granularity — use it for large fleets.
CommMatrix collapse_to_nodes(const CommMatrix& m, const shmem::Topology& topo);
CommMatrix collapse_to_nodes(const SparseCommMatrix& m,
                             const shmem::Topology& topo);

}  // namespace ap::prof
