#include "core/aggregate.hpp"

#include <algorithm>
#include <stdexcept>

namespace ap::prof {

std::vector<std::uint64_t> CommMatrix::row_sums() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n_), 0);
  for (int s = 0; s < n_; ++s)
    for (int d = 0; d < n_; ++d) out[static_cast<std::size_t>(s)] += at(s, d);
  return out;
}

std::vector<std::uint64_t> CommMatrix::col_sums() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n_), 0);
  for (int s = 0; s < n_; ++s)
    for (int d = 0; d < n_; ++d) out[static_cast<std::size_t>(d)] += at(s, d);
  return out;
}

std::uint64_t CommMatrix::total() const {
  std::uint64_t t = 0;
  for (std::uint64_t c : counts_) t += c;
  return t;
}

std::uint64_t CommMatrix::max_cell() const {
  std::uint64_t m = 0;
  for (std::uint64_t c : counts_) m = std::max(m, c);
  return m;
}

CommMatrix& CommMatrix::operator+=(const CommMatrix& other) {
  if (other.n_ != n_)
    throw std::invalid_argument("CommMatrix += size mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  return *this;
}

bool CommMatrix::is_lower_triangular() const {
  for (int s = 0; s < n_; ++s)
    for (int d = s + 1; d < n_; ++d)
      if (at(s, d) != 0) return false;
  return true;
}

std::vector<std::uint64_t> SparseCommMatrix::row_sums() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n_), 0);
  for_each([&](int s, int, std::uint64_t v) {
    out[static_cast<std::size_t>(s)] += v;
  });
  return out;
}

std::vector<std::uint64_t> SparseCommMatrix::col_sums() const {
  std::vector<std::uint64_t> out(static_cast<std::size_t>(n_), 0);
  for_each([&](int, int d, std::uint64_t v) {
    out[static_cast<std::size_t>(d)] += v;
  });
  return out;
}

std::uint64_t SparseCommMatrix::total() const {
  std::uint64_t t = 0;
  for (const auto& [k, v] : cells_) t += v;
  return t;
}

std::uint64_t SparseCommMatrix::max_cell() const {
  std::uint64_t m = 0;
  for (const auto& [k, v] : cells_) m = std::max(m, v);
  return m;
}

bool SparseCommMatrix::is_lower_triangular() const {
  for (const auto& [k, v] : cells_) {
    const auto s = k / static_cast<std::uint64_t>(n_);
    const auto d = k % static_cast<std::uint64_t>(n_);
    if (v != 0 && d > s) return false;
  }
  return true;
}

SparseCommMatrix& SparseCommMatrix::operator+=(const SparseCommMatrix& other) {
  if (other.n_ != n_)
    throw std::invalid_argument("SparseCommMatrix += size mismatch");
  for (const auto& [k, v] : other.cells_) cells_[k] += v;
  return *this;
}

CommMatrix SparseCommMatrix::bucketed(int target) const {
  if (target <= 0)
    throw std::invalid_argument("SparseCommMatrix::bucketed: target <= 0");
  if (n_ <= target) return dense();
  CommMatrix out(bucket_count(n_, target));
  for_each([&](int s, int d, std::uint64_t v) {
    out.add(bucket_of(s, n_, target), bucket_of(d, n_, target), v);
  });
  return out;
}

CommMatrix SparseCommMatrix::dense() const {
  CommMatrix out(n_);
  for_each([&](int s, int d, std::uint64_t v) { out.add(s, d, v); });
  return out;
}

int bucket_count(int n, int target) {
  if (target <= 0) throw std::invalid_argument("bucket_count: target <= 0");
  if (n <= target) return n;
  const int per = (n + target - 1) / target;
  return (n + per - 1) / per;
}

int bucket_of(int pe, int n, int target) {
  if (n <= target) return pe;
  const int per = (n + target - 1) / target;
  return pe / per;
}

BucketRange bucket_range(int bucket, int n, int target) {
  if (n <= target) return BucketRange{bucket, bucket + 1};
  const int per = (n + target - 1) / target;
  return BucketRange{bucket * per, std::min((bucket + 1) * per, n)};
}

QuartileStats quartiles(std::vector<double> v) {
  QuartileStats q;
  q.n = v.size();
  if (v.empty()) return q;
  std::sort(v.begin(), v.end());
  auto at_rank = [&v](double p) {
    if (v.size() == 1) return v[0];
    const double r = p * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(r);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = r - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  };
  q.min = v.front();
  q.max = v.back();
  q.q1 = at_rank(0.25);
  q.median = at_rank(0.5);
  q.q3 = at_rank(0.75);
  double sum = 0;
  for (double x : v) sum += x;
  q.mean = sum / static_cast<double>(v.size());
  return q;
}

QuartileStats quartiles_u64(const std::vector<std::uint64_t>& values) {
  std::vector<double> v;
  v.reserve(values.size());
  for (std::uint64_t x : values) v.push_back(static_cast<double>(x));
  return quartiles(std::move(v));
}

CommMatrix bucket_matrix(const CommMatrix& m, int target) {
  if (target <= 0) throw std::invalid_argument("bucket_matrix: target <= 0");
  const int n = m.size();
  if (n <= target) return m;
  CommMatrix out(bucket_count(n, target));
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d)
      if (m.at(s, d) > 0)
        out.add(bucket_of(s, n, target), bucket_of(d, n, target), m.at(s, d));
  return out;
}

double imbalance_factor(const std::vector<std::uint64_t>& per_pe) {
  if (per_pe.empty()) return 1.0;
  std::uint64_t mx = 0, sum = 0;
  for (std::uint64_t x : per_pe) {
    mx = std::max(mx, x);
    sum += x;
  }
  if (sum == 0) return 1.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(per_pe.size());
  return static_cast<double>(mx) / mean;
}

}  // namespace ap::prof
