// In-memory aggregation of traces: communication matrices, per-PE totals,
// and the quartile statistics behind the paper's violin plots.
#pragma once

#include <cstdint>
#include <vector>

namespace ap::prof {

/// A dense src-by-dst counting matrix, the data behind every heatmap in the
/// paper. The "last row / last column" of the rendered heatmaps (total
/// recv per destination / total send per source) are the column/row sums.
class CommMatrix {
 public:
  CommMatrix() = default;
  explicit CommMatrix(int n) : n_(n), counts_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0) {}

  [[nodiscard]] int size() const { return n_; }

  void add(int src, int dst, std::uint64_t k = 1) {
    counts_[index(src, dst)] += k;
  }
  [[nodiscard]] std::uint64_t at(int src, int dst) const {
    return counts_[index(src, dst)];
  }

  /// Total sends per source PE (heatmap's last column).
  [[nodiscard]] std::vector<std::uint64_t> row_sums() const;
  /// Total recvs per destination PE (heatmap's last row).
  [[nodiscard]] std::vector<std::uint64_t> col_sums() const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t max_cell() const;

  CommMatrix& operator+=(const CommMatrix& other);
  friend bool operator==(const CommMatrix&, const CommMatrix&) = default;

  /// True when every non-zero entry (src,dst) satisfies dst <= src — the
  /// paper's "(L) observation" for the 1D Range distribution (self-sends
  /// and the diagonal included).
  [[nodiscard]] bool is_lower_triangular() const;

 private:
  [[nodiscard]] std::size_t index(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }
  int n_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Five-number summary + mean, the quartile content of a violin plot.
struct QuartileStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  std::size_t n = 0;
};

/// Compute quartiles of a sample (linear interpolation between ranks).
QuartileStats quartiles(std::vector<double> values);
QuartileStats quartiles_u64(const std::vector<std::uint64_t>& values);

/// Max/mean imbalance factor of a per-PE load vector (1.0 == perfectly
/// balanced); the number behind "PE0 suffers up to ~5x" statements.
double imbalance_factor(const std::vector<std::uint64_t>& per_pe);

/// Downsample an n-by-n matrix to at most `target` rows/cols by summing
/// contiguous PE buckets — keeps terminal heatmaps readable at hundreds
/// of PEs (part of the paper's §VI large-trace agenda).
CommMatrix bucket_matrix(const CommMatrix& m, int target);

}  // namespace ap::prof
