// In-memory aggregation of traces: communication matrices, per-PE totals,
// and the quartile statistics behind the paper's violin plots.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ap::prof {

/// A dense src-by-dst counting matrix, the data behind every heatmap in the
/// paper. The "last row / last column" of the rendered heatmaps (total
/// recv per destination / total send per source) are the column/row sums.
class CommMatrix {
 public:
  CommMatrix() = default;
  explicit CommMatrix(int n) : n_(n), counts_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0) {}

  [[nodiscard]] int size() const { return n_; }

  void add(int src, int dst, std::uint64_t k = 1) {
    counts_[index(src, dst)] += k;
  }
  [[nodiscard]] std::uint64_t at(int src, int dst) const {
    return counts_[index(src, dst)];
  }

  /// Total sends per source PE (heatmap's last column).
  [[nodiscard]] std::vector<std::uint64_t> row_sums() const;
  /// Total recvs per destination PE (heatmap's last row).
  [[nodiscard]] std::vector<std::uint64_t> col_sums() const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t max_cell() const;

  CommMatrix& operator+=(const CommMatrix& other);
  friend bool operator==(const CommMatrix&, const CommMatrix&) = default;

  /// True when every non-zero entry (src,dst) satisfies dst <= src — the
  /// paper's "(L) observation" for the 1D Range distribution (self-sends
  /// and the diagonal included).
  [[nodiscard]] bool is_lower_triangular() const;

 private:
  [[nodiscard]] std::size_t index(int src, int dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }
  int n_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Nonzero-cell map over an n-by-n communication space. Real traces are
/// sparse — under the mesh routes a PE talks to O(sqrt P) next hops — so
/// accumulating into a hash of touched cells keeps the analysis side
/// O(nonzero), where the dense CommMatrix would pin P^2 counters. The
/// rendering paths bucket *before* densifying (bucketed()), so no P^2
/// object ever exists for large P (docs/PERFORMANCE.md, "Memory at
/// scale"). Densify in full (dense()) only when n is known to be small,
/// e.g. for the advisor's per-PE diagnostics.
class SparseCommMatrix {
 public:
  SparseCommMatrix() = default;
  explicit SparseCommMatrix(int n) : n_(n) {}

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] std::size_t nonzero_cells() const { return cells_.size(); }

  void add(int src, int dst, std::uint64_t k = 1) {
    if (k != 0) cells_[key(src, dst)] += k;
  }
  [[nodiscard]] std::uint64_t at(int src, int dst) const {
    const auto it = cells_.find(key(src, dst));
    return it == cells_.end() ? 0 : it->second;
  }

  /// Visit every nonzero cell as f(src, dst, count); unspecified order.
  template <class F>
  void for_each(F&& f) const {
    for (const auto& [k, v] : cells_)
      f(static_cast<int>(k / static_cast<std::uint64_t>(n_)),
        static_cast<int>(k % static_cast<std::uint64_t>(n_)), v);
  }

  [[nodiscard]] std::vector<std::uint64_t> row_sums() const;
  [[nodiscard]] std::vector<std::uint64_t> col_sums() const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t max_cell() const;
  [[nodiscard]] bool is_lower_triangular() const;

  SparseCommMatrix& operator+=(const SparseCommMatrix& other);

  /// Downsample into at most `target` buckets per side and densify the
  /// result — the only way large matrices should ever become dense. When
  /// n <= target this is simply dense().
  [[nodiscard]] CommMatrix bucketed(int target) const;
  /// Full densification: O(n^2) memory, callers must know n is small.
  [[nodiscard]] CommMatrix dense() const;

 private:
  [[nodiscard]] std::uint64_t key(int src, int dst) const {
    return static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(n_) +
           static_cast<std::uint64_t>(dst);
  }
  int n_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
};

/// Five-number summary + mean, the quartile content of a violin plot.
struct QuartileStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
  std::size_t n = 0;
};

/// Compute quartiles of a sample (linear interpolation between ranks).
QuartileStats quartiles(std::vector<double> values);
QuartileStats quartiles_u64(const std::vector<std::uint64_t>& values);

/// Max/mean imbalance factor of a per-PE load vector (1.0 == perfectly
/// balanced); the number behind "PE0 suffers up to ~5x" statements.
double imbalance_factor(const std::vector<std::uint64_t>& per_pe);

/// Bucketing scheme shared by every downsampling path (terminal heatmap,
/// JSON, SVG): n PEs fold into buckets of per = ceil(n/target) consecutive
/// PEs, giving bucket_count(n, target) <= target buckets. When per does
/// not divide n the *last* bucket is short — bucket_range() is the single
/// source of truth for which PEs a bucket covers, so labels and
/// attribution can never disagree. The ranges partition [0, n) exactly.
[[nodiscard]] int bucket_count(int n, int target);
[[nodiscard]] int bucket_of(int pe, int n, int target);

/// Half-open PE range [begin, end) covered by one bucket.
struct BucketRange {
  int begin = 0;
  int end = 0;
  [[nodiscard]] int width() const { return end - begin; }
};
[[nodiscard]] BucketRange bucket_range(int bucket, int n, int target);

/// Downsample an n-by-n matrix to at most `target` rows/cols by summing
/// contiguous PE buckets — keeps terminal heatmaps readable at hundreds
/// of PEs (part of the paper's §VI large-trace agenda). Uses the
/// bucket_of/bucket_range scheme above.
CommMatrix bucket_matrix(const CommMatrix& m, int target);

}  // namespace ap::prof
