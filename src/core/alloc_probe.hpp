// Global heap-allocation probe for copy/allocation-budget regression tests
// and the bench --json fast-path reports.
//
// Include the header anywhere to read the counters; expand
// ACTORPROF_ALLOC_PROBE_DEFINE() at namespace scope in exactly ONE
// translation unit of the binary to install the counting operator
// new/delete replacements (C++ allows one replacement per program, so
// binaries that never expand the macro are unaffected and the counters
// just stay at zero).
//
// The counters are process-wide: snapshot around the region of interest
// and compare deltas. All PEs share the process, so a delta taken across
// a barrier-fenced phase covers every PE's work in that phase — which is
// exactly what a "zero allocations in steady state" budget wants to
// assert. The counters are relaxed atomics, so they are equally valid
// under the multithreaded execution backend (operator new may be called
// from any worker thread concurrently).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__) || defined(__linux__)
#include <execinfo.h>
#define ACTORPROF_ALLOC_PROBE_HAVE_BACKTRACE 1
#endif

namespace ap::prof::detail {
inline void dump_backtrace_if([[maybe_unused]] bool enabled) {
#ifdef ACTORPROF_ALLOC_PROBE_HAVE_BACKTRACE
  if (enabled) {
    void* frames[32];
    const int n = ::backtrace(frames, 32);
    ::backtrace_symbols_fd(frames, n, 2);
  }
#endif
}
}  // namespace ap::prof::detail

namespace ap::prof {

struct AllocProbe {
  static std::atomic<std::uint64_t> allocations;
  static std::atomic<std::uint64_t> frees;
  static std::atomic<std::uint64_t> bytes;
  /// Debug aid: while true, every allocation dumps a raw backtrace to
  /// stderr (backtrace_symbols_fd — itself allocation-free). Lets a failed
  /// zero-alloc budget test point at the offending call site directly.
  static std::atomic<bool> trap;

  /// Number of operator-new calls so far (0 when the probe is not
  /// installed in this binary).
  static std::uint64_t count() {
    return allocations.load(std::memory_order_relaxed);
  }
  static std::uint64_t bytes_allocated() {
    return bytes.load(std::memory_order_relaxed);
  }
};

}  // namespace ap::prof

#define ACTORPROF_ALLOC_PROBE_DEFINE()                                       \
  std::atomic<std::uint64_t> ap::prof::AllocProbe::allocations{0};           \
  std::atomic<std::uint64_t> ap::prof::AllocProbe::frees{0};                 \
  std::atomic<std::uint64_t> ap::prof::AllocProbe::bytes{0};                 \
  std::atomic<bool> ap::prof::AllocProbe::trap{false};                       \
  static void* actorprof_probe_alloc(std::size_t n) {                        \
    ap::prof::AllocProbe::allocations.fetch_add(1,                           \
                                                std::memory_order_relaxed);  \
    ap::prof::AllocProbe::bytes.fetch_add(n, std::memory_order_relaxed);     \
    ap::prof::detail::dump_backtrace_if(                                     \
        ap::prof::AllocProbe::trap.load(std::memory_order_relaxed));         \
    if (void* p = std::malloc(n == 0 ? 1 : n)) return p;                     \
    throw std::bad_alloc{};                                                  \
  }                                                                          \
  void* operator new(std::size_t n) { return actorprof_probe_alloc(n); }     \
  void* operator new[](std::size_t n) { return actorprof_probe_alloc(n); }   \
  void* operator new(std::size_t n, const std::nothrow_t&) noexcept {        \
    ap::prof::AllocProbe::allocations.fetch_add(1,                           \
                                                std::memory_order_relaxed);  \
    ap::prof::AllocProbe::bytes.fetch_add(n, std::memory_order_relaxed);     \
    return std::malloc(n == 0 ? 1 : n);                                      \
  }                                                                          \
  void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {    \
    return operator new(n, t);                                               \
  }                                                                          \
  void operator delete(void* p) noexcept {                                   \
    ap::prof::AllocProbe::frees.fetch_add(1, std::memory_order_relaxed);     \
    std::free(p);                                                            \
  }                                                                          \
  void operator delete[](void* p) noexcept { operator delete(p); }           \
  void operator delete(void* p, std::size_t) noexcept { operator delete(p); }\
  void operator delete[](void* p, std::size_t) noexcept {                    \
    operator delete(p);                                                      \
  }                                                                          \
  void operator delete(void* p, const std::nothrow_t&) noexcept {            \
    operator delete(p);                                                      \
  }                                                                          \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {          \
    operator delete(p);                                                      \
  }
