#include "core/chrome_trace.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "core/profiler.hpp"
#include "metrics/sampler.hpp"

namespace ap::prof {

namespace {

/// Timestamps are exported in microseconds (the trace-event unit). The
/// virtual-cycle source maps 1000 cycles -> 1 us for readable timelines.
double to_us(std::uint64_t cycles, std::uint64_t t0) {
  return static_cast<double>(cycles - t0) / 1000.0;
}

void duration_event(std::ostream& os, bool& first, const char* name,
                    char phase, double ts, int pid, int tid) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << name << R"(","ph":")" << phase
     << R"(","ts":)" << ts << R"(,"pid":)" << pid << R"(,"tid":)" << tid
     << '}';
}

void instant_event(std::ostream& os, bool& first, const char* name,
                   double ts, int pid, int tid, int dst, int bytes) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << name << R"(","ph":"i","s":"t","ts":)" << ts
     << R"(,"pid":)" << pid << R"(,"tid":)" << tid << R"(,"args":{"dst_pe":)"
     << dst << R"(,"bytes":)" << bytes << "}}";
}

/// ph:"X" complete slice (used for reconstructed barrier waits).
void complete_event(std::ostream& os, bool& first, const char* name, double ts,
                    double dur, int pid, int tid, std::uint32_t epoch,
                    std::uint32_t step) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << name << R"(","ph":"X","ts":)" << ts
     << R"(,"dur":)" << dur << R"(,"pid":)" << pid << R"(,"tid":)" << tid
     << R"(,"args":{"epoch":)" << epoch << R"(,"step":)" << step << "}}";
}

/// One point of a flow chain: where (node/PE rows) and when it was seen.
struct FlowPoint {
  double ts = 0;
  int node = 0;
  int pe = 0;
};

void flow_event(std::ostream& os, bool& first, char phase, int id,
                const FlowPoint& p) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":"msg","cat":"flow","ph":")" << phase << R"(","id":)" << id
     << R"(,"ts":)" << p.ts << R"(,"pid":)" << p.node << R"(,"tid":)" << p.pe;
  // Binding point "enclosing slice" lets the arrow land on the PROC box.
  if (phase == 'f') os << R"(,"bp":"e")";
  os << '}';
}

/// ph:"C" counter sample: one args key per PE of the node.
void counter_event(std::ostream& os, bool& first, const char* name, double ts,
                   int node, const std::vector<std::pair<int, std::int64_t>>&
                                  pe_values) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << name << R"(","ph":"C","ts":)" << ts
     << R"(,"pid":)" << node << R"(,"tid":0,"args":{)";
  bool f2 = true;
  for (const auto& [pe, v] : pe_values) {
    if (!f2) os << ',';
    f2 = false;
    os << "\"pe" << pe << "\":" << v;
  }
  os << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Profiler& prof) {
  os << "{\"traceEvents\":[\n";
  bool first = true;

  // Common origin so all PEs share the time axis.
  std::uint64_t t0 = UINT64_MAX;
  for (int pe = 0; pe < prof.num_pes(); ++pe) {
    const auto& tl = prof.timeline(pe);
    if (!tl.empty()) t0 = std::min(t0, tl.front().ts);
  }
  if (t0 == UINT64_MAX) t0 = 0;

  for (int pe = 0; pe < prof.num_pes(); ++pe) {
    const int node = prof.topo().node_of(pe);
    for (const TimelineEvent& e : prof.timeline(pe)) {
      const double ts = to_us(e.ts, t0);
      switch (e.kind) {
        case TimelineEvent::Kind::BeginMain:
          duration_event(os, first, "MAIN", 'B', ts, node, pe);
          break;
        case TimelineEvent::Kind::EndMain:
          duration_event(os, first, "MAIN", 'E', ts, node, pe);
          break;
        case TimelineEvent::Kind::BeginProc:
          duration_event(os, first, "PROC", 'B', ts, node, pe);
          break;
        case TimelineEvent::Kind::EndProc:
          duration_event(os, first, "PROC", 'E', ts, node, pe);
          break;
        case TimelineEvent::Kind::BeginComm:
          duration_event(os, first, "COMM", 'B', ts, node, pe);
          break;
        case TimelineEvent::Kind::EndComm:
          duration_event(os, first, "COMM", 'E', ts, node, pe);
          break;
        case TimelineEvent::Kind::Send:
          instant_event(os, first, "send", ts, node, pe, e.arg0, e.arg1);
          break;
        case TimelineEvent::Kind::Transfer:
          instant_event(os, first, "transfer", ts, node, pe, e.arg0, e.arg1);
          break;
      }
    }
  }

  // ---- barrier-wait spans from the superstep records ----------------------
  // When Config::supersteps was on, each PE's reconstructed wait at a
  // collective renders as a ph:"X" slice from its own arrival stamp to the
  // fleet-wide release (the max arrival at that collective). The release is
  // a cross-PE reconstruction — a lower bound, not a measured stamp — so
  // the slice shows *attributed* wait, matching `actorprof analyze`.
  for (int pe = 0; pe < prof.num_pes(); ++pe) {
    const int node = prof.topo().node_of(pe);
    for (const SuperstepRecord& r : prof.supersteps(pe)) {
      if (r.barrier_release <= r.barrier_arrive) continue;
      complete_event(os, first, "barrier_wait", to_us(r.barrier_arrive, t0),
                     static_cast<double>(r.barrier_release - r.barrier_arrive) /
                         1000.0,
                     node, pe, r.epoch, r.step);
    }
  }

  // ---- flow correlation: Send -> Transfer* -> Proc ------------------------
  // Collect where each flow id was seen. Raw ids are process-wide and never
  // reset, so renumber densely in send order — the exported file is then
  // identical across runs of a deterministic workload.
  std::map<std::uint64_t, FlowPoint> send_of, proc_of;
  std::map<std::uint64_t, std::vector<FlowPoint>> steps_of;
  std::vector<std::uint64_t> send_order;
  for (int pe = 0; pe < prof.num_pes(); ++pe) {
    const int node = prof.topo().node_of(pe);
    for (const TimelineEvent& e : prof.timeline(pe)) {
      if (e.flow == 0) continue;
      const FlowPoint p{to_us(e.ts, t0), node, pe};
      switch (e.kind) {
        case TimelineEvent::Kind::Send:
          if (send_of.emplace(e.flow, p).second) send_order.push_back(e.flow);
          break;
        case TimelineEvent::Kind::Transfer:
          steps_of[e.flow].push_back(p);
          break;
        case TimelineEvent::Kind::BeginProc:
          proc_of.emplace(e.flow, p);
          break;
        default:
          break;
      }
    }
  }
  int dense_id = 0;
  for (std::uint64_t flow : send_order) {
    // Only complete chains: an s without its f renders as a dangling arrow.
    auto proc = proc_of.find(flow);
    if (proc == proc_of.end()) continue;
    const int id = dense_id++;
    flow_event(os, first, 's', id, send_of.at(flow));
    if (auto steps = steps_of.find(flow); steps != steps_of.end())
      for (const FlowPoint& p : steps->second) flow_event(os, first, 't', id, p);
    flow_event(os, first, 'f', id, proc->second);
  }

  // ---- counter tracks from the metrics sampler ----------------------------
  const metrics::SampleRing& ring = prof.metric_samples();
  const int s_queue = prof.queue_depth_series();
  const int s_flight = prof.bytes_in_flight_series();
  if (ring.size() > 0 && s_queue >= 0) {
    // Group PEs by node so each node gets one multi-series track.
    std::map<int, std::vector<int>> pes_of_node;
    for (int pe = 0; pe < ring.num_pes(); ++pe)
      pes_of_node[prof.topo().node_of(pe)].push_back(pe);
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const double ts = to_us(ring.at(i).t_cycles, t0);
      for (const auto& [node, pes] : pes_of_node) {
        std::vector<std::pair<int, std::int64_t>> queue, flight;
        for (int pe : pes) {
          queue.emplace_back(
              pe, ring.value(i, pe, static_cast<std::size_t>(s_queue)));
          flight.emplace_back(
              pe, ring.value(i, pe, static_cast<std::size_t>(s_flight)));
        }
        counter_event(os, first, "queue_depth", ts, node, queue);
        counter_event(os, first, "bytes_in_flight", ts, node, flight);
      }
    }
  }

  // Thread names so Perfetto labels rows nicely.
  for (int pe = 0; pe < prof.num_pes(); ++pe) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":"thread_name","ph":"M","pid":)"
       << prof.topo().node_of(pe) << R"(,"tid":)" << pe
       << R"(,"args":{"name":"PE)" << pe << R"("}})";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace_file(const std::filesystem::path& path,
                             const Profiler& prof) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("write_chrome_trace_file: cannot open " +
                             path.string());
  write_chrome_trace(os, prof);
}

}  // namespace ap::prof
