#include "core/chrome_trace.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "core/profiler.hpp"

namespace ap::prof {

namespace {

/// Timestamps are exported in microseconds (the trace-event unit). The
/// virtual-cycle source maps 1000 cycles -> 1 us for readable timelines.
double to_us(std::uint64_t cycles, std::uint64_t t0) {
  return static_cast<double>(cycles - t0) / 1000.0;
}

void duration_event(std::ostream& os, bool& first, const char* name,
                    char phase, double ts, int pid, int tid) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << name << R"(","ph":")" << phase
     << R"(","ts":)" << ts << R"(,"pid":)" << pid << R"(,"tid":)" << tid
     << '}';
}

void instant_event(std::ostream& os, bool& first, const char* name,
                   double ts, int pid, int tid, int dst, int bytes) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << name << R"(","ph":"i","s":"t","ts":)" << ts
     << R"(,"pid":)" << pid << R"(,"tid":)" << tid << R"(,"args":{"dst_pe":)"
     << dst << R"(,"bytes":)" << bytes << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Profiler& prof) {
  os << "{\"traceEvents\":[\n";
  bool first = true;

  // Common origin so all PEs share the time axis.
  std::uint64_t t0 = UINT64_MAX;
  for (int pe = 0; pe < prof.num_pes(); ++pe) {
    const auto& tl = prof.timeline(pe);
    if (!tl.empty()) t0 = std::min(t0, tl.front().ts);
  }
  if (t0 == UINT64_MAX) t0 = 0;

  for (int pe = 0; pe < prof.num_pes(); ++pe) {
    const int node = prof.topo().node_of(pe);
    for (const TimelineEvent& e : prof.timeline(pe)) {
      const double ts = to_us(e.ts, t0);
      switch (e.kind) {
        case TimelineEvent::Kind::BeginMain:
          duration_event(os, first, "MAIN", 'B', ts, node, pe);
          break;
        case TimelineEvent::Kind::EndMain:
          duration_event(os, first, "MAIN", 'E', ts, node, pe);
          break;
        case TimelineEvent::Kind::BeginProc:
          duration_event(os, first, "PROC", 'B', ts, node, pe);
          break;
        case TimelineEvent::Kind::EndProc:
          duration_event(os, first, "PROC", 'E', ts, node, pe);
          break;
        case TimelineEvent::Kind::BeginComm:
          duration_event(os, first, "COMM", 'B', ts, node, pe);
          break;
        case TimelineEvent::Kind::EndComm:
          duration_event(os, first, "COMM", 'E', ts, node, pe);
          break;
        case TimelineEvent::Kind::Send:
          instant_event(os, first, "send", ts, node, pe, e.arg0, e.arg1);
          break;
        case TimelineEvent::Kind::Transfer:
          instant_event(os, first, "transfer", ts, node, pe, e.arg0, e.arg1);
          break;
      }
    }
  }

  // Thread names so Perfetto labels rows nicely.
  for (int pe = 0; pe < prof.num_pes(); ++pe) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":"thread_name","ph":"M","pid":)"
       << prof.topo().node_of(pe) << R"(,"tid":)" << pe
       << R"(,"args":{"name":"PE)" << pe << R"("}})";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace_file(const std::filesystem::path& path,
                             const Profiler& prof) {
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("write_chrome_trace_file: cannot open " +
                             path.string());
  write_chrome_trace(os, prof);
}

}  // namespace ap::prof
