// Google Trace Events export (paper §VI future work: "adoption of OTF and
// Google Trace Events format is currently being investigated").
//
// When Config::timeline is on, the profiler records a per-PE timeline of
// region transitions (MAIN/PROC/COMM as nested duration events) plus
// instant events for logical sends and physical transfers. This module
// serializes that timeline to the Chrome trace-event JSON format, viewable
// in chrome://tracing or Perfetto: pid = simulated node, tid = PE.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace ap::prof {

class Profiler;

/// One entry of a PE's recorded timeline.
struct TimelineEvent {
  enum class Kind {
    BeginMain,   ///< epoch start (top-level MAIN)
    EndMain,     ///< epoch end
    BeginProc,   ///< handler entry
    EndProc,     ///< handler exit
    BeginComm,   ///< runtime communication work begins
    EndComm,     ///< ... ends
    Send,        ///< instant: application send (arg = dst PE)
    Transfer     ///< instant: physical transfer (arg = dst PE, bytes)
  };
  Kind kind;
  std::uint64_t ts;   ///< virtual cycles (or rdtsc) at the event
  std::int32_t arg0 = 0;  ///< dst PE for Send/Transfer; mailbox otherwise
  std::int32_t arg1 = 0;  ///< bytes for Transfer; 0 otherwise
  /// Logical-send flow id (0 = none). Set on Send (the id allocated for
  /// that send), Transfer (first aggregated record in the buffer) and
  /// BeginProc (the id the handled message carried); the exporter turns
  /// matching ids into ph:"s"/"t"/"f" flow events.
  std::uint64_t flow = 0;
};

/// Serialize the timelines of every PE to trace-event JSON.
void write_chrome_trace(std::ostream& os, const Profiler& prof);
/// Convenience: write to a file (parents created).
void write_chrome_trace_file(const std::filesystem::path& path,
                             const Profiler& prof);

}  // namespace ap::prof
