#include "core/config.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ap::prof {

namespace {

/// Lenient 0/1 parse used by the four original trace toggles: any
/// non-empty value other than "0" means on. Kept as-is for back-compat —
/// scripts in the wild pass values like "yes".
bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return v[0] != '0' && v[0] != '\0';
}

[[noreturn]] void bad_value(const char* name, const char* text,
                            const char* expected) {
  throw std::invalid_argument(std::string(name) + "=\"" + text +
                              "\": expected " + expected);
}

/// Strict boolean: exactly "0" or "1".
bool env_bool_strict(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string s(v);
  if (s == "0") return false;
  if (s == "1") return true;
  bad_value(name, v, "0 or 1");
}

/// Strict positive double (whole string must parse, value must be finite
/// and >= min).
double env_double_strict(const char* name, double fallback, double min,
                         const char* expected) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE || !(parsed >= min))
    bad_value(name, v, expected);
  return parsed;
}

/// Strict positive integer (whole string must parse, value must be > 0).
std::size_t env_size_strict(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed <= 0)
    bad_value(name, v, "a positive integer");
  return static_cast<std::size_t>(parsed);
}

/// Strict "host:port" parse: exactly one colon, a non-empty host, and an
/// all-digits port in 1..65535.
std::string env_hostport_strict(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string s(v);
  const std::size_t colon = s.find(':');
  if (colon == 0 || colon == std::string::npos ||
      s.find(':', colon + 1) != std::string::npos)
    bad_value(name, v, "host:port");
  const std::string port = s.substr(colon + 1);
  if (port.empty() || port.size() > 5 ||
      port.find_first_not_of("0123456789") != std::string::npos)
    bad_value(name, v, "host:port");
  const long p = std::strtol(port.c_str(), nullptr, 10);
  if (p < 1 || p > 65535) bad_value(name, v, "host:port with port 1-65535");
  return s;
}

/// Strict trace-format parse: exactly "csv" or "binary".
TraceFormat env_format_strict(const char* name, TraceFormat fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string s(v);
  if (s == "csv") return TraceFormat::csv;
  if (s == "binary") return TraceFormat::binary;
  bad_value(name, v, "\"csv\" or \"binary\"");
}

}  // namespace

const char* to_string(TraceFormat f) {
  return f == TraceFormat::binary ? "binary" : "csv";
}

Config Config::from_env() {
  Config c;
  c.logical = env_flag("ACTORPROF_TRACE", c.logical);
  c.papi = env_flag("ACTORPROF_PAPI", c.papi);
  c.overall = env_flag("ACTORPROF_TCOMM_PROFILING", c.overall);
  c.physical = env_flag("ACTORPROF_TRACE_PHYSICAL", c.physical);
  if (const char* dir = std::getenv("ACTORPROF_TRACE_DIR")) c.trace_dir = dir;
  c.trace_format = env_format_strict("ACTORPROF_TRACE_FORMAT", c.trace_format);
  c.trace_compress =
      env_bool_strict("ACTORPROF_TRACE_COMPRESS", c.trace_compress);
  c.publish = env_hostport_strict("ACTORPROF_PUBLISH", c.publish);
  if (const char* run = std::getenv("ACTORPROF_PUBLISH_RUN"))
    c.publish_run = run;

  c.supersteps = env_bool_strict("ACTORPROF_SUPERSTEPS", c.supersteps);
  c.timeline = env_bool_strict("ACTORPROF_TIMELINE", c.timeline);
  c.metrics = env_bool_strict("ACTORPROF_METRICS", c.metrics);
  c.metrics_interval_virtual_ms = env_double_strict(
      "ACTORPROF_METRICS_INTERVAL_MS", c.metrics_interval_virtual_ms,
      /*min=*/1e-9, "a positive number of virtual milliseconds");
  c.metrics_ring_capacity =
      env_size_strict("ACTORPROF_METRICS_RING", c.metrics_ring_capacity);
  c.metrics_straggler_factor = env_double_strict(
      "ACTORPROF_METRICS_STRAGGLER_FACTOR", c.metrics_straggler_factor,
      /*min=*/1.0, "a factor >= 1.0");
  c.check = env_bool_strict("ACTORPROF_CHECK", c.check);
  // A kill experiment is pointless without mid-run checkpoints, so the
  // kill variable flips the default; ACTORPROF_CRASH_SAFE still wins.
  const bool crash_default =
      c.crash_safe || std::getenv("ACTORPROF_FI_KILL_PE") != nullptr;
  c.crash_safe = env_bool_strict("ACTORPROF_CRASH_SAFE", crash_default);
  return c;
}

}  // namespace ap::prof
