// ActorProf configuration.
//
// The paper enables each trace kind with a compile-time flag
// (-DENABLE_TRACE, -DENABLE_TCOMM_PROFILING, -DENABLE_TRACE_PHYSICAL). We
// honor those macros as defaults but also expose run-time toggles, so one
// build can run every experiment; disabled paths cost a single branch.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <string>

#include "papi/papi.hpp"

namespace ap::prof {

/// On-disk encoding of the trace files write_all() emits.
///   csv    — the paper's line-oriented text files (PEi_send.csv, ...)
///   binary — the columnar .apt container (docs/TRACE_FORMAT.md):
///            delta+varint numeric columns, dictionary string columns,
///            per-block CRC. ~5-10x smaller and faster to decode; the
///            loader sniffs both, and `actorprof export --csv` converts
///            back for interchange.
enum class TraceFormat { csv, binary };

[[nodiscard]] const char* to_string(TraceFormat f);

struct Config {
  /// Logical trace (paper §III-A): PEi_send.csv + the in-memory comm matrix.
#ifdef ENABLE_TRACE
  bool logical = true;
#else
  bool logical = false;
#endif
  /// PAPI segment trace (part of §III-A): PEi_PAPI.csv.
#ifdef ENABLE_TRACE
  bool papi = true;
#else
  bool papi = false;
#endif
  /// Overall MAIN/COMM/PROC breakdown (§III-B): overall.txt.
#ifdef ENABLE_TCOMM_PROFILING
  bool overall = true;
#else
  bool overall = false;
#endif
  /// Physical trace (§III-C): physical.txt.
#ifdef ENABLE_TRACE_PHYSICAL
  bool physical = true;
#else
  bool physical = false;
#endif

  /// Superstep-resolved profiling: per barrier-to-barrier interval, each
  /// PE records its MAIN/PROC/COMM cycle split, message/byte counts and
  /// barrier arrival stamp, emitted as PEi_steps.csv and consumed by the
  /// `analyze` / `diff` CLI subcommands (docs/ANALYSIS.md). Deterministic
  /// under the virtual cycle source, so part of all_enabled().
  bool supersteps = false;

  /// Where write_traces() puts the files.
  std::filesystem::path trace_dir = "actorprof_trace";

  /// Encoding of the emitted trace files. CSV stays the default (and the
  /// interchange format); binary is the production choice for large runs.
  /// overall.txt and MANIFEST.txt are text in both formats.
  TraceFormat trace_format = TraceFormat::csv;

  /// Re-frame binary trace files into the version-2 compressed .apt
  /// container (per-block LZ, docs/TRACE_FORMAT.md "Compression") before
  /// they hit disk or the publisher. No effect on CSV output.
  bool trace_compress = false;

  /// Live streaming target, "host:port" of a running `actorprof serve`
  /// daemon (empty = off). When set, the profiler starts a background
  /// publisher thread that pushes closed supersteps, metric-ring
  /// snapshots, and advisor findings to POST /ingest as they happen, and
  /// the full trace at write_traces() time (docs/OBSERVABILITY.md, "Live
  /// streaming"). Bounded drop-oldest queue: a slow or dead collector
  /// never stalls PEs.
  std::string publish;

  /// Run id the publisher registers under on the serve daemon (the
  /// `?run=` key). Empty = "push" (the daemon's default push-run id).
  std::string publish_run;

  /// Keep individual records in memory (needed to write per-event files).
  /// The aggregated comm matrices are always maintained; disabling this
  /// bounds memory on runs with billions of sends (paper §IV-E / §VI).
  bool keep_logical_events = true;
  bool keep_physical_events = true;
  /// Hard cap on retained per-event records per PE (0 = unlimited).
  std::size_t max_events_per_pe = 0;
  /// Keep only every k-th per-event record (1 = all). Aggregated matrices
  /// always see every event — this is the §VI "intelligent sampling"
  /// mitigation for traces that would otherwise reach 100s of GB.
  std::size_t sample_every = 1;

  /// Record per-PE timelines (region transitions + instant send/transfer
  /// events) for Google Trace Events export (§VI future work). Also turns
  /// on flow-id carriage so the Chrome trace links Send -> Transfer ->
  /// Proc with ph:"s"/"t"/"f" flow events.
  bool timeline = false;

  /// Live metrics registry + periodic sampler: per-PE counters/gauges/
  /// histograms across the actor, conveyor, and shmem layers, snapshotted
  /// every metrics_interval_virtual_ms of virtual time, with online
  /// straggler/backpressure detection and Prometheus/JSON exposition via
  /// Profiler::write_metrics(). Deliberately NOT part of all_enabled():
  /// self-overhead metering uses wall-clock rdtsc, which would break the
  /// byte-identical determinism the trace files guarantee.
  bool metrics = false;
  /// Sampler cadence in virtual milliseconds (1 virtual ms = 1e6 cycles of
  /// the simulated cost model). Must be > 0.
  double metrics_interval_virtual_ms = 1.0;
  /// Bounded snapshot ring per metric series; the oldest samples are
  /// overwritten once full. Must be > 0.
  std::size_t metrics_ring_capacity = 256;
  /// A PE is flagged as straggling/backpressured when its sampled value
  /// exceeds this multiple of the fleet median. Must be >= 1.
  double metrics_straggler_factor = 2.0;

  /// BSP conformance checker (docs/CHECKING.md): vector-clock
  /// happens-before validation of every RMA/collective against the FA-BSP
  /// memory model, reported through the advisor, check.csv, and the
  /// `actorprof check` CLI. Off by default — the checker subscribes to
  /// per-access conformance events, which cost more than the one-branch
  /// disabled path; its own cycles are accounted under the `check`
  /// self-overhead category. NOT part of all_enabled(): checking is a
  /// verification mode, not a trace kind.
  bool check = false;

  /// Checkpoint traces at epoch boundaries: once every PE has closed an
  /// epoch since the last flush, write_all() runs again, so a PE killed
  /// later (fault injection) still leaves a loadable on-disk prefix.
  /// write_all() is always atomic-rename crash-safe; this flag only adds
  /// the periodic mid-run flushes. Defaults on when ACTORPROF_FI_KILL_PE
  /// is set (see docs/FAULT_INJECTION.md).
  bool crash_safe = false;

  /// The PAPI events recorded per segment (≤ 4 — the PAPI limitation the
  /// paper calls out). The case study uses PAPI_TOT_INS + PAPI_LST_INS.
  std::array<papi::Event, papi::kMaxEventsPerSet> papi_events{
      papi::Event::TOT_INS, papi::Event::LST_INS, papi::Event::kCount,
      papi::Event::kCount};

  [[nodiscard]] int num_papi_events() const {
    int n = 0;
    for (papi::Event e : papi_events)
      if (e != papi::Event::kCount) ++n;
    return n;
  }

  /// Convenience: everything on.
  static Config all_enabled() {
    Config c;
    c.logical = c.papi = c.overall = c.physical = c.supersteps = true;
    return c;
  }

  /// Defaults from the compile-time macros, then environment overrides:
  ///   ACTORPROF_TRACE, ACTORPROF_PAPI, ACTORPROF_TCOMM_PROFILING,
  ///   ACTORPROF_TRACE_PHYSICAL (0/1)      — trace kinds (lenient parse,
  ///                                         kept for back-compat)
  ///   ACTORPROF_TRACE_DIR (path)          — output directory
  ///   ACTORPROF_TRACE_FORMAT (csv|binary) — on-disk trace encoding
  ///                                         (strict parse)
  ///   ACTORPROF_TRACE_COMPRESS (0/1)      — version-2 compressed .apt
  ///                                         container (strict parse)
  ///   ACTORPROF_PUBLISH (host:port)       — live-stream to a serve
  ///                                         daemon (strict parse: one
  ///                                         colon, non-empty host, port
  ///                                         1-65535)
  ///   ACTORPROF_PUBLISH_RUN (run id)      — run id to publish under
  ///   ACTORPROF_SUPERSTEPS (0/1)          — per-superstep PEi_steps.csv
  ///   ACTORPROF_TIMELINE (0/1)            — Chrome timeline + flow events
  ///   ACTORPROF_METRICS (0/1)             — live metrics registry/sampler
  ///   ACTORPROF_METRICS_INTERVAL_MS (>0)  — sampler cadence, virtual ms
  ///   ACTORPROF_METRICS_RING (>0 int)     — snapshot ring capacity
  ///   ACTORPROF_METRICS_STRAGGLER_FACTOR (>=1) — anomaly threshold
  ///   ACTORPROF_CHECK (0/1)               — BSP conformance checker
  ///   ACTORPROF_CRASH_SAFE (0/1)          — epoch-boundary trace
  ///                                         checkpoints; defaults to 1
  ///                                         when ACTORPROF_FI_KILL_PE set
  /// The ACTORPROF_METRICS*/ACTORPROF_TIMELINE variables are parsed
  /// strictly: a malformed or out-of-range value throws
  /// std::invalid_argument naming the variable and the offending text.
  static Config from_env();
};

}  // namespace ap::prof
