#include "core/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "core/trace_binary.hpp"
#include "core/trace_io.hpp"
#include "papi/cycles.hpp"
#include "runtime/backend.hpp"
#include "runtime/scheduler.hpp"
#include "serve/publisher.hpp"
#include "shmem/shmem.hpp"

namespace ap::prof {

namespace {
using metrics::OverheadCategory;

/// Detector floors: a PE is only flagged when it diverges by at least this
/// much in absolute terms, so near-idle fleets do not spam findings.
constexpr double kMinBacklogAbs = 8.0;    // messages
constexpr double kMinCommShareAbs = 100.0;  // milli-units = 10 points

// A handful of PeData fields are written by the owning PE's worker and
// read by the sampler tick on worker 0 (threads backend): in_epoch,
// last_cycles, and the t_main/t_proc/t_comm buckets. These helpers make
// both sides atomic without widening the fields; the fields stay
// single-writer, so relaxed load+store pairs (two plain moves on x86)
// suffice — byte-identical behaviour under the fiber backend.
void store_u64(std::uint64_t& cell, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(cell).store(v, std::memory_order_relaxed);
}

void add_u64(std::uint64_t& cell, std::uint64_t delta) {
  std::atomic_ref<std::uint64_t> c(cell);
  c.store(c.load(std::memory_order_relaxed) + delta,
          std::memory_order_relaxed);
}

std::uint64_t load_u64(const std::uint64_t& cell) {
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(cell))
      .load(std::memory_order_relaxed);
}

void store_flag(bool& cell, bool v) {
  std::atomic_ref<bool>(cell).store(v, std::memory_order_relaxed);
}

bool load_flag(const bool& cell) {
  return std::atomic_ref<bool>(const_cast<bool&>(cell))
      .load(std::memory_order_relaxed);
}
}  // namespace

Profiler::Profiler(Config cfg) : cfg_(std::move(cfg)) {
  prev_actor_obs_ = actor::actor_observer();
  prev_transfer_obs_ = convey::transfer_observer();
  actor::set_actor_observer(this);
  convey::set_transfer_observer(this);
  if (cfg_.metrics) register_metrics();
  // The shmem seam feeds the live metrics, the superstep boundary stamps,
  // and the conformance checker, so any of those flags installs the
  // RmaObserver.
  if (cfg_.metrics || cfg_.supersteps || cfg_.check) {
    prev_rma_obs_ = shmem::rma_observer();
    shmem::set_rma_observer(this);
    rma_installed_ = true;
  }
  if (cfg_.metrics) {
    prev_tick_ = rt::set_tick_hook([this] { tick(); });
    tick_installed_ = true;
  }
  if (!cfg_.publish.empty()) {
    serve::Publisher::Options po;
    if (!serve::Publisher::parse_endpoint(cfg_.publish, po.host, po.port))
      throw std::invalid_argument("Config::publish=\"" + cfg_.publish +
                                  "\": expected host:port");
    if (!cfg_.publish_run.empty()) {
      // Reject here, not with a 400 on every POST the collector answers.
      if (!serve::valid_run_id(cfg_.publish_run))
        throw std::invalid_argument("Config::publish_run=\"" +
                                    cfg_.publish_run +
                                    "\": expected [A-Za-z0-9._-]{1,64}");
      po.run = cfg_.publish_run;
    }
    publisher_ = std::make_unique<serve::Publisher>(std::move(po));
  }
}

Profiler::~Profiler() {
  actor::set_actor_observer(prev_actor_obs_);
  convey::set_transfer_observer(prev_transfer_obs_);
  if (rma_installed_) shmem::set_rma_observer(prev_rma_obs_);
  if (tick_installed_) rt::set_tick_hook(std::move(prev_tick_));
}

void Profiler::register_metrics() {
  // Registered once here, bound in ensure_world(); every hot-path update
  // after that is an array write (see metrics/registry.hpp).
  ids_.actor_sends = registry_.add_counter(
      "actorprof_actor_sends_total", "Logical sends before aggregation");
  ids_.actor_send_bytes = registry_.add_counter(
      "actorprof_actor_send_bytes_total", "Payload bytes of logical sends");
  ids_.actor_handlers = registry_.add_counter(
      "actorprof_actor_handlers_total", "Messages handled (PROC entries)");
  ids_.conveyor_advances = registry_.add_counter(
      "actorprof_conveyor_advances_total", "Conveyor advance() calls");
  ids_.conveyor_transfers = registry_.add_counter(
      "actorprof_conveyor_transfers_total",
      "Physical buffer transfers (local_send + nonblock_send)");
  ids_.conveyor_transfer_bytes = registry_.add_counter(
      "actorprof_conveyor_transfer_bytes_total",
      "Bytes moved by physical buffer transfers");
  ids_.shmem_puts = registry_.add_counter("actorprof_shmem_puts_total",
                                          "Blocking shmem_put calls");
  ids_.shmem_put_bytes = registry_.add_counter(
      "actorprof_shmem_put_bytes_total", "Bytes moved by blocking puts");
  ids_.shmem_nbi_puts = registry_.add_counter(
      "actorprof_shmem_nbi_puts_total", "Non-blocking shmem_putmem_nbi calls");
  ids_.shmem_nbi_put_bytes = registry_.add_counter(
      "actorprof_shmem_nbi_put_bytes_total",
      "Bytes staged by non-blocking puts");
  ids_.shmem_gets = registry_.add_counter("actorprof_shmem_gets_total",
                                          "shmem_get calls");
  ids_.shmem_quiets = registry_.add_counter("actorprof_shmem_quiets_total",
                                            "shmem_quiet calls");
  ids_.shmem_barriers = registry_.add_counter(
      "actorprof_shmem_barriers_total", "shmem_barrier_all calls");
  ids_.shmem_atomics = registry_.add_counter("actorprof_shmem_atomics_total",
                                             "shmem atomic operations");
  ids_.queue_depth = registry_.add_gauge(
      "actorprof_actor_queue_depth",
      "Messages sent to this PE and not yet handled (PROC backlog)");
  ids_.out_pending_bytes = registry_.add_gauge(
      "actorprof_conveyor_out_pending_bytes",
      "Bytes waiting in this PE's outgoing aggregation buffers");
  ids_.recv_pending_bytes = registry_.add_gauge(
      "actorprof_conveyor_recv_pending_bytes",
      "Bytes delivered to this PE and not yet pulled");
  ids_.bytes_in_flight = registry_.add_gauge(
      "actorprof_shmem_put_bytes_in_flight",
      "Bytes staged by putmem_nbi and not yet completed by quiet");
  ids_.comm_share_milli = registry_.add_gauge(
      "actorprof_comm_share_milli",
      "COMM share of this PE's cycles so far, in 1/1000 units");
  ids_.msg_bytes = registry_.add_histogram("actorprof_actor_msg_bytes",
                                           "Logical message payload sizes");
  ids_.transfer_bytes = registry_.add_histogram(
      "actorprof_conveyor_transfer_bytes",
      "Physical transfer buffer sizes");
  // Scalar rows are laid out counters-first, then gauges.
  const int num_counters =
      static_cast<int>(registry_.num_scalars()) - 5 /* gauges above */;
  ids_.s_queue_depth = num_counters + ids_.queue_depth.i;
  ids_.s_bytes_in_flight = num_counters + ids_.bytes_in_flight.i;
}

void Profiler::ensure_world() {
  if (topo_known_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(world_mu_);
  if (topo_known_.load(std::memory_order_relaxed)) return;
  topo_ = shmem::topology();
  pes_.clear();
  pes_.resize(static_cast<std::size_t>(topo_.num_pes()));
  const int n = topo_.num_pes();
  // The meter backs both the metrics exposition and the checker's own
  // `check` overhead category.
  if (cfg_.metrics || cfg_.check) meter_.bind(n);
  if (cfg_.check) checker_.bind(n);
  if (cfg_.metrics) {
    registry_.bind(n);
    ring_.bind(n, registry_.num_scalars(), cfg_.metrics_ring_capacity);
    sample_scratch_.assign(
        static_cast<std::size_t>(n) * registry_.num_scalars(), 0);
    detect_scratch_.assign(static_cast<std::size_t>(n), 0.0);
    have_sample_baseline_ = false;
    last_sample_cycles_ = 0;
  }
  // A live collector needs the PE count before any shard frame makes
  // sense; the minimal manifest is enough for parse_manifest() and is
  // replaced by the full one at write_all() time.
  if (publisher_)
    publisher_->publish_file(io::kManifestFile,
                             "num_pes " + std::to_string(n) + "\n",
                             /*append=*/false);
  // Release: every bind above is visible to any thread that observes the
  // flag true on the fast path (and to the tick hook's gate).
  topo_known_.store(true, std::memory_order_release);
}

Profiler::PeData& Profiler::pe_data() {
  const int pe = rt::my_pe();
  if (pe < 0)
    throw std::logic_error("Profiler: PE context required (inside shmem::run)");
  ensure_world();
  return pes_[static_cast<std::size_t>(pe)];
}

const Profiler::PeData& Profiler::pe_data(int pe) const {
  if (pe < 0 || static_cast<std::size_t>(pe) >= pes_.size())
    throw std::out_of_range("Profiler: PE index out of range");
  return pes_[static_cast<std::size_t>(pe)];
}

int Profiler::num_pes() const { return static_cast<int>(pes_.size()); }

// ------------------------------------------------------------------ epochs

void Profiler::epoch_begin() {
  PeData& d = pe_data();
  if (d.in_epoch)
    throw std::logic_error("Profiler::epoch_begin: epoch already active");
  // Repeated epochs accumulate (e.g. one epoch per BFS level or solver
  // iteration); clear() starts a fresh experiment.
  store_flag(d.in_epoch, true);
  d.region_stack.assign(1, Region::Main);
  const std::uint64_t now = papi::cycles_now();
  d.t0 = now;
  store_u64(d.last_cycles, now);
  if (cfg_.supersteps) {
    d.cur_epoch = d.epochs_begun++;
    d.cur_step = 0;
    d.ss_main = d.t_main;
    d.ss_proc = d.t_proc;
    d.ss_comm = d.t_comm;
    d.ss_msgs = d.msgs_sent_total;
    d.ss_bytes = d.bytes_sent_total;
    d.ss_handled = d.msgs_handled_total;
  }
  if (cfg_.timeline)
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::BeginMain, d.t0, 0, 0});
  d.last_papi = papi::snapshot();
  if (!d.rows.sized_for(topo_.num_pes())) d.rows.reset(topo_.num_pes());
}

void Profiler::epoch_end() {
  PeData& d = pe_data();
  if (!d.in_epoch)
    throw std::logic_error("Profiler::epoch_end: no epoch active");
  fold(d);
  // Close the epoch's tail superstep (the work after the last in-epoch
  // collective, or the whole epoch when there was none). epoch_end is not
  // a barrier, so arrive == release == the epoch-end stamp.
  if (cfg_.supersteps) {
    const int pe = rt::my_pe();
    metrics::OverheadMeter::Scope cost(cfg_.metrics ? &meter_ : nullptr,
                                       OverheadCategory::superstep, pe);
    close_superstep(d, pe, d.last_cycles);
  }
  d.t_total += d.last_cycles - d.t0;
  if (cfg_.timeline)
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::EndMain, d.last_cycles, 0, 0});
  store_flag(d.in_epoch, false);

  // Crash-safe checkpoint: once every live PE has closed an epoch since
  // the last flush, persist what we have. A PE killed in a later epoch
  // then leaves a loadable prefix on disk (write_all is atomic-rename, so
  // a kill mid-checkpoint can only lose the file being replaced, never
  // corrupt it). Fiber backend only: a mid-run flush reads every PE's
  // buffers, which other workers are still appending to under the threads
  // backend — there the data is persisted by the post-run write_traces().
  if (cfg_.crash_safe && rt::current_backend() == rt::Backend::fiber) {
    const int live =
        rt::in_spmd_region() ? shmem::live_pes() : num_pes();
    if (epoch_ends_since_flush_.fetch_add(1, std::memory_order_relaxed) + 1 >=
            live &&
        live > 0) {
      epoch_ends_since_flush_.store(0, std::memory_order_relaxed);
      io::write_all(*this, cfg_);
    }
  }
}

bool Profiler::epoch_active() const {
  const int pe = rt::my_pe();
  if (pe < 0 || static_cast<std::size_t>(pe) >= pes_.size()) return false;
  return load_flag(pes_[static_cast<std::size_t>(pe)].in_epoch);
}

// --------------------------------------------------------------- the fold

void Profiler::fold(PeData& d) {
  const std::uint64_t now = papi::cycles_now();
  const std::uint64_t dt = now - d.last_cycles;
  store_u64(d.last_cycles, now);

  const Region r = d.region_stack.back();
  // The metrics sampler and the superstep deltas derive from the same
  // buckets, so keep them warm whenever any consumer is on.
  if (cfg_.overall || cfg_.metrics || cfg_.supersteps) {
    switch (r) {
      case Region::Main: add_u64(d.t_main, dt); break;
      case Region::Proc: add_u64(d.t_proc, dt); break;
      case Region::Comm: add_u64(d.t_comm, dt); break;
    }
  }

  if (cfg_.papi) {
    const auto now_papi = papi::snapshot();
    std::array<std::uint64_t, papi::kMaxEventsPerSet> delta{};
    for (int i = 0; i < cfg_.num_papi_events(); ++i) {
      const auto ev = static_cast<std::size_t>(
          cfg_.papi_events[static_cast<std::size_t>(i)]);
      delta[static_cast<std::size_t>(i)] = now_papi[ev] - d.last_papi[ev];
    }
    d.last_papi = now_papi;
    // COMM deltas are intentionally discarded: the paper instruments only
    // user code and "excludes the Conveyors and HClib-Actor system".
    if (r == Region::Main && d.have_pending_main) {
      RowAgg& row = d.main_rows[d.pending_main];
      for (int i = 0; i < cfg_.num_papi_events(); ++i)
        row.counters[static_cast<std::size_t>(i)] +=
            delta[static_cast<std::size_t>(i)];
    } else if (r == Region::Proc && d.cur_handler_mb >= 0) {
      RowAgg& row = d.proc_rows[d.cur_handler_mb];
      for (int i = 0; i < cfg_.num_papi_events(); ++i)
        row.counters[static_cast<std::size_t>(i)] +=
            delta[static_cast<std::size_t>(i)];
    }
  } else {
    d.last_papi = papi::snapshot();
  }
}

// ----------------------------------------------------------- ActorObserver

void Profiler::on_send(int mb, int dst_pe, std::size_t bytes,
                       std::uint64_t flow_id) {
  if (!rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(cfg_.metrics ? &meter_ : nullptr,
                                     OverheadCategory::actor_send,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);

  const int me = rt::my_pe();
  if (cfg_.supersteps) {
    ++d.msgs_sent_total;
    d.bytes_sent_total += bytes;
  }
  if (cfg_.metrics) {
    registry_.add(me, ids_.actor_sends);
    registry_.add(me, ids_.actor_send_bytes, bytes);
    registry_.observe(me, ids_.msg_bytes, bytes);
    // The destination's backlog grows until its handler runs.
    registry_.add(dst_pe, ids_.queue_depth, 1);
  }
  if (cfg_.logical) {
    d.rows.at(dst_pe).logical++;
    const bool sampled =
        cfg_.sample_every <= 1 || d.logical_seen % cfg_.sample_every == 0;
    ++d.logical_seen;
    if (cfg_.keep_logical_events && sampled &&
        (cfg_.max_events_per_pe == 0 ||
         d.logical_events.size() < cfg_.max_events_per_pe)) {
      d.logical_events.push_back(LogicalSendRecord{
          topo_.node_of(me), me, topo_.node_of(dst_pe), dst_pe,
          static_cast<std::uint32_t>(bytes)});
    }
  }
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe)) {
    d.events.push_back(TimelineEvent{TimelineEvent::Kind::Send,
                                     d.last_cycles, dst_pe,
                                     static_cast<std::int32_t>(bytes),
                                     flow_id});
  }
  if (cfg_.papi && d.region_stack.back() == Region::Main) {
    d.pending_main = MainRowKey{mb, dst_pe};
    d.have_pending_main = true;
    RowAgg& row = d.main_rows[d.pending_main];
    row.num++;
    row.pkt_bytes = static_cast<std::uint32_t>(bytes);
  } else if (cfg_.papi) {
    // A send from inside a handler: counted, but its cost stays in PROC.
    RowAgg& row = d.main_rows[MainRowKey{mb, dst_pe}];
    row.num++;
    row.pkt_bytes = static_cast<std::uint32_t>(bytes);
  }
}

void Profiler::on_handler_begin(int mb, int src_pe, std::size_t bytes,
                                std::uint64_t flow_id) {
  (void)src_pe;
  if (!rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(cfg_.metrics ? &meter_ : nullptr,
                                     OverheadCategory::actor_handler,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  d.region_stack.push_back(Region::Proc);
  d.cur_handler_mb = mb;
  if (cfg_.supersteps) ++d.msgs_handled_total;
  if (cfg_.metrics) {
    const int me = rt::my_pe();
    registry_.add(me, ids_.actor_handlers);
    registry_.add(me, ids_.queue_depth, -1);
  }
  if (cfg_.papi) {
    RowAgg& row = d.proc_rows[mb];
    row.num++;
    row.pkt_bytes = static_cast<std::uint32_t>(bytes);
  }
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe))
    d.events.push_back(TimelineEvent{TimelineEvent::Kind::BeginProc,
                                     d.last_cycles, mb, 0, flow_id});
}

void Profiler::on_handler_end(int mb) {
  (void)mb;
  if (!rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(cfg_.metrics ? &meter_ : nullptr,
                                     OverheadCategory::actor_handler,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  if (d.region_stack.size() > 1 && d.region_stack.back() == Region::Proc)
    d.region_stack.pop_back();
  d.cur_handler_mb = -1;
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe))
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::EndProc, d.last_cycles, mb, 0});
}

void Profiler::on_comm_begin() {
  if (!rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(cfg_.metrics ? &meter_ : nullptr,
                                     OverheadCategory::comm_region,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  d.region_stack.push_back(Region::Comm);
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe))
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::BeginComm, d.last_cycles, 0, 0});
}

void Profiler::on_comm_end() {
  if (!rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(cfg_.metrics ? &meter_ : nullptr,
                                     OverheadCategory::comm_region,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  if (d.region_stack.size() > 1 && d.region_stack.back() == Region::Comm)
    d.region_stack.pop_back();
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe))
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::EndComm, d.last_cycles, 0, 0});
}

// -------------------------------------------------------- TransferObserver

void Profiler::on_transfer(convey::SendType type, std::size_t buffer_bytes,
                           int src_pe, int dst_pe,
                           std::uint64_t first_flow_id) {
  if (!cfg_.physical && !cfg_.timeline && !cfg_.metrics) return;
  if (!rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(cfg_.metrics ? &meter_ : nullptr,
                                     OverheadCategory::transfer,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  if (cfg_.metrics && type != convey::SendType::nonblock_progress) {
    const int me = rt::my_pe();
    registry_.add(me, ids_.conveyor_transfers);
    registry_.add(me, ids_.conveyor_transfer_bytes, buffer_bytes);
    registry_.observe(me, ids_.transfer_bytes, buffer_bytes);
  }
  if (cfg_.physical) {
    CommRows::Counts& row = d.rows.at(dst_pe);
    switch (type) {
      case convey::SendType::local_send:
        row.local++;
        break;
      case convey::SendType::nonblock_send:
        row.nbi++;
        break;
      case convey::SendType::nonblock_progress:
        row.prog++;
        break;
    }
    const bool sampled =
        cfg_.sample_every <= 1 || d.physical_seen % cfg_.sample_every == 0;
    ++d.physical_seen;
    if (cfg_.keep_physical_events && sampled &&
        (cfg_.max_events_per_pe == 0 ||
         d.physical_events.size() < cfg_.max_events_per_pe)) {
      d.physical_events.push_back(PhysicalRecord{
          type, static_cast<std::uint64_t>(buffer_bytes), src_pe, dst_pe});
    }
  }
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe)) {
    d.events.push_back(TimelineEvent{
        TimelineEvent::Kind::Transfer, papi::cycles_now(), dst_pe,
        static_cast<std::int32_t>(buffer_bytes), first_flow_id});
  }
}

void Profiler::on_advance(std::size_t out_pending_bytes,
                          std::size_t recv_pending_bytes) {
  if (!cfg_.metrics) return;
  if (!rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::transfer,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  const int me = rt::my_pe();
  registry_.add(me, ids_.conveyor_advances);
  registry_.set(me, ids_.out_pending_bytes,
                static_cast<std::int64_t>(out_pending_bytes));
  registry_.set(me, ids_.recv_pending_bytes,
                static_cast<std::int64_t>(recv_pending_bytes));
}

// ------------------------------------------------------------- RmaObserver

void Profiler::on_put(int target_pe, std::size_t bytes) {
  (void)target_pe;
  if (!cfg_.metrics || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::rma,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  const int me = rt::my_pe();
  registry_.add(me, ids_.shmem_puts);
  registry_.add(me, ids_.shmem_put_bytes, bytes);
}

void Profiler::on_put_nbi(int target_pe, std::size_t bytes) {
  (void)target_pe;
  if (!cfg_.metrics || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::rma,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  const int me = rt::my_pe();
  registry_.add(me, ids_.shmem_nbi_puts);
  registry_.add(me, ids_.shmem_nbi_put_bytes, bytes);
  registry_.add(me, ids_.bytes_in_flight,
                static_cast<std::int64_t>(bytes));
}

void Profiler::on_get(int target_pe, std::size_t bytes) {
  (void)target_pe;
  (void)bytes;
  if (!cfg_.metrics || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::rma,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  registry_.add(rt::my_pe(), ids_.shmem_gets);
}

void Profiler::on_quiet(std::size_t outstanding_puts) {
  (void)outstanding_puts;
  if (!rt::in_spmd_region()) return;
  // This hook fires after the staged puts applied — the checker's quiet-end:
  // staged ranges become visible writes carrying the initiator's tick.
  if (cfg_.check) {
    metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                       rt::my_pe());
    ensure_world();
    std::lock_guard<std::mutex> lk(checker_mu_);
    checker_.on_quiet_end(rt::my_pe());
  }
  if (!cfg_.metrics) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::rma,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  const int me = rt::my_pe();
  registry_.add(me, ids_.shmem_quiets);
  // quiet() completes every outstanding non-blocking put of this PE.
  registry_.set(me, ids_.bytes_in_flight, 0);
}

void Profiler::on_barrier() {
  if (!cfg_.metrics || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::rma,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  registry_.add(rt::my_pe(), ids_.shmem_barriers);
}

void Profiler::on_atomic(int target_pe) {
  (void)target_pe;
  if (!cfg_.metrics || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::rma,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  registry_.add(rt::my_pe(), ids_.shmem_atomics);
}

// --------------------------------------------------------------- supersteps

void Profiler::close_superstep(PeData& d, int pe, std::uint64_t arrive) {
  SuperstepRecord r;
  r.pe = pe;
  r.epoch = d.cur_epoch;
  r.step = d.cur_step;
  r.t_main = d.t_main - d.ss_main;
  r.t_proc = d.t_proc - d.ss_proc;
  r.t_comm = d.t_comm - d.ss_comm;
  r.msgs_sent = d.msgs_sent_total - d.ss_msgs;
  r.bytes_sent = d.bytes_sent_total - d.ss_bytes;
  r.msgs_handled = d.msgs_handled_total - d.ss_handled;
  r.barrier_arrive = arrive;
  // The PE blocks here, so the true release is unknowable locally; the
  // supersteps() accessor raises this to the fleet max arrival.
  r.barrier_release = arrive;
  d.steps.push_back(r);
  // Live streaming: every closed superstep becomes an append frame on the
  // PE's binary steps shard, so a collector sees progress mid-run. The
  // frame carries the local arrival as its release; write_all()'s replace
  // frames later supersede it with the fleet-max values.
  if (publisher_) {
    metrics::OverheadMeter::Scope cost(meter_.bound() ? &meter_ : nullptr,
                                       OverheadCategory::publish, pe);
    publisher_->publish_file(io::binary_file_name(io::steps_file_name(pe)),
                             io::encode_steps({r}), /*append=*/true);
  }
  ++d.cur_step;
  d.ss_main = d.t_main;
  d.ss_proc = d.t_proc;
  d.ss_comm = d.t_comm;
  d.ss_msgs = d.msgs_sent_total;
  d.ss_bytes = d.bytes_sent_total;
  d.ss_handled = d.msgs_handled_total;
}

void Profiler::on_collective_arrive() {
  if (!rt::in_spmd_region()) return;
  // Checker first: the arrival closes the vector-clock round regardless of
  // epochs — conformance covers the whole run, not just the profiled kernel.
  if (cfg_.check) {
    metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                       rt::my_pe());
    ensure_world();
    std::lock_guard<std::mutex> lk(checker_mu_);
    checker_.on_collective_arrive(rt::my_pe());
  }
  if (!cfg_.supersteps) return;
  metrics::OverheadMeter::Scope cost(cfg_.metrics ? &meter_ : nullptr,
                                     OverheadCategory::superstep,
                                     rt::my_pe());
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  close_superstep(d, rt::my_pe(), d.last_cycles);
}

// ------------------------------------------------- conformance event intake
//
// Only fire when cfg_.check (the wants_conformance_events() gate), and are
// deliberately NOT gated on the profiling epoch: a BSP violation outside
// the profiled kernel is still a bug. Each forwards to the checker under
// the `check` self-overhead category.

void Profiler::on_put_range(int target_pe, std::size_t offset,
                            std::size_t bytes, const shmem::Callsite& cs) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_store(rt::my_pe(), target_pe, offset, bytes, cs.file, cs.line);
}

void Profiler::on_get_range(int target_pe, std::size_t offset,
                            std::size_t bytes, const shmem::Callsite& cs) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_plain_read(rt::my_pe(), target_pe, offset, bytes, cs.file,
                         cs.line);
}

void Profiler::on_put_nbi_range(int target_pe, std::size_t offset,
                                std::size_t bytes, const shmem::Callsite& cs) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_nbi_staged(rt::my_pe(), target_pe, offset, bytes, cs.file,
                         cs.line);
}

void Profiler::on_quiet_begin(std::size_t outstanding) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_quiet_begin(rt::my_pe(), outstanding);
}

void Profiler::on_nbi_applied(std::size_t index) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_nbi_applied(rt::my_pe(), index);
}

void Profiler::on_quiet_suspend(std::size_t applied, std::size_t remaining) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_quiet_suspend(rt::my_pe(), applied, remaining);
}

void Profiler::on_atomic_range(int target_pe, std::size_t offset,
                               const shmem::Callsite& cs) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_atomic(rt::my_pe(), target_pe, offset, cs.file, cs.line);
}

void Profiler::on_wait_satisfied(std::size_t offset, std::size_t bytes) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_acquire_read(rt::my_pe(), offset, bytes);
}

void Profiler::on_local_store(int target_pe, std::size_t offset,
                              std::size_t bytes, const shmem::Callsite& cs) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_store(rt::my_pe(), target_pe, offset, bytes, cs.file, cs.line);
}

void Profiler::on_local_read(std::size_t offset, std::size_t bytes,
                             const shmem::Callsite& cs) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  const int me = rt::my_pe();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_plain_read(me, me, offset, bytes, cs.file, cs.line);
}

void Profiler::on_acquire_read(std::size_t offset, std::size_t bytes) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_acquire_read(rt::my_pe(), offset, bytes);
}

void Profiler::on_pe_dead(int pe) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_pe_dead(pe);
}

void Profiler::on_conveyor_misuse(const char* what) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_misuse(rt::my_pe(), what);
}

void Profiler::on_actor_misuse(const char* what) {
  if (!cfg_.check || !rt::in_spmd_region()) return;
  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::check,
                                     rt::my_pe());
  ensure_world();
  std::lock_guard<std::mutex> lk(checker_mu_);
  checker_.on_misuse(rt::my_pe(), what);
}

// -------------------------------------------------------- sampler tick hook

void Profiler::tick() {
  // Chain whatever hook was installed before us (observer discipline).
  if (prev_tick_) prev_tick_();
  // The topo_known_ acquire gates every bind: until a PE's first callback
  // completed ensure_world(), the registry may still be mid-bind on
  // another worker and must not be touched.
  if (!cfg_.metrics || !topo_known_.load(std::memory_order_acquire) ||
      !registry_.bound())
    return;

  metrics::OverheadMeter::Scope cost(&meter_, OverheadCategory::sampler,
                                     metrics::OverheadMeter::kGlobalSlot);

  // Fleet virtual time: the farthest any in-epoch PE has advanced. The
  // tick runs outside PE context, so per-PE cycle stamps are the only
  // clock available — exactly the data the fold keeps fresh.
  std::uint64_t t = 0;
  bool any_in_epoch = false;
  for (const PeData& d : pes_) {
    if (!load_flag(d.in_epoch)) continue;
    any_in_epoch = true;
    t = std::max(t, load_u64(d.last_cycles));
  }
  if (!any_in_epoch) return;

  if (!have_sample_baseline_) {
    have_sample_baseline_ = true;
    last_sample_cycles_ = t;
    return;
  }
  const auto interval = static_cast<std::uint64_t>(
      cfg_.metrics_interval_virtual_ms *
      static_cast<double>(metrics::kCyclesPerVirtualMs));
  if (t - last_sample_cycles_ < std::max<std::uint64_t>(interval, 1)) return;
  last_sample_cycles_ = t;

  // Refresh the derived COMM-share gauge from the fold buckets, then
  // snapshot every scalar series into the ring.
  const int n = registry_.num_pes();
  for (int pe = 0; pe < n; ++pe) {
    const PeData& d = pes_[static_cast<std::size_t>(pe)];
    const std::uint64_t t_comm = load_u64(d.t_comm);
    const std::uint64_t busy =
        load_u64(d.t_main) + load_u64(d.t_proc) + t_comm;
    const std::int64_t share =
        busy == 0 ? 0 : static_cast<std::int64_t>(1000 * t_comm / busy);
    registry_.set(pe, ids_.comm_share_milli, share);
  }
  registry_.snapshot_scalars(sample_scratch_.data());
  ring_.push(t, sample_scratch_.data());

  // Online detection against the fleet median, on the freshest values.
  auto detect = [&](metrics::GaugeId g, metrics::AnomalyKind kind,
                    double min_abs) {
    for (int pe = 0; pe < n; ++pe)
      detect_scratch_[static_cast<std::size_t>(pe)] =
          static_cast<double>(registry_.value(pe, g));
    const double med = metrics::median(detect_scratch_);
    for (int pe : metrics::diverging_pes(
             detect_scratch_, cfg_.metrics_straggler_factor, min_abs)) {
      anomalies_.record(metrics::Anomaly{
          kind, pe, t, detect_scratch_[static_cast<std::size_t>(pe)], med});
    }
  };
  detect(ids_.queue_depth, metrics::AnomalyKind::ProcBacklog, kMinBacklogAbs);
  detect(ids_.comm_share_milli, metrics::AnomalyKind::CommShare,
         kMinCommShareAbs);

  // Live streaming: the freshly-pushed ring snapshot replaces the
  // collector's metric_samples shard, and any findings the detector just
  // produced ride along as text lines (the /live SSE anomaly feed). The
  // tick runs on one thread, so published_anomalies_ needs no atomics.
  if (publisher_) {
    metrics::OverheadMeter::Scope pcost(&meter_, OverheadCategory::publish,
                                        metrics::OverheadMeter::kGlobalSlot);
    publisher_->publish_file(io::kMetricSamplesFile,
                             io::encode_metric_samples(ring_),
                             /*append=*/false);
    const auto& items = anomalies_.items();
    if (items.size() > published_anomalies_) {
      std::string lines;
      for (std::size_t i = published_anomalies_; i < items.size(); ++i) {
        const metrics::Anomaly& a = items[i];
        lines += std::string(metrics::to_string(a.kind)) +
                 " pe=" + std::to_string(a.pe) +
                 " t_cycles=" + std::to_string(a.t_cycles) +
                 " value=" + std::to_string(a.value) +
                 " fleet_median=" + std::to_string(a.fleet_median) + "\n";
      }
      published_anomalies_ = items.size();
      publisher_->publish_file("anomalies.txt", std::move(lines),
                               /*append=*/true);
    }
  }
}

// ------------------------------------------------------------------ results

SparseCommMatrix Profiler::logical_sparse() const {
  SparseCommMatrix m(num_pes());
  for (int s = 0; s < num_pes(); ++s)
    pe_data(s).rows.for_each([&](int dst, const CommRows::Counts& c) {
      m.add(s, dst, c.logical);
    });
  return m;
}

SparseCommMatrix Profiler::physical_sparse() const {
  SparseCommMatrix m(num_pes());
  for (int s = 0; s < num_pes(); ++s)
    pe_data(s).rows.for_each([&](int dst, const CommRows::Counts& c) {
      m.add(s, dst, c.local + c.nbi);
    });
  return m;
}

SparseCommMatrix Profiler::physical_sparse(convey::SendType type) const {
  SparseCommMatrix m(num_pes());
  for (int s = 0; s < num_pes(); ++s)
    pe_data(s).rows.for_each([&](int dst, const CommRows::Counts& c) {
      switch (type) {
        case convey::SendType::local_send: m.add(s, dst, c.local); break;
        case convey::SendType::nonblock_send: m.add(s, dst, c.nbi); break;
        case convey::SendType::nonblock_progress: m.add(s, dst, c.prog); break;
      }
    });
  return m;
}

// Dense forms densify the sparse accumulation: fine for the small fleets
// the advisor and tests use, O(P^2) by definition — large-P callers go
// through *_sparse() and bucket first.
CommMatrix Profiler::logical_matrix() const { return logical_sparse().dense(); }

CommMatrix Profiler::physical_matrix() const {
  return physical_sparse().dense();
}

CommMatrix Profiler::physical_matrix(convey::SendType type) const {
  return physical_sparse(type).dense();
}

std::vector<OverallRecord> Profiler::overall() const {
  std::vector<OverallRecord> out;
  out.reserve(static_cast<std::size_t>(num_pes()));
  for (int pe = 0; pe < num_pes(); ++pe) {
    const PeData& d = pe_data(pe);
    OverallRecord r;
    r.pe = pe;
    r.t_main = d.t_main;
    r.t_proc = d.t_proc;
    r.t_total = d.t_total;
    out.push_back(r);
  }
  return out;
}

std::vector<std::uint64_t> Profiler::papi_totals(papi::Event e) const {
  int slot = -1;
  for (int i = 0; i < cfg_.num_papi_events(); ++i)
    if (cfg_.papi_events[static_cast<std::size_t>(i)] == e) slot = i;
  if (slot < 0)
    throw std::invalid_argument(
        "Profiler::papi_totals: event was not configured for recording");
  std::vector<std::uint64_t> out(static_cast<std::size_t>(num_pes()), 0);
  for (int pe = 0; pe < num_pes(); ++pe) {
    const PeData& d = pe_data(pe);
    for (const auto& [key, row] : d.main_rows)
      out[static_cast<std::size_t>(pe)] +=
          row.counters[static_cast<std::size_t>(slot)];
    for (const auto& [mb, row] : d.proc_rows)
      out[static_cast<std::size_t>(pe)] +=
          row.counters[static_cast<std::size_t>(slot)];
  }
  return out;
}

const std::vector<LogicalSendRecord>& Profiler::logical_events(int pe) const {
  return pe_data(pe).logical_events;
}

const std::vector<PhysicalRecord>& Profiler::physical_events(int pe) const {
  return pe_data(pe).physical_events;
}

const std::vector<TimelineEvent>& Profiler::timeline(int pe) const {
  return pe_data(pe).events;
}

std::vector<SuperstepRecord> Profiler::supersteps(int pe) const {
  std::vector<SuperstepRecord> out = pe_data(pe).steps;
  if (out.empty()) return out;
  // Release of a step = the latest arrival among all PEs that reached the
  // same (epoch, step) — all arrivals happen before any PE is released, so
  // this is the fleet's recorded release stamp. A PE killed at the barrier
  // never arrived and is simply absent from the max.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> release;
  for (const PeData& d : pes_)
    for (const SuperstepRecord& s : d.steps) {
      auto& slot = release[{s.epoch, s.step}];
      slot = std::max(slot, s.barrier_arrive);
    }
  for (SuperstepRecord& r : out)
    r.barrier_release = release[{r.epoch, r.step}];
  return out;
}

std::vector<PapiSegmentRecord> Profiler::papi_segments(int pe) const {
  const PeData& d = pe_data(pe);
  std::vector<PapiSegmentRecord> out;
  const int me_node = topo_known_ ? topo_.node_of(pe) : 0;
  for (const auto& [key, row] : d.main_rows) {
    PapiSegmentRecord r;
    r.src_node = me_node;
    r.src_pe = pe;
    r.dst_node = topo_known_ ? topo_.node_of(key.dst) : 0;
    r.dst_pe = key.dst;
    r.mailbox_id = key.mb;
    r.pkt_bytes = row.pkt_bytes;
    r.num_sends = row.num;
    r.counters = row.counters;
    r.is_proc = false;
    out.push_back(r);
  }
  for (const auto& [mb, row] : d.proc_rows) {
    PapiSegmentRecord r;
    r.src_node = me_node;
    r.src_pe = pe;
    r.dst_node = me_node;
    r.dst_pe = pe;  // handler rows are self-rows
    r.mailbox_id = mb;
    r.pkt_bytes = row.pkt_bytes;
    r.num_sends = row.num;
    r.counters = row.counters;
    r.is_proc = true;
    out.push_back(r);
  }
  return out;
}

// ------------------------------------------------------------ live metrics

int Profiler::queue_depth_series() const {
  return cfg_.metrics ? ids_.s_queue_depth : -1;
}

int Profiler::bytes_in_flight_series() const {
  return cfg_.metrics ? ids_.s_bytes_in_flight : -1;
}

void Profiler::write_metrics_prometheus(std::ostream& os) const {
  registry_.write_prometheus(os);
  if (!meter_.bound()) return;
  os << "# HELP actorprof_self_overhead_cycles_total Wall rdtsc cycles "
        "spent inside ActorProf's own instrumentation\n"
     << "# TYPE actorprof_self_overhead_cycles_total counter\n";
  for (int pe = -1; pe < meter_.num_pes(); ++pe) {
    const int slot = pe < 0 ? metrics::OverheadMeter::kGlobalSlot : pe;
    for (int c = 0; c < metrics::kOverheadCategories; ++c) {
      const auto cat = static_cast<metrics::OverheadCategory>(c);
      const std::uint64_t v = meter_.cycles(slot, cat);
      if (v == 0) continue;
      os << "actorprof_self_overhead_cycles_total{pe=\""
         << (pe < 0 ? std::string("fleet") : std::to_string(pe))
         << "\",category=\"" << metrics::to_string(cat) << "\"} " << v
         << "\n";
    }
  }
  if (publisher_ != nullptr) {
    const serve::Publisher::Stats s = publisher_->stats();
    os << "# HELP actorprof_publish_segments_total Trace segments POSTed "
          "to the live collector\n"
       << "# TYPE actorprof_publish_segments_total counter\n"
       << "actorprof_publish_segments_total " << s.segments_published << "\n"
       << "# HELP actorprof_publish_bytes_total Push-frame bytes POSTed to "
          "the live collector\n"
       << "# TYPE actorprof_publish_bytes_total counter\n"
       << "actorprof_publish_bytes_total " << s.bytes_published << "\n"
       << "# HELP actorprof_publish_dropped_total Segments dropped by the "
          "bounded publish queue or failed posts\n"
       << "# TYPE actorprof_publish_dropped_total counter\n"
       << "actorprof_publish_dropped_total " << s.segments_dropped << "\n"
       << "# HELP actorprof_publish_posts_failed_total POST /ingest "
          "attempts that did not return 200\n"
       << "# TYPE actorprof_publish_posts_failed_total counter\n"
       << "actorprof_publish_posts_failed_total " << s.posts_failed << "\n";
  }
}

void Profiler::write_metrics_json(std::ostream& os) const {
  os << "{\n\"metrics\": ";
  registry_.write_json(os);
  os << ",\n\"samples\": {\"count\": " << ring_.size()
     << ", \"capacity\": " << ring_.capacity()
     << ", \"overwritten\": " << ring_.overwritten()
     << ", \"interval_virtual_ms\": " << cfg_.metrics_interval_virtual_ms
     << "}";
  os << ",\n\"anomalies\": [";
  bool first = true;
  for (const metrics::Anomaly& a : anomalies_.items()) {
    if (!first) os << ", ";
    first = false;
    os << "{\"kind\": \"" << metrics::to_string(a.kind)
       << "\", \"pe\": " << a.pe << ", \"t_cycles\": " << a.t_cycles
       << ", \"value\": " << a.value
       << ", \"fleet_median\": " << a.fleet_median << "}";
  }
  os << "]";
  if (anomalies_.dropped() > 0)
    os << ",\n\"anomalies_dropped\": " << anomalies_.dropped();
  os << ",\n\"self_overhead_cycles\": {";
  first = true;
  for (int c = 0; c < metrics::kOverheadCategories; ++c) {
    const auto cat = static_cast<metrics::OverheadCategory>(c);
    std::uint64_t total = 0;
    if (meter_.bound()) {
      total = meter_.cycles(metrics::OverheadMeter::kGlobalSlot, cat);
      for (int pe = 0; pe < meter_.num_pes(); ++pe)
        total += meter_.cycles(pe, cat);
    }
    if (!first) os << ", ";
    first = false;
    os << "\"" << metrics::to_string(cat) << "\": " << total;
  }
  os << ", \"total\": " << meter_.grand_total() << "}\n}\n";
}

void Profiler::write_metrics() const {
  std::filesystem::create_directories(cfg_.trace_dir);
  {
    std::ofstream os(cfg_.trace_dir / "metrics.prom");
    if (!os)
      throw std::runtime_error("write_metrics: cannot open metrics.prom");
    write_metrics_prometheus(os);
  }
  {
    std::ofstream os(cfg_.trace_dir / "metrics.json");
    if (!os)
      throw std::runtime_error("write_metrics: cannot open metrics.json");
    write_metrics_json(os);
  }
}

void Profiler::write_traces() const { io::write_all(*this, cfg_); }

void Profiler::clear() {
  pes_.clear();
  topo_known_ = false;
  if (cfg_.check) checker_.clear();
  if (cfg_.metrics || cfg_.check) meter_.reset();
  if (cfg_.metrics) {
    if (registry_.bound()) registry_.reset_values();
    ring_.clear();
    anomalies_.clear();
    have_sample_baseline_ = false;
    last_sample_cycles_ = 0;
  }
  published_anomalies_ = 0;
}

}  // namespace ap::prof
