#include "core/profiler.hpp"

#include <cstdlib>
#include <stdexcept>

#include "core/trace_io.hpp"
#include "papi/cycles.hpp"
#include "runtime/scheduler.hpp"
#include "shmem/shmem.hpp"

namespace ap::prof {

namespace {
bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  return v[0] != '0' && v[0] != '\0';
}
}  // namespace

Config Config::from_env() {
  Config c;
  c.logical = env_flag("ACTORPROF_TRACE", c.logical);
  c.papi = env_flag("ACTORPROF_PAPI", c.papi);
  c.overall = env_flag("ACTORPROF_TCOMM_PROFILING", c.overall);
  c.physical = env_flag("ACTORPROF_TRACE_PHYSICAL", c.physical);
  if (const char* dir = std::getenv("ACTORPROF_TRACE_DIR")) c.trace_dir = dir;
  return c;
}

Profiler::Profiler(Config cfg) : cfg_(std::move(cfg)) {
  prev_actor_obs_ = actor::actor_observer();
  prev_transfer_obs_ = convey::transfer_observer();
  actor::set_actor_observer(this);
  convey::set_transfer_observer(this);
}

Profiler::~Profiler() {
  actor::set_actor_observer(prev_actor_obs_);
  convey::set_transfer_observer(prev_transfer_obs_);
}

void Profiler::ensure_world() {
  if (!topo_known_) {
    topo_ = shmem::topology();
    topo_known_ = true;
    pes_.clear();
    pes_.resize(static_cast<std::size_t>(topo_.num_pes()));
  }
}

Profiler::PeData& Profiler::pe_data() {
  const int pe = rt::my_pe();
  if (pe < 0)
    throw std::logic_error("Profiler: PE context required (inside shmem::run)");
  ensure_world();
  return pes_[static_cast<std::size_t>(pe)];
}

const Profiler::PeData& Profiler::pe_data(int pe) const {
  if (pe < 0 || static_cast<std::size_t>(pe) >= pes_.size())
    throw std::out_of_range("Profiler: PE index out of range");
  return pes_[static_cast<std::size_t>(pe)];
}

int Profiler::num_pes() const { return static_cast<int>(pes_.size()); }

// ------------------------------------------------------------------ epochs

void Profiler::epoch_begin() {
  PeData& d = pe_data();
  if (d.in_epoch)
    throw std::logic_error("Profiler::epoch_begin: epoch already active");
  // Repeated epochs accumulate (e.g. one epoch per BFS level or solver
  // iteration); clear() starts a fresh experiment.
  d.in_epoch = true;
  d.region_stack.assign(1, Region::Main);
  d.t0 = d.last_cycles = papi::cycles_now();
  if (cfg_.timeline)
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::BeginMain, d.t0, 0, 0});
  d.last_papi = papi::snapshot();
  const auto n = static_cast<std::size_t>(topo_.num_pes());
  if (d.logical_row.size() != n) {
    d.logical_row.assign(n, 0);
    d.phys_row_local.assign(n, 0);
    d.phys_row_nbi.assign(n, 0);
    d.phys_row_prog.assign(n, 0);
  }
}

void Profiler::epoch_end() {
  PeData& d = pe_data();
  if (!d.in_epoch)
    throw std::logic_error("Profiler::epoch_end: no epoch active");
  fold(d);
  d.t_total += d.last_cycles - d.t0;
  if (cfg_.timeline)
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::EndMain, d.last_cycles, 0, 0});
  d.in_epoch = false;
}

bool Profiler::epoch_active() const {
  const int pe = rt::my_pe();
  if (pe < 0 || static_cast<std::size_t>(pe) >= pes_.size()) return false;
  return pes_[static_cast<std::size_t>(pe)].in_epoch;
}

// --------------------------------------------------------------- the fold

void Profiler::fold(PeData& d) {
  const std::uint64_t now = papi::cycles_now();
  const std::uint64_t dt = now - d.last_cycles;
  d.last_cycles = now;

  const Region r = d.region_stack.back();
  if (cfg_.overall) {
    switch (r) {
      case Region::Main: d.t_main += dt; break;
      case Region::Proc: d.t_proc += dt; break;
      case Region::Comm: d.t_comm += dt; break;
    }
  }

  if (cfg_.papi) {
    const auto now_papi = papi::snapshot();
    std::array<std::uint64_t, papi::kMaxEventsPerSet> delta{};
    for (int i = 0; i < cfg_.num_papi_events(); ++i) {
      const auto ev = static_cast<std::size_t>(
          cfg_.papi_events[static_cast<std::size_t>(i)]);
      delta[static_cast<std::size_t>(i)] = now_papi[ev] - d.last_papi[ev];
    }
    d.last_papi = now_papi;
    // COMM deltas are intentionally discarded: the paper instruments only
    // user code and "excludes the Conveyors and HClib-Actor system".
    if (r == Region::Main && d.have_pending_main) {
      RowAgg& row = d.main_rows[d.pending_main];
      for (int i = 0; i < cfg_.num_papi_events(); ++i)
        row.counters[static_cast<std::size_t>(i)] +=
            delta[static_cast<std::size_t>(i)];
    } else if (r == Region::Proc && d.cur_handler_mb >= 0) {
      RowAgg& row = d.proc_rows[d.cur_handler_mb];
      for (int i = 0; i < cfg_.num_papi_events(); ++i)
        row.counters[static_cast<std::size_t>(i)] +=
            delta[static_cast<std::size_t>(i)];
    }
  } else {
    d.last_papi = papi::snapshot();
  }
}

// ----------------------------------------------------------- ActorObserver

void Profiler::on_send(int mb, int dst_pe, std::size_t bytes) {
  if (!rt::in_spmd_region()) return;
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);

  const int me = rt::my_pe();
  if (cfg_.logical) {
    d.logical_row[static_cast<std::size_t>(dst_pe)]++;
    const bool sampled =
        cfg_.sample_every <= 1 || d.logical_seen % cfg_.sample_every == 0;
    ++d.logical_seen;
    if (cfg_.keep_logical_events && sampled &&
        (cfg_.max_events_per_pe == 0 ||
         d.logical_events.size() < cfg_.max_events_per_pe)) {
      d.logical_events.push_back(LogicalSendRecord{
          topo_.node_of(me), me, topo_.node_of(dst_pe), dst_pe,
          static_cast<std::uint32_t>(bytes)});
    }
  }
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe)) {
    d.events.push_back(TimelineEvent{TimelineEvent::Kind::Send,
                                     d.last_cycles, dst_pe,
                                     static_cast<std::int32_t>(bytes)});
  }
  if (cfg_.papi && d.region_stack.back() == Region::Main) {
    d.pending_main = MainRowKey{mb, dst_pe};
    d.have_pending_main = true;
    RowAgg& row = d.main_rows[d.pending_main];
    row.num++;
    row.pkt_bytes = static_cast<std::uint32_t>(bytes);
  } else if (cfg_.papi) {
    // A send from inside a handler: counted, but its cost stays in PROC.
    RowAgg& row = d.main_rows[MainRowKey{mb, dst_pe}];
    row.num++;
    row.pkt_bytes = static_cast<std::uint32_t>(bytes);
  }
}

void Profiler::on_handler_begin(int mb, int src_pe, std::size_t bytes) {
  (void)src_pe;
  if (!rt::in_spmd_region()) return;
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  d.region_stack.push_back(Region::Proc);
  d.cur_handler_mb = mb;
  if (cfg_.papi) {
    RowAgg& row = d.proc_rows[mb];
    row.num++;
    row.pkt_bytes = static_cast<std::uint32_t>(bytes);
  }
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe))
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::BeginProc, d.last_cycles, mb, 0});
}

void Profiler::on_handler_end(int mb) {
  (void)mb;
  if (!rt::in_spmd_region()) return;
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  if (d.region_stack.size() > 1 && d.region_stack.back() == Region::Proc)
    d.region_stack.pop_back();
  d.cur_handler_mb = -1;
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe))
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::EndProc, d.last_cycles, mb, 0});
}

void Profiler::on_comm_begin() {
  if (!rt::in_spmd_region()) return;
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  d.region_stack.push_back(Region::Comm);
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe))
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::BeginComm, d.last_cycles, 0, 0});
}

void Profiler::on_comm_end() {
  if (!rt::in_spmd_region()) return;
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  fold(d);
  if (d.region_stack.size() > 1 && d.region_stack.back() == Region::Comm)
    d.region_stack.pop_back();
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe))
    d.events.push_back(
        TimelineEvent{TimelineEvent::Kind::EndComm, d.last_cycles, 0, 0});
}

// -------------------------------------------------------- TransferObserver

void Profiler::on_transfer(convey::SendType type, std::size_t buffer_bytes,
                           int src_pe, int dst_pe) {
  if (!cfg_.physical && !cfg_.timeline) return;
  if (!rt::in_spmd_region()) return;
  PeData& d = pe_data();
  if (!d.in_epoch) return;
  if (cfg_.physical) {
    switch (type) {
      case convey::SendType::local_send:
        d.phys_row_local[static_cast<std::size_t>(dst_pe)]++;
        break;
      case convey::SendType::nonblock_send:
        d.phys_row_nbi[static_cast<std::size_t>(dst_pe)]++;
        break;
      case convey::SendType::nonblock_progress:
        d.phys_row_prog[static_cast<std::size_t>(dst_pe)]++;
        break;
    }
    const bool sampled =
        cfg_.sample_every <= 1 || d.physical_seen % cfg_.sample_every == 0;
    ++d.physical_seen;
    if (cfg_.keep_physical_events && sampled &&
        (cfg_.max_events_per_pe == 0 ||
         d.physical_events.size() < cfg_.max_events_per_pe)) {
      d.physical_events.push_back(PhysicalRecord{
          type, static_cast<std::uint64_t>(buffer_bytes), src_pe, dst_pe});
    }
  }
  if (cfg_.timeline &&
      (cfg_.max_events_per_pe == 0 ||
       d.events.size() < cfg_.max_events_per_pe)) {
    d.events.push_back(TimelineEvent{
        TimelineEvent::Kind::Transfer, papi::cycles_now(), dst_pe,
        static_cast<std::int32_t>(buffer_bytes)});
  }
}

// ------------------------------------------------------------------ results

CommMatrix Profiler::logical_matrix() const {
  CommMatrix m(num_pes());
  for (int s = 0; s < num_pes(); ++s) {
    const PeData& d = pe_data(s);
    for (std::size_t dst = 0; dst < d.logical_row.size(); ++dst)
      m.add(s, static_cast<int>(dst), d.logical_row[dst]);
  }
  return m;
}

CommMatrix Profiler::physical_matrix() const {
  CommMatrix m = physical_matrix(convey::SendType::local_send);
  m += physical_matrix(convey::SendType::nonblock_send);
  return m;
}

CommMatrix Profiler::physical_matrix(convey::SendType type) const {
  CommMatrix m(num_pes());
  for (int s = 0; s < num_pes(); ++s) {
    const PeData& d = pe_data(s);
    const std::vector<std::uint64_t>* row = nullptr;
    switch (type) {
      case convey::SendType::local_send: row = &d.phys_row_local; break;
      case convey::SendType::nonblock_send: row = &d.phys_row_nbi; break;
      case convey::SendType::nonblock_progress: row = &d.phys_row_prog; break;
    }
    for (std::size_t dst = 0; dst < row->size(); ++dst)
      m.add(s, static_cast<int>(dst), (*row)[dst]);
  }
  return m;
}

std::vector<OverallRecord> Profiler::overall() const {
  std::vector<OverallRecord> out;
  out.reserve(static_cast<std::size_t>(num_pes()));
  for (int pe = 0; pe < num_pes(); ++pe) {
    const PeData& d = pe_data(pe);
    OverallRecord r;
    r.pe = pe;
    r.t_main = d.t_main;
    r.t_proc = d.t_proc;
    r.t_total = d.t_total;
    out.push_back(r);
  }
  return out;
}

std::vector<std::uint64_t> Profiler::papi_totals(papi::Event e) const {
  int slot = -1;
  for (int i = 0; i < cfg_.num_papi_events(); ++i)
    if (cfg_.papi_events[static_cast<std::size_t>(i)] == e) slot = i;
  if (slot < 0)
    throw std::invalid_argument(
        "Profiler::papi_totals: event was not configured for recording");
  std::vector<std::uint64_t> out(static_cast<std::size_t>(num_pes()), 0);
  for (int pe = 0; pe < num_pes(); ++pe) {
    const PeData& d = pe_data(pe);
    for (const auto& [key, row] : d.main_rows)
      out[static_cast<std::size_t>(pe)] +=
          row.counters[static_cast<std::size_t>(slot)];
    for (const auto& [mb, row] : d.proc_rows)
      out[static_cast<std::size_t>(pe)] +=
          row.counters[static_cast<std::size_t>(slot)];
  }
  return out;
}

const std::vector<LogicalSendRecord>& Profiler::logical_events(int pe) const {
  return pe_data(pe).logical_events;
}

const std::vector<PhysicalRecord>& Profiler::physical_events(int pe) const {
  return pe_data(pe).physical_events;
}

const std::vector<TimelineEvent>& Profiler::timeline(int pe) const {
  return pe_data(pe).events;
}

std::vector<PapiSegmentRecord> Profiler::papi_segments(int pe) const {
  const PeData& d = pe_data(pe);
  std::vector<PapiSegmentRecord> out;
  const int me_node = topo_known_ ? topo_.node_of(pe) : 0;
  for (const auto& [key, row] : d.main_rows) {
    PapiSegmentRecord r;
    r.src_node = me_node;
    r.src_pe = pe;
    r.dst_node = topo_known_ ? topo_.node_of(key.dst) : 0;
    r.dst_pe = key.dst;
    r.mailbox_id = key.mb;
    r.pkt_bytes = row.pkt_bytes;
    r.num_sends = row.num;
    r.counters = row.counters;
    r.is_proc = false;
    out.push_back(r);
  }
  for (const auto& [mb, row] : d.proc_rows) {
    PapiSegmentRecord r;
    r.src_node = me_node;
    r.src_pe = pe;
    r.dst_node = me_node;
    r.dst_pe = pe;  // handler rows are self-rows
    r.mailbox_id = mb;
    r.pkt_bytes = row.pkt_bytes;
    r.num_sends = row.num;
    r.counters = row.counters;
    r.is_proc = true;
    out.push_back(r);
  }
  return out;
}

void Profiler::write_traces() const { io::write_all(*this, cfg_); }

void Profiler::clear() {
  pes_.clear();
  topo_known_ = false;
}

}  // namespace ap::prof
