// The ActorProf profiler (paper §III, Figure 2).
//
// One Profiler instance observes a whole SPMD launch. It implements the
// three instrumentation seams of the stack —
//   * actor::ActorObserver    : logical sends, MAIN/PROC/COMM regions,
//                               per-segment PAPI deltas,
//   * convey::TransferObserver: physical transfers + buffer occupancy,
//   * shmem::RmaObserver      : put/put_nbi/quiet counts (live metrics)
// — and accumulates, per PE:
//   1. the logical trace (§III-A)            -> PEi_send.csv
//   2. PAPI segment records (§III-A)         -> PEi_PAPI.csv
//   3. the overall rdtsc breakdown (§III-B)  -> overall.txt
//   4. the physical trace (§III-C)           -> physical.txt
//   5. live metrics (Config::metrics)        -> metrics.prom / metrics.json
//
// With Config::metrics the profiler additionally installs a scheduler tick
// hook: every round-robin sweep it checks the fleet's virtual clock and,
// once per metrics_interval_virtual_ms, snapshots the registry into a
// bounded ring and runs the online straggler/backpressure detector. Its
// own callback cost is metered per category (self-overhead accounting).
//
// Usage (SPMD):
//   ap::prof::Profiler prof(cfg);        // installs observers
//   ap::shmem::run(launch_cfg, [&] {
//     ... build inputs ...
//     prof.epoch_begin();                // start of the profiled kernel
//     ap::hclib::finish([&] { ... actor program ... });
//     prof.epoch_end();
//     ap::shmem::barrier_all();
//     if (ap::shmem::my_pe() == 0) prof.write_traces();
//   });
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "actor/observer.hpp"
#include "check/checker.hpp"
#include "conveyor/observer.hpp"
#include "core/aggregate.hpp"
#include "core/chrome_trace.hpp"
#include "core/config.hpp"
#include "core/records.hpp"
#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"
#include "metrics/self_overhead.hpp"
#include "runtime/scheduler.hpp"
#include "shmem/profiling_interface.hpp"
#include "shmem/topology.hpp"

namespace ap::serve {
class Publisher;
}

namespace ap::prof {

class Profiler final : public actor::ActorObserver,
                       public convey::TransferObserver,
                       public shmem::RmaObserver {
 public:
  explicit Profiler(Config cfg = Config::from_env());
  ~Profiler() override;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Mark the start/end of the profiled kernel on the calling PE. Only
  /// work inside the epoch is traced (the paper profiles the triangle-
  /// counting kernel and excludes graph reading and validation).
  void epoch_begin();
  void epoch_end();
  [[nodiscard]] bool epoch_active() const;

  /// RAII epoch guard.
  class Epoch {
   public:
    explicit Epoch(Profiler& p) : p_(p) { p_.epoch_begin(); }
    ~Epoch() { p_.epoch_end(); }
    Epoch(const Epoch&) = delete;
    Epoch& operator=(const Epoch&) = delete;

   private:
    Profiler& p_;
  };

  // ---- ActorObserver ------------------------------------------------------
  void on_send(int mb, int dst_pe, std::size_t bytes,
               std::uint64_t flow_id) override;
  void on_handler_begin(int mb, int src_pe, std::size_t bytes,
                        std::uint64_t flow_id) override;
  void on_handler_end(int mb) override;
  void on_comm_begin() override;
  void on_comm_end() override;
  /// Flow ids are only worth their wire bytes when the Chrome timeline
  /// that renders them is being recorded.
  [[nodiscard]] bool wants_flow_ids() const override { return cfg_.timeline; }
  void on_actor_misuse(const char* what) override;

  // ---- TransferObserver ---------------------------------------------------
  void on_transfer(convey::SendType type, std::size_t buffer_bytes,
                   int src_pe, int dst_pe,
                   std::uint64_t first_flow_id) override;
  void on_advance(std::size_t out_pending_bytes,
                  std::size_t recv_pending_bytes) override;
  void on_conveyor_misuse(const char* what) override;

  // ---- RmaObserver (live metrics for the shmem layer) ---------------------
  void on_put(int target_pe, std::size_t bytes) override;
  void on_put_nbi(int target_pe, std::size_t bytes) override;
  void on_get(int target_pe, std::size_t bytes) override;
  void on_quiet(std::size_t outstanding_puts) override;
  void on_barrier() override;
  void on_atomic(int target_pe) override;
  /// Superstep boundary (Config::supersteps): close the current step and
  /// stamp the PE's arrival at the collective.
  void on_collective_arrive() override;

  // ---- conformance events (Config::check, docs/CHECKING.md) ---------------
  /// One override gates the identically-named hook on both RmaObserver and
  /// TransferObserver: the shmem and conveyor layers only emit per-access
  /// conformance events when the checker is on.
  [[nodiscard]] bool wants_conformance_events() const override {
    return cfg_.check;
  }
  void on_put_range(int target_pe, std::size_t offset, std::size_t bytes,
                    const shmem::Callsite& cs) override;
  void on_get_range(int target_pe, std::size_t offset, std::size_t bytes,
                    const shmem::Callsite& cs) override;
  void on_put_nbi_range(int target_pe, std::size_t offset, std::size_t bytes,
                        const shmem::Callsite& cs) override;
  void on_quiet_begin(std::size_t outstanding) override;
  void on_nbi_applied(std::size_t index) override;
  void on_quiet_suspend(std::size_t applied, std::size_t remaining) override;
  void on_atomic_range(int target_pe, std::size_t offset,
                       const shmem::Callsite& cs) override;
  void on_wait_satisfied(std::size_t offset, std::size_t bytes) override;
  void on_local_store(int target_pe, std::size_t offset, std::size_t bytes,
                      const shmem::Callsite& cs) override;
  void on_local_read(std::size_t offset, std::size_t bytes,
                     const shmem::Callsite& cs) override;
  void on_acquire_read(std::size_t offset, std::size_t bytes) override;
  void on_pe_dead(int pe) override;

  // ---- results ------------------------------------------------------------
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] int num_pes() const;

  /// Messages sent src->dst before aggregation (Fig. 3/4 heatmap data).
  /// The dense accessors materialize P^2 cells — for large fleets use the
  /// *_sparse forms and bucket before densifying (SparseCommMatrix::
  /// bucketed).
  [[nodiscard]] CommMatrix logical_matrix() const;
  [[nodiscard]] SparseCommMatrix logical_sparse() const;
  /// Buffers transferred src->dst (Fig. 8/9), optionally by type.
  [[nodiscard]] CommMatrix physical_matrix() const;
  [[nodiscard]] CommMatrix physical_matrix(convey::SendType type) const;
  [[nodiscard]] SparseCommMatrix physical_sparse() const;
  [[nodiscard]] SparseCommMatrix physical_sparse(convey::SendType type) const;
  /// Per-PE MAIN/PROC/COMM cycle breakdown (Fig. 12/13).
  [[nodiscard]] std::vector<OverallRecord> overall() const;
  /// Per-PE total of one configured PAPI event over the MAIN and PROC
  /// segments (Fig. 10/11 bar-graph data).
  [[nodiscard]] std::vector<std::uint64_t> papi_totals(papi::Event e) const;

  [[nodiscard]] const std::vector<LogicalSendRecord>& logical_events(
      int pe) const;
  [[nodiscard]] const std::vector<PhysicalRecord>& physical_events(
      int pe) const;
  [[nodiscard]] std::vector<PapiSegmentRecord> papi_segments(int pe) const;
  /// Per-PE superstep records (empty unless Config::supersteps). The
  /// returned copies carry barrier_release = max arrival stamp over every
  /// PE that reached the same (epoch, step); raw in-memory records only
  /// hold the PE's own arrival.
  [[nodiscard]] std::vector<SuperstepRecord> supersteps(int pe) const;
  /// Per-PE timeline (empty unless Config::timeline).
  [[nodiscard]] const std::vector<TimelineEvent>& timeline(int pe) const;
  /// Topology captured at the first epoch (node ids for exports).
  [[nodiscard]] const shmem::Topology& topo() const { return topo_; }

  // ---- live metrics (Config::metrics) -------------------------------------
  /// The registry backing the live metrics (bound once the world is known).
  [[nodiscard]] const metrics::Registry& registry() const { return registry_; }
  /// Ring of periodic fleet snapshots taken by the scheduler tick hook.
  [[nodiscard]] const metrics::SampleRing& metric_samples() const {
    return ring_;
  }
  /// Stragglers/backpressure the online detector flagged so far.
  [[nodiscard]] const metrics::AnomalyLog& anomalies() const {
    return anomalies_;
  }
  /// Measured cost of the profiler's own instrumentation (wall rdtsc).
  [[nodiscard]] const metrics::OverheadMeter& self_overhead() const {
    return meter_;
  }
  /// BSP conformance violations detected so far (empty unless
  /// Config::check). Surfaced through the advisor, check.csv, and the
  /// `actorprof check` CLI.
  [[nodiscard]] const std::vector<check::Violation>& bsp_violations() const {
    return checker_.violations();
  }
  /// Violations suppressed after the checker's report cap was reached.
  [[nodiscard]] std::uint64_t bsp_violations_dropped() const {
    return checker_.dropped();
  }
  /// Scalar-series index of the queue-depth / bytes-in-flight gauges in
  /// metric_samples() rows (-1 when metrics are disabled). Used by the
  /// Chrome exporter's counter tracks.
  [[nodiscard]] int queue_depth_series() const;
  [[nodiscard]] int bytes_in_flight_series() const;

  /// Prometheus text exposition 0.0.4 of every metric (plus self-overhead
  /// series) — what a scrape endpoint would serve.
  void write_metrics_prometheus(std::ostream& os) const;
  /// JSON exposition: metrics + sample-ring summary + anomalies +
  /// self-overhead, one self-describing object.
  void write_metrics_json(std::ostream& os) const;
  /// Write metrics.prom and metrics.json into cfg.trace_dir.
  void write_metrics() const;

  /// Write every enabled trace file into cfg.trace_dir (single process
  /// holds all PEs' data, so any PE — or post-run code — may call this).
  void write_traces() const;

  /// The live-stream publisher (Config::publish), or nullptr when live
  /// streaming is off. write_all() pushes final file bodies through it so
  /// a pushed run converges to the on-disk bytes.
  [[nodiscard]] serve::Publisher* publisher() const { return publisher_.get(); }

  /// Drop all collected data (between experiments).
  void clear();

 private:
  enum class Region { Main, Proc, Comm };

  struct MainRowKey {
    int mb;
    int dst;
    auto operator<=>(const MainRowKey&) const = default;
  };
  struct RowAgg {
    std::uint64_t num = 0;
    std::uint32_t pkt_bytes = 0;
    std::array<std::uint64_t, papi::kMaxEventsPerSet> counters{};
  };

  /// Per-destination send counters for one PE, one slot per channel
  /// (logical sends plus the three physical transfer kinds). Hybrid
  /// storage: up to kDensePes destinations a dense index-by-destination
  /// array (one array bump on the per-send hot path); above it a hash of
  /// touched destinations, so a P-PE fleet costs O(P * touched) total
  /// instead of the O(P^2) four dense rows per PE used to pin
  /// (docs/PERFORMANCE.md, "Memory at scale").
  class CommRows {
   public:
    static constexpr int kDensePes = 256;

    struct Counts {
      std::uint64_t logical = 0, local = 0, nbi = 0, prog = 0;
    };

    void reset(int n) {
      n_ = n;
      map_.clear();
      if (n <= kDensePes)
        dense_.assign(static_cast<std::size_t>(n), Counts{});
      else
        dense_.clear();
    }
    [[nodiscard]] bool sized_for(int n) const { return n_ == n; }

    [[nodiscard]] Counts& at(int dst) {
      if (!dense_.empty()) return dense_[static_cast<std::size_t>(dst)];
      return map_[dst];
    }

    /// Visit every touched destination as f(dst, counts).
    template <class F>
    void for_each(F&& f) const {
      for (std::size_t d = 0; d < dense_.size(); ++d)
        f(static_cast<int>(d), dense_[d]);
      for (const auto& [d, c] : map_) f(d, c);
    }

   private:
    int n_ = -1;
    std::vector<Counts> dense_;
    std::unordered_map<int, Counts> map_;
  };

  struct PeData {
    bool in_epoch = false;
    std::vector<Region> region_stack;
    std::uint64_t last_cycles = 0;
    std::array<std::uint64_t, static_cast<std::size_t>(papi::Event::kCount)>
        last_papi{};
    std::uint64_t t_main = 0, t_proc = 0, t_comm = 0, t0 = 0, t_total = 0;

    // PAPI segment attribution.
    bool have_pending_main = false;
    MainRowKey pending_main{};
    std::map<MainRowKey, RowAgg> main_rows;
    std::map<int, RowAgg> proc_rows;  // mailbox -> handler aggregate
    int cur_handler_mb = -1;

    std::vector<LogicalSendRecord> logical_events;
    CommRows rows;                   // per-dst counts, all four channels
    std::uint64_t logical_seen = 0;  // for sampling
    std::vector<PhysicalRecord> physical_events;
    std::uint64_t physical_seen = 0;
    std::vector<TimelineEvent> events;  // timeline (Config::timeline)

    // Superstep recording (Config::supersteps). The ss_* members snapshot
    // the cumulative buckets at the current step's open, so a step's cost
    // is the delta when it closes.
    std::uint32_t epochs_begun = 0;
    std::uint32_t cur_epoch = 0, cur_step = 0;
    std::uint64_t ss_main = 0, ss_proc = 0, ss_comm = 0;
    std::uint64_t msgs_sent_total = 0, bytes_sent_total = 0,
                  msgs_handled_total = 0;
    std::uint64_t ss_msgs = 0, ss_bytes = 0, ss_handled = 0;
    std::vector<SuperstepRecord> steps;
  };

  /// Registered metric handles (valid iff cfg_.metrics).
  struct MetricIds {
    metrics::CounterId actor_sends, actor_send_bytes, actor_handlers;
    metrics::CounterId conveyor_advances, conveyor_transfers,
        conveyor_transfer_bytes;
    metrics::CounterId shmem_puts, shmem_put_bytes, shmem_nbi_puts,
        shmem_nbi_put_bytes, shmem_gets, shmem_quiets, shmem_barriers,
        shmem_atomics;
    metrics::GaugeId queue_depth, out_pending_bytes, recv_pending_bytes,
        bytes_in_flight, comm_share_milli;
    metrics::HistogramId msg_bytes, transfer_bytes;
    /// Scalar-series indices (counters-then-gauges layout) of the gauges
    /// the Chrome exporter renders as counter tracks.
    int s_queue_depth = -1, s_bytes_in_flight = -1;
  };

  PeData& pe_data();
  const PeData& pe_data(int pe) const;
  /// Emit the current superstep of `pe` (deltas since its open) with the
  /// given arrival stamp, then open the next step.
  void close_superstep(PeData& d, int pe, std::uint64_t arrive);
  /// Fold cycle + PAPI deltas since the last boundary into the buckets of
  /// the current region, then re-stamp.
  void fold(PeData& d);
  void ensure_world();
  void register_metrics();
  /// Scheduler tick hook body: sample + detect when the interval elapsed.
  void tick();

  Config cfg_;
  shmem::Topology topo_;
  /// Guards the one-time world setup in ensure_world(): under the threads
  /// backend every PE's first observer callback races to initialize. The
  /// flag is the double-checked fast path (acquire pairs with the release
  /// store after setup completes); the mutex serializes the slow path.
  std::atomic<bool> topo_known_{false};
  std::mutex world_mu_;
  std::vector<PeData> pes_;
  actor::ActorObserver* prev_actor_obs_ = nullptr;
  convey::TransferObserver* prev_transfer_obs_ = nullptr;
  shmem::RmaObserver* prev_rma_obs_ = nullptr;
  bool rma_installed_ = false;
  rt::TickHook prev_tick_;
  bool tick_installed_ = false;

  metrics::Registry registry_;
  MetricIds ids_{};
  metrics::SampleRing ring_;
  metrics::AnomalyLog anomalies_;
  metrics::OverheadMeter meter_;
  check::Checker checker_;
  /// The conformance checker keeps whole-fleet state (vector clocks,
  /// shadow heap); under the threads backend its intake hooks arrive from
  /// every worker concurrently, so each one takes this mutex.
  std::mutex checker_mu_;
  std::uint64_t last_sample_cycles_ = 0;
  bool have_sample_baseline_ = false;
  /// Epoch-boundary checkpointing (Config::crash_safe): epoch_end() calls
  /// since the last mid-run write_all() flush. Atomic: PEs close epochs
  /// concurrently under the threads backend.
  std::atomic<int> epoch_ends_since_flush_{0};
  std::vector<std::int64_t> sample_scratch_;
  std::vector<double> detect_scratch_;
  /// Live-stream publisher (Config::publish). Owned here so superstep
  /// closes and metric ticks can stage push frames without the serve
  /// daemon being linked in.
  std::unique_ptr<serve::Publisher> publisher_;
  /// Anomalies already staged as push frames by tick() (tick runs on one
  /// thread, so no atomics needed).
  std::size_t published_anomalies_ = 0;
};

}  // namespace ap::prof
