// Trace record types — the rows of the four files ActorProf emits
// (paper §III-A/B/C implementation notes).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "conveyor/observer.hpp"
#include "papi/papi.hpp"

namespace ap::prof {

/// One application-level send before aggregation (a line of PEi_send.csv):
///   source node, source PE, destination node, destination PE, message size
struct LogicalSendRecord {
  int src_node = 0;
  int src_pe = 0;
  int dst_node = 0;
  int dst_pe = 0;
  std::uint32_t msg_bytes = 0;

  friend bool operator==(const LogicalSendRecord&,
                         const LogicalSendRecord&) = default;
};

/// One PAPI segment row (a line of PEi_PAPI.csv):
///   source node, source PE, dst node, dst PE, pkt size, MAILBOXID,
///   NUM_SENDS, <counter values...>
/// MAIN rows aggregate the sends of one mailbox toward one destination;
/// PROC rows (dst == src) aggregate that mailbox's handler executions.
struct PapiSegmentRecord {
  int src_node = 0;
  int src_pe = 0;
  int dst_node = 0;
  int dst_pe = 0;
  std::uint32_t pkt_bytes = 0;
  int mailbox_id = 0;
  std::uint64_t num_sends = 0;
  /// Values of the configured events (papi::kMaxEventsPerSet at most),
  /// in configuration order; unused slots are zero.
  std::array<std::uint64_t, papi::kMaxEventsPerSet> counters{};
  /// True for a PROC (handler) row, false for a MAIN (send) row.
  bool is_proc = false;

  friend bool operator==(const PapiSegmentRecord&,
                         const PapiSegmentRecord&) = default;
};

/// One network-level transfer (a line of physical.txt):
///   send type, buffer (network-packet) size, source PE, destination PE
struct PhysicalRecord {
  convey::SendType type = convey::SendType::local_send;
  std::uint64_t buffer_bytes = 0;
  int src_pe = 0;
  int dst_pe = 0;

  friend bool operator==(const PhysicalRecord&,
                         const PhysicalRecord&) = default;
};

/// Per-PE overall breakdown (two lines of overall.txt: Absolute, Relative).
/// T_COMM is derived: T_TOTAL - T_MAIN - T_PROC (paper §III-B).
struct OverallRecord {
  int pe = 0;
  std::uint64_t t_main = 0;
  std::uint64_t t_proc = 0;
  std::uint64_t t_total = 0;

  [[nodiscard]] std::uint64_t t_comm() const {
    const std::uint64_t used = t_main + t_proc;
    return t_total > used ? t_total - used : 0;
  }
  [[nodiscard]] double rel_main() const {
    return t_total == 0 ? 0.0 : static_cast<double>(t_main) / static_cast<double>(t_total);
  }
  [[nodiscard]] double rel_proc() const {
    return t_total == 0 ? 0.0 : static_cast<double>(t_proc) / static_cast<double>(t_total);
  }
  [[nodiscard]] double rel_comm() const {
    return t_total == 0 ? 0.0 : static_cast<double>(t_comm()) / static_cast<double>(t_total);
  }

  friend bool operator==(const OverallRecord&, const OverallRecord&) = default;
};

}  // namespace ap::prof
