// Trace record types — the rows of the four files ActorProf emits
// (paper §III-A/B/C implementation notes).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "conveyor/observer.hpp"
#include "papi/papi.hpp"

namespace ap::prof {

/// One application-level send before aggregation (a line of PEi_send.csv):
///   source node, source PE, destination node, destination PE, message size
struct LogicalSendRecord {
  int src_node = 0;
  int src_pe = 0;
  int dst_node = 0;
  int dst_pe = 0;
  std::uint32_t msg_bytes = 0;

  friend bool operator==(const LogicalSendRecord&,
                         const LogicalSendRecord&) = default;
};

/// One PAPI segment row (a line of PEi_PAPI.csv):
///   source node, source PE, dst node, dst PE, pkt size, MAILBOXID,
///   NUM_SENDS, <counter values...>
/// MAIN rows aggregate the sends of one mailbox toward one destination;
/// PROC rows (dst == src) aggregate that mailbox's handler executions.
struct PapiSegmentRecord {
  int src_node = 0;
  int src_pe = 0;
  int dst_node = 0;
  int dst_pe = 0;
  std::uint32_t pkt_bytes = 0;
  int mailbox_id = 0;
  std::uint64_t num_sends = 0;
  /// Values of the configured events (papi::kMaxEventsPerSet at most),
  /// in configuration order; unused slots are zero.
  std::array<std::uint64_t, papi::kMaxEventsPerSet> counters{};
  /// True for a PROC (handler) row, false for a MAIN (send) row.
  bool is_proc = false;

  friend bool operator==(const PapiSegmentRecord&,
                         const PapiSegmentRecord&) = default;
};

/// One network-level transfer (a line of physical.txt):
///   send type, buffer (network-packet) size, source PE, destination PE
struct PhysicalRecord {
  convey::SendType type = convey::SendType::local_send;
  std::uint64_t buffer_bytes = 0;
  int src_pe = 0;
  int dst_pe = 0;

  friend bool operator==(const PhysicalRecord&,
                         const PhysicalRecord&) = default;
};

/// Per-PE, per-superstep breakdown (a line of PEi_steps.csv).
///
/// A superstep is a barrier-to-barrier interval inside an epoch: it opens
/// at epoch_begin() or at the previous collective arrival and closes when
/// the PE arrives at the next collective (barrier_all / sync_all / reduce /
/// broadcast) or at epoch_end(). `barrier_arrive` is the PE's own virtual
/// cycle stamp at arrival; `barrier_release` is the max arrival stamp over
/// all PEs that reached the same (epoch, step) — a lower bound on the
/// release under the per-PE busy clock (the analysis layer reconstructs
/// true BSP wait times; see docs/ANALYSIS.md). Steps closed by epoch_end()
/// have barrier_arrive == barrier_release == the epoch-end stamp.
struct SuperstepRecord {
  int pe = 0;
  /// 0-based index of the epoch this step belongs to (epoch_begin count).
  std::uint32_t epoch = 0;
  /// 0-based index of the step within its epoch.
  std::uint32_t step = 0;
  std::uint64_t t_main = 0;
  std::uint64_t t_proc = 0;
  std::uint64_t t_comm = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_handled = 0;
  std::uint64_t barrier_arrive = 0;
  std::uint64_t barrier_release = 0;

  /// Busy cycles of the step (what the PE actually computed/communicated).
  [[nodiscard]] std::uint64_t work() const { return t_main + t_proc + t_comm; }
  /// Recorded (stamp-based) wait: release minus own arrival.
  [[nodiscard]] std::uint64_t barrier_wait() const {
    return barrier_release > barrier_arrive
               ? barrier_release - barrier_arrive
               : 0;
  }

  friend bool operator==(const SuperstepRecord&,
                         const SuperstepRecord&) = default;
};

/// Per-PE overall breakdown (two lines of overall.txt: Absolute, Relative).
/// T_COMM is derived: T_TOTAL - T_MAIN - T_PROC (paper §III-B).
struct OverallRecord {
  int pe = 0;
  std::uint64_t t_main = 0;
  std::uint64_t t_proc = 0;
  std::uint64_t t_total = 0;

  [[nodiscard]] std::uint64_t t_comm() const {
    const std::uint64_t used = t_main + t_proc;
    return t_total > used ? t_total - used : 0;
  }
  [[nodiscard]] double rel_main() const {
    return t_total == 0 ? 0.0 : static_cast<double>(t_main) / static_cast<double>(t_total);
  }
  [[nodiscard]] double rel_proc() const {
    return t_total == 0 ? 0.0 : static_cast<double>(t_proc) / static_cast<double>(t_total);
  }
  [[nodiscard]] double rel_comm() const {
    return t_total == 0 ? 0.0 : static_cast<double>(t_comm()) / static_cast<double>(t_total);
  }

  friend bool operator==(const OverallRecord&, const OverallRecord&) = default;
};

}  // namespace ap::prof
