// Buffered text sink for trace emission.
//
// The CSV writers used to stream one `operator<<` per field into an
// ostringstream — a virtual call plus locale machinery per number, which
// dominated write_all() on million-row traces (bench_trace measures it).
// Sink appends into one owned std::string with std::to_chars formatting;
// write_all hands the finished buffer straight to the atomic-rename file
// writer, so a trace file is formatted exactly once, contiguously.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>

namespace ap::prof::io {

class Sink {
 public:
  Sink() { buf_.reserve(4096); }

  void put(char c) { buf_.push_back(c); }
  void append(std::string_view s) { buf_.append(s); }

  /// Any integer type, formatted as base-10 via to_chars (locale-free).
  template <class T>
    requires std::is_integral_v<T>
  void dec(T v) {
    char tmp[24];
    const auto [p, ec] = std::to_chars(tmp, tmp + sizeof tmp, v);
    buf_.append(tmp, static_cast<std::size_t>(p - tmp));
  }

  /// Default-ostream-compatible double formatting (printf %g, precision
  /// 6) — keeps overall.txt byte-identical to the streamed writer it
  /// replaced.
  void flt(double v) {
    char tmp[32];
    const int n = std::snprintf(tmp, sizeof tmp, "%g", v);
    if (n > 0) buf_.append(tmp, static_cast<std::size_t>(n));
  }

  [[nodiscard]] const std::string& str() const& { return buf_; }
  [[nodiscard]] std::string str() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

 private:
  std::string buf_;
};

}  // namespace ap::prof::io
