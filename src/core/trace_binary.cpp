#include "core/trace_binary.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <stdexcept>
#include <utility>

#include "metrics/sampler.hpp"

namespace ap::prof::io {

namespace {

constexpr std::size_t kRowsPerBlock = 4096;
constexpr std::uint8_t kFlagCrc = 0x01;
/// Header flag bit of the version-2 container: blocks carry a flag byte.
constexpr std::uint8_t kFlagCompressed = 0x02;
/// Version-2 per-block flag byte values.
constexpr std::uint8_t kBlockStored = 0;
constexpr std::uint8_t kBlockLz = 1;
/// Cap on a compressed block's declared uncompressed size: fuzzed frames
/// must not turn into huge allocations. Real blocks stay far below this.
constexpr std::uint64_t kMaxRawBlockSanity = 1u << 28;
/// Column encodings (one byte per column per block).
constexpr std::uint8_t kEncDeltaRle = 0;
constexpr std::uint8_t kEncDict = 1;
/// Decoder sanity caps: a fuzzed length field must not turn into a huge
/// allocation. Real blocks hold kRowsPerBlock rows.
constexpr std::uint64_t kMaxRowsSanity = 1u << 22;
constexpr std::uint64_t kMaxValuesSanity = 1u << 26;

// --------------------------------------------------------------- primitives

std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0xffffffffu) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

/// Zigzag over the wrapped u64 delta: reversible for any pair of u64
/// values, small for small signed differences.
std::uint64_t zigzag(std::uint64_t delta) {
  const auto d = static_cast<std::int64_t>(delta);
  return static_cast<std::uint64_t>((d << 1) ^ (d >> 63));
}

std::uint64_t unzigzag(std::uint64_t v) {
  return (v >> 1) ^ (~(v & 1) + 1);
}

/// Bounded byte reader with exact error attribution. `base` is the
/// absolute file offset of the view's first byte; `block` the 1-based
/// block being decoded (0 = header).
struct Cursor {
  std::string_view body;
  std::size_t pos = 0;
  std::size_t base = 0;
  std::size_t block = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw BinaryParseError(block, base + pos, what);
  }
  [[nodiscard]] bool done() const { return pos >= body.size(); }
  std::uint8_t u8() {
    if (pos >= body.size()) fail("truncated");
    return static_cast<std::uint8_t>(body[pos++]);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint64_t b = u8();
      v |= (b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    fail("bad varint");
  }
  std::uint32_t u32le() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::string_view take(std::size_t n) {
    if (body.size() - pos < n) fail("truncated");
    const std::string_view s = body.substr(pos, n);
    pos += n;
    return s;
  }
};

// ------------------------------------------------------------ column codecs

/// Delta + run-length: a stream of (zigzag delta, run count) pairs. A
/// constant column — or one advancing by a constant stride — costs one
/// pair per block.
std::string encode_numeric(const std::vector<std::uint64_t>& v) {
  std::string out;
  std::uint64_t prev = 0;
  std::size_t i = 0;
  while (i < v.size()) {
    const std::uint64_t d = v[i] - prev;
    std::size_t run = 1;
    while (i + run < v.size() && v[i + run] - v[i + run - 1] == d) ++run;
    put_varint(out, zigzag(d));
    put_varint(out, run);
    prev = v[i + run - 1];
    i += run;
  }
  return out;
}

void decode_numeric(Cursor c, std::uint64_t nrows,
                    std::vector<std::uint64_t>& out) {
  out.clear();
  out.reserve(nrows);
  std::uint64_t prev = 0;
  while (out.size() < nrows) {
    const std::uint64_t d = unzigzag(c.varint());
    const std::uint64_t run = c.varint();
    if (run == 0 || run > nrows - out.size()) c.fail("bad run length");
    for (std::uint64_t k = 0; k < run; ++k) {
      prev += d;
      out.push_back(prev);
    }
  }
  if (!c.done()) c.fail("trailing bytes in column");
}

/// Dictionary: varint entry count, entries (varint len + bytes), then the
/// per-row indices as a delta-RLE stream.
std::string encode_dict(const std::vector<std::string_view>& v) {
  std::string out;
  std::map<std::string_view, std::uint64_t> index;
  std::vector<std::string_view> entries;
  std::vector<std::uint64_t> idx;
  idx.reserve(v.size());
  for (const std::string_view s : v) {
    const auto [it, inserted] = index.try_emplace(s, entries.size());
    if (inserted) entries.push_back(s);
    idx.push_back(it->second);
  }
  put_varint(out, entries.size());
  for (const std::string_view e : entries) {
    put_varint(out, e.size());
    out.append(e);
  }
  out += encode_numeric(idx);
  return out;
}

void decode_dict(Cursor c, std::uint64_t nrows,
                 std::vector<std::string>& out) {
  out.clear();
  const std::uint64_t n_entries = c.varint();
  if (n_entries > c.body.size()) c.fail("bad dictionary size");
  std::vector<std::string_view> entries;
  entries.reserve(n_entries);
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    const std::uint64_t len = c.varint();
    if (len > c.body.size() - c.pos) c.fail("bad dictionary entry");
    entries.push_back(c.take(len));
  }
  std::vector<std::uint64_t> idx;
  decode_numeric(c, nrows, idx);  // consumes the remainder exactly
  out.reserve(nrows);
  for (const std::uint64_t i : idx) {
    if (i >= entries.size()) c.fail("dictionary index out of range");
    out.emplace_back(entries[i]);
  }
}

// ------------------------------------------------------------- file framing

std::string header(BinKind kind, std::size_t ncols, std::string_view aux) {
  std::string out;
  out.append(kAptMagic);
  out.push_back(static_cast<char>(kAptVersion));
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(kFlagCrc));
  out.push_back(static_cast<char>(ncols));
  put_varint(out, aux.size());
  out.append(aux);
  return out;
}

/// One encoded column of a block: encoding byte + payload.
struct EncodedColumn {
  std::uint8_t encoding = kEncDeltaRle;
  std::string payload;
};

void emit_block(std::string& out, std::size_t nrows,
                const std::vector<EncodedColumn>& cols) {
  const std::size_t start = out.size();
  out.push_back('B');
  put_varint(out, nrows);
  for (const EncodedColumn& c : cols) {
    out.push_back(static_cast<char>(c.encoding));
    put_varint(out, c.payload.size());
    out.append(c.payload);
  }
  put_u32le(out, crc32(out.data() + start, out.size() - start));
}

/// Encode `rows` in kRowsPerBlock slices. `fill(row, dst)` writes the
/// row's `ncols` u64 column values.
template <class Rec, class Fill>
std::string encode_rows(BinKind kind, std::string_view aux,
                        const std::vector<Rec>& rows, std::size_t ncols,
                        Fill&& fill) {
  std::string out = header(kind, ncols, aux);
  std::vector<std::vector<std::uint64_t>> cols(ncols);
  std::vector<std::uint64_t> tmp(ncols);
  std::vector<EncodedColumn> encoded(ncols);
  for (std::size_t base = 0; base < rows.size(); base += kRowsPerBlock) {
    const std::size_t n = std::min(kRowsPerBlock, rows.size() - base);
    for (auto& c : cols) {
      c.clear();
      c.reserve(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      fill(rows[base + i], tmp.data());
      for (std::size_t k = 0; k < ncols; ++k) cols[k].push_back(tmp[k]);
    }
    for (std::size_t k = 0; k < ncols; ++k)
      encoded[k] = {kEncDeltaRle, encode_numeric(cols[k])};
    emit_block(out, n, encoded);
  }
  return out;
}

/// One structurally-parsed (and CRC-verified) block handed to a decoder.
struct RawColumn {
  std::uint8_t encoding = 0;
  std::string_view payload;
  std::size_t abs_offset = 0;  ///< file offset of the payload
};

/// Parse header + iterate blocks. For each block: verify the CRC, then
/// call on_block(block_index, nrows, cols). Errors — structural, CRC, or
/// thrown by on_block — carry (block, offset) attribution.
template <class OnBlock>
void decode_file(std::string_view body, BinKind expect, std::size_t ncols,
                 std::string_view& aux_out, OnBlock&& on_block) {
  Cursor c{body};
  if (body.size() < 8 || body.substr(0, 4) != kAptMagic)
    c.fail("bad .apt magic");
  c.pos = 4;
  const std::uint8_t version = c.u8();
  if (version != kAptVersion && version != kAptVersionCompressed)
    c.fail("unsupported .apt version");
  if (static_cast<BinKind>(c.u8()) != expect) c.fail("wrong record kind");
  const std::uint8_t flags = c.u8();
  if (c.u8() != ncols) c.fail("unexpected column count");
  const std::uint64_t aux_len = c.varint();
  if (aux_len > body.size() - c.pos) c.fail("bad aux length");
  aux_out = c.take(aux_len);

  std::vector<RawColumn> cols(ncols);
  std::string scratch;  // decompressed column sections; reused per block
  std::size_t block = 0;
  while (!c.done()) {
    c.block = ++block;
    const std::size_t block_start = c.pos;
    if (c.u8() != 'B') {
      c.pos = block_start;
      c.fail("bad block marker");
    }
    const std::uint64_t nrows = c.varint();
    if (nrows > kMaxRowsSanity) c.fail("implausible row count");
    std::uint8_t bflag = kBlockStored;
    if (version == kAptVersionCompressed) bflag = c.u8();
    std::uint64_t raw_len = 0;
    std::size_t comp_off = 0;
    std::string_view comp;
    if (bflag == kBlockLz) {
      raw_len = c.varint();
      const std::uint64_t comp_len = c.varint();
      if (raw_len > kMaxRawBlockSanity) c.fail("implausible block size");
      if (comp_len > body.size() - c.pos) c.fail("truncated compressed block");
      comp_off = c.pos;
      comp = c.take(comp_len);
    } else if (bflag == kBlockStored) {
      for (std::size_t k = 0; k < ncols; ++k) {
        const std::uint8_t enc = c.u8();
        const std::uint64_t len = c.varint();
        if (len > body.size() - c.pos) c.fail("truncated column payload");
        const std::size_t off = c.pos;
        cols[k] = {enc, c.take(len), off};
      }
    } else {
      c.fail("unknown block flag");
    }
    if ((flags & kFlagCrc) != 0) {
      const std::size_t crc_pos = c.pos;
      const std::uint32_t stored = c.u32le();
      const std::uint32_t fresh =
          crc32(body.data() + block_start, crc_pos - block_start);
      if (stored != fresh)
        throw BinaryParseError(block, block_start, "block CRC mismatch");
    }
    if (bflag == kBlockLz) {
      // CRC already vouched for the stored bytes; a decompression failure
      // here means the frame itself was encoded wrong.
      try {
        scratch = lz_decompress(comp, raw_len);
      } catch (const std::exception& e) {
        throw BinaryParseError(block, comp_off,
                               std::string("bad compressed block: ") +
                                   e.what());
      }
      // Column offsets inside a compressed block cannot map to file bytes;
      // attribute them to the block start.
      Cursor sc{scratch, 0, block_start, block};
      for (std::size_t k = 0; k < ncols; ++k) {
        const std::uint8_t enc = sc.u8();
        const std::uint64_t len = sc.varint();
        if (len > scratch.size() - sc.pos)
          sc.fail("truncated column payload");
        cols[k] = {enc, sc.take(len), block_start};
      }
      if (!sc.done()) sc.fail("trailing bytes in compressed block");
    }
    on_block(block, nrows, cols);
  }
}

/// Numeric-only kinds: decode every column, transpose, build records.
/// Rows of each verified block land in `out` before the next block is
/// read — the tolerant-load prefix guarantee.
template <class Rec, class Build>
void decode_numeric_kind(std::string_view body, BinKind kind,
                         std::size_t ncols, std::vector<Rec>& out,
                         std::string_view& aux_out, Build&& build) {
  std::vector<std::vector<std::uint64_t>> vals(ncols);
  decode_file(body, kind, ncols, aux_out,
              [&](std::size_t block, std::uint64_t nrows,
                  const std::vector<RawColumn>& cols) {
                for (std::size_t k = 0; k < ncols; ++k) {
                  Cursor cc{cols[k].payload, 0, cols[k].abs_offset, block};
                  if (cols[k].encoding != kEncDeltaRle)
                    cc.fail("unexpected column encoding");
                  decode_numeric(cc, nrows, vals[k]);
                }
                out.reserve(out.size() + nrows);
                std::vector<std::uint64_t> row(ncols);
                for (std::uint64_t i = 0; i < nrows; ++i) {
                  for (std::size_t k = 0; k < ncols; ++k) row[k] = vals[k][i];
                  out.push_back(build(row.data()));
                }
              });
}

template <class T>
std::uint64_t as_u64(T v) {
  return static_cast<std::uint64_t>(v);
}
/// Sign-extending narrow for columns holding ints (stored as wrapped u64).
int as_int(std::uint64_t v) {
  return static_cast<int>(static_cast<std::int64_t>(v));
}

}  // namespace

// ------------------------------------------------------------------- public

bool is_binary_trace(std::string_view body) {
  return body.size() >= kAptMagic.size() &&
         body.substr(0, kAptMagic.size()) == kAptMagic;
}

std::uint32_t crc32_bytes(std::string_view data) {
  return crc32(data.data(), data.size());
}

bool is_compressed_trace(std::string_view body) {
  return is_binary_trace(body) && body.size() > kAptMagic.size() &&
         static_cast<std::uint8_t>(body[kAptMagic.size()]) ==
             kAptVersionCompressed;
}

// ---- LZ codec --------------------------------------------------------------
// Greedy LZ77 over a 64 KiB window with an 8K-entry position hash, emitted
// as an LZ4-style token stream: per sequence one token byte (high nibble =
// literal length, low nibble = match length - 4, 15 meaning "255-run
// extension bytes follow"), the literals, then a 2-byte little-endian
// back-offset. The final sequence may be literals only. Decompression
// needs the exact uncompressed size, which the block frame records.

namespace {

constexpr std::size_t kLzMinMatch = 4;
constexpr std::size_t kLzHashBits = 13;

std::uint32_t lz_read32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void lz_put_ext(std::string& out, std::size_t rest) {
  while (rest >= 255) {
    out.push_back(static_cast<char>(0xff));
    rest -= 255;
  }
  out.push_back(static_cast<char>(rest));
}

void lz_emit(std::string& out, std::string_view in, std::size_t lit_start,
             std::size_t lit_len, std::size_t match_len, std::size_t offset) {
  const std::size_t lit_nib = std::min<std::size_t>(lit_len, 15);
  const std::size_t match_nib =
      match_len == 0 ? 0 : std::min<std::size_t>(match_len - kLzMinMatch, 15);
  out.push_back(static_cast<char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) lz_put_ext(out, lit_len - 15);
  out.append(in.substr(lit_start, lit_len));
  if (match_len > 0) {
    out.push_back(static_cast<char>(offset & 0xff));
    out.push_back(static_cast<char>((offset >> 8) & 0xff));
    if (match_nib == 15) lz_put_ext(out, match_len - kLzMinMatch - 15);
  }
}

}  // namespace

std::string lz_compress(std::string_view in) {
  std::string out;
  out.reserve(in.size() / 2 + 16);
  const std::size_t n = in.size();
  std::vector<std::uint32_t> table(std::size_t{1} << kLzHashBits, 0);
  const auto hash = [](std::uint32_t v) {
    return (v * 2654435761u) >> (32 - kLzHashBits);
  };
  std::size_t anchor = 0;
  std::size_t i = 0;
  while (n >= kLzMinMatch && i + kLzMinMatch <= n) {
    const std::uint32_t h = hash(lz_read32(in.data() + i));
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(i + 1);
    if (cand != 0 && i - (cand - 1) <= 0xffff &&
        lz_read32(in.data() + (cand - 1)) == lz_read32(in.data() + i)) {
      const std::size_t m = cand - 1;
      std::size_t len = kLzMinMatch;
      while (i + len < n && in[m + len] == in[i + len]) ++len;
      lz_emit(out, in, anchor, i - anchor, len, i - m);
      i += len;
      anchor = i;
    } else {
      ++i;
    }
  }
  if (anchor < n) lz_emit(out, in, anchor, n - anchor, 0, 0);
  return out;
}

std::string lz_decompress(std::string_view comp, std::size_t raw_len) {
  std::string out;
  out.reserve(raw_len);
  std::size_t pos = 0;
  const auto need = [&](std::size_t k) {
    if (comp.size() - pos < k) throw std::runtime_error("truncated LZ stream");
  };
  const auto read_len = [&](std::size_t nibble) {
    std::size_t len = nibble;
    if (nibble == 15) {
      std::uint8_t b = 0;
      do {
        need(1);
        b = static_cast<std::uint8_t>(comp[pos++]);
        len += b;
      } while (b == 0xff);
    }
    return len;
  };
  while (pos < comp.size()) {
    const std::uint8_t token = static_cast<std::uint8_t>(comp[pos++]);
    const std::size_t lit_len = read_len(token >> 4);
    need(lit_len);
    if (raw_len - out.size() < lit_len)
      throw std::runtime_error("LZ output overrun");
    out.append(comp.substr(pos, lit_len));
    pos += lit_len;
    if (pos >= comp.size()) break;  // final literal-only sequence
    need(2);
    const std::size_t offset =
        static_cast<std::size_t>(static_cast<std::uint8_t>(comp[pos])) |
        (static_cast<std::size_t>(static_cast<std::uint8_t>(comp[pos + 1]))
         << 8);
    pos += 2;
    if (offset == 0 || offset > out.size())
      throw std::runtime_error("bad LZ match offset");
    const std::size_t match_len = read_len(token & 0x0f) + kLzMinMatch;
    if (raw_len - out.size() < match_len)
      throw std::runtime_error("LZ output overrun");
    const std::size_t src = out.size() - offset;
    for (std::size_t k = 0; k < match_len; ++k)
      out.push_back(out[src + k]);  // may overlap the bytes just written
  }
  if (out.size() != raw_len) throw std::runtime_error("LZ size mismatch");
  return out;
}

// ---- container re-framing --------------------------------------------------

std::string compress_trace(std::string_view body) {
  if (is_compressed_trace(body)) return std::string(body);
  Cursor c{body};
  if (body.size() < 8 || body.substr(0, 4) != kAptMagic)
    c.fail("bad .apt magic");
  c.pos = 4;
  if (c.u8() != kAptVersion) c.fail("unsupported .apt version");
  const std::uint8_t kind = c.u8();
  const std::uint8_t flags = c.u8();
  const std::uint8_t ncols = c.u8();
  const std::uint64_t aux_len = c.varint();
  if (aux_len > body.size() - c.pos) c.fail("bad aux length");
  const std::string_view aux = c.take(aux_len);

  std::string out;
  out.reserve(body.size());
  out.append(kAptMagic);
  out.push_back(static_cast<char>(kAptVersionCompressed));
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(flags | kFlagCompressed));
  out.push_back(static_cast<char>(ncols));
  put_varint(out, aux.size());
  out.append(aux);

  std::size_t block = 0;
  while (!c.done()) {
    c.block = ++block;
    const std::size_t block_start = c.pos;
    if (c.u8() != 'B') {
      c.pos = block_start;
      c.fail("bad block marker");
    }
    const std::uint64_t nrows = c.varint();
    const std::size_t cols_start = c.pos;
    for (std::size_t k = 0; k < ncols; ++k) {
      c.u8();  // encoding
      const std::uint64_t len = c.varint();
      if (len > body.size() - c.pos) c.fail("truncated column payload");
      c.take(len);
    }
    const std::string_view raw =
        body.substr(cols_start, c.pos - cols_start);
    if ((flags & kFlagCrc) != 0) {
      const std::size_t crc_pos = c.pos;
      const std::uint32_t stored = c.u32le();
      if (stored != crc32(body.data() + block_start, crc_pos - block_start))
        throw BinaryParseError(block, block_start, "block CRC mismatch");
    }
    const std::string comp = lz_compress(raw);
    const std::size_t start = out.size();
    out.push_back('B');
    put_varint(out, nrows);
    if (comp.size() < raw.size()) {
      out.push_back(static_cast<char>(kBlockLz));
      put_varint(out, raw.size());
      put_varint(out, comp.size());
      out.append(comp);
    } else {  // incompressible: store verbatim rather than grow the file
      out.push_back(static_cast<char>(kBlockStored));
      out.append(raw);
    }
    if ((flags & kFlagCrc) != 0)
      put_u32le(out, crc32(out.data() + start, out.size() - start));
  }
  return out;
}

std::string decompress_trace(std::string_view body) {
  Cursor c{body};
  if (body.size() < 8 || body.substr(0, 4) != kAptMagic)
    c.fail("bad .apt magic");
  if (!is_compressed_trace(body)) return std::string(body);
  c.pos = 5;  // past magic + version
  const std::uint8_t kind = c.u8();
  const std::uint8_t flags = c.u8();
  const std::uint8_t ncols = c.u8();
  const std::uint64_t aux_len = c.varint();
  if (aux_len > body.size() - c.pos) c.fail("bad aux length");
  const std::string_view aux = c.take(aux_len);

  std::string out;
  out.reserve(body.size() * 2);
  out.append(kAptMagic);
  out.push_back(static_cast<char>(kAptVersion));
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(flags & ~kFlagCompressed));
  out.push_back(static_cast<char>(ncols));
  put_varint(out, aux.size());
  out.append(aux);

  std::size_t block = 0;
  while (!c.done()) {
    c.block = ++block;
    const std::size_t block_start = c.pos;
    if (c.u8() != 'B') {
      c.pos = block_start;
      c.fail("bad block marker");
    }
    const std::uint64_t nrows = c.varint();
    const std::uint8_t bflag = c.u8();
    std::string raw;
    if (bflag == kBlockLz) {
      const std::uint64_t raw_len = c.varint();
      const std::uint64_t comp_len = c.varint();
      if (raw_len > kMaxRawBlockSanity) c.fail("implausible block size");
      if (comp_len > body.size() - c.pos) c.fail("truncated compressed block");
      const std::size_t comp_off = c.pos;
      const std::string_view comp = c.take(comp_len);
      try {
        raw = lz_decompress(comp, raw_len);
      } catch (const std::exception& e) {
        throw BinaryParseError(block, comp_off,
                               std::string("bad compressed block: ") +
                                   e.what());
      }
    } else if (bflag == kBlockStored) {
      const std::size_t cols_start = c.pos;
      for (std::size_t k = 0; k < ncols; ++k) {
        c.u8();  // encoding
        const std::uint64_t len = c.varint();
        if (len > body.size() - c.pos) c.fail("truncated column payload");
        c.take(len);
      }
      raw = std::string(body.substr(cols_start, c.pos - cols_start));
    } else {
      c.fail("unknown block flag");
    }
    if ((flags & kFlagCrc) != 0) {
      const std::size_t crc_pos = c.pos;
      const std::uint32_t stored = c.u32le();
      if (stored != crc32(body.data() + block_start, crc_pos - block_start))
        throw BinaryParseError(block, block_start, "block CRC mismatch");
    }
    const std::size_t start = out.size();
    out.push_back('B');
    put_varint(out, nrows);
    out.append(raw);
    if ((flags & kFlagCrc) != 0)
      put_u32le(out, crc32(out.data() + start, out.size() - start));
  }
  return out;
}

std::string binary_file_name(std::string_view csv_name) {
  const std::size_t dot = csv_name.rfind('.');
  std::string out(dot == std::string_view::npos ? csv_name
                                                : csv_name.substr(0, dot));
  out += ".apt";
  return out;
}

BinaryParseError::BinaryParseError(std::size_t block, std::size_t offset,
                                   const std::string& what)
    : TraceParseError(block, "binary trace parse error at block " +
                                 std::to_string(block) + " offset " +
                                 std::to_string(offset) + ": " + what),
      offset_(offset) {}

// ---- send ------------------------------------------------------------------

std::string encode_logical(const std::vector<LogicalSendRecord>& events) {
  return encode_rows(BinKind::send, {}, events, 5,
                     [](const LogicalSendRecord& r, std::uint64_t* d) {
                       d[0] = as_u64(r.src_node);
                       d[1] = as_u64(r.src_pe);
                       d[2] = as_u64(r.dst_node);
                       d[3] = as_u64(r.dst_pe);
                       d[4] = as_u64(r.msg_bytes);
                     });
}

void decode_logical_into(std::string_view body,
                         std::vector<LogicalSendRecord>& out) {
  std::string_view aux;
  decode_numeric_kind(body, BinKind::send, 5, out, aux,
                      [](const std::uint64_t* d) {
                        LogicalSendRecord r;
                        r.src_node = as_int(d[0]);
                        r.src_pe = as_int(d[1]);
                        r.dst_node = as_int(d[2]);
                        r.dst_pe = as_int(d[3]);
                        r.msg_bytes = static_cast<std::uint32_t>(d[4]);
                        return r;
                      });
}

// ---- papi ------------------------------------------------------------------

std::string encode_papi(const std::vector<PapiSegmentRecord>& rows,
                        const Config& cfg) {
  std::string aux;
  const int n_events = cfg.num_papi_events();
  aux.push_back(static_cast<char>(n_events));
  for (int i = 0; i < n_events; ++i)
    aux.push_back(
        static_cast<char>(cfg.papi_events[static_cast<std::size_t>(i)]));
  return encode_rows(BinKind::papi, aux, rows, 12,
                     [](const PapiSegmentRecord& r, std::uint64_t* d) {
                       d[0] = as_u64(r.src_node);
                       d[1] = as_u64(r.src_pe);
                       d[2] = as_u64(r.dst_node);
                       d[3] = as_u64(r.dst_pe);
                       d[4] = as_u64(r.pkt_bytes);
                       d[5] = as_u64(r.mailbox_id);
                       d[6] = r.num_sends;
                       d[7] = r.counters[0];
                       d[8] = r.counters[1];
                       d[9] = r.counters[2];
                       d[10] = r.counters[3];
                       d[11] = r.is_proc ? 1 : 0;
                     });
}

void decode_papi_into(std::string_view body,
                      std::vector<PapiSegmentRecord>& out,
                      std::vector<papi::Event>* events_out) {
  std::string_view aux;
  decode_numeric_kind(body, BinKind::papi, 12, out, aux,
                      [](const std::uint64_t* d) {
                        PapiSegmentRecord r;
                        r.src_node = as_int(d[0]);
                        r.src_pe = as_int(d[1]);
                        r.dst_node = as_int(d[2]);
                        r.dst_pe = as_int(d[3]);
                        r.pkt_bytes = static_cast<std::uint32_t>(d[4]);
                        r.mailbox_id = as_int(d[5]);
                        r.num_sends = d[6];
                        r.counters[0] = d[7];
                        r.counters[1] = d[8];
                        r.counters[2] = d[9];
                        r.counters[3] = d[10];
                        r.is_proc = d[11] != 0;
                        return r;
                      });
  if (events_out != nullptr) {
    events_out->clear();
    if (!aux.empty()) {
      const auto n = static_cast<std::size_t>(
          static_cast<unsigned char>(aux[0]));
      for (std::size_t i = 0; i + 1 < aux.size() && i < n; ++i) {
        const int e = static_cast<unsigned char>(aux[1 + i]);
        if (e < static_cast<int>(papi::Event::kCount))
          events_out->push_back(static_cast<papi::Event>(e));
      }
    }
  }
}

// ---- steps -----------------------------------------------------------------

std::string encode_steps(const std::vector<SuperstepRecord>& recs) {
  return encode_rows(BinKind::steps, {}, recs, 11,
                     [](const SuperstepRecord& r, std::uint64_t* d) {
                       d[0] = as_u64(r.pe);
                       d[1] = r.epoch;
                       d[2] = r.step;
                       d[3] = r.t_main;
                       d[4] = r.t_proc;
                       d[5] = r.t_comm;
                       d[6] = r.msgs_sent;
                       d[7] = r.bytes_sent;
                       d[8] = r.msgs_handled;
                       d[9] = r.barrier_arrive;
                       d[10] = r.barrier_release;
                     });
}

void decode_steps_into(std::string_view body,
                       std::vector<SuperstepRecord>& out) {
  std::string_view aux;
  decode_numeric_kind(body, BinKind::steps, 11, out, aux,
                      [](const std::uint64_t* d) {
                        SuperstepRecord r;
                        r.pe = as_int(d[0]);
                        r.epoch = static_cast<std::uint32_t>(d[1]);
                        r.step = static_cast<std::uint32_t>(d[2]);
                        r.t_main = d[3];
                        r.t_proc = d[4];
                        r.t_comm = d[5];
                        r.msgs_sent = d[6];
                        r.bytes_sent = d[7];
                        r.msgs_handled = d[8];
                        r.barrier_arrive = d[9];
                        r.barrier_release = d[10];
                        return r;
                      });
}

// ---- physical --------------------------------------------------------------

std::string encode_physical(const std::vector<PhysicalRecord>& events) {
  return encode_rows(BinKind::physical, {}, events, 4,
                     [](const PhysicalRecord& r, std::uint64_t* d) {
                       d[0] = as_u64(static_cast<int>(r.type));
                       d[1] = r.buffer_bytes;
                       d[2] = as_u64(r.src_pe);
                       d[3] = as_u64(r.dst_pe);
                     });
}

void decode_physical_into(std::string_view body,
                          std::vector<PhysicalRecord>& out) {
  std::string_view aux;
  const std::size_t before = out.size();
  decode_numeric_kind(body, BinKind::physical, 4, out, aux,
                      [](const std::uint64_t* d) {
                        PhysicalRecord r;
                        r.type = static_cast<convey::SendType>(as_int(d[0]));
                        r.buffer_bytes = d[1];
                        r.src_pe = as_int(d[2]);
                        r.dst_pe = as_int(d[3]);
                        return r;
                      });
  for (std::size_t i = before; i < out.size(); ++i) {
    const int t = static_cast<int>(out[i].type);
    if (t < 0 || t > static_cast<int>(convey::SendType::nonblock_progress)) {
      out.resize(before);
      throw BinaryParseError(1, 0, "unknown send type value");
    }
  }
}

// ---- check -----------------------------------------------------------------

std::string encode_check(const std::vector<check::Violation>& v,
                         std::uint64_t dropped) {
  std::string aux;
  put_varint(aux, dropped);
  std::string out = header(BinKind::check, 8, aux);
  std::vector<std::uint64_t> num[6];
  std::vector<std::string_view> callsites;
  std::vector<std::string_view> details;
  for (std::size_t base = 0; base < v.size(); base += kRowsPerBlock) {
    const std::size_t n = std::min(kRowsPerBlock, v.size() - base);
    for (auto& c : num) c.clear();
    callsites.clear();
    details.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const check::Violation& x = v[base + i];
      num[0].push_back(as_u64(static_cast<int>(x.kind)));
      num[1].push_back(as_u64(x.pe));
      num[2].push_back(as_u64(x.other_pe));
      num[3].push_back(x.superstep);
      num[4].push_back(x.offset);
      num[5].push_back(x.bytes);
      callsites.push_back(x.callsite);
      details.push_back(x.detail);
    }
    std::vector<EncodedColumn> cols;
    cols.reserve(8);
    for (const auto& c : num) cols.push_back({kEncDeltaRle, encode_numeric(c)});
    cols.push_back({kEncDict, encode_dict(callsites)});
    cols.push_back({kEncDict, encode_dict(details)});
    emit_block(out, n, cols);
  }
  return out;
}

void decode_check_into(std::string_view body,
                       std::vector<check::Violation>& out,
                       std::uint64_t& dropped) {
  std::string_view aux;
  std::vector<std::uint64_t> num[6];
  std::vector<std::string> callsites;
  std::vector<std::string> details;
  decode_file(
      body, BinKind::check, 8, aux,
      [&](std::size_t block, std::uint64_t nrows,
          const std::vector<RawColumn>& cols) {
        for (std::size_t k = 0; k < 6; ++k) {
          Cursor cc{cols[k].payload, 0, cols[k].abs_offset, block};
          if (cols[k].encoding != kEncDeltaRle)
            cc.fail("unexpected column encoding");
          decode_numeric(cc, nrows, num[k]);
        }
        for (std::size_t k = 6; k < 8; ++k) {
          Cursor cc{cols[k].payload, 0, cols[k].abs_offset, block};
          if (cols[k].encoding != kEncDict)
            cc.fail("unexpected column encoding");
          decode_dict(cc, nrows, k == 6 ? callsites : details);
        }
        out.reserve(out.size() + nrows);
        for (std::uint64_t i = 0; i < nrows; ++i) {
          check::Violation x;
          const int kind_val = as_int(num[0][i]);
          if (kind_val < 0 ||
              kind_val > static_cast<int>(check::Violation::Kind::ApiMisuse)) {
            Cursor cc{cols[0].payload, 0, cols[0].abs_offset, block};
            cc.fail("unknown violation kind value");
          }
          x.kind = static_cast<check::Violation::Kind>(kind_val);
          x.pe = as_int(num[1][i]);
          x.other_pe = as_int(num[2][i]);
          x.superstep = static_cast<std::uint32_t>(num[3][i]);
          x.offset = num[4][i];
          x.bytes = num[5][i];
          x.callsite = std::move(callsites[i]);
          x.detail = std::move(details[i]);
          out.push_back(std::move(x));
        }
      });
  Cursor ac{aux};
  dropped = ac.varint();
}

// ---- metric samples --------------------------------------------------------

std::string encode_metric_samples(const metrics::SampleRing& r) {
  std::string aux;
  put_varint(aux, static_cast<std::uint64_t>(r.num_pes()));
  put_varint(aux, r.num_series());
  std::string out = header(BinKind::metrics, 2, aux);
  const std::size_t per_row =
      static_cast<std::size_t>(r.num_pes()) * r.num_series();
  std::vector<std::uint64_t> times;
  std::vector<std::uint64_t> values;
  for (std::size_t base = 0; base < r.size(); base += kRowsPerBlock) {
    const std::size_t n = std::min(kRowsPerBlock, r.size() - base);
    times.clear();
    values.clear();
    values.reserve(n * per_row);
    for (std::size_t i = 0; i < n; ++i) {
      const metrics::SampleRing::View v = r.at(base + i);
      times.push_back(v.t_cycles);
      for (std::size_t k = 0; k < per_row; ++k)
        values.push_back(static_cast<std::uint64_t>(v.row[k]));
    }
    emit_block(out, n,
               {{kEncDeltaRle, encode_numeric(times)},
                {kEncDeltaRle, encode_numeric(values)}});
  }
  return out;
}

void decode_metric_samples_into(std::string_view body, MetricSamples& out) {
  std::string_view aux;
  std::vector<std::uint64_t> times;
  std::vector<std::uint64_t> values;
  bool have_aux = false;
  std::uint64_t per_row = 0;
  decode_file(
      body, BinKind::metrics, 2, aux,
      [&](std::size_t block, std::uint64_t nrows,
          const std::vector<RawColumn>& cols) {
        if (!have_aux) {
          Cursor ac{aux};
          out.num_pes = as_int(ac.varint());
          out.num_series = ac.varint();
          per_row = static_cast<std::uint64_t>(out.num_pes) * out.num_series;
          have_aux = true;
        }
        if (nrows * per_row > kMaxValuesSanity) {
          Cursor cc{cols[1].payload, 0, cols[1].abs_offset, block};
          cc.fail("implausible sample volume");
        }
        Cursor ct{cols[0].payload, 0, cols[0].abs_offset, block};
        decode_numeric(ct, nrows, times);
        Cursor cv{cols[1].payload, 0, cols[1].abs_offset, block};
        decode_numeric(cv, nrows * per_row, values);
        out.t_cycles.insert(out.t_cycles.end(), times.begin(), times.end());
        out.values.reserve(out.values.size() + values.size());
        for (const std::uint64_t v : values)
          out.values.push_back(static_cast<std::int64_t>(v));
      });
  if (!have_aux) {  // zero-block file: still surface the shape
    Cursor ac{aux};
    out.num_pes = as_int(ac.varint());
    out.num_series = ac.varint();
  }
}

}  // namespace ap::prof::io
