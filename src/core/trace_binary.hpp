// The .apt binary columnar trace container (docs/TRACE_FORMAT.md).
//
// CSV traces will not survive millions of supersteps: a PEi_send.csv row
// spends ~10 bytes on four near-constant coordinates. The .apt container
// stores each record kind column-wise — run-length-encoded zigzag-varint
// deltas for numeric columns, a dictionary for string columns — in blocks
// of a few thousand rows, each guarded by a CRC32. A constant column costs
// ~2 bytes per *block*, so real traces shrink 5-10x (bench_trace measures
// it) and decode faster than the CSV scanner.
//
// Layout (all integers little-endian; varint = LEB128):
//   header:  "APT1" | u8 version | u8 kind | u8 flags | u8 ncols
//            | varint aux_len | aux bytes (kind-specific, see .cpp)
//   blocks:  'B' | varint nrows
//            | ncols x { u8 encoding | varint payload_len | payload }
//            | u32 crc32 (flags bit0; over 'B'..end of last payload)
//   ... blocks repeat until EOF.
//
// Decoding is block-tolerant: every fully-verified block's rows are
// appended to the output before the next block is touched, so a truncated
// or bit-flipped file yields its clean prefix plus a BinaryParseError
// attributing the damage to an exact (block, byte offset) — the binary
// analogue of the CSV parsers' line numbers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "check/checker.hpp"
#include "core/config.hpp"
#include "core/records.hpp"
#include "core/trace_io.hpp"

namespace ap::metrics {
class SampleRing;
}

namespace ap::prof::io {

/// Record kinds an .apt file can hold (the header's `kind` byte).
enum class BinKind : std::uint8_t {
  send = 1,
  papi = 2,
  steps = 3,
  physical = 4,
  check = 5,
  metrics = 6,
};

inline constexpr std::string_view kAptMagic = "APT1";
inline constexpr std::uint8_t kAptVersion = 1;
/// Version byte of the compressed container (docs/TRACE_FORMAT.md,
/// "Compression"): same header and column codecs, but every block carries
/// a flag byte selecting stored vs LZ-compressed column sections. Readers
/// that predate compression reject such files with the existing
/// "unsupported .apt version" error.
inline constexpr std::uint8_t kAptVersionCompressed = 2;

/// True when `body` starts with the .apt magic — how the loader sniffs
/// binary vs CSV content independent of the file name.
[[nodiscard]] bool is_binary_trace(std::string_view body);

/// True when `body` is a version-2 (compressed-container) .apt file.
[[nodiscard]] bool is_compressed_trace(std::string_view body);

/// Re-frame a version-1 .apt body into the version-2 compressed container:
/// each block's column sections are LZ-compressed (kept stored when
/// compression would not shrink them). Lossless: decompress_trace() gives
/// back the input byte-identically, and all decoders read both versions.
/// Passing an already-compressed body returns it unchanged.
[[nodiscard]] std::string compress_trace(std::string_view body);

/// Inverse of compress_trace(): version-2 -> version-1, byte-identical to
/// the original uncompressed encoding. Version-1 input is returned
/// unchanged. Throws BinaryParseError on damage.
[[nodiscard]] std::string decompress_trace(std::string_view body);

/// CRC-32 (IEEE — the .apt block checksum) over a byte buffer. Exposed
/// for the push-ingest framing and tests.
[[nodiscard]] std::uint32_t crc32_bytes(std::string_view data);

/// The dependency-free LZ byte codec behind the version-2 container
/// (greedy hash-chain LZ77, 64 KiB window, LZ4-style token stream).
/// Exposed for tests and benches.
[[nodiscard]] std::string lz_compress(std::string_view raw);
/// Throws std::runtime_error when `comp` is corrupt or does not expand to
/// exactly `raw_len` bytes.
[[nodiscard]] std::string lz_decompress(std::string_view comp,
                                        std::size_t raw_len);

/// The .apt sibling of a CSV/text trace file name:
/// "PE0_send.csv" -> "PE0_send.apt", "physical.txt" -> "physical.apt".
[[nodiscard]] std::string binary_file_name(std::string_view csv_name);

/// Binary decode failure. line_no() carries the 1-based block index (0 for
/// the file header); offset() the absolute byte offset of the damage.
class BinaryParseError : public TraceParseError {
 public:
  BinaryParseError(std::size_t block, std::size_t offset,
                   const std::string& what);
  [[nodiscard]] std::size_t block() const { return line_no(); }
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

// ---- encoders --------------------------------------------------------------
// Each returns a complete .apt file body (header + blocks + CRCs).

[[nodiscard]] std::string encode_logical(
    const std::vector<LogicalSendRecord>& events);
/// The configured PAPI event ids ride in the header aux bytes, so a
/// decoder (and `actorprof export --csv`) can rebuild the CSV header line.
[[nodiscard]] std::string encode_papi(
    const std::vector<PapiSegmentRecord>& rows, const Config& cfg);
[[nodiscard]] std::string encode_steps(
    const std::vector<SuperstepRecord>& recs);
[[nodiscard]] std::string encode_physical(
    const std::vector<PhysicalRecord>& events);
/// `dropped` (the "# dropped=<n>" CSV marker) rides in the header aux.
[[nodiscard]] std::string encode_check(
    const std::vector<check::Violation>& v, std::uint64_t dropped);
/// The live-metrics sample ring: one row per snapshot, a timestamp column
/// plus one flattened PE-major values column (num_pes * num_series each).
[[nodiscard]] std::string encode_metric_samples(const metrics::SampleRing& r);

// ---- decoders --------------------------------------------------------------
// Incremental: rows append to `out` block by block, so on a throw the
// caller keeps the verified prefix (tolerant-load semantics).

void decode_logical_into(std::string_view body,
                         std::vector<LogicalSendRecord>& out);
/// `events_out`, when non-null, receives the PAPI event ids recorded in
/// the header aux (papi::Event values, in configuration order).
void decode_papi_into(std::string_view body,
                      std::vector<PapiSegmentRecord>& out,
                      std::vector<papi::Event>* events_out = nullptr);
void decode_steps_into(std::string_view body,
                       std::vector<SuperstepRecord>& out);
void decode_physical_into(std::string_view body,
                          std::vector<PhysicalRecord>& out);
void decode_check_into(std::string_view body,
                       std::vector<check::Violation>& out,
                       std::uint64_t& dropped);

/// Decoded metric-sample rows (the SampleRing's retained snapshots).
struct MetricSamples {
  int num_pes = 0;
  std::uint64_t num_series = 0;
  std::vector<std::uint64_t> t_cycles;  ///< one per snapshot
  /// snapshot-major, then PE-major: rows[i * num_pes * num_series + ...].
  std::vector<std::int64_t> values;
};
void decode_metric_samples_into(std::string_view body, MetricSamples& out);

}  // namespace ap::prof::io
