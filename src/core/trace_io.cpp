#include "core/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "core/profiler.hpp"

namespace ap::prof::io {

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& line,
                             const char* what) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line_no) + " (" + what +
                           "): " + line);
}

/// Split a CSV line into trimmed fields without allocating: the scanner
/// writes views over `line` into the caller-owned `out`, which parse
/// loops reuse across lines. (The viz CLI reloads million-row
/// PEi_send.csv files; a stringstream per line used to dominate.)
void split_csv(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = line.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? line.size()
                                                            : comma;
    std::string_view f = line.substr(pos, end - pos);
    while (!f.empty() && (f.front() == ' ' || f.front() == '\t'))
      f.remove_prefix(1);
    while (!f.empty() &&
           (f.back() == ' ' || f.back() == '\t' || f.back() == '\r'))
      f.remove_suffix(1);
    out.push_back(f);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
}

template <class T>
T to_num(std::string_view s, std::size_t line_no, const std::string& line) {
  T value{};
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || p != s.data() + s.size())
    parse_fail(line_no, line, "bad number");
  return value;
}

bool skippable(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;  // blank
}

convey::SendType parse_send_type(std::string_view s, std::size_t line_no,
                                 const std::string& line) {
  if (s == "local_send") return convey::SendType::local_send;
  if (s == "nonblock_send") return convey::SendType::nonblock_send;
  if (s == "nonblock_progress") return convey::SendType::nonblock_progress;
  parse_fail(line_no, line, "unknown send type");
}

}  // namespace

std::string logical_file_name(int pe) {
  return "PE" + std::to_string(pe) + "_send.csv";
}

std::string papi_file_name(int pe) {
  return "PE" + std::to_string(pe) + "_PAPI.csv";
}

// ------------------------------------------------------------------ writers

void write_logical(std::ostream& os,
                   const std::vector<LogicalSendRecord>& events) {
  os << "# source node, source PE, destination node, destination PE, "
        "message size\n";
  for (const LogicalSendRecord& r : events) {
    os << r.src_node << ',' << r.src_pe << ',' << r.dst_node << ','
       << r.dst_pe << ',' << r.msg_bytes << '\n';
  }
}

void write_papi(std::ostream& os, const std::vector<PapiSegmentRecord>& rows,
                const Config& cfg) {
  os << "# source node, source PE, dst node, dst PE, pkt size, MAILBOXID, "
        "NUM_SENDS";
  for (int i = 0; i < cfg.num_papi_events(); ++i)
    os << ", " << papi::name(cfg.papi_events[static_cast<std::size_t>(i)]);
  os << ", REGION\n";
  for (const PapiSegmentRecord& r : rows) {
    os << r.src_node << ',' << r.src_pe << ',' << r.dst_node << ','
       << r.dst_pe << ',' << r.pkt_bytes << ',' << r.mailbox_id << ','
       << r.num_sends;
    for (int i = 0; i < cfg.num_papi_events(); ++i)
      os << ',' << r.counters[static_cast<std::size_t>(i)];
    os << ',' << (r.is_proc ? "PROC" : "MAIN") << '\n';
  }
}

void write_overall(std::ostream& os, const std::vector<OverallRecord>& recs) {
  for (const OverallRecord& r : recs) {
    os << "Absolute [PE" << r.pe
       << "] TCOMM_PROFILING (T_MAIN, T_COMM, T_PROC) = (" << r.t_main << ", "
       << r.t_comm() << ", " << r.t_proc << ")\n";
    os << "Relative [PE" << r.pe
       << "] TCOMM_PROFILING (T_MAIN/T_TOTAL, T_COMM/T_TOTAL, "
          "T_PROC/T_TOTAL) = ("
       << r.rel_main() << ", " << r.rel_comm() << ", " << r.rel_proc()
       << ")\n";
  }
}

void write_self_overhead(std::ostream& os, const metrics::OverheadMeter& m) {
  if (!m.bound()) return;
  os << "# Profiler self-overhead, wall rdtsc cycles per category (";
  for (int c = 0; c < metrics::kOverheadCategories; ++c)
    os << (c ? ", " : "")
       << metrics::to_string(static_cast<metrics::OverheadCategory>(c));
  os << ")\n";
  auto row = [&](const std::string& who, int slot) {
    os << "SelfOverhead [" << who << "] cycles = (";
    for (int c = 0; c < metrics::kOverheadCategories; ++c)
      os << (c ? ", " : "")
         << m.cycles(slot, static_cast<metrics::OverheadCategory>(c));
    os << ") total " << m.total(slot) << "\n";
  };
  for (int pe = 0; pe < m.num_pes(); ++pe) row("PE" + std::to_string(pe), pe);
  row("fleet", metrics::OverheadMeter::kGlobalSlot);
  os << "SelfOverhead total = " << m.grand_total() << " cycles\n";
}

void write_physical(std::ostream& os,
                    const std::vector<PhysicalRecord>& events) {
  os << "# send type, buffer size, source PE, destination PE\n";
  for (const PhysicalRecord& r : events) {
    os << convey::to_string(r.type) << ',' << r.buffer_bytes << ',' << r.src_pe
       << ',' << r.dst_pe << '\n';
  }
}

void write_all(const Profiler& prof, const Config& cfg) {
  namespace fs = std::filesystem;
  fs::create_directories(cfg.trace_dir);
  const int n = prof.num_pes();

  if (cfg.logical && cfg.keep_logical_events) {
    for (int pe = 0; pe < n; ++pe) {
      std::ofstream os(cfg.trace_dir / logical_file_name(pe));
      write_logical(os, prof.logical_events(pe));
    }
  }
  if (cfg.papi) {
    for (int pe = 0; pe < n; ++pe) {
      std::ofstream os(cfg.trace_dir / papi_file_name(pe));
      write_papi(os, prof.papi_segments(pe), cfg);
    }
  }
  if (cfg.overall) {
    std::ofstream os(cfg.trace_dir / kOverallFile);
    write_overall(os, prof.overall());
    // Self-overhead is rdtsc-based (nondeterministic), so it only appears
    // when metrics were explicitly requested — determinism tests compare
    // overall.txt byte-for-byte under Config::all_enabled().
    if (cfg.metrics) write_self_overhead(os, prof.self_overhead());
  }
  if (cfg.physical && cfg.keep_physical_events) {
    std::ofstream os(cfg.trace_dir / kPhysicalFile);
    std::vector<PhysicalRecord> merged;
    for (int pe = 0; pe < n; ++pe) {
      const auto& evs = prof.physical_events(pe);
      merged.insert(merged.end(), evs.begin(), evs.end());
    }
    write_physical(os, merged);
  }
  if (cfg.metrics) prof.write_metrics();
}

// ------------------------------------------------------------------ parsers

std::vector<LogicalSendRecord> parse_logical(std::istream& is) {
  std::vector<LogicalSendRecord> out;
  out.reserve(1024);
  std::vector<std::string_view> f;
  f.reserve(8);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    split_csv(line, f);
    if (f.size() != 5) parse_fail(line_no, line, "expected 5 fields");
    LogicalSendRecord r;
    r.src_node = to_num<int>(f[0], line_no, line);
    r.src_pe = to_num<int>(f[1], line_no, line);
    r.dst_node = to_num<int>(f[2], line_no, line);
    r.dst_pe = to_num<int>(f[3], line_no, line);
    r.msg_bytes = to_num<std::uint32_t>(f[4], line_no, line);
    out.push_back(r);
  }
  return out;
}

std::vector<PapiSegmentRecord> parse_papi(std::istream& is) {
  std::vector<PapiSegmentRecord> out;
  out.reserve(1024);
  std::vector<std::string_view> f;
  f.reserve(16);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    split_csv(line, f);
    if (f.size() < 8) parse_fail(line_no, line, "expected >= 8 fields");
    PapiSegmentRecord r;
    r.src_node = to_num<int>(f[0], line_no, line);
    r.src_pe = to_num<int>(f[1], line_no, line);
    r.dst_node = to_num<int>(f[2], line_no, line);
    r.dst_pe = to_num<int>(f[3], line_no, line);
    r.pkt_bytes = to_num<std::uint32_t>(f[4], line_no, line);
    r.mailbox_id = to_num<int>(f[5], line_no, line);
    r.num_sends = to_num<std::uint64_t>(f[6], line_no, line);
    std::size_t k = 7;
    int slot = 0;
    for (; k < f.size(); ++k) {
      if (f[k] == "MAIN" || f[k] == "PROC") {
        r.is_proc = (f[k] == "PROC");
        break;
      }
      if (slot < papi::kMaxEventsPerSet)
        r.counters[static_cast<std::size_t>(slot++)] =
            to_num<std::uint64_t>(f[k], line_no, line);
    }
    out.push_back(r);
  }
  return out;
}

std::vector<OverallRecord> parse_overall(std::istream& is) {
  std::vector<OverallRecord> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    if (line.rfind("Absolute", 0) != 0) continue;  // Relative lines derived
    // Absolute [PE3] TCOMM_PROFILING (T_MAIN, T_COMM, T_PROC) = (a, b, c)
    const auto pe_open = line.find("[PE");
    const auto pe_close = line.find(']', pe_open);
    const auto eq = line.find('=', pe_close);
    const auto paren = line.find('(', eq);
    const auto paren_close = line.find(')', paren);
    if (pe_open == std::string::npos || pe_close == std::string::npos ||
        eq == std::string::npos || paren == std::string::npos ||
        paren_close == std::string::npos)
      parse_fail(line_no, line, "malformed Absolute line");
    OverallRecord r;
    r.pe = to_num<int>(
        std::string_view(line).substr(pe_open + 3, pe_close - pe_open - 3),
        line_no, line);
    std::vector<std::string_view> nums;
    split_csv(std::string_view(line).substr(paren + 1,
                                            paren_close - paren - 1),
              nums);
    if (nums.size() != 3) parse_fail(line_no, line, "expected 3 numbers");
    r.t_main = to_num<std::uint64_t>(nums[0], line_no, line);
    const auto t_comm = to_num<std::uint64_t>(nums[1], line_no, line);
    r.t_proc = to_num<std::uint64_t>(nums[2], line_no, line);
    r.t_total = r.t_main + t_comm + r.t_proc;
    out.push_back(r);
  }
  return out;
}

std::vector<PhysicalRecord> parse_physical(std::istream& is) {
  std::vector<PhysicalRecord> out;
  out.reserve(1024);
  std::vector<std::string_view> f;
  f.reserve(8);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    split_csv(line, f);
    if (f.size() != 4) parse_fail(line_no, line, "expected 4 fields");
    PhysicalRecord r;
    r.type = parse_send_type(f[0], line_no, line);
    r.buffer_bytes = to_num<std::uint64_t>(f[1], line_no, line);
    r.src_pe = to_num<int>(f[2], line_no, line);
    r.dst_pe = to_num<int>(f[3], line_no, line);
    out.push_back(r);
  }
  return out;
}

// ---------------------------------------------------------------- TraceDir

CommMatrix TraceDir::logical_matrix() const {
  CommMatrix m(num_pes);
  for (const auto& per_pe : logical)
    for (const LogicalSendRecord& r : per_pe) m.add(r.src_pe, r.dst_pe);
  return m;
}

CommMatrix TraceDir::physical_matrix(bool include_progress) const {
  CommMatrix m(num_pes);
  for (const PhysicalRecord& r : physical) {
    if (!include_progress && r.type == convey::SendType::nonblock_progress)
      continue;
    m.add(r.src_pe, r.dst_pe);
  }
  return m;
}

TraceDir load_trace_dir(const std::filesystem::path& dir, int num_pes) {
  TraceDir t;
  t.num_pes = num_pes;
  t.logical.resize(static_cast<std::size_t>(num_pes));
  t.papi.resize(static_cast<std::size_t>(num_pes));
  for (int pe = 0; pe < num_pes; ++pe) {
    if (std::ifstream is{dir / logical_file_name(pe)}; is)
      t.logical[static_cast<std::size_t>(pe)] = parse_logical(is);
    if (std::ifstream is{dir / papi_file_name(pe)}; is)
      t.papi[static_cast<std::size_t>(pe)] = parse_papi(is);
  }
  if (std::ifstream is{dir / kOverallFile}; is) t.overall = parse_overall(is);
  if (std::ifstream is{dir / kPhysicalFile}; is)
    t.physical = parse_physical(is);
  return t;
}

}  // namespace ap::prof::io
