#include "core/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <type_traits>

#include "core/profiler.hpp"
#include "core/trace_binary.hpp"
#include "faultinject/faultinject.hpp"
#include "serve/publisher.hpp"

namespace ap::prof::io {

TraceParseError::TraceParseError(std::size_t line_no, const std::string& what)
    : std::runtime_error(what), line_no_(line_no) {}

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& line,
                             const char* what) {
  throw TraceParseError(line_no, "trace parse error at line " +
                                     std::to_string(line_no) + " (" + what +
                                     "): " + line);
}

/// Split a CSV line into trimmed fields without allocating: the scanner
/// writes views over `line` into the caller-owned `out`, which parse
/// loops reuse across lines. (The viz CLI reloads million-row
/// PEi_send.csv files; a stringstream per line used to dominate.)
void split_csv(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = line.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? line.size()
                                                            : comma;
    std::string_view f = line.substr(pos, end - pos);
    while (!f.empty() && (f.front() == ' ' || f.front() == '\t'))
      f.remove_prefix(1);
    while (!f.empty() &&
           (f.back() == ' ' || f.back() == '\t' || f.back() == '\r'))
      f.remove_suffix(1);
    out.push_back(f);
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
}

template <class T>
T to_num(std::string_view s, std::size_t line_no, const std::string& line) {
  T value{};
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || p != s.data() + s.size())
    parse_fail(line_no, line, "bad number");
  return value;
}

bool skippable(const std::string& line) {
  for (char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;  // blank
}

convey::SendType parse_send_type(std::string_view s, std::size_t line_no,
                                 const std::string& line) {
  if (s == "local_send") return convey::SendType::local_send;
  if (s == "nonblock_send") return convey::SendType::nonblock_send;
  if (s == "nonblock_progress") return convey::SendType::nonblock_progress;
  parse_fail(line_no, line, "unknown send type");
}

}  // namespace

std::string logical_file_name(int pe) {
  return "PE" + std::to_string(pe) + "_send.csv";
}

std::string papi_file_name(int pe) {
  return "PE" + std::to_string(pe) + "_PAPI.csv";
}

std::string steps_file_name(int pe) {
  return "PE" + std::to_string(pe) + "_steps.csv";
}

// ------------------------------------------------------------------ writers
// The Sink forms are the implementations; the ostream forms build into a
// Sink and flush its buffer in one write (see core/sink.hpp).

namespace {

void flush_sink(std::ostream& os, const Sink& s) {
  os.write(s.str().data(), static_cast<std::streamsize>(s.size()));
}

}  // namespace

void write_logical(Sink& out, const std::vector<LogicalSendRecord>& events) {
  out.reserve(events.size() * 12 + 64);
  out.append("# source node, source PE, destination node, destination PE, "
             "message size\n");
  for (const LogicalSendRecord& r : events) {
    out.dec(r.src_node);
    out.put(',');
    out.dec(r.src_pe);
    out.put(',');
    out.dec(r.dst_node);
    out.put(',');
    out.dec(r.dst_pe);
    out.put(',');
    out.dec(r.msg_bytes);
    out.put('\n');
  }
}

void write_logical(std::ostream& os,
                   const std::vector<LogicalSendRecord>& events) {
  Sink s;
  write_logical(s, events);
  flush_sink(os, s);
}

void write_papi(Sink& out, const std::vector<PapiSegmentRecord>& rows,
                const Config& cfg) {
  out.reserve(rows.size() * 32 + 128);
  out.append("# source node, source PE, dst node, dst PE, pkt size, "
             "MAILBOXID, NUM_SENDS");
  for (int i = 0; i < cfg.num_papi_events(); ++i) {
    out.append(", ");
    out.append(papi::name(cfg.papi_events[static_cast<std::size_t>(i)]));
  }
  out.append(", REGION\n");
  for (const PapiSegmentRecord& r : rows) {
    out.dec(r.src_node);
    out.put(',');
    out.dec(r.src_pe);
    out.put(',');
    out.dec(r.dst_node);
    out.put(',');
    out.dec(r.dst_pe);
    out.put(',');
    out.dec(r.pkt_bytes);
    out.put(',');
    out.dec(r.mailbox_id);
    out.put(',');
    out.dec(r.num_sends);
    for (int i = 0; i < cfg.num_papi_events(); ++i) {
      out.put(',');
      out.dec(r.counters[static_cast<std::size_t>(i)]);
    }
    out.append(r.is_proc ? ",PROC\n" : ",MAIN\n");
  }
}

void write_papi(std::ostream& os, const std::vector<PapiSegmentRecord>& rows,
                const Config& cfg) {
  Sink s;
  write_papi(s, rows, cfg);
  flush_sink(os, s);
}

void write_overall(Sink& out, const std::vector<OverallRecord>& recs) {
  for (const OverallRecord& r : recs) {
    out.append("Absolute [PE");
    out.dec(r.pe);
    out.append("] TCOMM_PROFILING (T_MAIN, T_COMM, T_PROC) = (");
    out.dec(r.t_main);
    out.append(", ");
    out.dec(r.t_comm());
    out.append(", ");
    out.dec(r.t_proc);
    out.append(")\n");
    out.append("Relative [PE");
    out.dec(r.pe);
    out.append("] TCOMM_PROFILING (T_MAIN/T_TOTAL, T_COMM/T_TOTAL, "
               "T_PROC/T_TOTAL) = (");
    out.flt(r.rel_main());
    out.append(", ");
    out.flt(r.rel_comm());
    out.append(", ");
    out.flt(r.rel_proc());
    out.append(")\n");
  }
}

void write_overall(std::ostream& os, const std::vector<OverallRecord>& recs) {
  Sink s;
  write_overall(s, recs);
  flush_sink(os, s);
}

void write_self_overhead(Sink& out, const metrics::OverheadMeter& m) {
  if (!m.bound()) return;
  out.append("# Profiler self-overhead, wall rdtsc cycles per category (");
  for (int c = 0; c < metrics::kOverheadCategories; ++c) {
    if (c) out.append(", ");
    out.append(metrics::to_string(static_cast<metrics::OverheadCategory>(c)));
  }
  out.append(")\n");
  const auto row = [&](std::string_view who, int slot) {
    out.append("SelfOverhead [");
    out.append(who);
    out.append("] cycles = (");
    for (int c = 0; c < metrics::kOverheadCategories; ++c) {
      if (c) out.append(", ");
      out.dec(m.cycles(slot, static_cast<metrics::OverheadCategory>(c)));
    }
    out.append(") total ");
    out.dec(m.total(slot));
    out.put('\n');
  };
  for (int pe = 0; pe < m.num_pes(); ++pe) row("PE" + std::to_string(pe), pe);
  row("fleet", metrics::OverheadMeter::kGlobalSlot);
  out.append("SelfOverhead total = ");
  out.dec(m.grand_total());
  out.append(" cycles\n");
}

void write_self_overhead(std::ostream& os, const metrics::OverheadMeter& m) {
  Sink s;
  write_self_overhead(s, m);
  flush_sink(os, s);
}

void write_physical(Sink& out, const std::vector<PhysicalRecord>& events) {
  out.reserve(events.size() * 24 + 64);
  out.append("# send type, buffer size, source PE, destination PE\n");
  for (const PhysicalRecord& r : events) {
    out.append(convey::to_string(r.type));
    out.put(',');
    out.dec(r.buffer_bytes);
    out.put(',');
    out.dec(r.src_pe);
    out.put(',');
    out.dec(r.dst_pe);
    out.put('\n');
  }
}

void write_physical(std::ostream& os,
                    const std::vector<PhysicalRecord>& events) {
  Sink s;
  write_physical(s, events);
  flush_sink(os, s);
}

void write_check(Sink& out, const std::vector<check::Violation>& v,
                 std::uint64_t dropped) {
  out.append("# kind, pe, other_pe, superstep, offset, bytes, callsite, "
             "detail\n");
  // record() sanitized callsite/detail to comma-free text, so each row
  // stays exactly 8 fields.
  if (dropped != 0) {
    out.append("# dropped=");
    out.dec(dropped);
    out.put('\n');
  }
  for (const check::Violation& x : v) {
    out.append(check::to_string(x.kind));
    out.put(',');
    out.dec(x.pe);
    out.put(',');
    out.dec(x.other_pe);
    out.put(',');
    out.dec(x.superstep);
    out.put(',');
    out.dec(x.offset);
    out.put(',');
    out.dec(x.bytes);
    out.put(',');
    out.append(x.callsite);
    out.put(',');
    out.append(x.detail);
    out.put('\n');
  }
}

void write_check(std::ostream& os, const std::vector<check::Violation>& v,
                 std::uint64_t dropped) {
  Sink s;
  write_check(s, v, dropped);
  flush_sink(os, s);
}

void write_steps(Sink& out, const std::vector<SuperstepRecord>& recs) {
  out.reserve(recs.size() * 40 + 96);
  out.append("# pe, epoch, step, t_main, t_proc, t_comm, msgs_sent, "
             "bytes_sent, msgs_handled, barrier_arrive, barrier_release\n");
  for (const SuperstepRecord& r : recs) {
    out.dec(r.pe);
    out.put(',');
    out.dec(r.epoch);
    out.put(',');
    out.dec(r.step);
    out.put(',');
    out.dec(r.t_main);
    out.put(',');
    out.dec(r.t_proc);
    out.put(',');
    out.dec(r.t_comm);
    out.put(',');
    out.dec(r.msgs_sent);
    out.put(',');
    out.dec(r.bytes_sent);
    out.put(',');
    out.dec(r.msgs_handled);
    out.put(',');
    out.dec(r.barrier_arrive);
    out.put(',');
    out.dec(r.barrier_release);
    out.put('\n');
  }
}

void write_steps(std::ostream& os, const std::vector<SuperstepRecord>& recs) {
  Sink s;
  write_steps(s, recs);
  flush_sink(os, s);
}

std::uint64_t fnv1a64(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// Write `body` to dir/name via a ".tmp" sibling + atomic rename. Returns
/// false (after cleaning up the tmp) when any step fails — the aggregated
/// error in write_all reports it.
bool atomic_write_file(const std::filesystem::path& dir,
                       const std::string& name, const std::string& body) {
  namespace fs = std::filesystem;
  const fs::path tmp = dir / (name + ".tmp");
  const fs::path dst = dir / name;
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::error_code ignore;
      fs::remove(tmp, ignore);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, dst, ec);
  if (ec) {
    std::error_code ignore;
    fs::remove(tmp, ignore);
    return false;
  }
  return true;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  static const char* digits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = digits[v & 0xf];
    v >>= 4;
  }
  buf[16] = '\0';
  return buf;
}

}  // namespace

void write_all(const Profiler& prof, const Config& cfg) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(cfg.trace_dir, ec);
  if (ec)
    throw std::runtime_error("write_all: cannot create trace dir " +
                             cfg.trace_dir.string() + ": " + ec.message());
  const int n = prof.num_pes();

  std::vector<ManifestEntry> written;
  std::vector<std::string> failed;
  serve::Publisher* pub = prof.publisher();
  const auto emit = [&](const std::string& name, std::string body,
                        std::uint64_t records) {
    // Compression is a container transform applied here, at persist time:
    // the encoders stay version-1 and the manifest describes the on-disk
    // (possibly compressed) bytes.
    if (cfg.trace_compress && is_binary_trace(body))
      body = compress_trace(body);
    if (atomic_write_file(cfg.trace_dir, name, body))
      written.push_back(ManifestEntry{name, records, body.size(),
                                      fnv1a64(body.data(), body.size())});
    else
      failed.push_back(name);
    // Live streaming: the final on-disk body replaces whatever incremental
    // frames were pushed mid-run, so the pushed run converges to the same
    // bytes a file-based serve would load.
    if (pub != nullptr) pub->publish_file(name, std::move(body), false);
  };
  // Binary (.apt) and CSV traces hold identical rows; only the container
  // differs. The loader sniffs whichever is present, and `actorprof export
  // --csv` converts back. overall.txt and MANIFEST.txt stay text in both.
  const bool binary = cfg.trace_format == TraceFormat::binary;

  if (cfg.logical && cfg.keep_logical_events) {
    for (int pe = 0; pe < n; ++pe) {
      const auto& events = prof.logical_events(pe);
      if (binary) {
        emit(binary_file_name(logical_file_name(pe)), encode_logical(events),
             events.size());
      } else {
        Sink out;
        write_logical(out, events);
        emit(logical_file_name(pe), std::move(out).str(), events.size());
      }
    }
  }
  if (cfg.papi) {
    for (int pe = 0; pe < n; ++pe) {
      const auto rows = prof.papi_segments(pe);
      if (binary) {
        emit(binary_file_name(papi_file_name(pe)), encode_papi(rows, cfg),
             rows.size());
      } else {
        Sink out;
        write_papi(out, rows, cfg);
        emit(papi_file_name(pe), std::move(out).str(), rows.size());
      }
    }
  }
  if (cfg.supersteps) {
    // Killed PEs keep their rows: each row closed at a collective the PE
    // actually reached, so the prefix is exactly the post-mortem evidence.
    for (int pe = 0; pe < n; ++pe) {
      const auto rows = prof.supersteps(pe);
      if (binary) {
        emit(binary_file_name(steps_file_name(pe)), encode_steps(rows),
             rows.size());
      } else {
        Sink out;
        write_steps(out, rows);
        emit(steps_file_name(pe), std::move(out).str(), rows.size());
      }
    }
  }
  if (cfg.overall) {
    Sink out;
    // A PE killed mid-epoch never reached epoch_end: its cycle buckets are
    // inconsistent (t_total excludes the aborted epoch), so its overall
    // lines are suppressed — the MANIFEST marks the PE dead instead.
    std::vector<OverallRecord> recs;
    for (const OverallRecord& r : prof.overall())
      if (!fi::was_killed(r.pe)) recs.push_back(r);
    write_overall(out, recs);
    // Self-overhead is rdtsc-based (nondeterministic), so it only appears
    // when metrics were explicitly requested — determinism tests compare
    // overall.txt byte-for-byte under Config::all_enabled().
    if (cfg.metrics) write_self_overhead(out, prof.self_overhead());
    emit(kOverallFile, std::move(out).str(), recs.size());
  }
  if (cfg.check) {
    // Always emitted under the checker, even with zero rows: an empty
    // check file is the recorded proof the run was violation-free.
    if (binary) {
      emit(binary_file_name(kCheckFile),
           encode_check(prof.bsp_violations(), prof.bsp_violations_dropped()),
           prof.bsp_violations().size());
    } else {
      Sink out;
      write_check(out, prof.bsp_violations(), prof.bsp_violations_dropped());
      emit(kCheckFile, std::move(out).str(), prof.bsp_violations().size());
    }
  }
  if (cfg.physical && cfg.keep_physical_events) {
    std::vector<PhysicalRecord> merged;
    for (int pe = 0; pe < n; ++pe) {
      const auto& evs = prof.physical_events(pe);
      merged.insert(merged.end(), evs.begin(), evs.end());
    }
    if (binary) {
      emit(binary_file_name(kPhysicalFile), encode_physical(merged),
           merged.size());
    } else {
      Sink out;
      write_physical(out, merged);
      emit(kPhysicalFile, std::move(out).str(), merged.size());
    }
  }
  if (binary && cfg.metrics && prof.metric_samples().bound()) {
    // The sample ring has no CSV counterpart (metrics.json is its text
    // view); the binary format can afford to persist every snapshot.
    emit(kMetricSamplesFile, encode_metric_samples(prof.metric_samples()),
         prof.metric_samples().size());
  }

  {
    // MANIFEST last: a loader that sees it knows every listed file was
    // completely written (and can verify it with the checksum).
    Sink out;
    out.append(
        "# ActorProf trace manifest: file <name> records=<n> bytes=<n> "
        "fnv1a=<hex64>\n");
    out.append("num_pes ");
    out.dec(n);
    out.put('\n');
    for (const ManifestEntry& m : written) {
      out.append("file ");
      out.append(m.file);
      out.append(" records=");
      out.dec(m.records);
      out.append(" bytes=");
      out.dec(m.bytes);
      out.append(" fnv1a=");
      out.append(hex64(m.fnv1a));
      out.put('\n');
    }
    for (int pe : fi::killed_pes()) {
      out.append("dead_pe ");
      out.dec(pe);
      out.put('\n');
    }
    std::string manifest = std::move(out).str();
    if (!atomic_write_file(cfg.trace_dir, kManifestFile, manifest))
      failed.push_back(kManifestFile);
    if (pub != nullptr)
      pub->publish_file(kManifestFile, std::move(manifest), false);
  }

  if (!failed.empty()) {
    std::string msg = "write_all: failed to write " +
                      std::to_string(failed.size()) + " file(s) in " +
                      cfg.trace_dir.string() + ":";
    for (const std::string& f : failed) msg += " " + f;
    throw std::runtime_error(msg);
  }
  if (cfg.metrics) prof.write_metrics();
  if (pub != nullptr) {
    if (cfg.metrics) {
      std::ostringstream os;
      prof.write_metrics_prometheus(os);
      pub->publish_file("metrics.prom", os.str(), false);
    }
    // Bounded wait so "/analyze?run= right after write_traces()" sees the
    // final bytes; a dead collector costs at most the flush timeout.
    pub->flush();
  }
}

// ------------------------------------------------------------------ parsers

void parse_logical_into(std::istream& is,
                        std::vector<LogicalSendRecord>& out) {
  out.reserve(out.size() + 1024);
  std::vector<std::string_view> f;
  f.reserve(8);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    split_csv(line, f);
    if (f.size() != 5) parse_fail(line_no, line, "expected 5 fields");
    LogicalSendRecord r;
    r.src_node = to_num<int>(f[0], line_no, line);
    r.src_pe = to_num<int>(f[1], line_no, line);
    r.dst_node = to_num<int>(f[2], line_no, line);
    r.dst_pe = to_num<int>(f[3], line_no, line);
    r.msg_bytes = to_num<std::uint32_t>(f[4], line_no, line);
    out.push_back(r);
  }
}

void parse_papi_into(std::istream& is, std::vector<PapiSegmentRecord>& out) {
  out.reserve(out.size() + 1024);
  std::vector<std::string_view> f;
  f.reserve(16);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    split_csv(line, f);
    if (f.size() < 8) parse_fail(line_no, line, "expected >= 8 fields");
    PapiSegmentRecord r;
    r.src_node = to_num<int>(f[0], line_no, line);
    r.src_pe = to_num<int>(f[1], line_no, line);
    r.dst_node = to_num<int>(f[2], line_no, line);
    r.dst_pe = to_num<int>(f[3], line_no, line);
    r.pkt_bytes = to_num<std::uint32_t>(f[4], line_no, line);
    r.mailbox_id = to_num<int>(f[5], line_no, line);
    r.num_sends = to_num<std::uint64_t>(f[6], line_no, line);
    std::size_t k = 7;
    int slot = 0;
    for (; k < f.size(); ++k) {
      if (f[k] == "MAIN" || f[k] == "PROC") {
        r.is_proc = (f[k] == "PROC");
        break;
      }
      if (slot < papi::kMaxEventsPerSet)
        r.counters[static_cast<std::size_t>(slot++)] =
            to_num<std::uint64_t>(f[k], line_no, line);
    }
    out.push_back(r);
  }
}

void parse_overall_into(std::istream& is, std::vector<OverallRecord>& out) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    if (line.rfind("Absolute", 0) != 0) continue;  // Relative lines derived
    // Absolute [PE3] TCOMM_PROFILING (T_MAIN, T_COMM, T_PROC) = (a, b, c)
    const auto pe_open = line.find("[PE");
    const auto pe_close = line.find(']', pe_open);
    const auto eq = line.find('=', pe_close);
    const auto paren = line.find('(', eq);
    const auto paren_close = line.find(')', paren);
    if (pe_open == std::string::npos || pe_close == std::string::npos ||
        eq == std::string::npos || paren == std::string::npos ||
        paren_close == std::string::npos)
      parse_fail(line_no, line, "malformed Absolute line");
    OverallRecord r;
    r.pe = to_num<int>(
        std::string_view(line).substr(pe_open + 3, pe_close - pe_open - 3),
        line_no, line);
    std::vector<std::string_view> nums;
    split_csv(std::string_view(line).substr(paren + 1,
                                            paren_close - paren - 1),
              nums);
    if (nums.size() != 3) parse_fail(line_no, line, "expected 3 numbers");
    r.t_main = to_num<std::uint64_t>(nums[0], line_no, line);
    const auto t_comm = to_num<std::uint64_t>(nums[1], line_no, line);
    r.t_proc = to_num<std::uint64_t>(nums[2], line_no, line);
    r.t_total = r.t_main + t_comm + r.t_proc;
    out.push_back(r);
  }
}

void parse_physical_into(std::istream& is, std::vector<PhysicalRecord>& out) {
  out.reserve(out.size() + 1024);
  std::vector<std::string_view> f;
  f.reserve(8);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    split_csv(line, f);
    if (f.size() != 4) parse_fail(line_no, line, "expected 4 fields");
    PhysicalRecord r;
    r.type = parse_send_type(f[0], line_no, line);
    r.buffer_bytes = to_num<std::uint64_t>(f[1], line_no, line);
    r.src_pe = to_num<int>(f[2], line_no, line);
    r.dst_pe = to_num<int>(f[3], line_no, line);
    out.push_back(r);
  }
}

std::vector<LogicalSendRecord> parse_logical(std::istream& is) {
  std::vector<LogicalSendRecord> out;
  parse_logical_into(is, out);
  return out;
}

std::vector<PapiSegmentRecord> parse_papi(std::istream& is) {
  std::vector<PapiSegmentRecord> out;
  parse_papi_into(is, out);
  return out;
}

std::vector<OverallRecord> parse_overall(std::istream& is) {
  std::vector<OverallRecord> out;
  parse_overall_into(is, out);
  return out;
}

void parse_steps_into(std::istream& is, std::vector<SuperstepRecord>& out) {
  out.reserve(out.size() + 256);
  std::vector<std::string_view> f;
  f.reserve(12);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    split_csv(line, f);
    if (f.size() != 11) parse_fail(line_no, line, "expected 11 fields");
    SuperstepRecord r;
    r.pe = to_num<int>(f[0], line_no, line);
    r.epoch = to_num<std::uint32_t>(f[1], line_no, line);
    r.step = to_num<std::uint32_t>(f[2], line_no, line);
    r.t_main = to_num<std::uint64_t>(f[3], line_no, line);
    r.t_proc = to_num<std::uint64_t>(f[4], line_no, line);
    r.t_comm = to_num<std::uint64_t>(f[5], line_no, line);
    r.msgs_sent = to_num<std::uint64_t>(f[6], line_no, line);
    r.bytes_sent = to_num<std::uint64_t>(f[7], line_no, line);
    r.msgs_handled = to_num<std::uint64_t>(f[8], line_no, line);
    r.barrier_arrive = to_num<std::uint64_t>(f[9], line_no, line);
    r.barrier_release = to_num<std::uint64_t>(f[10], line_no, line);
    out.push_back(r);
  }
}

void parse_check_into(std::istream& is, std::vector<check::Violation>& out,
                      std::uint64_t& dropped) {
  std::vector<std::string_view> f;
  f.reserve(8);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.rfind("# dropped=", 0) == 0) {
      dropped = to_num<std::uint64_t>(
          std::string_view(line).substr(10), line_no, line);
      continue;
    }
    if (skippable(line)) continue;
    split_csv(line, f);
    if (f.size() != 8) parse_fail(line_no, line, "expected 8 fields");
    check::Violation v;
    if (!check::kind_from_string(f[0], v.kind))
      parse_fail(line_no, line, "unknown violation kind");
    v.pe = to_num<int>(f[1], line_no, line);
    v.other_pe = to_num<int>(f[2], line_no, line);
    v.superstep = to_num<std::uint32_t>(f[3], line_no, line);
    v.offset = to_num<std::uint64_t>(f[4], line_no, line);
    v.bytes = to_num<std::uint64_t>(f[5], line_no, line);
    v.callsite = std::string(f[6]);
    v.detail = std::string(f[7]);
    out.push_back(std::move(v));
  }
}

std::vector<PhysicalRecord> parse_physical(std::istream& is) {
  std::vector<PhysicalRecord> out;
  parse_physical_into(is, out);
  return out;
}

std::vector<SuperstepRecord> parse_steps(std::istream& is) {
  std::vector<SuperstepRecord> out;
  parse_steps_into(is, out);
  return out;
}

Manifest parse_manifest(std::istream& is) {
  Manifest m;
  std::string line;
  std::size_t line_no = 0;
  std::vector<std::string_view> f;
  while (std::getline(is, line)) {
    ++line_no;
    if (skippable(line)) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "num_pes") {
      if (!(ls >> m.num_pes)) parse_fail(line_no, line, "bad num_pes");
    } else if (key == "dead_pe") {
      int pe = 0;
      if (!(ls >> pe)) parse_fail(line_no, line, "bad dead_pe");
      m.dead_pes.push_back(pe);
    } else if (key == "file") {
      ManifestEntry e;
      std::string rec, bytes, sum;
      if (!(ls >> e.file >> rec >> bytes >> sum))
        parse_fail(line_no, line, "malformed file entry");
      const auto kv = [&](const std::string& s, const char* prefix,
                          int base) -> std::uint64_t {
        const std::string_view sv(s);
        const std::string_view pfx(prefix);
        if (sv.substr(0, pfx.size()) != pfx)
          parse_fail(line_no, line, "malformed file entry");
        std::uint64_t v = 0;
        const std::string_view num = sv.substr(pfx.size());
        const auto [p, ec] =
            std::from_chars(num.data(), num.data() + num.size(), v, base);
        if (ec != std::errc{} || p != num.data() + num.size())
          parse_fail(line_no, line, "malformed file entry");
        return v;
      };
      e.records = kv(rec, "records=", 10);
      e.bytes = kv(bytes, "bytes=", 10);
      e.fnv1a = kv(sum, "fnv1a=", 16);
      m.files.push_back(std::move(e));
    } else {
      parse_fail(line_no, line, "unknown manifest key");
    }
  }
  return m;
}

// ---------------------------------------------------------------- TraceDir

CommMatrix TraceDir::logical_matrix() const {
  CommMatrix m(num_pes);
  for (const auto& per_pe : logical)
    for (const LogicalSendRecord& r : per_pe) m.add(r.src_pe, r.dst_pe);
  return m;
}

CommMatrix TraceDir::physical_matrix(bool include_progress) const {
  CommMatrix m(num_pes);
  for (const PhysicalRecord& r : physical) {
    if (!include_progress && r.type == convey::SendType::nonblock_progress)
      continue;
    m.add(r.src_pe, r.dst_pe);
  }
  return m;
}

SparseCommMatrix TraceDir::logical_sparse() const {
  SparseCommMatrix m(num_pes);
  for (const auto& per_pe : logical)
    for (const LogicalSendRecord& r : per_pe) m.add(r.src_pe, r.dst_pe);
  return m;
}

SparseCommMatrix TraceDir::physical_sparse(bool include_progress) const {
  SparseCommMatrix m(num_pes);
  for (const PhysicalRecord& r : physical) {
    if (!include_progress && r.type == convey::SendType::nonblock_progress)
      continue;
    m.add(r.src_pe, r.dst_pe);
  }
  return m;
}

namespace {

/// Read an entire file into a string. Returns false when it cannot be
/// opened (missing / unreadable).
bool slurp(const std::filesystem::path& p, std::string& out) {
  std::ifstream is(p, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

TraceDir load_trace_dir(const std::filesystem::path& dir, int num_pes) {
  return load_trace_dir(dir, num_pes, LoadOptions{});
}

TraceDir load_trace_dir(const std::filesystem::path& dir, int num_pes,
                        const LoadOptions& opts) {
  TraceDir t;
  t.num_pes = num_pes;
  t.logical.resize(static_cast<std::size_t>(num_pes));
  t.papi.resize(static_cast<std::size_t>(num_pes));
  t.steps.resize(static_cast<std::size_t>(num_pes));

  // The MANIFEST (when present) supplies checksums and the dead-PE set.
  // Its absence is not an error — pre-manifest trace dirs stay loadable.
  Manifest manifest;
  bool have_manifest = false;
  if (std::string body; slurp(dir / kManifestFile, body)) {
    std::istringstream is(body);
    try {
      manifest = parse_manifest(is);
      have_manifest = true;
    } catch (const TraceParseError& e) {
      if (!opts.tolerate_partial) throw;
      t.issues.push_back(FileIssue{kManifestFile, e.line_no(), e.what()});
    }
  }
  if (have_manifest) t.dead_pes = manifest.dead_pes;

  const auto in_manifest = [&](const std::string& name) {
    for (const ManifestEntry& m : manifest.files)
      if (m.file == name) return true;
    return false;
  };

  // Load one record kind: resolve the .apt sibling first, then the CSV
  // name, and dispatch on *content* (the .apt magic), so a renamed file
  // still loads. Checksum-verify against the MANIFEST, then parse/decode
  // via the incremental forms so a truncated or corrupt tail still yields
  // its verified prefix. `decode_bin` may be null for text-only files
  // (overall.txt has no binary form).
  const auto load_file = [&](const std::string& name, bool required,
                             auto&& parse_into, auto&& decode_bin) {
    const std::string bin_name = binary_file_name(name);
    std::string actual = bin_name;
    std::string body;
    if (!slurp(dir / bin_name, body)) {
      actual = name;
      if (!slurp(dir / name, body)) {
        if (required || (have_manifest && (in_manifest(name) ||
                                           in_manifest(bin_name)))) {
          if (!opts.tolerate_partial)
            throw std::runtime_error(name + ": cannot open trace file in " +
                                     dir.string());
          t.issues.push_back(FileIssue{name, 0, "missing trace file"});
        }
        return;
      }
    }
    if (have_manifest && opts.tolerate_partial) {
      for (const ManifestEntry& m : manifest.files) {
        if (m.file != actual) continue;
        if (m.bytes != body.size() ||
            m.fnv1a != fnv1a64(body.data(), body.size()))
          t.issues.push_back(FileIssue{
              actual, 0,
              "checksum mismatch vs MANIFEST (file truncated or modified); "
              "keeping the parsable prefix"});
        break;
      }
    }
    try {
      if (is_binary_trace(body)) {
        if constexpr (std::is_same_v<std::decay_t<decltype(decode_bin)>,
                                     std::nullptr_t>)
          throw BinaryParseError(0, 0, "binary content in a text-only file");
        else
          decode_bin(std::string_view(body));
      } else {
        std::istringstream is(body);
        parse_into(is);
      }
    } catch (const TraceParseError& e) {
      if (!opts.tolerate_partial)
        throw TraceParseError(e.line_no(), actual + ": " + e.what());
      t.issues.push_back(FileIssue{actual, e.line_no(), e.what()});
    }
  };

  for (int pe = 0; pe < num_pes; ++pe) {
    const auto idx = static_cast<std::size_t>(pe);
    load_file(
        logical_file_name(pe), false,
        [&](std::istream& is) { parse_logical_into(is, t.logical[idx]); },
        [&](std::string_view b) { decode_logical_into(b, t.logical[idx]); });
    load_file(
        papi_file_name(pe), false,
        [&](std::istream& is) { parse_papi_into(is, t.papi[idx]); },
        [&](std::string_view b) {
          decode_papi_into(b, t.papi[idx],
                           t.papi_events.empty() ? &t.papi_events : nullptr);
        });
    load_file(
        steps_file_name(pe), false,
        [&](std::istream& is) { parse_steps_into(is, t.steps[idx]); },
        [&](std::string_view b) { decode_steps_into(b, t.steps[idx]); });
  }
  load_file(
      kOverallFile, false,
      [&](std::istream& is) { parse_overall_into(is, t.overall); }, nullptr);
  load_file(
      kPhysicalFile, false,
      [&](std::istream& is) { parse_physical_into(is, t.physical); },
      [&](std::string_view b) { decode_physical_into(b, t.physical); });
  load_file(
      kCheckFile, false,
      [&](std::istream& is) {
        t.check_recorded = true;
        parse_check_into(is, t.check, t.check_dropped);
      },
      [&](std::string_view b) {
        t.check_recorded = true;
        decode_check_into(b, t.check, t.check_dropped);
      });
  return t;
}

int detect_num_pes(const std::filesystem::path& dir) {
  std::string body;
  if (!slurp(dir / kManifestFile, body)) return 0;
  std::istringstream is(body);
  try {
    return parse_manifest(is).num_pes;
  } catch (const TraceParseError&) {
    return 0;
  }
}

}  // namespace ap::prof::io
