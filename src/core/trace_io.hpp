// Writers and parsers for ActorProf's trace files (paper §III):
//   PEi_send.csv  — logical trace, one line per application send
//   PEi_PAPI.csv  — PAPI segment rows
//   overall.txt   — Absolute/Relative TCOMM_PROFILING lines per PE
//   physical.txt  — network transfers of all PEs
// The visualization CLI consumes these files only, so it also works on
// traces produced by other builds of the tool.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/config.hpp"
#include "core/records.hpp"
#include "metrics/self_overhead.hpp"

namespace ap::prof {
class Profiler;
}

namespace ap::prof::io {

/// File-name helpers (exactly the names the paper lists).
std::string logical_file_name(int pe);   // "PE<i>_send.csv"
std::string papi_file_name(int pe);      // "PE<i>_PAPI.csv"
inline constexpr const char* kOverallFile = "overall.txt";
inline constexpr const char* kPhysicalFile = "physical.txt";

// ---- writers ---------------------------------------------------------------

void write_logical(std::ostream& os,
                   const std::vector<LogicalSendRecord>& events);
void write_papi(std::ostream& os, const std::vector<PapiSegmentRecord>& rows,
                const Config& cfg);
void write_overall(std::ostream& os, const std::vector<OverallRecord>& recs);
/// "SelfOverhead ..." lines appended to overall.txt when Config::metrics is
/// on: the measured wall-rdtsc cost of ActorProf's own instrumentation,
/// per PE and per category. parse_overall skips them (they are not
/// "Absolute" lines), so existing consumers are unaffected.
void write_self_overhead(std::ostream& os, const metrics::OverheadMeter& m);
void write_physical(std::ostream& os,
                    const std::vector<PhysicalRecord>& events);

/// Write every enabled trace of `prof` into cfg.trace_dir (created if
/// missing). Called by Profiler::write_traces().
void write_all(const Profiler& prof, const Config& cfg);

// ---- parsers ---------------------------------------------------------------
// All parsers skip blank lines and '#' comments and throw std::runtime_error
// with a line number on malformed input.

std::vector<LogicalSendRecord> parse_logical(std::istream& is);
std::vector<PapiSegmentRecord> parse_papi(std::istream& is);
std::vector<OverallRecord> parse_overall(std::istream& is);
std::vector<PhysicalRecord> parse_physical(std::istream& is);

/// Load a whole trace directory produced by write_all.
struct TraceDir {
  int num_pes = 0;
  std::vector<std::vector<LogicalSendRecord>> logical;  // per PE (may be empty)
  std::vector<std::vector<PapiSegmentRecord>> papi;     // per PE
  std::vector<OverallRecord> overall;
  std::vector<PhysicalRecord> physical;

  /// Aggregate the logical events into a src-by-dst matrix.
  [[nodiscard]] CommMatrix logical_matrix() const;
  /// Aggregate physical transfers (excluding progress signals by default,
  /// matching the paper's buffer heatmaps).
  [[nodiscard]] CommMatrix physical_matrix(bool include_progress = false) const;
};

TraceDir load_trace_dir(const std::filesystem::path& dir, int num_pes);

}  // namespace ap::prof::io
