// Writers and parsers for ActorProf's trace files (paper §III):
//   PEi_send.csv  — logical trace, one line per application send
//   PEi_PAPI.csv  — PAPI segment rows
//   overall.txt   — Absolute/Relative TCOMM_PROFILING lines per PE
//   physical.txt  — network transfers of all PEs
// The visualization CLI consumes these files only, so it also works on
// traces produced by other builds of the tool.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "core/aggregate.hpp"
#include "core/config.hpp"
#include "core/records.hpp"
#include "core/sink.hpp"
#include "metrics/self_overhead.hpp"

namespace ap::prof {
class Profiler;
}

namespace ap::prof::io {

/// File-name helpers (exactly the names the paper lists).
std::string logical_file_name(int pe);   // "PE<i>_send.csv"
std::string papi_file_name(int pe);      // "PE<i>_PAPI.csv"
std::string steps_file_name(int pe);     // "PE<i>_steps.csv"
inline constexpr const char* kOverallFile = "overall.txt";
inline constexpr const char* kPhysicalFile = "physical.txt";
inline constexpr const char* kManifestFile = "MANIFEST.txt";
inline constexpr const char* kCheckFile = "check.csv";
/// Live-metrics sample ring dump, emitted only by the binary trace format
/// (there is no CSV counterpart; metrics.json carries the text view).
inline constexpr const char* kMetricSamplesFile = "metric_samples.apt";

/// Parse failure carrying the 1-based line it happened on. Derives from
/// std::runtime_error, so pre-existing catch sites keep working.
class TraceParseError : public std::runtime_error {
 public:
  TraceParseError(std::size_t line_no, const std::string& what);
  [[nodiscard]] std::size_t line_no() const { return line_no_; }

 private:
  std::size_t line_no_;
};

// ---- writers ---------------------------------------------------------------
// Every writer exists in two forms: the Sink form is the real
// implementation (one contiguous buffered build, see core/sink.hpp); the
// std::ostream form delegates to it and is kept for existing callers.

void write_logical(Sink& out, const std::vector<LogicalSendRecord>& events);
void write_logical(std::ostream& os,
                   const std::vector<LogicalSendRecord>& events);
void write_papi(Sink& out, const std::vector<PapiSegmentRecord>& rows,
                const Config& cfg);
void write_papi(std::ostream& os, const std::vector<PapiSegmentRecord>& rows,
                const Config& cfg);
void write_overall(Sink& out, const std::vector<OverallRecord>& recs);
void write_overall(std::ostream& os, const std::vector<OverallRecord>& recs);
/// "SelfOverhead ..." lines appended to overall.txt when Config::metrics is
/// on: the measured wall-rdtsc cost of ActorProf's own instrumentation,
/// per PE and per category. parse_overall skips them (they are not
/// "Absolute" lines), so existing consumers are unaffected.
void write_self_overhead(Sink& out, const metrics::OverheadMeter& m);
void write_self_overhead(std::ostream& os, const metrics::OverheadMeter& m);
void write_physical(Sink& out, const std::vector<PhysicalRecord>& events);
void write_physical(std::ostream& os,
                    const std::vector<PhysicalRecord>& events);
/// Superstep rows (PEi_steps.csv, Config::supersteps). Unlike overall.txt,
/// a killed PE's rows are NOT suppressed: every row was closed at a
/// collective it actually reached, so the prefix is consistent and is what
/// post-mortem analysis wants.
void write_steps(Sink& out, const std::vector<SuperstepRecord>& recs);
void write_steps(std::ostream& os, const std::vector<SuperstepRecord>& recs);
/// BSP conformance report (check.csv, Config::check). Written even when
/// empty — a zero-row check.csv is the evidence a checked run was clean.
/// `dropped` (violations past the checker's cap) rides in a parsable
/// "# dropped=<n>" comment.
void write_check(Sink& out, const std::vector<check::Violation>& v,
                 std::uint64_t dropped);
void write_check(std::ostream& os, const std::vector<check::Violation>& v,
                 std::uint64_t dropped);

/// Write every enabled trace of `prof` into cfg.trace_dir (created if
/// missing). Called by Profiler::write_traces().
///
/// Crash-safe: each file is fully built in memory, written to a ".tmp"
/// sibling, flushed, stream-checked, and atomically renamed into place —
/// a reader (or a kill) never observes a half-written file. A MANIFEST.txt
/// (file list, record counts, FNV-1a checksums, dead PEs) is written last.
/// Failures are aggregated: one std::runtime_error naming every file that
/// could not be written, thrown after all writable files landed.
void write_all(const Profiler& prof, const Config& cfg);

// ---- parsers ---------------------------------------------------------------
// All parsers skip blank lines and '#' comments and throw TraceParseError
// (a std::runtime_error) with a 1-based line number on malformed input.

std::vector<LogicalSendRecord> parse_logical(std::istream& is);
std::vector<PapiSegmentRecord> parse_papi(std::istream& is);
std::vector<OverallRecord> parse_overall(std::istream& is);
std::vector<PhysicalRecord> parse_physical(std::istream& is);
std::vector<SuperstepRecord> parse_steps(std::istream& is);

// Incremental variants: records are appended to `out` as they parse, so
// when a truncated/corrupt file throws mid-way the caller keeps the valid
// prefix (what `tolerate_partial` loading renders).
void parse_logical_into(std::istream& is, std::vector<LogicalSendRecord>& out);
void parse_papi_into(std::istream& is, std::vector<PapiSegmentRecord>& out);
void parse_overall_into(std::istream& is, std::vector<OverallRecord>& out);
void parse_physical_into(std::istream& is, std::vector<PhysicalRecord>& out);
void parse_steps_into(std::istream& is, std::vector<SuperstepRecord>& out);
/// Parses check.csv rows into `out` and the "# dropped=<n>" marker into
/// `dropped` (left untouched when the marker is absent).
void parse_check_into(std::istream& is, std::vector<check::Violation>& out,
                      std::uint64_t& dropped);

/// One MANIFEST.txt entry, as written by write_all.
struct ManifestEntry {
  std::string file;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t fnv1a = 0;
};
struct Manifest {
  int num_pes = 0;
  std::vector<ManifestEntry> files;
  std::vector<int> dead_pes;
};
Manifest parse_manifest(std::istream& is);

/// FNV-1a 64-bit over a byte buffer (the MANIFEST checksum).
std::uint64_t fnv1a64(const void* data, std::size_t n);

/// One per-file problem found while loading with tolerate_partial.
struct FileIssue {
  std::string file;        ///< file name relative to the trace dir
  std::size_t line_no = 0; ///< 1-based, 0 when not line-specific
  std::string message;
};

struct LoadOptions {
  /// Report missing/truncated/corrupt per-PE files in TraceDir::issues and
  /// keep every record that parsed, instead of throwing on the first bad
  /// file. What the viz CLI uses to render what survived a crash.
  bool tolerate_partial = false;
};

/// Load a whole trace directory produced by write_all.
struct TraceDir {
  int num_pes = 0;
  std::vector<std::vector<LogicalSendRecord>> logical;  // per PE (may be empty)
  std::vector<std::vector<PapiSegmentRecord>> papi;     // per PE
  std::vector<OverallRecord> overall;
  std::vector<PhysicalRecord> physical;
  std::vector<std::vector<SuperstepRecord>> steps;  // per PE (may be empty)
  /// BSP conformance violations (check.csv; empty when the run was clean
  /// or unchecked — check_recorded distinguishes the two).
  std::vector<check::Violation> check;
  std::uint64_t check_dropped = 0;
  /// True when a check.csv was present: the run executed under the checker.
  bool check_recorded = false;
  /// Problems found under LoadOptions::tolerate_partial (always empty for
  /// strict loads, which throw instead).
  std::vector<FileIssue> issues;
  /// PEs the MANIFEST marks as killed mid-run (fault injection).
  std::vector<int> dead_pes;
  /// PAPI event ids recovered from a binary PEi_PAPI.apt header (empty for
  /// CSV traces) — what `actorprof export --csv` uses to rebuild the
  /// PEi_PAPI.csv header line.
  std::vector<papi::Event> papi_events;

  /// Aggregate the logical events into a src-by-dst matrix.
  [[nodiscard]] CommMatrix logical_matrix() const;
  /// Aggregate physical transfers (excluding progress signals by default,
  /// matching the paper's buffer heatmaps).
  [[nodiscard]] CommMatrix physical_matrix(bool include_progress = false) const;
  /// Sparse forms of the same aggregations: O(nonzero cells), the only
  /// accessors the rendering paths should use at large P (they bucket
  /// before densifying; the dense forms above materialize P^2 cells).
  [[nodiscard]] SparseCommMatrix logical_sparse() const;
  [[nodiscard]] SparseCommMatrix physical_sparse(
      bool include_progress = false) const;
};

TraceDir load_trace_dir(const std::filesystem::path& dir, int num_pes);
TraceDir load_trace_dir(const std::filesystem::path& dir, int num_pes,
                        const LoadOptions& opts);

/// Read the PE count from the trace dir's MANIFEST.txt. Returns 0 when the
/// manifest is missing or unparsable — callers fall back to --num-pes.
int detect_num_pes(const std::filesystem::path& dir);

}  // namespace ap::prof::io
