#include "faultinject/faultinject.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "runtime/scheduler.hpp"

namespace ap::fi {

namespace {

/// SplitMix64 (public-domain constants): one independent stream per PE so
/// the schedule of PE i never depends on how often other PEs hit hooks.
struct SplitMix64 {
  std::uint64_t state = 0;

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }
};

struct PeStream {
  SplitMix64 rng;
  int barriers_seen = 0;
  std::uint64_t advances_seen = 0;
  int stall_left = 0;
  bool killed = false;
};

struct State {
  Plan plan;
  bool active = false;
  int straggler_yields = 0;  // per hook site, derived from the factor
  std::vector<PeStream> pes;

  // Post-mortem data: survives uninstall() so trace writers and tests can
  // consult it after shmem::run() returned. Reset by the next install().
  std::vector<int> killed;
  std::string log;
};

State g_state;
bool g_active = false;

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

PeStream& stream(int pe) {
  auto& pes = g_state.pes;
  if (pe < 0) throw std::logic_error("faultinject: hook outside a PE fiber");
  if (static_cast<std::size_t>(pe) >= pes.size()) {
    const std::size_t old = pes.size();
    pes.resize(static_cast<std::size_t>(pe) + 1);
    for (std::size_t i = old; i < pes.size(); ++i)
      // Seed mixing: one splitmix step over (seed ^ f(pe)) decorrelates
      // neighbouring PEs' streams.
      pes[i].rng.state =
          g_state.plan.seed ^ (0x9E3779B97F4A7C15ull * (i + 1));
  }
  return pes[static_cast<std::size_t>(pe)];
}

void log_line(const std::string& s) {
  g_state.log += s;
  g_state.log += '\n';
}

void straggle(int pe) {
  if (pe != g_state.plan.straggler_pe) return;
  for (int i = 0; i < g_state.straggler_yields; ++i) rt::yield();
}

// ---- strict ACTORPROF_FI_* parsing (same policy as core/config.cpp) ------

[[noreturn]] void bad_value(const char* name, const char* text,
                            const char* expected) {
  throw std::invalid_argument(std::string(name) + "=\"" + text +
                              "\": expected " + expected);
}

double env_prob(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE || !(parsed >= 0.0) ||
      parsed > 1.0)
    bad_value(name, v, "a probability in [0, 1]");
  return parsed;
}

double env_factor(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE || !(parsed >= 1.0))
    bad_value(name, v, "a factor >= 1.0");
  return parsed;
}

long long env_int(const char* name, long long fallback, long long min,
                  const char* expected) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed < min)
    bad_value(name, v, expected);
  return parsed;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE)
    bad_value(name, v, "an unsigned 64-bit seed");
  return parsed;
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

PeKilledError::PeKilledError(int pe, int barrier_index)
    : std::runtime_error("fault injection killed PE" + std::to_string(pe) +
                         " at barrier " + std::to_string(barrier_index)),
      pe_(pe),
      barrier_index_(barrier_index) {}

bool Plan::enabled() const {
  return delay_put_prob > 0.0 || dup_put_prob > 0.0 ||
         reorder_put_prob > 0.0 ||
         (straggler_pe >= 0 && straggler_factor > 1.0) || stall_pe >= 0 ||
         kill_pe >= 0;
}

Plan Plan::from_env() {
  Plan p;
  p.seed = env_u64("ACTORPROF_FI_SEED", p.seed);
  p.delay_put_prob = env_prob("ACTORPROF_FI_DELAY_PUTS", p.delay_put_prob);
  p.delay_yields = static_cast<int>(
      env_int("ACTORPROF_FI_DELAY_YIELDS", p.delay_yields, 1,
              "a positive yield count"));
  p.dup_put_prob = env_prob("ACTORPROF_FI_DUP_PUTS", p.dup_put_prob);
  p.reorder_put_prob =
      env_prob("ACTORPROF_FI_REORDER_PUTS", p.reorder_put_prob);
  p.straggler_pe = static_cast<int>(
      env_int("ACTORPROF_FI_STRAGGLER_PE", p.straggler_pe, 0,
              "a PE index >= 0"));
  p.straggler_factor =
      env_factor("ACTORPROF_FI_STRAGGLER_FACTOR", p.straggler_factor);
  p.stall_pe = static_cast<int>(
      env_int("ACTORPROF_FI_STALL_PE", p.stall_pe, 0, "a PE index >= 0"));
  p.stall_every = static_cast<int>(
      env_int("ACTORPROF_FI_STALL_EVERY", p.stall_every, 2,
              "an advance interval >= 2"));
  p.stall_len = static_cast<int>(
      env_int("ACTORPROF_FI_STALL_LEN", p.stall_len, 1,
              "a positive window length"));
  p.kill_pe = static_cast<int>(
      env_int("ACTORPROF_FI_KILL_PE", p.kill_pe, 0, "a PE index >= 0"));
  p.kill_at_barrier = static_cast<int>(
      env_int("ACTORPROF_FI_KILL_AT_BARRIER", p.kill_at_barrier, 0,
              "a barrier index >= 0"));
  if (p.stall_len >= p.stall_every)
    throw std::invalid_argument(
        "ACTORPROF_FI_STALL_LEN must be < ACTORPROF_FI_STALL_EVERY "
        "(stall windows must be bounded or the run cannot terminate)");
  return p;
}

void install(const Plan& plan) {
  if (g_active)
    throw std::logic_error("faultinject: a plan is already installed");
  if (plan.stall_len >= plan.stall_every)
    throw std::invalid_argument(
        "faultinject: stall_len must be < stall_every");
  g_state = State{};
  g_state.plan = plan;
  g_state.straggler_yields = static_cast<int>(
      std::min(plan.straggler_factor - 1.0, 64.0));
  g_state.active = true;
  g_active = true;
}

void uninstall() {
  // Keep killed set + log for post-mortem queries; only drop the live bits.
  g_state.active = false;
  g_state.pes.clear();
  g_active = false;
}

bool active() { return g_active; }

const Plan& plan() {
  if (!g_active) throw std::logic_error("faultinject: no plan installed");
  return g_state.plan;
}

BarrierAction on_barrier(int pe) {
  if (!g_active) return BarrierAction::none;
  PeStream& s = stream(pe);
  const int k = s.barriers_seen++;
  straggle(pe);
  if (pe == g_state.plan.kill_pe && !s.killed &&
      k >= g_state.plan.kill_at_barrier) {
    s.killed = true;  // note_killed() records it post-mortem
    return BarrierAction::kill;
  }
  return BarrierAction::none;
}

bool on_advance(int pe) {
  if (!g_active) return false;
  PeStream& s = stream(pe);
  const std::uint64_t k = s.advances_seen++;
  straggle(pe);
  if (pe != g_state.plan.stall_pe) return false;
  if (s.stall_left > 0) {
    --s.stall_left;
    return true;
  }
  if (k % static_cast<std::uint64_t>(g_state.plan.stall_every) ==
      static_cast<std::uint64_t>(g_state.plan.stall_every) - 1) {
    // Window length is deterministic per occurrence: 1..stall_len.
    s.stall_left = 1 + static_cast<int>(s.rng.next_below(
                           static_cast<std::uint64_t>(g_state.plan.stall_len)));
    log_line("stall pe=" + std::to_string(pe) + " at_advance=" +
             std::to_string(k) + " len=" + std::to_string(s.stall_left + 1));
    --s.stall_left;  // this call is the first stalled one
    return true;
  }
  return false;
}

bool plan_quiet(int pe, std::size_t n_pending, QuietSchedule& out) {
  if (!g_active || n_pending == 0) return false;
  const Plan& p = g_state.plan;
  if (p.delay_put_prob <= 0.0 && p.dup_put_prob <= 0.0 &&
      p.reorder_put_prob <= 0.0)
    return false;
  PeStream& s = stream(pe);
  const bool reorder = s.rng.next_unit() < p.reorder_put_prob;
  const bool dup = s.rng.next_unit() < p.dup_put_prob;
  const bool delay = s.rng.next_unit() < p.delay_put_prob;
  if (!reorder && !dup && !delay) return false;

  out.order.clear();
  out.order.reserve(n_pending + 1);
  for (std::size_t i = 0; i < n_pending; ++i)
    out.order.push_back(static_cast<std::uint32_t>(i));
  if (reorder) {
    // Fisher-Yates with our own stream (std::shuffle's draws are
    // implementation-defined, which would break cross-stdlib determinism).
    for (std::size_t i = n_pending - 1; i > 0; --i) {
      const std::size_t j =
          static_cast<std::size_t>(s.rng.next_below(i + 1));
      std::swap(out.order[i], out.order[j]);
    }
  }
  if (dup) {
    const auto victim = static_cast<std::uint32_t>(
        s.rng.next_below(n_pending));
    out.order.push_back(victim);  // applied again at the tail: a legal
                                  // duplicate completion of the same put
  }
  out.delayed_from = out.order.size();
  out.yields = 0;
  if (delay) {
    // Hold back a suffix of completions across a few scheduler yields —
    // other PEs observably run before these puts land (quiet still
    // completes them before returning).
    out.delayed_from = static_cast<std::size_t>(
        s.rng.next_below(out.order.size()));
    out.yields = g_state.plan.delay_yields;
  }
  log_line("quiet pe=" + std::to_string(pe) + " n=" +
           std::to_string(n_pending) + " reorder=" + (reorder ? "1" : "0") +
           " dup=" + (dup ? "1" : "0") + " delay=" + (delay ? "1" : "0") +
           " order=" +
           hex(fnv1a(out.order.data(),
                     out.order.size() * sizeof(out.order[0]))));
  return true;
}

void note_killed(int pe) {
  if (std::find(g_state.killed.begin(), g_state.killed.end(), pe) !=
      g_state.killed.end())
    return;
  g_state.killed.push_back(pe);
  std::sort(g_state.killed.begin(), g_state.killed.end());
  log_line("kill pe=" + std::to_string(pe) + " barrier=" +
           std::to_string(g_state.plan.kill_at_barrier));
}

bool was_killed(int pe) {
  return std::find(g_state.killed.begin(), g_state.killed.end(), pe) !=
         g_state.killed.end();
}

const std::vector<int>& killed_pes() { return g_state.killed; }

const std::string& schedule_log() { return g_state.log; }

}  // namespace ap::fi
