// Deterministic, seed-driven fault injection for the minishmem/conveyor
// stack (ROADMAP: "handle as many scenarios as you can imagine").
//
// The substrate calls tiny hooks at its perturbation points; when a Plan is
// installed the hooks roll per-PE SplitMix64 dice and decide to
//   * delay / duplicate / reorder nbi-put completions inside quiet()
//     (all legal OpenSHMEM weak-ordering behaviours — quiet still completes
//     every put before it returns),
//   * slow one PE down by a straggler factor (extra cooperative yields at
//     barriers and conveyor advances),
//   * stall one PE's conveyor advance() for bounded windows (the progress
//     loop "stops being called" for a while),
//   * kill one PE at its k-th barrier_all(): shmem marks the PE dead and
//     throws PeKilledError through the PE body; the launch keeps running
//     with the survivors.
//
// Determinism: every decision is drawn from a per-PE SplitMix64 stream
// seeded with (seed, pe) only. The same seed against the same program
// yields a byte-identical schedule_log() — tests assert exactly that.
//
// Plans usually come from the environment (Plan::from_env, ACTORPROF_FI_*);
// shmem::run() auto-installs an env plan so any existing binary can be
// fault-injected without code changes. See docs/FAULT_INJECTION.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ap::fi {

/// Thrown through a PE's body when the plan kills it at a barrier. The
/// shmem::run body wrapper contains it; user code should not catch it.
class PeKilledError : public std::runtime_error {
 public:
  PeKilledError(int pe, int barrier_index);
  [[nodiscard]] int pe() const { return pe_; }
  [[nodiscard]] int barrier_index() const { return barrier_index_; }

 private:
  int pe_;
  int barrier_index_;
};

/// What on_barrier asks the substrate to do.
enum class BarrierAction { none, kill };

/// An injection plan. Probabilities are per-quiet; -1 disables a PE knob.
struct Plan {
  std::uint64_t seed = 1;

  // quiet() completion perturbations
  double delay_put_prob = 0.0;    ///< P[quiet yields mid-completion]
  int delay_yields = 3;           ///< scheduler yields per delayed quiet
  double dup_put_prob = 0.0;      ///< P[one pending put applied twice]
  double reorder_put_prob = 0.0;  ///< P[completion order shuffled]

  // straggler
  int straggler_pe = -1;
  double straggler_factor = 1.0;  ///< >= 1; extra yields ~ factor-1

  // stalled conveyor advance() windows (bounded so runs still terminate)
  int stall_pe = -1;
  int stall_every = 64;  ///< a window may start every stall_every advances
  int stall_len = 8;     ///< advances stalled per window (< stall_every)

  // kill one PE at its k-th barrier_all() (0-based count on that PE)
  int kill_pe = -1;
  int kill_at_barrier = 1;

  [[nodiscard]] bool enabled() const;

  /// Strict ACTORPROF_FI_* parse (same policy as ACTORPROF_METRICS*):
  /// malformed values throw std::invalid_argument naming the variable.
  static Plan from_env();
};

/// How quiet() should complete its `n` pending puts: apply
/// order[0..delayed_from), yield `yields` times, apply the rest. `order`
/// contains every index in [0, n) at least once; duplicates are legal.
struct QuietSchedule {
  std::vector<std::uint32_t> order;
  std::size_t delayed_from = 0;
  int yields = 0;
};

/// Install/remove the active plan. Installing resets the per-PE streams,
/// the schedule log and the killed set. Not reentrant.
void install(const Plan& plan);
void uninstall();
[[nodiscard]] bool active();
/// The installed plan. Only valid while active().
[[nodiscard]] const Plan& plan();

/// RAII install for tests.
class Session {
 public:
  explicit Session(const Plan& p) { install(p); }
  ~Session() { uninstall(); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
};

// ---- hooks called by the substrate (no-ops unless active()) ---------------

/// Entry of barrier_all() on `pe`: straggler yields happen here; returns
/// BarrierAction::kill exactly once when this is the configured kill point.
BarrierAction on_barrier(int pe);

/// Entry of Conveyor::advance() on `pe`: straggler yields happen here;
/// returns true when this advance call is stalled (no progress this round).
bool on_advance(int pe);

/// Plan the completion schedule for quiet() with `n_pending` staged puts.
/// Returns true and fills `out` when the schedule is perturbed; false means
/// apply in program order (the fast path takes no schedule object).
bool plan_quiet(int pe, std::size_t n_pending, QuietSchedule& out);

/// shmem::run's body wrapper reports a contained kill here.
void note_killed(int pe);

// ---- post-mortem queries (survive uninstall until the next install) -------

[[nodiscard]] bool was_killed(int pe);
[[nodiscard]] const std::vector<int>& killed_pes();

/// Human-readable log of every injected decision, in injection order. Same
/// plan + same program => byte-identical log (the determinism contract).
[[nodiscard]] const std::string& schedule_log();

}  // namespace ap::fi
