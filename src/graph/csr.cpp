#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace ap::graph {

Csr Csr::from_edges(Vertex num_vertices, std::span<const Edge> edges,
                    bool lower_triangular_only) {
  if (num_vertices < 0)
    throw std::invalid_argument("Csr: negative vertex count");
  Csr g;
  g.row_ptr_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);

  // Count entries per row.
  auto add_count = [&g, num_vertices](Vertex row) {
    if (row < 0 || row >= num_vertices)
      throw std::out_of_range("Csr: vertex id out of range");
    g.row_ptr_[static_cast<std::size_t>(row) + 1]++;
  };
  for (const Edge& e : edges) {
    if (lower_triangular_only) {
      add_count(std::max(e.u, e.v));
    } else {
      add_count(e.u);
      add_count(e.v);
    }
  }
  for (std::size_t i = 1; i < g.row_ptr_.size(); ++i)
    g.row_ptr_[i] += g.row_ptr_[i - 1];

  g.col_idx_.resize(g.row_ptr_.back());
  std::vector<std::size_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  auto place = [&g, &cursor](Vertex row, Vertex col) {
    g.col_idx_[cursor[static_cast<std::size_t>(row)]++] = col;
  };
  for (const Edge& e : edges) {
    if (lower_triangular_only) {
      place(std::max(e.u, e.v), std::min(e.u, e.v));
    } else {
      place(e.u, e.v);
      place(e.v, e.u);
    }
  }
  for (Vertex v = 0; v < num_vertices; ++v) {
    auto* b = g.col_idx_.data() + g.row_ptr_[static_cast<std::size_t>(v)];
    auto* e = g.col_idx_.data() + g.row_ptr_[static_cast<std::size_t>(v) + 1];
    std::sort(b, e);
  }
  return g;
}

bool Csr::has_entry(Vertex u, Vertex v) const {
  if (u < 0 || u >= num_vertices()) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::size_t Csr::max_degree() const {
  std::size_t m = 0;
  for (Vertex v = 0; v < num_vertices(); ++v) m = std::max(m, degree(v));
  return m;
}

std::int64_t count_triangles_serial(const Csr& lower) {
  std::int64_t count = 0;
  for (Vertex i = 0; i < lower.num_vertices(); ++i) {
    const auto ni = lower.neighbors(i);
    // For each pair (j, k) with k < j < i, triangle iff l_jk exists.
    for (std::size_t a = 0; a < ni.size(); ++a) {
      const Vertex j = ni[a];
      const auto nj = lower.neighbors(j);
      // |ni[0..a) ∩ nj| via sorted intersection.
      std::size_t x = 0, y = 0;
      while (x < a && y < nj.size()) {
        if (ni[x] < nj[y]) {
          ++x;
        } else if (ni[x] > nj[y]) {
          ++y;
        } else {
          ++count;
          ++x;
          ++y;
        }
      }
    }
  }
  return count;
}

}  // namespace ap::graph
