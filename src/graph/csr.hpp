// Compressed sparse row adjacency, with the lower-triangular view the
// triangle-counting case study works on (paper Algorithm 1: l_ij with
// j < i means an edge between i and j).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/rmat.hpp"

namespace ap::graph {

class Csr {
 public:
  Csr() = default;

  /// Build from an undirected edge list.
  /// lower_triangular_only keeps, for every edge {u,v}, only the entry
  /// (max, min) — the matrix L of Algorithm 1. Otherwise both directions
  /// are stored (a symmetric adjacency).
  static Csr from_edges(Vertex num_vertices, std::span<const Edge> edges,
                        bool lower_triangular_only);

  [[nodiscard]] Vertex num_vertices() const {
    return static_cast<Vertex>(row_ptr_.size()) - 1;
  }
  [[nodiscard]] std::size_t num_entries() const { return col_idx_.size(); }

  /// Sorted neighbor list of `v` (column indices of row v).
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    const auto b = row_ptr_[static_cast<std::size_t>(v)];
    const auto e = row_ptr_[static_cast<std::size_t>(v) + 1];
    return {col_idx_.data() + b, col_idx_.data() + e};
  }
  [[nodiscard]] std::size_t degree(Vertex v) const {
    return row_ptr_[static_cast<std::size_t>(v) + 1] -
           row_ptr_[static_cast<std::size_t>(v)];
  }
  /// Binary search for entry (u, v).
  [[nodiscard]] bool has_entry(Vertex u, Vertex v) const;

  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<Vertex>& col_idx() const { return col_idx_; }

  [[nodiscard]] std::size_t max_degree() const;

 private:
  std::vector<std::size_t> row_ptr_{0};
  std::vector<Vertex> col_idx_;
};

/// Serial reference triangle count on the lower-triangular matrix L:
/// a triangle {i, j, k} with k < j < i is counted once via sorted-list
/// intersection. Ground truth for validating the distributed kernel.
std::int64_t count_triangles_serial(const Csr& lower);

}  // namespace ap::graph
