#include "graph/distribution.hpp"

#include <algorithm>
#include <stdexcept>

namespace ap::graph {

Distribution::Distribution(int p) : p_(p) {
  if (p <= 0) throw std::invalid_argument("Distribution: ranks must be > 0");
}

std::vector<Vertex> Distribution::rows_of(int rank, Vertex n) const {
  if (rank < 0 || rank >= p_)
    throw std::out_of_range("Distribution::rows_of: rank out of range");
  std::vector<Vertex> rows;
  for (Vertex v = 0; v < n; ++v)
    if (owner(v) == rank) rows.push_back(v);
  return rows;
}

BlockDistribution::BlockDistribution(int p, Vertex n)
    : Distribution(p), n_(n), per_rank_((n + p - 1) / p) {
  if (n <= 0) throw std::invalid_argument("BlockDistribution: empty graph");
}

int BlockDistribution::owner(Vertex v) const {
  if (v < 0 || v >= n_)
    throw std::out_of_range("BlockDistribution: vertex out of range");
  return static_cast<int>(v / per_rank_);
}

RangeDistribution::RangeDistribution(int p, const Csr& lower)
    : Distribution(p) {
  const Vertex n = lower.num_vertices();
  const std::size_t nnz = lower.num_entries();
  first_row_.assign(static_cast<std::size_t>(p) + 1, n);
  first_row_[0] = 0;
  nnz_.assign(static_cast<std::size_t>(p), 0);

  // Greedy sweep: close a rank's range once it holds >= nnz/p entries.
  // (i, j, ... in Figure 6 "are chosen such that PEs have an equal number
  // of #nnz".)
  const std::size_t target = (nnz + static_cast<std::size_t>(p) - 1) /
                             static_cast<std::size_t>(p);
  int rank = 0;
  std::size_t acc = 0;
  for (Vertex v = 0; v < n; ++v) {
    acc += lower.degree(v);
    nnz_[static_cast<std::size_t>(rank)] += lower.degree(v);
    if (acc >= target * static_cast<std::size_t>(rank + 1) &&
        rank + 1 < p_) {
      ++rank;
      first_row_[static_cast<std::size_t>(rank)] = v + 1;
    }
  }
  for (int r = rank + 1; r <= p_; ++r)
    first_row_[static_cast<std::size_t>(r)] = n;
}

int RangeDistribution::owner(Vertex v) const {
  // The owning rank is the last boundary <= v.
  const auto it =
      std::upper_bound(first_row_.begin(), first_row_.end(), v);
  const auto idx = static_cast<int>(it - first_row_.begin()) - 1;
  if (idx < 0 || idx >= p_)
    throw std::out_of_range("RangeDistribution: vertex out of range");
  return idx;
}

std::size_t RangeDistribution::nnz_of(int rank) const {
  if (rank < 0 || rank >= p_)
    throw std::out_of_range("RangeDistribution::nnz_of: rank out of range");
  return nnz_[static_cast<std::size_t>(rank)];
}

std::string to_string(DistKind k) {
  switch (k) {
    case DistKind::Cyclic1D: return "1D Cyclic";
    case DistKind::Range1D: return "1D Range";
    case DistKind::Block1D: return "1D Block";
  }
  return "unknown";
}

std::unique_ptr<Distribution> make_distribution(DistKind k, int p,
                                                const Csr& lower) {
  switch (k) {
    case DistKind::Cyclic1D: return std::make_unique<CyclicDistribution>(p);
    case DistKind::Range1D:
      return std::make_unique<RangeDistribution>(p, lower);
    case DistKind::Block1D:
      return std::make_unique<BlockDistribution>(p, lower.num_vertices());
  }
  throw std::invalid_argument("make_distribution: unknown kind");
}

}  // namespace ap::graph
