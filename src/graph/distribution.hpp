// Data distributions for 1-D row partitioning (paper §IV-B.2).
//
// A distribution decides which PE owns which rows of the lower-triangular
// matrix L. The case study compares:
//   * 1D Cyclic — owner(row) = row % p: every PE gets ~the same number of
//     vertices, but power-law degree skew concentrates *edges*;
//   * 1D Range  — contiguous row ranges chosen so every PE owns ~the same
//     number of non-zeros (#nnz); this is the distribution behind the
//     "(L) observation" in Figure 6.
// A 1D Block distribution (equal vertex ranges) is included as the natural
// third baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace ap::graph {

class Distribution {
 public:
  virtual ~Distribution() = default;
  /// Rank that owns row `v`.
  [[nodiscard]] virtual int owner(Vertex v) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] int num_ranks() const { return p_; }

  /// Rows owned by `rank` (materialized; fine at the scales we run).
  [[nodiscard]] std::vector<Vertex> rows_of(int rank, Vertex n) const;

 protected:
  explicit Distribution(int p);
  int p_;
};

/// owner(v) = v % p (Algorithm 1's FINDOWNER).
class CyclicDistribution final : public Distribution {
 public:
  explicit CyclicDistribution(int p) : Distribution(p) {}
  [[nodiscard]] int owner(Vertex v) const override {
    return static_cast<int>(v % p_);
  }
  [[nodiscard]] std::string name() const override { return "1D Cyclic"; }
};

/// Contiguous equal-vertex blocks.
class BlockDistribution final : public Distribution {
 public:
  BlockDistribution(int p, Vertex n);
  [[nodiscard]] int owner(Vertex v) const override;
  [[nodiscard]] std::string name() const override { return "1D Block"; }

 private:
  Vertex n_;
  Vertex per_rank_;
};

/// Contiguous ranges balanced by #nnz of L (paper's 1D Range).
class RangeDistribution final : public Distribution {
 public:
  /// Builds boundaries from the row sizes of `lower` so each rank owns
  /// roughly nnz/p entries.
  RangeDistribution(int p, const Csr& lower);
  [[nodiscard]] int owner(Vertex v) const override;
  [[nodiscard]] std::string name() const override { return "1D Range"; }
  /// first_row[r] .. first_row[r+1]-1 are rank r's rows.
  [[nodiscard]] const std::vector<Vertex>& boundaries() const {
    return first_row_;
  }
  /// #nnz of L owned by `rank`.
  [[nodiscard]] std::size_t nnz_of(int rank) const;

 private:
  std::vector<Vertex> first_row_;  // size p+1
  std::vector<std::size_t> nnz_;   // size p
};

enum class DistKind { Cyclic1D, Range1D, Block1D };
[[nodiscard]] std::string to_string(DistKind k);
/// Factory used by examples and benches.
std::unique_ptr<Distribution> make_distribution(DistKind k, int p,
                                                const Csr& lower);

}  // namespace ap::graph
