#include "graph/rmat.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ap::graph {

std::vector<Edge> rmat_edges(const RmatParams& p) {
  if (p.scale < 0 || p.scale > 30)
    throw std::invalid_argument("rmat_edges: scale out of range [0, 30]");
  if (p.edge_factor <= 0)
    throw std::invalid_argument("rmat_edges: edge_factor must be positive");
  const double d = 1.0 - p.a - p.b - p.c;
  if (p.a < 0 || p.b < 0 || p.c < 0 || d < -1e-9)
    throw std::invalid_argument("rmat_edges: probabilities must sum to <= 1");

  const Vertex n = Vertex{1} << p.scale;
  const std::size_t m = static_cast<std::size_t>(p.edge_factor) *
                        static_cast<std::size_t>(n);
  SplitMix64 rng(p.seed);

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    Vertex u = 0, v = 0;
    // Recursive quadrant descent with the classic noise-free R-MAT rule.
    for (int level = 0; level < p.scale; ++level) {
      const double r = rng.next_unit();
      const Vertex bit = Vertex{1} << (p.scale - 1 - level);
      if (r < p.a) {
        // top-left: no bits set
      } else if (r < p.a + p.b) {
        v |= bit;  // top-right
      } else if (r < p.a + p.b + p.c) {
        u |= bit;  // bottom-left
      } else {
        u |= bit;  // bottom-right
        v |= bit;
      }
    }
    edges.push_back(Edge{u, v});
  }

  if (p.permute_vertices) {
    // graph500 relabeling: random permutation of vertex ids removes the
    // correlation between id and degree that raw R-MAT produces.
    std::vector<Vertex> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), Vertex{0});
    SplitMix64 prng(p.seed ^ 0xFEEDFACEull);
    for (std::size_t i = perm.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(prng.next_below(i));
      std::swap(perm[i - 1], perm[j]);
    }
    for (Edge& e : edges) {
      e.u = perm[static_cast<std::size_t>(e.u)];
      e.v = perm[static_cast<std::size_t>(e.v)];
    }
  }

  if (p.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.u == e.v; });
  }

  if (p.dedup) {
    for (Edge& e : edges)
      if (e.u < e.v) std::swap(e.u, e.v);  // canonical: u >= v
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  return edges;
}

}  // namespace ap::graph
