// R-MAT / graph500-style graph generation (paper §IV-C).
//
// The case-study input is "a lower triangular undirected, unweighted matrix
// generated on a scale of 16 with R-MAT parameters A=57.0, B=C=19.0, D=5.0
// and an edge factor of 16, following graph500 benchmark standards". This
// module reproduces that generator: 2^scale vertices, edge_factor*2^scale
// edge insertions, recursive quadrant descent with the given probabilities,
// vertex relabeling (permutation) to avoid locality artifacts, and optional
// deduplication/self-loop removal.
#pragma once

#include <cstdint>
#include <vector>

namespace ap::graph {

using Vertex = std::int64_t;

struct Edge {
  Vertex u = 0;
  Vertex v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

struct RmatParams {
  int scale = 12;                     // 2^scale vertices
  int edge_factor = 16;               // edges ~= edge_factor * 2^scale
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c = 0.05
  std::uint64_t seed = 0xC0FFEE;
  bool permute_vertices = true;       // graph500 vertex relabeling
  bool remove_self_loops = true;
  bool dedup = true;                  // keep one copy of each {u,v}
};

/// Generate the edge list (undirected; each edge appears once with
/// unordered endpoints as produced by the generator).
std::vector<Edge> rmat_edges(const RmatParams& p);

/// Small deterministic xorshift-based RNG used across the repo (keeps all
/// experiments reproducible without <random> distribution variance).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

 private:
  std::uint64_t state_;
};

}  // namespace ap::graph
