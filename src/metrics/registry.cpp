#include "metrics/registry.hpp"

#include <atomic>
#include <bit>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace ap::metrics {

namespace {
// Metric cells are written concurrently under the threads backend — most
// by the owning PE's worker, but some cross-PE (a sender bumps the
// *destination's* queue-depth gauge) — and read by the sampler tick on
// another worker. Relaxed atomic_ref operations make every access
// race-free without widening the storage; counters are independent, so no
// ordering between them is needed.
template <class T>
void cell_add(T& cell, T delta) {
  std::atomic_ref<T>(cell).fetch_add(delta, std::memory_order_relaxed);
}

template <class T>
void cell_set(T& cell, T value) {
  std::atomic_ref<T>(cell).store(value, std::memory_order_relaxed);
}

template <class T>
T cell_get(const T& cell) {
  return std::atomic_ref<T>(const_cast<T&>(cell))
      .load(std::memory_order_relaxed);
}
}  // namespace

int histogram_bucket(std::uint64_t value) {
  if (value == 0) return 0;
  const int width = std::bit_width(value);  // >= 1
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

std::uint64_t histogram_bucket_le(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kHistogramBuckets - 1)
    return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << bucket) - 1;
}

CounterId Registry::add_counter(std::string name, std::string help) {
  if (bound())
    throw std::logic_error("Registry: register metrics before bind()");
  counters_.push_back(Desc{std::move(name), std::move(help)});
  return CounterId{static_cast<int>(counters_.size()) - 1};
}

GaugeId Registry::add_gauge(std::string name, std::string help) {
  if (bound())
    throw std::logic_error("Registry: register metrics before bind()");
  gauges_.push_back(Desc{std::move(name), std::move(help)});
  return GaugeId{static_cast<int>(gauges_.size()) - 1};
}

HistogramId Registry::add_histogram(std::string name, std::string help) {
  if (bound())
    throw std::logic_error("Registry: register metrics before bind()");
  hists_.push_back(Desc{std::move(name), std::move(help)});
  return HistogramId{static_cast<int>(hists_.size()) - 1};
}

void Registry::bind(int num_pes) {
  if (num_pes <= 0)
    throw std::invalid_argument("Registry::bind: num_pes must be positive");
  num_pes_ = num_pes;
  slabs_.assign(static_cast<std::size_t>(num_pes), PeSlab{});
  for (PeSlab& s : slabs_) {
    s.counters.assign(counters_.size(), 0);
    s.gauges.assign(gauges_.size(), 0);
    s.hists.assign(hists_.size(), HistogramData{});
  }
}

void Registry::check_bound(int pe) const {
  if (pe < 0 || pe >= num_pes_)
    throw std::out_of_range("Registry: PE index out of range (bind first?)");
}

void Registry::add(int pe, CounterId id, std::uint64_t delta) {
  check_bound(pe);
  cell_add(slabs_[static_cast<std::size_t>(pe)]
               .counters[static_cast<std::size_t>(id.i)],
           delta);
}

void Registry::set(int pe, GaugeId id, std::int64_t value) {
  check_bound(pe);
  cell_set(
      slabs_[static_cast<std::size_t>(pe)].gauges[static_cast<std::size_t>(id.i)],
      value);
}

void Registry::add(int pe, GaugeId id, std::int64_t delta) {
  check_bound(pe);
  cell_add(
      slabs_[static_cast<std::size_t>(pe)].gauges[static_cast<std::size_t>(id.i)],
      delta);
}

void Registry::observe(int pe, HistogramId id, std::uint64_t value) {
  check_bound(pe);
  HistogramData& h =
      slabs_[static_cast<std::size_t>(pe)].hists[static_cast<std::size_t>(id.i)];
  cell_add(h.buckets[static_cast<std::size_t>(histogram_bucket(value))],
           std::uint64_t{1});
  cell_add(h.count, std::uint64_t{1});
  cell_add(h.sum, value);
}

std::uint64_t Registry::value(int pe, CounterId id) const {
  check_bound(pe);
  return cell_get(slabs_[static_cast<std::size_t>(pe)]
                      .counters[static_cast<std::size_t>(id.i)]);
}

std::int64_t Registry::value(int pe, GaugeId id) const {
  check_bound(pe);
  return cell_get(slabs_[static_cast<std::size_t>(pe)]
                      .gauges[static_cast<std::size_t>(id.i)]);
}

const HistogramData& Registry::data(int pe, HistogramId id) const {
  check_bound(pe);
  return slabs_[static_cast<std::size_t>(pe)]
      .hists[static_cast<std::size_t>(id.i)];
}

std::vector<std::string> Registry::scalar_names() const {
  std::vector<std::string> out;
  out.reserve(num_scalars());
  for (const Desc& d : counters_) out.push_back(d.name);
  for (const Desc& d : gauges_) out.push_back(d.name);
  return out;
}

void Registry::snapshot_scalars(std::int64_t* out) const {
  std::size_t k = 0;
  for (const PeSlab& s : slabs_) {
    for (const std::uint64_t& v : s.counters)
      out[k++] = static_cast<std::int64_t>(cell_get(v));
    for (const std::int64_t& v : s.gauges) out[k++] = cell_get(v);
  }
}

void Registry::reset_values() {
  for (PeSlab& s : slabs_) {
    s.counters.assign(counters_.size(), 0);
    s.gauges.assign(gauges_.size(), 0);
    s.hists.assign(hists_.size(), HistogramData{});
  }
}

// ------------------------------------------------------------- exposition

void Registry::write_prometheus(std::ostream& os) const {
  auto header = [&os](const Desc& d, const char* type) {
    os << "# HELP " << d.name << ' ' << d.help << '\n';
    os << "# TYPE " << d.name << ' ' << type << '\n';
  };
  for (std::size_t m = 0; m < counters_.size(); ++m) {
    header(counters_[m], "counter");
    for (int pe = 0; pe < num_pes_; ++pe)
      os << counters_[m].name << "{pe=\"" << pe << "\"} "
         << cell_get(slabs_[static_cast<std::size_t>(pe)].counters[m]) << '\n';
  }
  for (std::size_t m = 0; m < gauges_.size(); ++m) {
    header(gauges_[m], "gauge");
    for (int pe = 0; pe < num_pes_; ++pe)
      os << gauges_[m].name << "{pe=\"" << pe << "\"} "
         << cell_get(slabs_[static_cast<std::size_t>(pe)].gauges[m]) << '\n';
  }
  for (std::size_t m = 0; m < hists_.size(); ++m) {
    header(hists_[m], "histogram");
    for (int pe = 0; pe < num_pes_; ++pe) {
      const HistogramData& h = slabs_[static_cast<std::size_t>(pe)].hists[m];
      std::uint64_t cum = 0;
      for (int b = 0; b < kHistogramBuckets; ++b) {
        cum += h.buckets[static_cast<std::size_t>(b)];
        os << hists_[m].name << "_bucket{pe=\"" << pe << "\",le=\"";
        if (b == kHistogramBuckets - 1)
          os << "+Inf";
        else
          os << histogram_bucket_le(b);
        os << "\"} " << cum << '\n';
      }
      os << hists_[m].name << "_sum{pe=\"" << pe << "\"} " << h.sum << '\n';
      os << hists_[m].name << "_count{pe=\"" << pe << "\"} " << h.count
         << '\n';
    }
  }
}

void Registry::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  auto key = [&](const Desc& d, const char* type) {
    if (!first) os << ',';
    first = false;
    os << "\"" << d.name << "\":{\"type\":\"" << type << "\",\"help\":\""
       << d.help << "\",\"per_pe\":[";
  };
  for (std::size_t m = 0; m < counters_.size(); ++m) {
    key(counters_[m], "counter");
    for (int pe = 0; pe < num_pes_; ++pe)
      os << (pe ? "," : "")
         << cell_get(slabs_[static_cast<std::size_t>(pe)].counters[m]);
    os << "]}";
  }
  for (std::size_t m = 0; m < gauges_.size(); ++m) {
    key(gauges_[m], "gauge");
    for (int pe = 0; pe < num_pes_; ++pe)
      os << (pe ? "," : "")
         << cell_get(slabs_[static_cast<std::size_t>(pe)].gauges[m]);
    os << "]}";
  }
  for (std::size_t m = 0; m < hists_.size(); ++m) {
    key(hists_[m], "histogram");
    for (int pe = 0; pe < num_pes_; ++pe) {
      const HistogramData& h = slabs_[static_cast<std::size_t>(pe)].hists[m];
      os << (pe ? "," : "") << "{\"count\":" << h.count << ",\"sum\":" << h.sum
         << ",\"buckets\":[";
      for (int b = 0; b < kHistogramBuckets; ++b)
        os << (b ? "," : "") << h.buckets[static_cast<std::size_t>(b)];
      os << "]}";
    }
    os << "]}";
  }
  os << '}';
}

}  // namespace ap::metrics
