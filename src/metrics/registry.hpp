// Live metrics registry — the runtime-observability layer of ActorProf.
//
// The paper's profiler is post-mortem: every file is written after
// epoch_end(). A long-running FA-BSP job (the HClib-Actor "production
// PGAS system" setting) needs health signals *while it runs*. This
// registry provides them with the cost discipline of the rest of the
// stack: metric handles are registered once at startup, per-PE storage is
// allocated once when the world size is known (bind), and every hot-path
// update is a bounds-checked array write — no allocation, no hashing, no
// locks. Under the threads execution backend cells are updated with
// relaxed atomics (updates may be cross-PE — e.g. a sender bumps the
// destination's queue-depth gauge — and the sampler tick reads every PE's
// cells from another worker); under the fiber backend those compile to the
// same plain memory operations as before.
//
// Three instrument kinds:
//   Counter   — monotonically increasing u64 (sends, bytes, quiets, ...)
//   Gauge     — signed instantaneous value (queue depth, bytes in flight)
//   Histogram — fixed 32-bucket log2 histogram (message/buffer sizes)
//
// Snapshots are read by the periodic sampler (sampler.hpp) and exposed as
// Prometheus text and JSON by Profiler::write_metrics().
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ap::metrics {

/// Typed handles; cheap value types returned at registration time.
struct CounterId {
  int i = -1;
};
struct GaugeId {
  int i = -1;
};
struct HistogramId {
  int i = -1;
};

/// log2 buckets: bucket 0 holds value 0, bucket b>0 holds values whose
/// bit width is b, i.e. [2^(b-1), 2^b - 1]. 32 buckets cover every u64
/// seen in practice (the last bucket absorbs the tail).
inline constexpr int kHistogramBuckets = 32;

[[nodiscard]] int histogram_bucket(std::uint64_t value);
/// Inclusive upper bound of bucket b (the Prometheus `le` label).
[[nodiscard]] std::uint64_t histogram_bucket_le(int bucket);

struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

class Registry {
 public:
  /// Registration (startup, before bind). Names should follow Prometheus
  /// conventions ("actorprof_actor_sends_total"); they are emitted as-is.
  CounterId add_counter(std::string name, std::string help);
  GaugeId add_gauge(std::string name, std::string help);
  HistogramId add_histogram(std::string name, std::string help);

  /// Allocate (or re-allocate) per-PE storage and zero every value. After
  /// bind, updates are allocation-free.
  void bind(int num_pes);
  [[nodiscard]] bool bound() const { return num_pes_ > 0; }
  [[nodiscard]] int num_pes() const { return num_pes_; }

  // ---- hot path (explicit PE; callers already know their rank) ------------
  void add(int pe, CounterId id, std::uint64_t delta = 1);
  void set(int pe, GaugeId id, std::int64_t value);
  void add(int pe, GaugeId id, std::int64_t delta);
  void observe(int pe, HistogramId id, std::uint64_t value);

  // ---- reads ----------------------------------------------------------------
  [[nodiscard]] std::uint64_t value(int pe, CounterId id) const;
  [[nodiscard]] std::int64_t value(int pe, GaugeId id) const;
  [[nodiscard]] const HistogramData& data(int pe, HistogramId id) const;

  /// Scalar series = all counters then all gauges, in registration order.
  /// This is the row layout the sampler snapshots.
  [[nodiscard]] std::size_t num_scalars() const {
    return counters_.size() + gauges_.size();
  }
  [[nodiscard]] std::vector<std::string> scalar_names() const;
  /// Copy every PE's scalar series into `out` (num_pes * num_scalars
  /// values, PE-major). `out` must be preallocated by the caller.
  void snapshot_scalars(std::int64_t* out) const;

  /// Zero all values (keeps registrations); used between experiments.
  void reset_values();

  // ---- exposition -----------------------------------------------------------
  /// Prometheus text format 0.0.4, one time series per PE (`pe` label).
  void write_prometheus(std::ostream& os) const;
  /// One JSON object: { "name": {"type":..,"help":..,"per_pe":[..]}, .. }.
  void write_json(std::ostream& os) const;

 private:
  struct Desc {
    std::string name;
    std::string help;
  };
  struct PeSlab {
    std::vector<std::uint64_t> counters;
    std::vector<std::int64_t> gauges;
    std::vector<HistogramData> hists;
  };

  void check_bound(int pe) const;

  std::vector<Desc> counters_, gauges_, hists_;
  std::vector<PeSlab> slabs_;
  int num_pes_ = 0;
};

}  // namespace ap::metrics
