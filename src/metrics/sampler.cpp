#include "metrics/sampler.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace ap::metrics {

void SampleRing::bind(int num_pes, std::size_t num_series,
                      std::size_t capacity) {
  if (num_pes <= 0)
    throw std::invalid_argument("SampleRing::bind: num_pes must be positive");
  if (capacity == 0)
    throw std::invalid_argument("SampleRing::bind: capacity must be >= 1");
  num_pes_ = num_pes;
  num_series_ = num_series;
  capacity_ = capacity;
  size_ = head_ = 0;
  overwritten_ = 0;
  times_.assign(capacity, 0);
  rows_.assign(capacity * static_cast<std::size_t>(num_pes) * num_series, 0);
}

void SampleRing::push(std::uint64_t t_cycles, const std::int64_t* row) {
  if (!bound()) throw std::logic_error("SampleRing::push before bind");
  const std::size_t stride = static_cast<std::size_t>(num_pes_) * num_series_;
  std::size_t slot;
  if (size_ < capacity_) {
    slot = (head_ + size_) % capacity_;
    ++size_;
  } else {
    slot = head_;
    head_ = (head_ + 1) % capacity_;
    ++overwritten_;
  }
  times_[slot] = t_cycles;
  if (stride > 0)
    std::memcpy(rows_.data() + slot * stride, row,
                stride * sizeof(std::int64_t));
}

SampleRing::View SampleRing::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("SampleRing::at");
  const std::size_t slot = (head_ + i) % capacity_;
  const std::size_t stride = static_cast<std::size_t>(num_pes_) * num_series_;
  return View{times_[slot], rows_.data() + slot * stride};
}

std::int64_t SampleRing::value(std::size_t i, int pe, std::size_t s) const {
  const View v = at(i);
  if (pe < 0 || pe >= num_pes_ || s >= num_series_)
    throw std::out_of_range("SampleRing::value");
  return v.row[static_cast<std::size_t>(pe) * num_series_ + s];
}

void SampleRing::clear() {
  size_ = head_ = 0;
  overwritten_ = 0;
}

// ---------------------------------------------------------------- detector

std::string_view to_string(AnomalyKind k) {
  switch (k) {
    case AnomalyKind::ProcBacklog: return "proc_backlog";
    case AnomalyKind::CommShare: return "comm_share";
  }
  return "unknown";
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

std::vector<int> diverging_pes(const std::vector<double>& values,
                               double factor, double min_abs) {
  std::vector<int> out;
  if (values.size() < 2) return out;  // a fleet of one has no stragglers
  const double med = median(values);
  for (std::size_t pe = 0; pe < values.size(); ++pe) {
    const double v = values[pe];
    if (v >= med + min_abs && v > factor * med)
      out.push_back(static_cast<int>(pe));
  }
  return out;
}

}  // namespace ap::metrics
