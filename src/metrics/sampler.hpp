// Periodic metrics sampler: a bounded ring of registry snapshots plus the
// online straggler/backpressure detector.
//
// The scheduler invokes a tick hook once per round-robin sweep (see
// rt::set_tick_hook); the Profiler decides — based on virtual time — when a
// sample is due, copies the registry's scalar series into the ring, and
// runs the detector against the fleet. Everything here is fixed-capacity:
// the ring overwrites its oldest snapshot and anomalies saturate at a cap,
// so a week-long run cannot grow profiler memory.
//
// "Virtual time" is the profiler's cycle source (paper §III-B): 1000
// cycles == 1 us, so one virtual millisecond == 1e6 cycles. Under the
// rdtsc source the same constant applies, assuming a ~1 GHz clock — the
// cadence is a sampling period, not a wall-clock contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace ap::metrics {

/// Cycles per virtual millisecond (matches chrome_trace's 1000 cyc/us).
inline constexpr std::uint64_t kCyclesPerVirtualMs = 1'000'000;

/// Bounded ring of fleet snapshots. One entry = one timestamp plus the
/// scalar series of every PE (PE-major, `num_series` values per PE).
class SampleRing {
 public:
  void bind(int num_pes, std::size_t num_series, std::size_t capacity);
  [[nodiscard]] bool bound() const { return capacity_ > 0; }

  /// Append a snapshot (row = num_pes * num_series values), overwriting
  /// the oldest when full.
  void push(std::uint64_t t_cycles, const std::int64_t* row);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Snapshots overwritten since bind (total pushed = size + overwritten).
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }
  [[nodiscard]] int num_pes() const { return num_pes_; }
  [[nodiscard]] std::size_t num_series() const { return num_series_; }

  struct View {
    std::uint64_t t_cycles = 0;
    /// num_pes * num_series values, PE-major.
    const std::int64_t* row = nullptr;
  };
  /// i = 0 is the oldest retained snapshot, i = size()-1 the newest.
  [[nodiscard]] View at(std::size_t i) const;
  /// One sampled value: snapshot i, rank pe, series s.
  [[nodiscard]] std::int64_t value(std::size_t i, int pe,
                                   std::size_t s) const;

  void clear();

 private:
  int num_pes_ = 0;
  std::size_t num_series_ = 0;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  std::size_t head_ = 0;  // index of the oldest entry
  std::uint64_t overwritten_ = 0;
  std::vector<std::uint64_t> times_;
  std::vector<std::int64_t> rows_;  // capacity * num_pes * num_series
};

// ---------------------------------------------------------------- detector

enum class AnomalyKind {
  ProcBacklog,  ///< a PE's unprocessed-message backlog diverges from fleet
  CommShare     ///< a PE's COMM share of cycles diverges from fleet
};

[[nodiscard]] std::string_view to_string(AnomalyKind k);

struct Anomaly {
  AnomalyKind kind;
  int pe = -1;
  std::uint64_t t_cycles = 0;  ///< virtual time of the detecting sample
  double value = 0.0;          ///< the PE's sampled value
  double fleet_median = 0.0;
};

/// Median of `v` (by copy; v may be unsorted).
[[nodiscard]] double median(std::vector<double> v);

/// PEs whose value exceeds `factor` times the fleet median AND lies at
/// least `min_abs` above it. The absolute floor keeps a fleet of tiny
/// values (median 0.1, straggler 0.4) from spamming findings.
[[nodiscard]] std::vector<int> diverging_pes(const std::vector<double>& values,
                                             double factor, double min_abs);

/// Saturating anomaly log: keeps the first `cap` anomalies and counts the
/// rest, so detection stays O(1) memory over unbounded runs.
class AnomalyLog {
 public:
  explicit AnomalyLog(std::size_t cap = 4096) : cap_(cap) {}
  void record(const Anomaly& a) {
    if (items_.size() < cap_)
      items_.push_back(a);
    else
      ++dropped_;
  }
  [[nodiscard]] const std::vector<Anomaly>& items() const { return items_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear() {
    items_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t cap_;
  std::vector<Anomaly> items_;
  std::uint64_t dropped_ = 0;
};

}  // namespace ap::metrics
