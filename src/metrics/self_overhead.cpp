#include "metrics/self_overhead.hpp"

#include <stdexcept>

namespace ap::metrics {

std::string_view to_string(OverheadCategory c) {
  switch (c) {
    case OverheadCategory::actor_send: return "actor_send";
    case OverheadCategory::actor_handler: return "actor_handler";
    case OverheadCategory::comm_region: return "comm_region";
    case OverheadCategory::transfer: return "transfer";
    case OverheadCategory::rma: return "rma";
    case OverheadCategory::sampler: return "sampler";
    case OverheadCategory::superstep: return "superstep";
    case OverheadCategory::check: return "check";
    case OverheadCategory::publish: return "publish";
    case OverheadCategory::kCount: break;
  }
  return "unknown";
}

void OverheadMeter::bind(int num_pes) {
  if (num_pes <= 0)
    throw std::invalid_argument("OverheadMeter::bind: num_pes must be > 0");
  num_pes_ = num_pes;
  cells_.assign(static_cast<std::size_t>(num_pes) + 1, {});
}

std::size_t OverheadMeter::slot(int pe) const {
  if (pe == kGlobalSlot || pe >= num_pes_)
    return static_cast<std::size_t>(num_pes_);
  return static_cast<std::size_t>(pe);
}

void OverheadMeter::add(int pe, OverheadCategory c, std::uint64_t cycles) {
  if (!bound()) return;  // ticks may fire before the first world binds
  cells_[slot(pe < 0 ? kGlobalSlot : pe)][static_cast<std::size_t>(c)] +=
      cycles;
}

std::uint64_t OverheadMeter::cycles(int pe, OverheadCategory c) const {
  if (!bound()) return 0;
  return cells_[slot(pe)][static_cast<std::size_t>(c)];
}

std::uint64_t OverheadMeter::total(int pe) const {
  if (!bound()) return 0;
  std::uint64_t t = 0;
  for (std::uint64_t v : cells_[slot(pe)]) t += v;
  return t;
}

std::uint64_t OverheadMeter::grand_total() const {
  std::uint64_t t = 0;
  for (const auto& row : cells_)
    for (std::uint64_t v : row) t += v;
  return t;
}

void OverheadMeter::reset() {
  for (auto& row : cells_) row.fill(0);
}

}  // namespace ap::metrics
