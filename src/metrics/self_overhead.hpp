// Profiler self-overhead accounting (tentpole part 4).
//
// The paper claims tracing overhead is "modest" (§IV-E) but never itemizes
// it. This meter turns the claim into a measured, regression-checkable
// number: every ActorProf observer callback and the sampler tick wrap
// themselves in an OverheadMeter::Scope, which charges the elapsed *wall*
// rdtsc cycles (always real time, regardless of the virtual cycle source —
// we are measuring the profiler's own cost, not the model's) to a per-PE,
// per-category bucket. Results surface in overall.txt ("SelfOverhead"
// lines), in write_metrics() output, and in the overhead_tracing bench's
// JSON trajectory.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "papi/cycles.hpp"

namespace ap::metrics {

/// Where the profiler spends its own cycles.
enum class OverheadCategory : int {
  actor_send,     ///< ActorObserver::on_send (fold + logical record)
  actor_handler,  ///< on_handler_begin/on_handler_end
  comm_region,    ///< on_comm_begin/on_comm_end (the region folds)
  transfer,       ///< TransferObserver::on_transfer/on_advance
  rma,            ///< RmaObserver callbacks (shmem layer metrics)
  sampler,        ///< periodic snapshot + straggler detection
  superstep,      ///< on_collective_arrive superstep close/record
  check,          ///< BSP conformance checker (docs/CHECKING.md)
  publish,        ///< live-stream publisher staging (docs/OBSERVABILITY.md)
  kCount
};

inline constexpr int kOverheadCategories =
    static_cast<int>(OverheadCategory::kCount);

[[nodiscard]] std::string_view to_string(OverheadCategory c);

/// Per-PE (plus one fleet-global slot) cycle buckets per category.
class OverheadMeter {
 public:
  /// The tick hook runs outside any PE context; its cost lands here.
  static constexpr int kGlobalSlot = -1;

  void bind(int num_pes);
  [[nodiscard]] bool bound() const { return num_pes_ > 0; }
  [[nodiscard]] int num_pes() const { return num_pes_; }

  /// Charge `cycles` to (pe, category). pe == kGlobalSlot uses the fleet
  /// slot; out-of-range PEs land there too (never lose cycles, never throw
  /// on the hot path).
  void add(int pe, OverheadCategory c, std::uint64_t cycles);

  [[nodiscard]] std::uint64_t cycles(int pe, OverheadCategory c) const;
  /// Sum over categories for one PE (kGlobalSlot for the fleet slot).
  [[nodiscard]] std::uint64_t total(int pe) const;
  /// Sum over every PE and the fleet slot.
  [[nodiscard]] std::uint64_t grand_total() const;

  void reset();

  /// RAII cost scope. The PE is read at *destruction* (callbacks may
  /// early-return before a PE context exists; the dtor charges wherever
  /// the call actually ran). A null meter makes the scope free.
  class Scope {
   public:
    Scope(OverheadMeter* meter, OverheadCategory c, int pe)
        : meter_(meter), c_(c), pe_(pe) {
      if (meter_ != nullptr) t0_ = papi::rdtsc_now();
    }
    ~Scope() {
      if (meter_ != nullptr) meter_->add(pe_, c_, papi::rdtsc_now() - t0_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    OverheadMeter* meter_;
    OverheadCategory c_;
    int pe_;
    std::uint64_t t0_ = 0;
  };

 private:
  [[nodiscard]] std::size_t slot(int pe) const;

  int num_pes_ = 0;
  /// (num_pes + 1) rows of kOverheadCategories buckets; last row = fleet.
  std::vector<std::array<std::uint64_t, kOverheadCategories>> cells_;
};

}  // namespace ap::metrics
