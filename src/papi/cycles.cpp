#include "papi/cycles.hpp"

namespace ap::papi {

namespace {
// Plain global (was thread_local): the threads backend's workers must see
// the source chosen on the launching thread. Always set before a launch
// creates workers, so thread creation orders the write.
CycleSource g_source = CycleSource::virtual_;
}

CycleSource cycle_source() { return g_source; }
void set_cycle_source(CycleSource s) { g_source = s; }

std::uint64_t cycles_now() {
  if (g_source == CycleSource::rdtsc) return rdtsc_now();
  return counter_value(Event::TOT_CYC);
}

}  // namespace ap::papi
