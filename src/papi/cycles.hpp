// Cycle counting for the Overall profile (paper §III-B).
//
// The paper deliberately uses the raw x86 `rdtsc` instruction (not rdtscp,
// which would flush the pipeline) to timestamp MAIN/PROC/COMM transitions.
// We do the same on x86-64 and fall back to steady_clock elsewhere. A
// *virtual* mode derives "cycles" from the sim-PAPI cost model instead,
// giving bit-deterministic overall profiles for tests and reproducible
// figures (the paper's analyses only use cycle ratios, which both modes
// preserve).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

#include "papi/papi.hpp"

namespace ap::papi {

enum class CycleSource {
  rdtsc,    ///< hardware timestamp counter (paper's choice)
  virtual_  ///< deterministic: sim-PAPI PAPI_TOT_CYC of the current PE
};

CycleSource cycle_source();
void set_cycle_source(CycleSource s);

/// Current cycle stamp of the calling PE under the active source.
inline std::uint64_t rdtsc_now() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

std::uint64_t cycles_now();

}  // namespace ap::papi
