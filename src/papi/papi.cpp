#include "papi/cycles.hpp"
#include "papi/papi.hpp"

#include <atomic>
#include <string>
#include <stdexcept>
#include <vector>

#include "runtime/scheduler.hpp"

namespace ap::papi {

namespace {

constexpr std::size_t kN = static_cast<std::size_t>(Event::kCount);

struct EventSet {
  bool live = false;     // created and not destroyed
  bool running = false;  // between start() and stop()
  int n = 0;
  std::array<Event, kMaxEventsPerSet> events{};
  std::array<std::uint64_t, kMaxEventsPerSet> started_at{};
  std::array<std::uint64_t, kMaxEventsPerSet> accumulated{};
};

struct PeCounters {
  std::array<std::uint64_t, kN> raw{};
  std::vector<EventSet> sets;
  int running_sets = 0;  // concurrent-event limit spans sets
  // Sub-miss residues (1/1024 units) so per-call integer rounding does not
  // swallow miss rates when callers account one access at a time.
  std::uint64_t l1_residue = 0;
  std::uint64_t l2_residue = 0;
};

// Slot 0 holds the "outside any launch" counters; slot pe+1 holds PE pe.
// Deliberately thread_local even under the threads backend: a PE's
// counters live on the one worker that runs it (workers are created fresh
// per launch), so the hot account_* paths never need atomics.
thread_local std::vector<PeCounters> g_pes(1);
// The cost model is a plain global: set before a launch (tests, ablation)
// and read-only inside one, so thread creation orders it for workers.
CostModel g_model{};

// Fleet-clock state for the threads backend: with PEs spread over worker
// threads, the virtual clock sync cannot scan one thread's g_pes to find
// the fleet max — workers publish their local max into a shared CAS-max
// cell instead. Enabled by shmem::run around a threads-backend launch.
bool g_shared_clock = false;
std::atomic<std::uint64_t> g_fleet_max{0};

PeCounters& pe_counters() {
  const int pe = rt::my_pe();
  const std::size_t idx = static_cast<std::size_t>(pe + 1);
  if (g_pes.size() <= idx) g_pes.resize(idx + 1);
  return g_pes[idx];
}

std::uint64_t& raw(Event e) {
  return pe_counters().raw[static_cast<std::size_t>(e)];
}

/// How many of `total` concurrently running events exist on this PE.
int total_running_events(const PeCounters& pc) {
  int n = 0;
  for (const EventSet& s : pc.sets)
    if (s.live && s.running) n += s.n;
  return n;
}

/// Charge `n` identical operations in one call. Every per-event amount is
/// the single-call rounded value multiplied by n, so one charge_n(n, ...)
/// is byte-identical to n charge(...) calls — the property the runtime's
/// once-per-batch accounting depends on.
void charge_n(std::uint64_t n, std::uint64_t ins, std::uint64_t loads,
              std::uint64_t stores, std::uint64_t branches,
              std::uint64_t l1_dcm, std::uint64_t l2_dcm) {
  raw(Event::TOT_INS) += n * ins;
  raw(Event::LD_INS) += n * loads;
  raw(Event::SR_INS) += n * stores;
  raw(Event::LST_INS) += n * (loads + stores);
  raw(Event::BR_INS) += n * branches;
  raw(Event::BR_MSP) += n * (branches * g_model.br_msp_per_1024 / 1024);
  raw(Event::L1_DCM) += n * l1_dcm;
  raw(Event::L2_DCM) += n * l2_dcm;
  const CostModel& m = g_model;
  const std::uint64_t cyc = ins * 16 / (m.ipc_x16 == 0 ? 16 : m.ipc_x16) +
                            l1_dcm * m.l1_penalty_cycles +
                            l2_dcm * m.l2_penalty_cycles;
  raw(Event::TOT_CYC) += n * cyc;
}

void charge(std::uint64_t ins, std::uint64_t loads, std::uint64_t stores,
            std::uint64_t branches, std::uint64_t l1_dcm,
            std::uint64_t l2_dcm) {
  charge_n(1, ins, loads, stores, branches, l1_dcm, l2_dcm);
}

}  // namespace

std::string_view name(Event e) {
  switch (e) {
    case Event::TOT_INS: return "PAPI_TOT_INS";
    case Event::TOT_CYC: return "PAPI_TOT_CYC";
    case Event::LST_INS: return "PAPI_LST_INS";
    case Event::LD_INS: return "PAPI_LD_INS";
    case Event::SR_INS: return "PAPI_SR_INS";
    case Event::L1_DCM: return "PAPI_L1_DCM";
    case Event::L2_DCM: return "PAPI_L2_DCM";
    case Event::BR_INS: return "PAPI_BR_INS";
    case Event::BR_MSP: return "PAPI_BR_MSP";
    case Event::kCount: break;
  }
  return "PAPI_UNKNOWN";
}

std::optional<Event> parse(std::string_view s) {
  for (int i = 0; i < kNumEvents; ++i) {
    const Event e = static_cast<Event>(i);
    if (name(e) == s) return e;
  }
  return std::nullopt;
}

const CostModel& cost_model() { return g_model; }
void set_cost_model(const CostModel& m) { g_model = m; }

void account(Event e, std::uint64_t n) {
  if (e == Event::kCount) return;
  raw(e) += n;
}

void account_message_construct_n(std::size_t bytes, std::uint64_t n) {
  const CostModel& m = g_model;
  const std::uint64_t payload_ins =
      bytes * m.ins_per_payload_byte_num / m.ins_per_payload_byte_den;
  const std::uint64_t ins = m.ins_per_message_construct + payload_ins;
  charge_n(n, ins, /*loads=*/2 + bytes / 16, /*stores=*/3 + bytes / 8,
           m.branches_per_message, /*l1=*/0, /*l2=*/0);
}

void account_message_construct(std::size_t bytes) {
  account_message_construct_n(bytes, 1);
}

void account_message_handle_n(std::size_t bytes, std::uint64_t n) {
  const CostModel& m = g_model;
  const std::uint64_t payload_ins =
      bytes * m.ins_per_payload_byte_num / m.ins_per_payload_byte_den;
  const std::uint64_t ins = m.ins_per_message_handle + payload_ins;
  charge_n(n, ins, /*loads=*/3 + bytes / 8, /*stores=*/1 + bytes / 16,
           m.branches_per_message, /*l1=*/0, /*l2=*/0);
}

void account_message_handle(std::size_t bytes) {
  account_message_handle_n(bytes, 1);
}

void account_buffer_copy(std::size_t bytes) {
  // Vectorized copy: ~1 instruction per 16 bytes each way.
  const std::uint64_t ops = bytes / 16 + 1;
  charge(2 * ops, ops, ops, 2, bytes / 256, 0);
}

void account_loop_iters(std::uint64_t n) {
  charge(4 * n, n, 0, n, 0, 0);
}

void account_random_access(std::size_t footprint, std::uint64_t n) {
  const CostModel& m = g_model;
  PeCounters& pc = pe_counters();
  std::uint64_t l1 = 0, l2 = 0;
  if (footprint > m.l1_bytes) {
    const std::uint64_t acc = n * m.l1_miss_per_1024_beyond_l1 + pc.l1_residue;
    l1 = acc / 1024;
    pc.l1_residue = acc % 1024;
  }
  if (footprint > m.l2_bytes) {
    const std::uint64_t acc = n * m.l2_miss_per_1024_beyond_l2 + pc.l2_residue;
    l2 = acc / 1024;
    pc.l2_residue = acc % 1024;
  }
  charge(2 * n, n, 0, n, l1, l2);
}

void account_local_flush(std::size_t bytes) {
  (void)bytes;
  charge(20, 4, 4, 4, 0, 0);
  raw(Event::TOT_CYC) += g_model.net_local_flush_cycles;
}

void account_remote_put(std::size_t bytes) {
  charge(40, 6, 6, 6, 1, 0);
  raw(Event::TOT_CYC) += g_model.net_put_fixed_cycles +
                         bytes * g_model.net_put_cycles_per_byte_x16 / 16;
}

void account_quiet(std::size_t outstanding_puts) {
  charge(30, 4, 2, 6, 0, 0);
  raw(Event::TOT_CYC) += g_model.net_quiet_fixed_cycles +
                         outstanding_puts * g_model.net_quiet_cycles_per_put;
}

void account_signal_put() {
  charge(15, 2, 2, 2, 0, 0);
  raw(Event::TOT_CYC) += g_model.net_signal_put_cycles;
}

void account_poll() {
  charge(12, 4, 0, 4, 0, 0);
  raw(Event::TOT_CYC) += g_model.net_poll_cycles;
}

void sync_virtual_clock() {
  if (cycle_source() != CycleSource::virtual_) return;
  std::uint64_t mx = 0;
  for (const PeCounters& pc : g_pes)
    mx = std::max(mx, pc.raw[static_cast<std::size_t>(Event::TOT_CYC)]);
  if (g_shared_clock) {
    // Publish this worker's local max and adopt the fleet-wide one.
    std::uint64_t cur = g_fleet_max.load(std::memory_order_relaxed);
    while (mx > cur &&
           !g_fleet_max.compare_exchange_weak(cur, mx,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
    }
    mx = std::max(mx, g_fleet_max.load(std::memory_order_relaxed));
  }
  std::uint64_t& mine = raw(Event::TOT_CYC);
  mine = std::max(mine, mx);
}

void set_shared_clock(bool on) {
  g_shared_clock = on;
  g_fleet_max.store(0, std::memory_order_relaxed);
}

std::uint64_t counter_value(Event e) {
  return pe_counters().raw[static_cast<std::size_t>(e)];
}

std::array<std::uint64_t, kN> snapshot() { return pe_counters().raw; }

void reset_all() {
  g_pes.clear();
  g_pes.resize(1);
  g_fleet_max.store(0, std::memory_order_relaxed);
}

int library_init() { return PAPI_OK; }

int create_eventset(int* set) {
  if (set == nullptr) return PAPI_EINVAL;
  PeCounters& pc = pe_counters();
  for (std::size_t i = 0; i < pc.sets.size(); ++i) {
    if (!pc.sets[i].live) {
      pc.sets[i] = EventSet{};
      pc.sets[i].live = true;
      *set = static_cast<int>(i);
      return PAPI_OK;
    }
  }
  pc.sets.push_back(EventSet{});
  pc.sets.back().live = true;
  *set = static_cast<int>(pc.sets.size() - 1);
  return PAPI_OK;
}

namespace {
EventSet* live_set(int set) {
  PeCounters& pc = pe_counters();
  if (set < 0 || static_cast<std::size_t>(set) >= pc.sets.size())
    return nullptr;
  EventSet& s = pc.sets[static_cast<std::size_t>(set)];
  return s.live ? &s : nullptr;
}
}  // namespace

int add_event(int set, Event e) {
  EventSet* s = live_set(set);
  if (s == nullptr) return PAPI_EINVAL;
  if (s->running) return PAPI_EISRUN;
  if (e == Event::kCount) return PAPI_ENOEVNT;
  if (s->n >= kMaxEventsPerSet) return PAPI_ECNFLCT;
  for (int i = 0; i < s->n; ++i)
    if (s->events[static_cast<std::size_t>(i)] == e) return PAPI_ECNFLCT;
  s->events[static_cast<std::size_t>(s->n++)] = e;
  return PAPI_OK;
}

int num_events(int set) {
  EventSet* s = live_set(set);
  return s == nullptr ? PAPI_EINVAL : s->n;
}

int start(int set) {
  EventSet* s = live_set(set);
  if (s == nullptr) return PAPI_EINVAL;
  if (s->running) return PAPI_EISRUN;
  PeCounters& pc = pe_counters();
  // Model the hardware limitation the paper cites: at most four events can
  // be counted concurrently on one PE, across all of its event sets.
  if (total_running_events(pc) + s->n > kMaxEventsPerSet) return PAPI_ECNFLCT;
  for (int i = 0; i < s->n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    s->started_at[idx] = pc.raw[static_cast<std::size_t>(s->events[idx])];
    s->accumulated[idx] = 0;
  }
  s->running = true;
  ++pc.running_sets;
  return PAPI_OK;
}

namespace {
void fold_running(EventSet& s, PeCounters& pc) {
  for (int i = 0; i < s.n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t now = pc.raw[static_cast<std::size_t>(s.events[idx])];
    s.accumulated[idx] += now - s.started_at[idx];
    s.started_at[idx] = now;
  }
}
}  // namespace

int stop(int set, long long* values) {
  EventSet* s = live_set(set);
  if (s == nullptr) return PAPI_EINVAL;
  if (!s->running) return PAPI_ENOTRUN;
  PeCounters& pc = pe_counters();
  fold_running(*s, pc);
  s->running = false;
  --pc.running_sets;
  if (values != nullptr)
    for (int i = 0; i < s->n; ++i)
      values[i] = static_cast<long long>(
          s->accumulated[static_cast<std::size_t>(i)]);
  return PAPI_OK;
}

int read(int set, long long* values) {
  EventSet* s = live_set(set);
  if (s == nullptr) return PAPI_EINVAL;
  if (values == nullptr) return PAPI_EINVAL;
  if (s->running) fold_running(*s, pe_counters());
  for (int i = 0; i < s->n; ++i)
    values[i] =
        static_cast<long long>(s->accumulated[static_cast<std::size_t>(i)]);
  return PAPI_OK;
}

int reset(int set) {
  EventSet* s = live_set(set);
  if (s == nullptr) return PAPI_EINVAL;
  PeCounters& pc = pe_counters();
  for (int i = 0; i < s->n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    s->accumulated[idx] = 0;
    s->started_at[idx] = pc.raw[static_cast<std::size_t>(s->events[idx])];
  }
  return PAPI_OK;
}

int cleanup_eventset(int set) {
  EventSet* s = live_set(set);
  if (s == nullptr) return PAPI_EINVAL;
  if (s->running) return PAPI_EISRUN;
  s->n = 0;
  return PAPI_OK;
}

int destroy_eventset(int* set) {
  if (set == nullptr) return PAPI_EINVAL;
  EventSet* s = live_set(*set);
  if (s == nullptr) return PAPI_EINVAL;
  if (s->running) return PAPI_EISRUN;
  s->live = false;
  *set = -1;
  return PAPI_OK;
}

ScopedCounting::ScopedCounting(std::initializer_list<Event> events) {
  if (create_eventset(&set_) != PAPI_OK)
    throw std::runtime_error("sim-PAPI: create_eventset failed");
  for (Event e : events) {
    if (add_event(set_, e) != PAPI_OK)
      throw std::runtime_error("sim-PAPI: add_event failed (too many events?)");
    ++n_;
  }
  if (start(set_) != PAPI_OK)
    throw std::runtime_error("sim-PAPI: start failed (4-event limit?)");
}

ScopedCounting::~ScopedCounting() {
  long long dummy[kMaxEventsPerSet] = {};
  (void)stop(set_, dummy);
  (void)destroy_eventset(&set_);
}

std::array<long long, kMaxEventsPerSet> ScopedCounting::values() const {
  std::array<long long, kMaxEventsPerSet> out{};
  (void)read(set_, out.data());
  return out;
}

}  // namespace ap::papi
