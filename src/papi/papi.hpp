// sim-PAPI: a PAPI-compatible hardware-performance-counter substrate.
//
// The paper reads real PAPI counters (PAPI_TOT_INS, PAPI_LST_INS, ...)
// around the MAIN and PROC segments of an HClib-Actor program. This box has
// no PAPI and no perf counters exposed, so — per the substitution rule in
// DESIGN.md — we provide the same *API surface* (event sets, a maximum of
// four concurrently-recorded events, start/stop/read/accum/reset) backed by
// a deterministic software cost model. The runtime and the applications
// feed the model through the account_* functions; every counter is
// per-PE. Absolute values are model units; relative per-PE shapes (what
// Figures 10–11 plot) are preserved because the model is linear in the
// work each PE actually performs.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

namespace ap::papi {

/// The preset events the model maintains (names match PAPI's).
enum class Event : int {
  TOT_INS,  ///< total instructions completed
  TOT_CYC,  ///< total cycles (derived: instructions + memory penalties)
  LST_INS,  ///< load/store instructions (LD_INS + SR_INS)
  LD_INS,   ///< load instructions
  SR_INS,   ///< store instructions
  L1_DCM,   ///< level-1 data-cache misses
  L2_DCM,   ///< level-2 data-cache misses
  BR_INS,   ///< branch instructions
  BR_MSP,   ///< mispredicted branches
  kCount
};

inline constexpr int kNumEvents = static_cast<int>(Event::kCount);

/// "PAPI_TOT_INS"-style canonical name.
std::string_view name(Event e);
/// Parse a canonical name; nullopt for unknown events.
std::optional<Event> parse(std::string_view name);

// ---------------------------------------------------------------------------
// Software cost model. All account_* calls charge the *current PE* (the PE
// executing when called; a process-global slot is used outside any launch so
// the module is testable standalone).
// ---------------------------------------------------------------------------

/// Tunable instruction/miss costs of the abstract operations. The defaults
/// approximate a superscalar x86 core; they only need to be *fixed*, not
/// exact, for the paper's relative analyses to hold.
struct CostModel {
  std::uint64_t ins_per_message_construct = 12;
  std::uint64_t ins_per_message_handle = 28;
  std::uint64_t ins_per_payload_byte_num = 1;   // +bytes/8 instructions
  std::uint64_t ins_per_payload_byte_den = 8;
  std::uint64_t branches_per_message = 4;
  /// Branch misprediction rate in 1/1024 units (2% ≈ 20).
  std::uint64_t br_msp_per_1024 = 20;
  /// L1 miss rate (per access, 1/1024) once a random-access footprint
  /// exceeds the L1 / L2 sizes below.
  std::uint64_t l1_miss_per_1024_beyond_l1 = 600;
  std::uint64_t l2_miss_per_1024_beyond_l2 = 700;
  std::size_t l1_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  /// Cycle accounting: cycles = ins/ipc + l1_dcm*l1_penalty + l2_dcm*...
  std::uint64_t ipc_x16 = 32;  // IPC = 2.0 in 1/16 units
  std::uint64_t l1_penalty_cycles = 12;
  std::uint64_t l2_penalty_cycles = 60;
  /// Network model (cycles charged on the initiating PE; these dominate
  /// T_COMM exactly as the real interconnect does — paper Fig. 12/13):
  std::uint64_t net_local_flush_cycles = 350;       // shmem_ptr memcpy path
  std::uint64_t net_put_fixed_cycles = 1400;        // putmem_nbi injection
  std::uint64_t net_put_cycles_per_byte_x16 = 8;    // bytes/2 cycles
  std::uint64_t net_quiet_fixed_cycles = 2600;      // fabric round trip
  std::uint64_t net_quiet_cycles_per_put = 900;     // completion per put
  std::uint64_t net_signal_put_cycles = 700;        // 8-byte signal
  /// One conveyor progress round (advance): polling rings, checking acks.
  /// This is what makes *waiting* visible — a PE stalled on a straggler
  /// keeps polling, accruing COMM cycles, exactly like the idle time the
  /// paper's rdtsc measurements capture on a real cluster.
  std::uint64_t net_poll_cycles = 150;
};

const CostModel& cost_model();
/// Replace the model (tests/ablation); affects subsequent accounting only.
void set_cost_model(const CostModel& m);

/// Raw accounting: add `n` to one event of the current PE.
void account(Event e, std::uint64_t n);

/// A message of `bytes` payload is marshalled and appended to a mailbox.
void account_message_construct(std::size_t bytes);
/// A received message of `bytes` payload is handled by user code.
void account_message_handle(std::size_t bytes);
/// Batch forms: `n` messages accounted in one call. Charges are exactly
/// n times the single-call charge (per-call rounding preserved), so the
/// runtime's batch-drain path produces byte-identical counters to the
/// per-item path it replaced.
void account_message_construct_n(std::size_t bytes, std::uint64_t n);
void account_message_handle_n(std::size_t bytes, std::uint64_t n);
/// Bulk memcpy of `bytes` (buffer aggregation and delivery).
void account_buffer_copy(std::size_t bytes);
/// `n` iterations of scalar loop work.
void account_loop_iters(std::uint64_t n);
/// `n` data-dependent accesses into a structure of `footprint` bytes
/// (models cache behaviour of irregular access).
void account_random_access(std::size_t footprint, std::uint64_t n);
/// Intra-node buffer flush of `bytes` through shmem_ptr (local_send).
void account_local_flush(std::size_t bytes);
/// Inter-node shmem_putmem_nbi of `bytes` (nonblock_send).
void account_remote_put(std::size_t bytes);
/// shmem_quiet completing `outstanding_puts` non-blocking puts.
void account_quiet(std::size_t outstanding_puts);
/// An 8-byte signal/ack put.
void account_signal_put();
/// One conveyor progress/poll round (advance call).
void account_poll();

/// Virtual-time synchronization (virtual cycle source only; no-op under
/// rdtsc). Sets the calling PE's TOT_CYC to the maximum across all PEs:
/// a PE that polls while a straggler works "spends" that time waiting, so
/// its overall profile accrues the wait in whatever region it polls from
/// (COMM) — exactly how wall-clock rdtsc behaves on a real cluster where
/// every PE leaves the epoch together.
void sync_virtual_clock();

/// Threads-backend fleet clock: when on, sync_virtual_clock() maxes
/// through a process-global cell shared by all worker threads instead of
/// (only) the calling thread's local PEs. Toggled by shmem::run around a
/// threads-backend launch; off means the historical fiber behaviour.
void set_shared_clock(bool on);

/// Current PE's raw counter (monotone within a launch).
std::uint64_t counter_value(Event e);
/// Snapshot of all raw counters of the current PE.
std::array<std::uint64_t, static_cast<std::size_t>(Event::kCount)> snapshot();
/// Zero every counter of every PE and drop all event sets (between runs).
void reset_all();

// ---------------------------------------------------------------------------
// PAPI-compatible event-set API (per PE, like PAPI's per-thread sets).
// Return codes follow PAPI conventions: 0 == PAPI_OK, negative == error.
// ---------------------------------------------------------------------------

inline constexpr int PAPI_OK = 0;
inline constexpr int PAPI_EINVAL = -1;
inline constexpr int PAPI_ECNFLCT = -11;
inline constexpr int PAPI_EISRUN = -10;
inline constexpr int PAPI_ENOTRUN = -9;
inline constexpr int PAPI_ENOEVNT = -7;

/// Hardware limit the paper calls out: at most four concurrent events.
inline constexpr int kMaxEventsPerSet = 4;

int library_init();
/// Create an event set for the current PE; writes its handle into *set.
int create_eventset(int* set);
int add_event(int set, Event e);
int num_events(int set);
int start(int set);
/// Stop counting; if `values` non-null, writes one long long per added
/// event, in insertion order.
int stop(int set, long long* values);
/// Read without stopping.
int read(int set, long long* values);
/// Zero the running deltas.
int reset(int set);
int cleanup_eventset(int set);
int destroy_eventset(int* set);

/// RAII convenience: counts the given events for the lifetime of the guard.
class ScopedCounting {
 public:
  explicit ScopedCounting(std::initializer_list<Event> events);
  ~ScopedCounting();
  ScopedCounting(const ScopedCounting&) = delete;
  ScopedCounting& operator=(const ScopedCounting&) = delete;

  /// Values so far (ordered as the constructor's list).
  [[nodiscard]] std::array<long long, kMaxEventsPerSet> values() const;

 private:
  int set_ = -1;
  int n_ = 0;
};

}  // namespace ap::papi
