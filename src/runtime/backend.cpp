#include "runtime/backend.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

namespace ap::rt {

namespace {

// Written by the scheduler on the launching thread before any worker
// thread is created and reset after they have all joined, so reads from
// inside a launch are ordered by thread creation/join. No launch active =>
// the default.
Backend g_current_backend = Backend::fiber;

// Same strict-parse error shape as prof::Config::from_env (core/config.cpp)
// so a typo'd ACTORPROF_BACKEND reads like a typo'd ACTORPROF_METRICS.
[[noreturn]] void bad_value(const char* name, const char* text,
                            const char* expected) {
  throw std::invalid_argument(std::string(name) + "=\"" + text +
                              "\": expected " + expected);
}

Backend backend_from_env() {
  const char* v = std::getenv("ACTORPROF_BACKEND");
  if (v == nullptr) return Backend::fiber;
  const std::string s(v);
  if (s == "fiber") return Backend::fiber;
  if (s == "threads") return Backend::threads;
  bad_value("ACTORPROF_BACKEND", v, "\"fiber\" or \"threads\"");
}

int threads_from_env() {
  const char* v = std::getenv("ACTORPROF_THREADS");
  if (v == nullptr) return 0;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || parsed <= 0 ||
      parsed > 1'000'000)
    bad_value("ACTORPROF_THREADS", v, "a positive integer");
  return static_cast<int>(parsed);
}

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::fiber: return "fiber";
    case Backend::threads: return "threads";
    case Backend::auto_: break;
  }
  return "auto";
}

Backend resolve_backend(Backend requested) {
  if (requested != Backend::auto_) return requested;
  return backend_from_env();
}

int resolve_num_threads(int requested, int num_pes) {
  int n = requested;
  if (n <= 0) n = threads_from_env();
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;  // hardware_concurrency() may report 0
  if (n > num_pes) n = num_pes;
  return n;
}

Backend current_backend() { return g_current_backend; }

namespace detail {
void set_current_backend(Backend b) { g_current_backend = b; }
}  // namespace detail

}  // namespace ap::rt
