// Execution-backend selection for the SPMD runtime.
//
// The runtime can drive the P simulated PEs two ways:
//   * Backend::fiber   — every PE is a cooperative ucontext fiber on the
//                        launching thread, scheduled round-robin. Fully
//                        deterministic; the reproducibility mode and the
//                        default. Required by fault injection.
//   * Backend::threads — the PEs (still fibers, so blocking semantics are
//                        identical) are partitioned over N OS worker
//                        threads and run in parallel on real cores.
//
// Selection order: LaunchConfig::backend wins when not auto_; otherwise
// ACTORPROF_BACKEND ("fiber" or "threads", strict parse) decides; otherwise
// fiber. Worker count: LaunchConfig::num_threads when > 0, else
// ACTORPROF_THREADS (strict positive integer), else hardware concurrency,
// always clamped to [1, num_pes]. See docs/ARCHITECTURE.md ("Execution
// backends") and docs/PERFORMANCE.md (threading model).
#pragma once

namespace ap::rt {

enum class Backend {
  auto_,    ///< defer to ACTORPROF_BACKEND, defaulting to fiber
  fiber,    ///< deterministic single-threaded round-robin (default)
  threads,  ///< PEs multiplexed over real OS worker threads
};

[[nodiscard]] const char* to_string(Backend b);

/// Resolve an auto_ request against ACTORPROF_BACKEND (strict parse:
/// exactly "fiber" or "threads"; anything else throws
/// std::invalid_argument). Never returns auto_.
[[nodiscard]] Backend resolve_backend(Backend requested);

/// Resolve the worker-thread count for the threads backend: an explicit
/// `requested` > 0 wins, else ACTORPROF_THREADS (strict positive integer,
/// throws std::invalid_argument on anything else), else
/// std::thread::hardware_concurrency(). The result is clamped to
/// [1, num_pes] — more workers than PEs would only idle.
[[nodiscard]] int resolve_num_threads(int requested, int num_pes);

/// Backend of the launch currently running, Backend::fiber when no launch
/// is active (the degenerate "everything on this thread" case). Set by the
/// scheduler before PE bodies start, cleared after they all join, so any
/// code running inside a launch sees a stable value.
[[nodiscard]] Backend current_backend();

namespace detail {
/// Scheduler-internal: publish/clear the running backend.
void set_current_backend(Backend b);
}  // namespace detail

}  // namespace ap::rt
