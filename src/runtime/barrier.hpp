// Generation-counting (sense-reversing) barriers for the threads backend.
//
// Both barriers split arrival from completion so they compose with the
// cooperative scheduler: arrive() registers this PE and returns a ticket,
// passed(ticket) is the predicate the PE hands to rt::wait_until. Under the
// fiber backend the predicate flips within the same thread; under the
// threads backend the last arriver's release store publishes the new
// generation to every polling worker (acquire loads). The generation
// counter is the generalized form of a sense-reversing flag: waiters of
// round g poll for gen >= g+1, so reuse across rounds can never confuse a
// late waiter from the previous round.
//
// SenseBarrier is the flat counter (one contended cache line — fine up to a
// few dozen PEs); TreeBarrier fans arrivals into a fan_in-ary combining
// tree so large fleets don't serialize on one line. make_barrier() picks
// between them by participant count.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace ap::rt {

/// Flat centralized barrier: one arrival counter, one generation counter.
class SenseBarrier {
 public:
  explicit SenseBarrier(int participants) : participants_(participants) {}

  /// Register one arrival; returns the generation to wait for. The caller
  /// must not arrive again before passed(ticket) holds.
  std::uint64_t arrive(int /*pe*/ = 0) {
    // Our own arrival is part of this round, so the round cannot complete
    // (and gen_ cannot advance past ticket-1) between the load and the
    // fetch_add below.
    const std::uint64_t ticket = gen_.load(std::memory_order_acquire) + 1;
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      // Reset before publishing: re-arrivals are gated on the gen_ release
      // store, so no thread can touch arrived_ for the next round until
      // the reset is visible.
      arrived_.store(0, std::memory_order_relaxed);
      gen_.store(ticket, std::memory_order_release);
    }
    return ticket;
  }

  [[nodiscard]] bool passed(std::uint64_t ticket) const {
    return gen_.load(std::memory_order_acquire) >= ticket;
  }

  /// Permanently remove one participant (a fault-injected kill). Kills are
  /// fiber-backend-only, so this is never concurrent with an arrive(); if
  /// every remaining participant had already arrived, complete the round
  /// on the dead PE's behalf so the waiters are released.
  void deactivate(int /*pe*/ = 0) {
    --participants_;
    if (participants_ > 0 &&
        arrived_.load(std::memory_order_relaxed) >= participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      gen_.store(gen_.load(std::memory_order_relaxed) + 1,
                 std::memory_order_release);
    }
  }

  [[nodiscard]] int participants() const { return participants_; }

 private:
  int participants_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> gen_{0};
};

/// Combining-tree barrier: PEs arrive at a leaf; the last arriver of each
/// node climbs to its parent; the final climber at the root publishes the
/// new generation. Intermediate resets are ordered for the next round by
/// the acq_rel arrival RMWs along the climb plus the root's release store.
class TreeBarrier {
 public:
  explicit TreeBarrier(int participants, int fan_in = 4)
      : participants_(participants), fan_in_(fan_in < 2 ? 2 : fan_in) {
    // Level 0 holds the leaves; build parents until one root remains.
    int level_begin = 0;
    int level_count = (participants_ + fan_in_ - 1) / fan_in_;
    append_level(level_count, participants_);
    while (level_count > 1) {
      const int parent_count = (level_count + fan_in_ - 1) / fan_in_;
      const int parent_begin = static_cast<int>(nodes_.size());
      append_level(parent_count, level_count);
      for (int i = 0; i < level_count; ++i)
        nodes_[static_cast<std::size_t>(level_begin + i)]->parent =
            parent_begin + i / fan_in_;
      level_begin = parent_begin;
      level_count = parent_count;
    }
  }

  std::uint64_t arrive(int pe) {
    const std::uint64_t ticket = gen_.load(std::memory_order_acquire) + 1;
    int n = pe / fan_in_;  // this PE's leaf
    while (true) {
      Node& node = *nodes_[static_cast<std::size_t>(n)];
      if (node.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 !=
          node.expected)
        break;  // not last here; someone else carries the round upward
      node.arrived.store(0, std::memory_order_relaxed);
      if (node.parent < 0) {
        gen_.store(ticket, std::memory_order_release);
        break;
      }
      n = node.parent;
    }
    return ticket;
  }

  [[nodiscard]] bool passed(std::uint64_t ticket) const {
    return gen_.load(std::memory_order_acquire) >= ticket;
  }

  /// Permanently remove `pe` (a fault-injected kill; fiber-backend-only,
  /// so never concurrent with arrive()). Walk the PE's leaf-to-root path:
  /// shrink each node's expected count, prune subtrees that become empty,
  /// and — if the dead PE was the only arrival a node was still waiting
  /// for — complete the node exactly as its last arriver would have,
  /// climbing and ultimately publishing the generation at the root. A
  /// kill can therefore never strand the survivors of an open round.
  void deactivate(int pe) {
    --participants_;
    int n = pe / fan_in_;
    bool removing = true;  // first shrink expected; then climb as arrival
    while (n >= 0) {
      Node& node = *nodes_[static_cast<std::size_t>(n)];
      if (removing) {
        --node.expected;
        if (node.expected == 0) {
          // Subtree has no live PEs left: prune it from the parent too.
          // (Its arrived count is necessarily 0 — a sole live child that
          // had arrived would already have completed and reset the node.)
          n = node.parent;
          continue;
        }
        if (node.arrived.load(std::memory_order_relaxed) < node.expected)
          return;  // round still open here; a live arriver will finish it
      } else if (node.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 !=
                 node.expected) {
        return;
      }
      // Node completed: behave like its last arriver.
      node.arrived.store(0, std::memory_order_relaxed);
      if (node.parent < 0) {
        gen_.store(gen_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
        return;
      }
      n = node.parent;
      removing = false;
    }
  }

  [[nodiscard]] int participants() const { return participants_; }

 private:
  struct Node {
    std::atomic<int> arrived{0};
    int expected = 0;
    int parent = -1;
  };

  void append_level(int count, int child_total) {
    for (int i = 0; i < count; ++i) {
      auto node = std::make_unique<Node>();
      // The last node of a level may have fewer children.
      node->expected = std::min(fan_in_, child_total - i * fan_in_);
      nodes_.push_back(std::move(node));
    }
  }

  int participants_;
  int fan_in_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<std::uint64_t> gen_{0};
};

/// Arrival barrier behind one interface; picks the tree once the flat
/// counter's single cache line would start to hurt.
class ArrivalBarrier {
 public:
  static constexpr int kTreeThreshold = 32;

  explicit ArrivalBarrier(int participants) {
    if (participants >= kTreeThreshold)
      tree_ = std::make_unique<TreeBarrier>(participants);
    else
      flat_ = std::make_unique<SenseBarrier>(participants);
  }

  std::uint64_t arrive(int pe) {
    return tree_ ? tree_->arrive(pe) : flat_->arrive(pe);
  }
  [[nodiscard]] bool passed(std::uint64_t ticket) const {
    return tree_ ? tree_->passed(ticket) : flat_->passed(ticket);
  }
  void deactivate(int pe) {
    tree_ ? tree_->deactivate(pe) : flat_->deactivate(pe);
  }
  [[nodiscard]] int participants() const {
    return tree_ ? tree_->participants() : flat_->participants();
  }

 private:
  std::unique_ptr<SenseBarrier> flat_;
  std::unique_ptr<TreeBarrier> tree_;
};

}  // namespace ap::rt
