#include "runtime/fiber.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

// AddressSanitizer tracks one shadow region per thread stack; every
// swapcontext must be announced so ASan switches its notion of the live
// stack (and so exception unwinds on a fiber stack don't get flagged as
// stack-buffer underflows on the main stack). See sanitizer
// common_interface_defs.h and google/sanitizers#189.
#if defined(__SANITIZE_ADDRESS__)
#define AP_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define AP_ASAN_FIBERS 1
#endif
#endif

#if defined(AP_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

// ThreadSanitizer models each stack as a "fiber" with its own shadow
// clock; like ASan, every swapcontext must be announced or TSan reports
// wild data races between the stacks (and crashes on the context switch).
// See sanitizer tsan_interface.h. Mirrors the ASan annotations above —
// the tsan preset in CMakePresets.json builds with -fsanitize=thread.
#if defined(__SANITIZE_THREAD__)
#define AP_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define AP_TSAN_FIBERS 1
#endif
#endif

#if defined(AP_TSAN_FIBERS)
#include <sanitizer/tsan_interface.h>
#endif

namespace ap::rt {

namespace {
// The fiber currently running on this thread. thread_local both isolates
// independent launches on different threads and lets the threads backend's
// workers each run their own fiber concurrently — a fiber is only ever
// created/resumed on the one thread that owns it.
thread_local Fiber* g_current_fiber = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)),
      stack_(new unsigned char[stack_bytes]),
      stack_bytes_(stack_bytes) {
  if (!entry_) throw std::invalid_argument("Fiber: entry function is empty");
  if (stack_bytes_ < 16 * 1024)
    throw std::invalid_argument("Fiber: stack too small (< 16 KiB)");
}

Fiber::~Fiber() {
#if defined(AP_TSAN_FIBERS)
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr);
#if defined(AP_ASAN_FIBERS)
  // First entry: no fake stack to restore; capture the resumer's stack so
  // yield()/the final uc_link switch can announce the way back.
  __sanitizer_finish_switch_fiber(nullptr, &self->asan_resumer_bottom_,
                                  &self->asan_resumer_size_);
#endif
  try {
    self->entry_();
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = State::Finished;
#if defined(AP_ASAN_FIBERS)
  // The fiber is done: null fake-stack save destroys its fake frames, and
  // the uc_link transfer right after this return lands in resume().
  __sanitizer_start_switch_fiber(nullptr, self->asan_resumer_bottom_,
                                 self->asan_resumer_size_);
#endif
#if defined(AP_TSAN_FIBERS)
  // Announce the transfer back to the resumer.
  __tsan_switch_to_fiber(self->tsan_from_, 0);
#endif
  // Swap out explicitly instead of falling off the end into uc_link: the
  // fall-through would execute this function's instrumented epilogue
  // *after* the switch announcements above, so under TSan each finished
  // fiber would pop one frame from the resumer's shadow stack until it
  // underflows. The fiber is Finished and never resumed, so control never
  // returns here; uc_link stays set as a backstop.
  swapcontext(&self->context_, &self->return_context_);
}

void Fiber::resume() {
  if (state_ == State::Finished)
    throw std::logic_error("Fiber::resume: fiber already finished");
  if (state_ == State::Running)
    throw std::logic_error("Fiber::resume: fiber already running");

  if (state_ == State::Created) {
    if (getcontext(&context_) != 0)
      throw std::runtime_error("Fiber: getcontext failed");
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = &return_context_;
    makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 0);
  }

  Fiber* previous = g_current_fiber;
  g_current_fiber = this;
  state_ = State::Running;
#if defined(AP_ASAN_FIBERS)
  void* resumer_fake_stack = nullptr;
  __sanitizer_start_switch_fiber(&resumer_fake_stack, stack_.get(),
                                 stack_bytes_);
#endif
#if defined(AP_TSAN_FIBERS)
  // Lazy creation keeps never-resumed fibers free; the resumer may differ
  // between entries (nested schedulers), so re-capture it every time.
  if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
  tsan_from_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&return_context_, &context_);
#if defined(AP_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(resumer_fake_stack, nullptr, nullptr);
#endif
  g_current_fiber = previous;
  if (state_ == State::Running) state_ = State::Runnable;

  if (pending_exception_) {
    std::exception_ptr ex = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "Fiber::yield called outside any fiber");
#if defined(AP_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&self->asan_fake_stack_,
                                 self->asan_resumer_bottom_,
                                 self->asan_resumer_size_);
#endif
#if defined(AP_TSAN_FIBERS)
  __tsan_switch_to_fiber(self->tsan_from_, 0);
#endif
  swapcontext(&self->context_, &self->return_context_);
#if defined(AP_ASAN_FIBERS)
  // Back inside the fiber (a later resume); the resumer may differ, so
  // re-capture its stack extents.
  __sanitizer_finish_switch_fiber(self->asan_fake_stack_,
                                  &self->asan_resumer_bottom_,
                                  &self->asan_resumer_size_);
#endif
}

Fiber* Fiber::current() { return g_current_fiber; }

}  // namespace ap::rt
