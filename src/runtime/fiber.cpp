#include "runtime/fiber.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ap::rt {

namespace {
// The fiber currently running on this thread. The whole runtime is
// single-threaded by design (see DESIGN.md: determinism), but thread_local
// keeps independent launches on different threads from interfering.
thread_local Fiber* g_current_fiber = nullptr;
}  // namespace

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)),
      stack_(new unsigned char[stack_bytes]),
      stack_bytes_(stack_bytes) {
  if (!entry_) throw std::invalid_argument("Fiber: entry function is empty");
  if (stack_bytes_ < 16 * 1024)
    throw std::invalid_argument("Fiber: stack too small (< 16 KiB)");
}

Fiber::~Fiber() = default;

void Fiber::trampoline() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr);
  try {
    self->entry_();
  } catch (...) {
    self->pending_exception_ = std::current_exception();
  }
  self->state_ = State::Finished;
  // Fall off the end: makecontext's uc_link returns to return_context_.
}

void Fiber::resume() {
  if (state_ == State::Finished)
    throw std::logic_error("Fiber::resume: fiber already finished");
  if (state_ == State::Running)
    throw std::logic_error("Fiber::resume: fiber already running");

  if (state_ == State::Created) {
    if (getcontext(&context_) != 0)
      throw std::runtime_error("Fiber: getcontext failed");
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = &return_context_;
    makecontext(&context_, reinterpret_cast<void (*)()>(&trampoline), 0);
  }

  Fiber* previous = g_current_fiber;
  g_current_fiber = this;
  state_ = State::Running;
  swapcontext(&return_context_, &context_);
  g_current_fiber = previous;
  if (state_ == State::Running) state_ = State::Runnable;

  if (pending_exception_) {
    std::exception_ptr ex = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(ex);
  }
}

void Fiber::yield() {
  Fiber* self = g_current_fiber;
  assert(self != nullptr && "Fiber::yield called outside any fiber");
  swapcontext(&self->context_, &self->return_context_);
}

Fiber* Fiber::current() { return g_current_fiber; }

}  // namespace ap::rt
