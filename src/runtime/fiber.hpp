// Stackful cooperative fibers built on POSIX ucontext.
//
// A Fiber owns a private stack and a user entry function. Control moves
// strictly between a fiber and the scheduler context that resumed it:
// resume() enters the fiber, Fiber::yield() (called from inside the fiber)
// returns to the resumer. There is no preemption; this is the substrate for
// the deterministic SPMD scheduler in scheduler.hpp, where one fiber plays
// the role of one OpenSHMEM processing element (PE).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <ucontext.h>

namespace ap::rt {

/// One cooperative stackful coroutine.
///
/// Lifecycle: Created -> (resume/yield)* -> Finished. A fiber that threw is
/// Finished as well; the exception is captured and rethrown from resume() in
/// the resumer's context so errors propagate out of launch().
class Fiber {
 public:
  enum class State { Created, Runnable, Running, Finished };

  static constexpr std::size_t kDefaultStackBytes = 1u << 20;  // 1 MiB

  explicit Fiber(std::function<void()> entry,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Transfer control into the fiber until it yields or finishes.
  /// Must not be called from inside any fiber owned by the same thread
  /// unless that fiber is the scheduler itself. Rethrows any exception the
  /// fiber's entry function escaped with.
  void resume();

  /// Called from inside a running fiber: suspend and return control to
  /// whoever called resume(). Undefined behaviour if no fiber is running.
  static void yield();

  /// The fiber currently executing on this thread, or nullptr when running
  /// in the scheduler/main context.
  static Fiber* current();

  [[nodiscard]] State state() const {
    return state_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool finished() const {
    return state() == State::Finished;
  }

 private:
  static void trampoline();

  std::function<void()> entry_;
  std::unique_ptr<unsigned char[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  std::exception_ptr pending_exception_;
  // Atomic so the threads backend's deadlock monitor may inspect fibers
  // owned by other workers; all transitions stay on the owning thread.
  std::atomic<State> state_{State::Created};

  // AddressSanitizer fiber-switch bookkeeping (see fiber.cpp; unused and
  // zero-cost in non-sanitized builds): the fiber's saved fake stack and
  // the resumer's stack extents, captured on each entry.
  void* asan_fake_stack_ = nullptr;
  const void* asan_resumer_bottom_ = nullptr;
  std::size_t asan_resumer_size_ = 0;

  // ThreadSanitizer fiber-switch bookkeeping (see fiber.cpp; unused in
  // non-TSan builds): the TSan fiber object backing this Fiber (created
  // lazily on first resume, destroyed with the Fiber) and the resumer's
  // TSan fiber, captured on each entry so yield()/exit can switch back.
  void* tsan_fiber_ = nullptr;
  void* tsan_from_ = nullptr;
};

}  // namespace ap::rt
