#include "runtime/finish.hpp"

#include <stdexcept>
#include <utility>

#include "runtime/scheduler.hpp"

namespace ap::hclib {

namespace {
// Per-PE stack of active finish scopes. Pushes and pops are symmetric, so
// entries are always empty between launches; thread_local isolates threads.
thread_local std::vector<std::vector<FinishScope*>> g_scopes;

std::vector<FinishScope*>& scopes_for_current_pe() {
  const int pe = rt::my_pe();
  if (pe < 0)
    throw std::logic_error("hclib: finish/async used outside an SPMD launch");
  if (g_scopes.size() <= static_cast<std::size_t>(pe))
    g_scopes.resize(static_cast<std::size_t>(pe) + 1);
  return g_scopes[static_cast<std::size_t>(pe)];
}
}  // namespace

FinishScope::FinishScope() : pe_(rt::my_pe()) {
  scopes_for_current_pe().push_back(this);
}

FinishScope::~FinishScope() {
  auto& stack = g_scopes[static_cast<std::size_t>(pe_)];
  stack.pop_back();
}

FinishScope* FinishScope::current() {
  auto& stack = scopes_for_current_pe();
  return stack.empty() ? nullptr : stack.back();
}

void FinishScope::add_task(std::function<void()> task) {
  tasks_.push_back(std::move(task));
}

void FinishScope::register_pump(std::function<bool()> pump) {
  pumps_.push_back(std::move(pump));
}

bool FinishScope::step() {
  // Run every task currently queued (tasks may spawn more tasks; those run
  // in a later round, preserving HClib's help-first interleaving).
  while (!tasks_.empty()) {
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    task();
  }
  bool quiescent = tasks_.empty();
  for (std::size_t i = 0; i < pumps_.size();) {
    if (pumps_[i]()) {
      pumps_.erase(pumps_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      quiescent = false;
      ++i;
    }
  }
  return quiescent && tasks_.empty();
}

void FinishScope::await() {
  while (!step()) rt::yield();
}

void finish(const std::function<void()>& body) {
  FinishScope scope;
  body();
  scope.await();
}

void async(std::function<void()> task) {
  FinishScope* scope = FinishScope::current();
  if (scope == nullptr)
    throw std::logic_error("hclib::async called outside a finish scope");
  scope->add_task(std::move(task));
}

void yield() {
  FinishScope* scope = FinishScope::current();
  if (scope != nullptr) {
    // Opportunistically make local progress before handing off the core.
    // (One round only; await() owns the full quiescence loop.)
  }
  rt::yield();
}

}  // namespace ap::hclib
