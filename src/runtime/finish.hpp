// Mini-HClib: the `finish`/`async` subset of the Habanero C/C++ library
// that HClib-Actor relies on.
//
// Each PE is single-threaded (paper §II-A), so tasks spawned with async()
// execute on the spawning PE, interleaved cooperatively. finish(body) runs
// `body`, then blocks until (a) every task transitively spawned inside the
// scope has completed and (b) every registered "pump" (a long-running
// worker such as a Selector's conveyor-progress loop) reports completion.
// While waiting, the PE yields so other PEs can progress — this is where
// the FA-BSP interleaving of MAIN / PROC / COMM happens.
#pragma once

#include <deque>
#include <functional>
#include <vector>

namespace ap::hclib {

/// A dynamically-scoped finish region on the current PE.
class FinishScope {
 public:
  FinishScope();
  ~FinishScope();

  FinishScope(const FinishScope&) = delete;
  FinishScope& operator=(const FinishScope&) = delete;

  /// Queue a task on this scope; it runs on the owning PE before the scope
  /// completes.
  void add_task(std::function<void()> task);

  /// Register a cooperative worker. `pump` is called repeatedly during the
  /// scope's quiescence loop; it must return true once the worker is done
  /// (e.g. the Selector's conveyors have fully terminated).
  void register_pump(std::function<bool()> pump);

  /// Run queued tasks and pumps until everything is quiescent. Yields to
  /// other PEs between rounds.
  void await();

  /// Innermost finish scope on the PE currently executing, or nullptr.
  static FinishScope* current();

 private:
  bool step();  // one round; returns true if fully quiescent

  int pe_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::function<bool()>> pumps_;
};

/// HClib-style structured parallelism: run `body`, then wait for quiescence
/// of all tasks/workers created within.
void finish(const std::function<void()>& body);

/// Spawn an asynchronous task in the innermost finish scope of this PE.
/// Must be called inside a finish().
void async(std::function<void()> task);

/// Cooperatively yield, first running one pending local task if any.
void yield();

}  // namespace ap::hclib
