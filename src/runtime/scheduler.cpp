#include "runtime/scheduler.hpp"

#include <cassert>
#include <sstream>
#include <utility>

namespace ap::rt {

namespace {
thread_local Scheduler* g_scheduler = nullptr;
thread_local TickHook g_tick_hook;
}  // namespace

TickHook set_tick_hook(TickHook hook) {
  TickHook prev = std::move(g_tick_hook);
  g_tick_hook = std::move(hook);
  return prev;
}

const TickHook& tick_hook() { return g_tick_hook; }

Scheduler::Scheduler(LaunchConfig cfg, std::function<void(int)> body)
    : cfg_(cfg), body_(std::move(body)) {
  if (cfg_.num_pes <= 0)
    throw std::invalid_argument("LaunchConfig: num_pes must be positive");
  if (cfg_.pes_per_node < 0)
    throw std::invalid_argument("LaunchConfig: pes_per_node must be >= 0");
  if (!body_) throw std::invalid_argument("launch: body is empty");
  pes_.resize(static_cast<std::size_t>(cfg_.num_pes));
  next_collective_index_.assign(static_cast<std::size_t>(cfg_.num_pes), 0);
}

Scheduler::~Scheduler() = default;

Scheduler* Scheduler::instance() { return g_scheduler; }

void Scheduler::run() {
  if (g_scheduler != nullptr)
    throw std::logic_error("launch(): launches cannot nest on one thread");
  g_scheduler = this;

  for (int pe = 0; pe < cfg_.num_pes; ++pe) {
    pes_[static_cast<std::size_t>(pe)].fiber = std::make_unique<Fiber>(
        [this, pe] { body_(pe); }, cfg_.stack_bytes);
  }

  std::exception_ptr failure;
  bool all_done = false;
  while (!all_done && !failure) {
    bool progressed = false;
    all_done = true;
    for (int pe = 0; pe < cfg_.num_pes && !failure; ++pe) {
      PeSlot& slot = pes_[static_cast<std::size_t>(pe)];
      if (slot.fiber->finished()) continue;
      all_done = false;
      if (slot.blocked_on) {
        bool ready = false;
        try {
          ready = slot.blocked_on();
        } catch (...) {
          failure = std::current_exception();
          break;
        }
        if (!ready) continue;
        slot.blocked_on = nullptr;
      }
      current_pe_ = pe;
      try {
        slot.fiber->resume();
      } catch (...) {
        failure = std::current_exception();
      }
      current_pe_ = -1;
      progressed = true;
      if (slot.fiber->finished()) {
        // A finished PE must not leave a blocked-on predicate behind.
        slot.blocked_on = nullptr;
      }
    }
    if (!failure && g_tick_hook) {
      try {
        g_tick_hook();
      } catch (...) {
        failure = std::current_exception();
      }
    }
    if (!all_done && !progressed && !failure) {
      std::ostringstream msg;
      msg << "deadlock: all unfinished PEs are blocked (";
      for (int pe = 0; pe < cfg_.num_pes; ++pe) {
        const PeSlot& slot = pes_[static_cast<std::size_t>(pe)];
        if (!slot.fiber->finished()) msg << " PE" << pe;
      }
      msg << " )";
      failure = std::make_exception_ptr(DeadlockError(msg.str()));
    }
  }

  g_scheduler = nullptr;
  if (failure) std::rethrow_exception(failure);
}

void Scheduler::yield_current() {
  assert(current_pe_ >= 0 && "yield() outside an SPMD region");
  Fiber::yield();
}

void Scheduler::wait_until(std::function<bool()> pred) {
  assert(current_pe_ >= 0 && "wait_until() outside an SPMD region");
  if (pred()) return;
  PeSlot& slot = pes_[static_cast<std::size_t>(current_pe_)];
  slot.blocked_on = std::move(pred);
  Fiber::yield();
  // The scheduler only resumes us once the predicate held; nothing can have
  // invalidated it since (single-threaded), so no re-check loop is needed.
}

void launch(const LaunchConfig& cfg, const std::function<void(int)>& body) {
  Scheduler sched(cfg, body);
  sched.run();
}

void launch(const LaunchConfig& cfg, const std::function<void()>& body) {
  launch(cfg, [&body](int) { body(); });
}

int my_pe() {
  Scheduler* s = Scheduler::instance();
  return s == nullptr ? -1 : s->current_pe();
}

int n_pes() {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr) throw std::logic_error("n_pes() outside an SPMD launch");
  return s->num_pes();
}

const LaunchConfig& launch_config() {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr)
    throw std::logic_error("launch_config() outside an SPMD launch");
  return s->config();
}

bool in_spmd_region() {
  Scheduler* s = Scheduler::instance();
  return s != nullptr && s->current_pe() >= 0;
}

void yield() {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr) throw std::logic_error("yield() outside an SPMD launch");
  s->yield_current();
}

void wait_until(std::function<bool()> pred) {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr)
    throw std::logic_error("wait_until() outside an SPMD launch");
  s->wait_until(std::move(pred));
}

}  // namespace ap::rt
