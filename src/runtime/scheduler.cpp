#include "runtime/scheduler.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <exception>
#include <latch>
#include <sstream>
#include <thread>
#include <utility>

namespace ap::rt {

namespace {

// The running launch. A plain global (not thread_local) so the worker
// threads of the threads backend reach the same scheduler: it is written
// on the launching thread before any worker exists and cleared after they
// have all joined, so every access from inside the launch is ordered by
// thread creation/join.
Scheduler* g_scheduler = nullptr;

// The PE currently executing on *this* thread (-1 in scheduler context).
// Thread-local so each worker of the threads backend tracks the fiber it
// is running; under the fiber backend only the launching thread uses it.
thread_local int g_current_pe = -1;

thread_local TickHook g_tick_hook;

// How long the fleet may make zero progress (no fiber resumed anywhere,
// no worker inside a resume) before the threads backend declares
// deadlock. Predicates only become true through the action of other PEs,
// and every PE action bumps the progress counter, so a quarter second of
// global silence cannot be a transient.
constexpr auto kDeadlockWindow = std::chrono::milliseconds(250);

}  // namespace

TickHook set_tick_hook(TickHook hook) {
  TickHook prev = std::move(g_tick_hook);
  g_tick_hook = std::move(hook);
  return prev;
}

const TickHook& tick_hook() { return g_tick_hook; }

Scheduler::Scheduler(LaunchConfig cfg, std::function<void(int)> body)
    : cfg_(cfg), body_(std::move(body)) {
  if (cfg_.num_pes <= 0)
    throw std::invalid_argument("LaunchConfig: num_pes must be positive");
  if (cfg_.pes_per_node < 0)
    throw std::invalid_argument("LaunchConfig: pes_per_node must be >= 0");
  if (cfg_.num_threads < 0)
    throw std::invalid_argument("LaunchConfig: num_threads must be >= 0");
  if (!body_) throw std::invalid_argument("launch: body is empty");
  pes_.resize(static_cast<std::size_t>(cfg_.num_pes));
  next_collective_index_.assign(static_cast<std::size_t>(cfg_.num_pes), 0);
}

Scheduler::~Scheduler() = default;

Scheduler* Scheduler::instance() { return g_scheduler; }

int Scheduler::current_pe() const { return g_current_pe; }

void Scheduler::run() {
  if (g_scheduler != nullptr)
    throw std::logic_error("launch(): launches cannot nest on one thread");
  // Resolve before publishing anything so a bad ACTORPROF_BACKEND value
  // throws without side effects.
  const Backend backend = resolve_backend(cfg_.backend);
  g_scheduler = this;
  detail::set_current_backend(backend);
  try {
    if (backend == Backend::threads)
      run_threads(backend);
    else
      run_fiber();
  } catch (...) {
    detail::set_current_backend(Backend::fiber);
    g_scheduler = nullptr;
    throw;
  }
  detail::set_current_backend(Backend::fiber);
  g_scheduler = nullptr;
}

void Scheduler::run_fiber() {
  for (int pe = 0; pe < cfg_.num_pes; ++pe) {
    pes_[static_cast<std::size_t>(pe)].fiber = std::make_unique<Fiber>(
        [this, pe] { body_(pe); }, cfg_.stack_bytes);
  }

  std::exception_ptr failure;
  bool all_done = false;
  while (!all_done && !failure) {
    bool progressed = false;
    all_done = true;
    for (int pe = 0; pe < cfg_.num_pes && !failure; ++pe) {
      PeSlot& slot = pes_[static_cast<std::size_t>(pe)];
      if (slot.fiber->finished()) continue;
      all_done = false;
      if (slot.blocked_on) {
        bool ready = false;
        try {
          ready = slot.blocked_on();
        } catch (...) {
          failure = std::current_exception();
          break;
        }
        if (!ready) continue;
        slot.blocked_on = nullptr;
      }
      g_current_pe = pe;
      try {
        slot.fiber->resume();
      } catch (...) {
        failure = std::current_exception();
      }
      g_current_pe = -1;
      progressed = true;
      if (slot.fiber->finished()) {
        // A finished PE must not leave a blocked-on predicate behind.
        slot.blocked_on = nullptr;
      }
    }
    if (!failure && g_tick_hook) {
      try {
        g_tick_hook();
      } catch (...) {
        failure = std::current_exception();
      }
    }
    if (!all_done && !progressed && !failure) {
      std::ostringstream msg;
      msg << "deadlock: all unfinished PEs are blocked (";
      for (int pe = 0; pe < cfg_.num_pes; ++pe) {
        const PeSlot& slot = pes_[static_cast<std::size_t>(pe)];
        if (!slot.fiber->finished()) msg << " PE" << pe;
      }
      msg << " )";
      failure = std::make_exception_ptr(DeadlockError(msg.str()));
    }
  }

  if (failure) std::rethrow_exception(failure);
}

void Scheduler::run_threads(Backend /*backend*/) {
  const int num_pes = cfg_.num_pes;
  const int num_workers = resolve_num_threads(cfg_.num_threads, num_pes);
  // Capture the launching thread's hook: worker 0 plays the role the
  // single scheduling thread plays under the fiber backend.
  const TickHook tick = g_tick_hook;

  std::atomic<std::uint64_t> progress{0};
  std::atomic<int> in_resume{0};
  std::atomic<int> finished_pes{0};
  std::atomic<bool> abort{false};
  std::mutex failure_mu;
  std::exception_ptr failure;
  // All fibers are created by their owning worker (so sanitizer fiber
  // bookkeeping lives on the right thread); nobody sweeps until every
  // slot's fiber pointer is published.
  std::latch fibers_ready(num_workers);

  auto fail = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lk(failure_mu);
      if (!failure) failure = std::move(e);
    }
    abort.store(true, std::memory_order_release);
  };

  auto worker_main = [&](int w) {
    const int begin = static_cast<int>(
        (static_cast<long long>(w) * num_pes) / num_workers);
    const int end = static_cast<int>(
        (static_cast<long long>(w + 1) * num_pes) / num_workers);
    for (int pe = begin; pe < end; ++pe) {
      pes_[static_cast<std::size_t>(pe)].fiber = std::make_unique<Fiber>(
          [this, pe] { body_(pe); }, cfg_.stack_bytes);
    }
    fibers_ready.arrive_and_wait();

    int unfinished = end - begin;
    std::uint64_t last_progress = progress.load(std::memory_order_relaxed);
    auto last_change = std::chrono::steady_clock::now();
    int idle_spins = 0;

    while (!abort.load(std::memory_order_acquire)) {
      // Worker 0 stays alive until the whole fleet is done: it owns the
      // tick hook and the deadlock monitor. Other workers leave as soon
      // as their own PEs have finished.
      if (w == 0) {
        if (finished_pes.load(std::memory_order_acquire) >= num_pes) break;
      } else if (unfinished == 0) {
        break;
      }

      bool progressed = false;
      for (int pe = begin;
           pe < end && !abort.load(std::memory_order_relaxed); ++pe) {
        PeSlot& slot = pes_[static_cast<std::size_t>(pe)];
        if (slot.fiber->finished()) continue;
        if (slot.blocked_on) {
          bool ready = false;
          try {
            ready = slot.blocked_on();
          } catch (...) {
            fail(std::current_exception());
            break;
          }
          if (!ready) continue;
          slot.blocked_on = nullptr;
        }
        g_current_pe = pe;
        in_resume.fetch_add(1, std::memory_order_acq_rel);
        try {
          slot.fiber->resume();
        } catch (...) {
          fail(std::current_exception());
        }
        in_resume.fetch_sub(1, std::memory_order_acq_rel);
        g_current_pe = -1;
        progressed = true;
        progress.fetch_add(1, std::memory_order_relaxed);
        if (slot.fiber->finished()) {
          slot.blocked_on = nullptr;
          --unfinished;
          finished_pes.fetch_add(1, std::memory_order_release);
        }
      }

      if (w == 0 && tick && !abort.load(std::memory_order_relaxed)) {
        try {
          tick();
        } catch (...) {
          fail(std::current_exception());
        }
      }

      if (progressed) {
        idle_spins = 0;
        continue;
      }
      // Nothing runnable here right now: back off so blocked fleets don't
      // burn the cores their peers need.
      if (++idle_spins < 64)
        std::this_thread::yield();
      else
        std::this_thread::sleep_for(std::chrono::microseconds(50));

      if (w == 0) {
        const std::uint64_t p = progress.load(std::memory_order_relaxed);
        if (p != last_progress) {
          last_progress = p;
          last_change = std::chrono::steady_clock::now();
        } else if (finished_pes.load(std::memory_order_acquire) < num_pes &&
                   in_resume.load(std::memory_order_acquire) == 0 &&
                   std::chrono::steady_clock::now() - last_change >
                       kDeadlockWindow) {
          // No fiber anywhere has run for the whole window and none is
          // mid-resume: every unfinished PE is parked on a predicate no
          // one can flip. Same message shape as the fiber backend.
          std::ostringstream msg;
          msg << "deadlock: all unfinished PEs are blocked (";
          for (int pe = 0; pe < num_pes; ++pe) {
            const PeSlot& slot = pes_[static_cast<std::size_t>(pe)];
            if (slot.fiber && !slot.fiber->finished()) msg << " PE" << pe;
          }
          msg << " )";
          fail(std::make_exception_ptr(DeadlockError(msg.str())));
        }
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w)
    workers.emplace_back(worker_main, w);
  for (auto& t : workers) t.join();

  if (failure) std::rethrow_exception(failure);
}

void Scheduler::yield_current() {
  assert(g_current_pe >= 0 && "yield() outside an SPMD region");
  Fiber::yield();
}

void Scheduler::wait_until(std::function<bool()> pred) {
  assert(g_current_pe >= 0 && "wait_until() outside an SPMD region");
  if (pred()) return;
  PeSlot& slot = pes_[static_cast<std::size_t>(g_current_pe)];
  slot.blocked_on = std::move(pred);
  Fiber::yield();
  // The scheduler only resumes us once the predicate held. Under the fiber
  // backend nothing can have invalidated it since (single-threaded); under
  // the threads backend another thread may have raced past a non-monotonic
  // predicate, which OpenSHMEM wait-until semantics permit ("the condition
  // held at some point") — see docs/PERFORMANCE.md.
}

void launch(const LaunchConfig& cfg, const std::function<void(int)>& body) {
  Scheduler sched(cfg, body);
  sched.run();
}

void launch(const LaunchConfig& cfg, const std::function<void()>& body) {
  launch(cfg, [&body](int) { body(); });
}

int my_pe() {
  Scheduler* s = Scheduler::instance();
  return s == nullptr ? -1 : s->current_pe();
}

int n_pes() {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr) throw std::logic_error("n_pes() outside an SPMD launch");
  return s->num_pes();
}

const LaunchConfig& launch_config() {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr)
    throw std::logic_error("launch_config() outside an SPMD launch");
  return s->config();
}

bool in_spmd_region() {
  Scheduler* s = Scheduler::instance();
  return s != nullptr && s->current_pe() >= 0;
}

void yield() {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr) throw std::logic_error("yield() outside an SPMD launch");
  s->yield_current();
}

void wait_until(std::function<bool()> pred) {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr)
    throw std::logic_error("wait_until() outside an SPMD launch");
  s->wait_until(std::move(pred));
}

}  // namespace ap::rt
