// Cooperative SPMD scheduler with two execution backends.
//
// launch(cfg, body) runs `body` once per simulated processing element (PE),
// each on its own fiber. PEs interact only through shared memory owned by
// higher layers (minishmem); they yield control at well-defined points
// (barriers, conveyor advance, shmem quiet, finish-wait).
//
// Backend::fiber (the default) schedules every fiber round-robin on the
// calling thread: every run is bit-for-bit reproducible — the simulated
// "multi-node cluster" substrate described in DESIGN.md. Backend::threads
// partitions the PEs over N OS worker threads (ACTORPROF_THREADS); each PE
// is still a fiber with identical blocking semantics, but fibers owned by
// different workers genuinely run in parallel, so the substrate layers
// above must be (and are) thread-safe. See docs/ARCHITECTURE.md
// ("Execution backends").
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeindex>
#include <vector>

#include "runtime/backend.hpp"
#include "runtime/fiber.hpp"

namespace ap::rt {

/// Parameters of one SPMD launch (the simulated cluster shape).
struct LaunchConfig {
  int num_pes = 4;
  /// PEs per simulated cluster node; 0 means "all PEs on one node".
  int pes_per_node = 0;
  std::size_t stack_bytes = Fiber::kDefaultStackBytes;
  /// Per-PE symmetric heap capacity (used by minishmem).
  std::size_t symm_heap_bytes = std::size_t{64} << 20;
  /// Seed for any runtime-level pseudo-randomness (kept for determinism).
  std::uint64_t seed = 0xA5A5F00Dull;
  /// Execution backend; auto_ defers to ACTORPROF_BACKEND, then fiber.
  Backend backend = Backend::auto_;
  /// Worker threads for Backend::threads; 0 defers to ACTORPROF_THREADS,
  /// then hardware concurrency. Always clamped to [1, num_pes].
  int num_threads = 0;

  [[nodiscard]] int effective_pes_per_node() const {
    return pes_per_node > 0 ? pes_per_node : num_pes;
  }
  [[nodiscard]] int num_nodes() const {
    const int ppn = effective_pes_per_node();
    return (num_pes + ppn - 1) / ppn;
  }
};

/// Thrown when every unfinished PE is blocked on a predicate that cannot
/// become true — a genuine distributed deadlock in the simulated program.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// The per-launch scheduler. Created by launch(); user code reaches it
/// through the free functions below rather than directly.
class Scheduler {
 public:
  Scheduler(LaunchConfig cfg, std::function<void(int)> body);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Run all PE fibers to completion. Throws DeadlockError on deadlock and
  /// rethrows the first exception escaping any PE body.
  void run();

  [[nodiscard]] const LaunchConfig& config() const { return cfg_; }
  [[nodiscard]] int num_pes() const { return cfg_.num_pes; }

  /// Rank of the PE currently executing on this thread; -1 outside any PE
  /// fiber. Thread-local under the threads backend: each worker sees the
  /// PE it is running right now.
  [[nodiscard]] int current_pe() const;

  /// Cooperatively yield to the next runnable PE.
  void yield_current();

  /// Block the current PE until `pred()` is true, yielding in between.
  /// `pred` must be made true by the action of some other PE (or already
  /// be true); otherwise the launch ends with DeadlockError. Under the
  /// threads backend `pred` is evaluated on the worker thread owning this
  /// PE, so it must read cross-PE state with acquire semantics (the
  /// substrate layers' predicates all do).
  void wait_until(std::function<bool()> pred);

  /// Collective-object registry: every PE must call collective<T>() in the
  /// same program order with the same T. The first PE to reach call-site
  /// index k constructs the object; the rest receive the shared instance.
  /// This mirrors how OpenSHMEM/Conveyors objects are collectively created.
  /// The factory may itself block (e.g. on a barrier): the registry slot is
  /// reserved before `make` runs and no lock is held across it.
  template <class T, class Factory>
  std::shared_ptr<T> collective(Factory&& make) {
    const int pe = current_pe();
    if (pe < 0)
      throw std::logic_error("collective() called outside an SPMD region");
    // Per-PE cursor: only ever touched by the worker owning this PE.
    const std::size_t idx =
        next_collective_index_[static_cast<std::size_t>(pe)]++;
    std::unique_lock<std::mutex> lk(coll_mu_);
    if (idx > collectives_.size())
      throw std::logic_error("collective(): registry out of sync");
    if (idx == collectives_.size()) {
      // Reserve the slot, then construct without the lock so a factory
      // that yields (or blocks on a barrier) cannot wedge other PEs.
      collectives_.push_back(
          Entry{std::type_index(typeid(T)), nullptr, false, {}});
      lk.unlock();
      std::shared_ptr<void> obj;
      try {
        obj = std::shared_ptr<void>(make());
      } catch (...) {
        lk.lock();
        collectives_[idx].poisoned = true;
        collectives_[idx].error = std::current_exception();
        lk.unlock();
        throw;
      }
      lk.lock();
      collectives_[idx].object = std::move(obj);
      std::shared_ptr<void> out = collectives_[idx].object;
      lk.unlock();
      return std::static_pointer_cast<T>(std::move(out));
    }
    if (collectives_[idx].type != std::type_index(typeid(T)))
      throw std::logic_error(
          "collective(): PEs disagree on collective object type at index " +
          std::to_string(idx));
    lk.unlock();
    wait_until([this, idx] {
      std::lock_guard<std::mutex> g(coll_mu_);
      return collectives_[idx].object != nullptr || collectives_[idx].poisoned;
    });
    std::lock_guard<std::mutex> g(coll_mu_);
    if (collectives_[idx].poisoned) {
      // Rethrow the constructing PE's exception so every PE observes the
      // same failure (SPMD code typically catches the same type on all
      // ranks — e.g. invalid Options throw std::invalid_argument
      // everywhere).
      if (collectives_[idx].error)
        std::rethrow_exception(collectives_[idx].error);
      throw std::logic_error(
          "collective(): construction failed on another PE at index " +
          std::to_string(idx));
    }
    return std::static_pointer_cast<T>(collectives_[idx].object);
  }

  /// The scheduler of the launch currently running.
  static Scheduler* instance();

 private:
  struct PeSlot {
    std::unique_ptr<Fiber> fiber;
    std::function<bool()> blocked_on;  // empty => runnable
  };
  struct Entry {
    std::type_index type;
    std::shared_ptr<void> object;
    bool poisoned = false;
    std::exception_ptr error;  // the factory's exception, rethrown on waiters
  };

  void run_fiber();
  void run_threads(Backend backend);

  LaunchConfig cfg_;
  std::function<void(int)> body_;
  std::vector<PeSlot> pes_;
  std::vector<std::size_t> next_collective_index_;
  // deque: Entry addresses stay stable while workers push concurrently
  // (indices are still re-resolved under coll_mu_ for reads).
  std::deque<Entry> collectives_;
  std::mutex coll_mu_;
};

/// Run `body` as an SPMD program over cfg.num_pes cooperative PEs.
void launch(const LaunchConfig& cfg, const std::function<void()>& body);

/// Variant receiving the PE rank as an argument.
void launch(const LaunchConfig& cfg, const std::function<void(int)>& body);

/// SPMD context queries; only valid inside a launch.
int my_pe();
int n_pes();
const LaunchConfig& launch_config();
bool in_spmd_region();

/// Cooperative scheduling primitives for substrate layers.
void yield();
void wait_until(std::function<bool()> pred);

/// Scheduler tick hook: invoked once per round-robin sweep (after every
/// runnable PE got a turn), outside any PE context (my_pe() == -1). This
/// is the seam the metrics sampler hangs off — it sees the whole fleet
/// between fiber slices without instrumenting any PE's code path.
/// Returns the previously installed hook so callers can chain/restore;
/// pass an empty function to uninstall. Under the threads backend the hook
/// installed on the launching thread is captured at launch and invoked by
/// worker 0 after each of its sweeps — install it before launch.
using TickHook = std::function<void()>;
TickHook set_tick_hook(TickHook hook);
const TickHook& tick_hook();

/// See Scheduler::collective.
template <class T, class Factory>
std::shared_ptr<T> collective(Factory&& make) {
  Scheduler* s = Scheduler::instance();
  if (s == nullptr)
    throw std::logic_error("collective() called outside an SPMD launch");
  return s->collective<T>(std::forward<Factory>(make));
}

}  // namespace ap::rt
