#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ostream>

namespace ap::serve {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Read until the end of the request head ("\r\n\r\n") or a size cap.
/// GET requests have no body, so the head is the whole request.
bool read_request_head(int fd, std::string& head) {
  char buf[2048];
  head.clear();
  while (head.size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return !head.empty();
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) return true;
  }
  return true;
}

void send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

void answer(int fd, const Response& r) {
  std::string head = "HTTP/1.1 " + std::to_string(r.status) + " " +
                     reason_phrase(r.status) +
                     "\r\nContent-Type: " + r.content_type +
                     "\r\nContent-Length: " + std::to_string(r.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, r.body);
}

}  // namespace

int run_server(TraceService& svc, const ServerOptions& opts,
               std::ostream& out, std::ostream& err) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    err << "serve: socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    err << "serve: bad --host " << opts.host << " (need an IPv4 address)\n";
    ::close(listen_fd);
    return 1;
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    err << "serve: cannot bind " << opts.host << ":" << opts.port << ": "
        << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  if (::listen(listen_fd, 16) < 0) {
    err << "serve: listen(): " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  out << "actorprof serve: listening on http://" << opts.host << ":"
      << ntohs(bound.sin_port) << "\n";
  out.flush();
  if (opts.bound_port != nullptr)
    opts.bound_port->store(ntohs(bound.sin_port));

  long served = 0;
  while (opts.max_requests < 0 || served < opts.max_requests) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, opts.poll_interval_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      err << "serve: poll(): " << std::strerror(errno) << "\n";
      break;
    }
    if (pr == 0) {
      // Idle tick: pick up shards a running PE just flushed.
      svc.refresh();
      continue;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    std::string head;
    if (read_request_head(fd, head)) {
      // Request line: METHOD SP TARGET SP HTTP-VERSION CRLF ...
      std::string_view line{head};
      if (const std::size_t eol = line.find("\r\n");
          eol != std::string_view::npos)
        line = line.substr(0, eol);
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        answer(fd, Response{400, "application/json",
                            "{\"error\":\"malformed request line\"}\n"});
      } else {
        svc.refresh();
        answer(fd, svc.handle(line.substr(0, sp1),
                              line.substr(sp1 + 1, sp2 - sp1 - 1)));
      }
    }
    ::close(fd);
    ++served;
  }
  ::close(listen_fd);
  return 0;
}

}  // namespace ap::serve
