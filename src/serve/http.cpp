#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ostream>
#include <vector>

namespace ap::serve {

namespace {

/// POST bodies (push ingest batches) are bounded well above anything the
/// publisher coalesces, but low enough that a hostile Content-Length
/// cannot balloon the daemon.
constexpr std::size_t kMaxBodyBytes = 64u << 20;

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Read one full request: head until "\r\n\r\n", then Content-Length body
/// bytes (if any). Returns false on a dead/oversized connection.
bool read_request(int fd, std::string& head, std::string& body,
                  bool& too_large) {
  char buf[4096];
  head.clear();
  body.clear();
  too_large = false;
  std::string data;
  std::size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    if (data.size() > 64 * 1024) return !data.empty();
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return !data.empty();
    data.append(buf, static_cast<std::size_t>(n));
    head_end = data.find("\r\n\r\n");
  }
  head = data.substr(0, head_end);
  std::string rest = data.substr(head_end + 4);

  // Content-Length (case-insensitive name match, GETs simply have none).
  std::size_t want = 0;
  {
    std::string lower = head;
    for (char& c : lower)
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    const std::size_t pos = lower.find("content-length:");
    if (pos != std::string::npos) {
      std::size_t i = pos + 15;
      while (i < lower.size() && lower[i] == ' ') ++i;
      while (i < lower.size() && lower[i] >= '0' && lower[i] <= '9') {
        want = want * 10 + static_cast<std::size_t>(lower[i] - '0');
        ++i;
        if (want > kMaxBodyBytes) {
          too_large = true;
          return true;
        }
      }
    }
  }
  while (rest.size() < want) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    rest.append(buf, static_cast<std::size_t>(n));
  }
  body = std::move(rest);
  if (body.size() > want) body.resize(want);
  return true;
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void answer(int fd, const Response& r) {
  std::string head = "HTTP/1.1 " + std::to_string(r.status) + " " +
                     reason_phrase(r.status) +
                     "\r\nContent-Type: " + r.content_type +
                     "\r\nContent-Length: " + std::to_string(r.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, r.body);
}

/// One open GET /live connection.
struct LiveClient {
  int fd = -1;
  ServiceRegistry::LiveCursor cur;
};

/// Push pending SSE events to every live subscriber; drops the ones whose
/// run vanished or whose socket died.
void pump_live(ServiceRegistry& reg, std::vector<LiveClient>& clients) {
  for (std::size_t i = 0; i < clients.size();) {
    std::string out;
    const bool alive = reg.live_poll(clients[i].cur, out);
    bool keep = alive;
    if (keep && !out.empty()) keep = send_all(clients[i].fd, out);
    if (keep) {
      ++i;
    } else {
      ::close(clients[i].fd);
      clients[i] = clients.back();
      clients.pop_back();
    }
  }
}

}  // namespace

int run_server(ServiceRegistry& reg, const ServerOptions& opts,
               std::ostream& out, std::ostream& err) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    err << "serve: socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    err << "serve: bad --host " << opts.host << " (need an IPv4 address)\n";
    ::close(listen_fd);
    return 1;
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    err << "serve: cannot bind " << opts.host << ":" << opts.port << ": "
        << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  if (::listen(listen_fd, 16) < 0) {
    err << "serve: listen(): " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  out << "actorprof serve: listening on http://" << opts.host << ":"
      << ntohs(bound.sin_port) << "\n";
  out.flush();
  if (opts.bound_port != nullptr)
    opts.bound_port->store(ntohs(bound.sin_port));

  std::vector<LiveClient> live;
  long served = 0;
  while (opts.max_requests < 0 || served < opts.max_requests) {
    if (opts.stop != nullptr && opts.stop->load()) break;
    pollfd pfd{listen_fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, opts.poll_interval_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      err << "serve: poll(): " << std::strerror(errno) << "\n";
      break;
    }
    if (pr == 0) {
      // Idle tick: pick up shards a running PE just flushed, then push
      // whatever that changed to the /live subscribers.
      reg.refresh();
      pump_live(reg, live);
      continue;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    std::string head, body;
    bool too_large = false;
    if (read_request(fd, head, body, too_large)) {
      // Request line: METHOD SP TARGET SP HTTP-VERSION CRLF ...
      std::string_view line{head};
      if (const std::size_t eol = line.find("\r\n");
          eol != std::string_view::npos)
        line = line.substr(0, eol);
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        answer(fd, Response{400, "application/json",
                            "{\"error\":\"malformed request line\"}\n"});
      } else if (too_large) {
        answer(fd, Response{413, "application/json",
                            "{\"error\":\"body exceeds the 64 MiB cap\"}\n"});
      } else {
        const std::string_view method = line.substr(0, sp1);
        const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        reg.refresh();
        std::string_view path = target;
        if (const std::size_t q = path.find('?');
            q != std::string_view::npos)
          path = path.substr(0, q);
        if (method == "GET" && path == "/live") {
          std::string_view query;
          if (const std::size_t q = target.find('?');
              q != std::string_view::npos)
            query = target.substr(q + 1);
          ServiceRegistry::LiveCursor cur;
          const Response hello = reg.live_open(query, cur);
          if (hello.status != 200) {
            answer(fd, hello);
            ::close(fd);
          } else {
            // SSE: headers without Content-Length, connection stays open.
            const std::string h =
                "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\nConnection: close\r\n\r\n" +
                hello.body;
            if (send_all(fd, h)) {
              live.push_back(LiveClient{fd, std::move(cur)});
              pump_live(reg, live);  // deliver the current state at once
            } else {
              ::close(fd);
            }
          }
          ++served;
          continue;  // skip the close below
        }
        answer(fd, reg.handle(method, target, body));
        pump_live(reg, live);
      }
    }
    ::close(fd);
    ++served;
  }
  for (const LiveClient& c : live) ::close(c.fd);
  ::close(listen_fd);
  return 0;
}

}  // namespace ap::serve
