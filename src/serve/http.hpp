// Dependency-free HTTP/1.1 front end for TraceService: one blocking
// socket, a poll() loop that doubles as the trace-dir watch timer, one
// request per connection (Connection: close). No threads, no third-party
// libraries — the service is meant to sit next to a run on a login node.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>

#include "serve/service.hpp"

namespace ap::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 7077;  ///< 0 = ephemeral; the bound port is printed either way
  /// Exit 0 after answering this many requests; -1 = run forever. Lets
  /// tests and CI drive a bounded server without signals.
  long max_requests = -1;
  /// poll() timeout; on every timeout the trace dir is re-scanned, so this
  /// bounds how stale an answer can be between requests.
  int poll_interval_ms = 200;
  /// When non-null, receives the bound port once listening — how a test
  /// running the server on another thread learns an ephemeral port.
  std::atomic<int>* bound_port = nullptr;
};

/// Bind, print "listening on http://host:port" to `out`, and serve until
/// max_requests is exhausted. Returns a process exit code (0 success,
/// 1 socket/bind failure). The service is also refreshed before every
/// request, so responses always reflect the shards on disk.
int run_server(TraceService& svc, const ServerOptions& opts,
               std::ostream& out, std::ostream& err);

}  // namespace ap::serve
