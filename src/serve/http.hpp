// Dependency-free HTTP/1.1 front end for the trace-service registry: one
// blocking listen socket, a poll() loop that doubles as the trace-dir
// watch timer, one request per connection (Connection: close) — except
// GET /live, whose connections stay open and receive Server-Sent Events
// as runs change. No threads, no third-party libraries — the service is
// meant to sit next to a run on a login node.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>

#include "serve/registry.hpp"

namespace ap::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 7077;  ///< 0 = ephemeral; the bound port is printed either way
  /// Exit 0 after answering this many requests; -1 = run forever. Lets
  /// tests and CI drive a bounded server without signals. /live
  /// subscriptions count as one request when they are accepted.
  long max_requests = -1;
  /// poll() timeout; on every timeout the trace dir is re-scanned, so this
  /// bounds how stale an answer can be between requests (and how delayed
  /// an SSE event can be).
  int poll_interval_ms = 200;
  /// When non-null, receives the bound port once listening — how a test
  /// running the server on another thread learns an ephemeral port.
  std::atomic<int>* bound_port = nullptr;
  /// When non-null and set true, the loop exits 0 at the next poll tick —
  /// how tests and benches stop an unbounded server cleanly.
  std::atomic<bool>* stop = nullptr;
};

/// Bind, print "listening on http://host:port" to `out`, and serve until
/// max_requests is exhausted (or *stop turns true). Returns a process exit
/// code (0 success, 1 socket/bind failure). The watched run is refreshed
/// on every idle tick and before every request, so responses always
/// reflect the shards on disk.
int run_server(ServiceRegistry& reg, const ServerOptions& opts,
               std::ostream& out, std::ostream& err);

}  // namespace ap::serve
