#include "serve/publisher.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "core/trace_binary.hpp"

namespace ap::serve {

namespace {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Framing sanity caps — a fuzzed length field must fail fast, not turn
/// into a giant allocation or a near-infinite scan.
constexpr std::uint64_t kMaxSegmentName = 256;
constexpr std::uint64_t kMaxSegmentBody = 1u << 30;

struct FrameCursor {
  std::string_view body;
  std::size_t pos = 0;
  std::size_t segment = 0;  // 1-based, for error attribution

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("bad push frame at segment " +
                             std::to_string(segment) + " offset " +
                             std::to_string(pos) + ": " + what);
  }
  std::uint8_t u8() {
    if (pos >= body.size()) fail("truncated");
    return static_cast<std::uint8_t>(body[pos++]);
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint64_t b = u8();
      v |= (b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    fail("bad varint");
  }
  std::uint32_t u32le() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::string_view take(std::uint64_t n) {
    if (body.size() - pos < n) fail("truncated");
    const std::string_view s = body.substr(pos, n);
    pos += n;
    return s;
  }
};

}  // namespace

void append_push_segment(std::string& out, std::string_view name, bool append,
                         std::string_view body) {
  put_varint(out, name.size());
  out.append(name);
  out.push_back(append ? '\1' : '\0');
  put_varint(out, body.size());
  out.append(body);
  const std::uint32_t crc = ap::prof::io::crc32_bytes(body);
  out.push_back(static_cast<char>(crc & 0xff));
  out.push_back(static_cast<char>((crc >> 8) & 0xff));
  out.push_back(static_cast<char>((crc >> 16) & 0xff));
  out.push_back(static_cast<char>((crc >> 24) & 0xff));
}

std::vector<PushSegment> parse_push_segments(std::string_view body) {
  std::vector<PushSegment> out;
  FrameCursor c{body};
  while (c.pos < body.size()) {
    ++c.segment;
    const std::uint64_t name_len = c.varint();
    if (name_len == 0 || name_len > kMaxSegmentName) c.fail("bad name length");
    const std::string_view name = c.take(name_len);
    const std::uint8_t mode = c.u8();
    if (mode > 1) c.fail("bad mode byte");
    const std::uint64_t body_len = c.varint();
    if (body_len > kMaxSegmentBody) c.fail("implausible body length");
    const std::string_view seg = c.take(body_len);
    const std::uint32_t stored = c.u32le();
    if (stored != ap::prof::io::crc32_bytes(seg))
      c.fail("segment CRC mismatch");
    out.push_back(PushSegment{name, mode == 1, seg});
  }
  return out;
}

// ----------------------------------------------------------------- Publisher

Publisher::Publisher(Options opts) : opts_(std::move(opts)) {
  worker_ = std::thread([this] { worker_main(); });
}

Publisher::~Publisher() {
  flush(opts_.io_timeout_ms);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool valid_run_id(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

bool Publisher::parse_endpoint(std::string_view spec, std::string& host,
                               int& port) {
  const std::size_t colon = spec.find(':');
  if (colon == 0 || colon == std::string_view::npos ||
      spec.find(':', colon + 1) != std::string_view::npos)
    return false;
  const std::string_view p = spec.substr(colon + 1);
  if (p.empty() || p.size() > 5 ||
      p.find_first_not_of("0123456789") != std::string_view::npos)
    return false;
  int v = 0;
  for (const char ch : p) v = v * 10 + (ch - '0');
  if (v < 1 || v > 65535) return false;
  host = std::string(spec.substr(0, colon));
  port = v;
  return true;
}

void Publisher::publish_file(std::string_view name, std::string body,
                             bool append) {
  Frame f;
  f.name = std::string(name);
  f.append = append;
  f.body = std::move(body);
  // The run's PE count travels in MANIFEST frames; everything pushed
  // after one is useless without it, so it is the one frame the
  // drop-oldest policy skips.
  f.droppable = f.name != "MANIFEST.txt";
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_bytes_ += f.body.size();
    queue_.push_back(std::move(f));
    while (queue_bytes_ > opts_.max_queue_bytes && queue_.size() > 1) {
      auto victim = queue_.end();
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->droppable) {
          victim = it;
          break;
        }
      }
      if (victim == queue_.end()) break;  // nothing droppable left
      queue_bytes_ -= victim->body.size();
      ++stats_.segments_dropped;
      queue_.erase(victim);
    }
  }
  cv_.notify_all();
}

bool Publisher::flush(int timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.notify_all();
  return drained_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [this] {
    return queue_.empty() && !in_flight_;
  });
}

Publisher::Stats Publisher::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void Publisher::worker_main() {
  for (;;) {
    std::vector<Frame> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, std::chrono::milliseconds(opts_.flush_interval_ms),
                   [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      queue_bytes_ = 0;
      in_flight_ = true;
    }
    std::string body;
    for (const Frame& f : batch)
      append_push_segment(body, f.name, f.append, f.body);
    const bool ok = post_batch(body);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (ok) {
        stats_.segments_published += batch.size();
        stats_.bytes_published += body.size();
      } else {
        // The batch is gone either way — dropping beats blocking PEs.
        stats_.segments_dropped += batch.size();
        ++stats_.posts_failed;
      }
      in_flight_ = false;
    }
    drained_.notify_all();
  }
}

bool Publisher::post_batch(const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }

  // Bounded connect: non-blocking + poll, so a dead daemon costs at most
  // io_timeout_ms on the publisher thread (and nothing on any PE).
  const int fl = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, opts_.io_timeout_ms) <= 0) {
      ::close(fd);
      return false;
    }
    int soerr = 0;
    socklen_t slen = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen);
    if (soerr != 0) {
      ::close(fd);
      return false;
    }
  }
  ::fcntl(fd, F_SETFL, fl);
  timeval tv{};
  tv.tv_sec = opts_.io_timeout_ms / 1000;
  tv.tv_usec = (opts_.io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  std::string req = "POST /ingest?run=" + opts_.run +
                    " HTTP/1.1\r\nHost: " + opts_.host +
                    "\r\nContent-Type: application/octet-stream"
                    "\r\nContent-Length: " +
                    std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  req += body;
  std::string_view rest = req;
  while (!rest.empty()) {
    const ssize_t n = ::send(fd, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
  // Read the status line; anything but 200 counts as a failed post.
  char buf[256];
  std::string head;
  while (head.find("\r\n") == std::string::npos && head.size() < 4096) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return head.find(" 200 ") != std::string::npos;
}

}  // namespace ap::serve
