// In-process live-trace publisher (docs/OBSERVABILITY.md, "Live
// streaming").
//
// When Config::publish (ACTORPROF_PUBLISH=host:port) is set, the profiler
// owns one Publisher: a background thread that batches framed trace
// segments and POSTs them to a running `actorprof serve` daemon's
// /ingest?run=<id> endpoint. Segment bodies reuse the .apt encoders —
// every binary payload carries the container's own per-block CRCs — so
// there is no second wire format to maintain; the daemon feeds pushed
// segments through the same ingest path its file watcher uses.
//
// The queue is bounded and drops oldest first (MANIFEST frames excepted —
// a run is unusable without its PE count), and every socket operation
// happens on the publisher thread: a slow, wedged, or absent collector can
// never stall a PE. Staging cost on the caller's thread is metered under
// the `publish` self-overhead category by the profiler hooks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ap::serve {

/// POST /ingest body framing: a sequence of segments, each
///   varint name_len | name bytes | u8 mode (0=replace, 1=append)
///   | varint body_len | body bytes | u32le crc32(body)
/// Replace swaps the named file's content wholesale (what write_all's
/// final snapshot pushes); append adds the segment's decoded rows/lines to
/// what the run already holds (mid-run superstep and anomaly deltas).
struct PushSegment {
  std::string_view name;
  bool append = false;
  std::string_view body;
};

/// Append one framed segment to a POST body under construction.
void append_push_segment(std::string& out, std::string_view name, bool append,
                         std::string_view body);

/// Parse a whole POST body into segments. Throws std::runtime_error naming
/// the 1-based segment and absolute byte offset of the damage (truncated
/// frame, bad mode byte, CRC mismatch). The returned views alias `body`.
std::vector<PushSegment> parse_push_segments(std::string_view body);

/// Run ids name registry map keys and appear in URLs and log lines, so
/// they are restricted to [A-Za-z0-9._-], 1..64 chars. Shared by the
/// daemon's ?run= routing and the profiler's Config::publish_run check
/// (reject at construction, not with a 400 on every POST).
[[nodiscard]] bool valid_run_id(std::string_view id);

/// Background push channel to one serve daemon.
class Publisher {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    /// Run id the daemon files the segments under (?run=<id>).
    std::string run = "push";
    /// Queue cap: staged-but-unsent segment bytes beyond this drop the
    /// oldest droppable segment (never a MANIFEST).
    std::size_t max_queue_bytes = 8u << 20;
    /// How long the worker coalesces staged segments before a POST.
    int flush_interval_ms = 25;
    /// Per-POST connect/send budget before the batch is counted failed.
    int io_timeout_ms = 1000;
  };

  struct Stats {
    std::uint64_t segments_published = 0;
    std::uint64_t bytes_published = 0;
    std::uint64_t segments_dropped = 0;
    std::uint64_t posts_failed = 0;
  };

  explicit Publisher(Options opts);
  ~Publisher();  ///< Final flush attempt, then stops and joins the worker.

  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  /// Stage one file segment. Never blocks on the network; drops oldest
  /// staged segments when the queue cap is hit.
  void publish_file(std::string_view name, std::string body, bool append);

  /// Block (up to `timeout_ms`) until everything staged so far was POSTed
  /// or dropped. Returns true when the queue fully drained. What
  /// write_traces() calls so a final snapshot reaches the daemon before
  /// the process exits.
  bool flush(int timeout_ms = 2000);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& run() const { return opts_.run; }

  /// Parse "host:port". Returns false (and leaves outputs untouched) on a
  /// malformed spec — the strict-parse sibling of Config::from_env's
  /// ACTORPROF_PUBLISH handling.
  static bool parse_endpoint(std::string_view spec, std::string& host,
                             int& port);

 private:
  struct Frame {
    std::string name;
    bool append = false;
    std::string body;
    bool droppable = true;
  };

  void worker_main();
  bool post_batch(const std::string& body);

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< wakes the worker
  std::condition_variable drained_;  ///< wakes flush()
  std::deque<Frame> queue_;
  std::size_t queue_bytes_ = 0;
  bool in_flight_ = false;
  bool stop_ = false;
  Stats stats_;
  std::thread worker_;
};

}  // namespace ap::serve
