#include "serve/registry.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "serve/publisher.hpp"  // valid_run_id

namespace ap::serve {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20)
      out.push_back(c);
  }
  return out;
}

Response json_error(int status, std::string_view msg) {
  Response r;
  r.status = status;
  r.body = "{\"error\":\"" + json_escape(msg) + "\"}\n";
  return r;
}

/// Value of `key` in a query string (no %-decoding: run ids are restricted
/// to characters that never need escaping).
std::string_view raw_query_param(std::string_view query,
                                 std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key)
      return pair.substr(eq + 1);
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {};
}

void split_target(std::string_view target, std::string_view& path,
                  std::string_view& query) {
  path = target;
  query = {};
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }
}

}  // namespace

ServiceRegistry::ServiceRegistry(std::filesystem::path dir,
                                 RegistryOptions opts)
    : opts_(opts),
      watched_(std::make_unique<TraceService>(std::move(dir), opts.service)) {}

ServiceRegistry::ServiceRegistry(RegistryOptions opts) : opts_(opts) {}

bool ServiceRegistry::refresh() {
  return watched_ != nullptr && watched_->refresh();
}

TraceService* ServiceRegistry::find(std::string_view run_id) {
  if (run_id.empty() || run_id == kDefaultRun) return watched_.get();
  const auto it = push_runs_.find(std::string(run_id));
  return it == push_runs_.end() ? nullptr : it->second.get();
}

std::size_t ServiceRegistry::num_runs() const {
  return push_runs_.size() + (watched_ != nullptr ? 1 : 0);
}

TraceService& ServiceRegistry::push_run(const std::string& id) {
  auto it = push_runs_.find(id);
  if (it == push_runs_.end()) {
    ServiceOptions so = opts_.service;
    so.num_pes = 0;  // pushed MANIFEST segments carry the PE count
    it = push_runs_.emplace(id, std::make_unique<TraceService>(so)).first;
  }
  return *it->second;
}

Response ServiceRegistry::ingest(std::string_view query,
                                 std::string_view body) {
  const std::string_view id = raw_query_param(query, "run");
  if (id.empty()) {
    ++ingest_rejected_;
    return json_error(400, "missing query parameter: run=<id>");
  }
  if (!valid_run_id(id) || id == kDefaultRun) {
    ++ingest_rejected_;
    return json_error(400,
                      "bad run id (1-64 chars of [A-Za-z0-9._-], not "
                      "\"default\")");
  }
  Response r = push_run(std::string(id)).ingest(body);
  if (r.status != 200) ++ingest_rejected_;
  apply_retention();
  return r;
}

void ServiceRegistry::apply_retention() {
  const auto over = [&] {
    if (opts_.retain_runs > 0 && push_runs_.size() > opts_.retain_runs)
      return true;
    if (opts_.retain_bytes > 0) {
      std::uint64_t total = 0;
      for (const auto& [id, svc] : push_runs_) total += svc->bytes();
      if (total > opts_.retain_bytes) return true;
    }
    return false;
  };
  while (push_runs_.size() > 1 && over()) {
    // Oldest-updated run goes first; the most recently updated one is
    // always kept (it is the run someone is streaming into right now).
    auto victim = push_runs_.end();
    for (auto it = push_runs_.begin(); it != push_runs_.end(); ++it) {
      if (victim == push_runs_.end() ||
          it->second->last_update_ms() < victim->second->last_update_ms())
        victim = it;
    }
    if (victim == push_runs_.end()) break;
    evicted_segments_ += victim->second->ingested_segments();
    evicted_bytes_ += victim->second->ingested_bytes();
    ++evictions_;
    if (log_ != nullptr)
      *log_ << "serve: retention evicted run '" << victim->first << "' ("
            << victim->second->bytes() << " bytes, "
            << victim->second->ingested_segments() << " segments)\n";
    push_runs_.erase(victim);
  }
}

Response ServiceRegistry::runs_json() {
  std::string out = "{\"runs\":[";
  bool first = true;
  const auto one = [&](std::string_view id, TraceService& svc) {
    if (!first) out += ",";
    first = false;
    const auto p = svc.progress();
    out += "{\"id\":\"" + json_escape(id) + "\",\"source\":\"" +
           svc.source() + "\",\"num_pes\":" + std::to_string(svc.num_pes()) +
           ",\"version\":" + std::to_string(svc.version()) +
           ",\"bytes\":" + std::to_string(svc.bytes()) +
           ",\"steps_rows\":" + std::to_string(p.steps_rows) +
           ",\"last_update_ms\":" + std::to_string(svc.last_update_ms()) +
           "}";
  };
  if (watched_ != nullptr) one(kDefaultRun, *watched_);
  for (const auto& [id, svc] : push_runs_) one(id, *svc);
  out += "],\"evictions\":" + std::to_string(evictions_) + "}\n";
  Response r;
  r.body = std::move(out);
  return r;
}

void ServiceRegistry::append_self_metrics(std::string& out) const {
  out +=
      "# HELP actorprof_serve_requests_total Requests answered, by "
      "endpoint\n# TYPE actorprof_serve_requests_total counter\n";
  for (const auto& [endpoint, n] : requests_by_endpoint_)
    out += "actorprof_serve_requests_total{endpoint=\"" +
           json_escape(endpoint) + "\"} " + std::to_string(n) + "\n";
  std::uint64_t segments = evicted_segments_, bytes = evicted_bytes_;
  std::uint64_t reloads = 0, hits = 0, misses = 0;
  const auto fold = [&](const TraceService& svc) {
    segments += svc.ingested_segments();
    bytes += svc.ingested_bytes();
    reloads += svc.reloads();
    hits += svc.analyze_hits();
    misses += svc.analyze_misses();
  };
  if (watched_ != nullptr) fold(*watched_);
  for (const auto& [id, svc] : push_runs_) fold(*svc);
  const auto counter = [&](const char* name, const char* help,
                           std::uint64_t v) {
    out += std::string("# HELP ") + name + " " + help + "\n# TYPE " + name +
           " counter\n" + name + " " + std::to_string(v) + "\n";
  };
  counter("actorprof_serve_ingest_segments_total",
          "Push segments applied via POST /ingest", segments);
  counter("actorprof_serve_ingest_bytes_total",
          "Push segment bytes applied via POST /ingest", bytes);
  counter("actorprof_serve_ingest_rejected_total",
          "POST /ingest requests rejected", ingest_rejected_);
  counter("actorprof_serve_reloads_total",
          "File-watcher refreshes that reloaded trace state", reloads);
  counter("actorprof_serve_analyze_cache_hits_total",
          "GET /analyze answered from the cached body", hits);
  counter("actorprof_serve_analyze_cache_misses_total",
          "GET /analyze that recomputed the analysis", misses);
  counter("actorprof_serve_evictions_total",
          "Push runs evicted by the retention policy", evictions_);
  out +=
      "# HELP actorprof_serve_runs Runs currently held (watched + push)\n"
      "# TYPE actorprof_serve_runs gauge\n"
      "actorprof_serve_runs " +
      std::to_string(num_runs()) + "\n";
}

Response ServiceRegistry::metrics_with_self(TraceService& svc) {
  Response r = svc.handle("GET", "/metrics");
  // The run's exposition may 404 (no metrics.prom); the service
  // self-metrics exist regardless, so /metrics always answers 200.
  std::string out = r.status == 200 ? std::move(r.body) : std::string();
  append_self_metrics(out);
  Response ok;
  ok.content_type = "text/plain; version=0.0.4; charset=utf-8";
  ok.body = std::move(out);
  return ok;
}

Response ServiceRegistry::live_open(std::string_view query, LiveCursor& cur) {
  std::string_view id = raw_query_param(query, "run");
  if (id.empty()) id = kDefaultRun;
  if (!valid_run_id(id)) return json_error(400, "bad run id");
  TraceService* svc = find(id);
  if (svc == nullptr) {
    if (id == kDefaultRun)
      return json_error(404, "no watched run (daemon started without a dir)");
    // Creating the run on subscribe lets `actorprof tail` start before the
    // profiled run's first POST arrives.
    svc = &push_run(std::string(id));
  }
  ++requests_by_endpoint_["/live"];
  cur = LiveCursor{};
  cur.run = std::string(id);
  Response r;
  r.content_type = "text/event-stream";
  r.body = "event: hello\ndata: {\"run\":\"" + json_escape(id) +
           "\",\"source\":\"" + svc->source() +
           "\",\"num_pes\":" + std::to_string(svc->num_pes()) + "}\n\n";
  return r;
}

bool ServiceRegistry::live_poll(LiveCursor& cur, std::string& out) {
  TraceService* svc = find(cur.run);
  if (svc == nullptr) return false;  // evicted since the subscribe
  if (svc->version() != cur.version) {
    cur.version = svc->version();
    const auto p = svc->progress();
    out += "event: superstep\ndata: {\"run\":\"" + json_escape(cur.run) +
           "\",\"version\":" + std::to_string(svc->version()) +
           ",\"num_pes\":" + std::to_string(svc->num_pes()) +
           ",\"steps_rows\":" + std::to_string(p.steps_rows) +
           ",\"max_epoch\":" + std::to_string(p.max_epoch) +
           ",\"max_step\":" + std::to_string(p.max_step) + "}\n\n";
  }
  const auto& lines = svc->anomaly_lines();
  for (; cur.anomalies < lines.size(); ++cur.anomalies)
    out += "event: anomaly\ndata: " + lines[cur.anomalies] + "\n\n";
  return true;
}

Response ServiceRegistry::handle(std::string_view method,
                                 std::string_view target,
                                 std::string_view body) {
  std::string_view path, query;
  split_target(target, path, query);
  // /live subscriptions count in live_open (the HTTP loop calls it
  // directly, without coming through here).
  if (path != "/live") ++requests_by_endpoint_[std::string(path)];

  if (path == "/ingest") {
    if (method != "POST")
      return json_error(405, "/ingest takes POST (push framing body)");
    return ingest(query, body);
  }
  if (path == "/runs") {
    if (method != "GET") return json_error(405, "only GET is supported");
    return runs_json();
  }
  if (path == "/live") {
    // The SSE stream itself lives in the HTTP loop (live_open/live_poll);
    // a plain handle() call — unit tests, curl without streaming — gets
    // the hello event snapshot.
    LiveCursor cur;
    return live_open(query, cur);
  }

  std::string_view id = raw_query_param(query, "run");
  if (id.empty()) id = kDefaultRun;
  if (!valid_run_id(id)) return json_error(400, "bad run id");
  TraceService* svc = find(id);
  if (svc == nullptr) {
    // A pure-push daemon has no default run, but the service self-metrics
    // exist regardless: /metrics always answers 200.
    if (path == "/metrics" && method == "GET" && id == kDefaultRun) {
      std::string out;
      append_self_metrics(out);
      Response ok;
      ok.content_type = "text/plain; version=0.0.4; charset=utf-8";
      ok.body = std::move(out);
      return ok;
    }
    return json_error(404, "unknown run '" + std::string(id) +
                               "'; GET /runs lists the known ones");
  }
  if (path == "/metrics" && method == "GET") return metrics_with_self(*svc);
  return svc->handle(method, target);
}

}  // namespace ap::serve
