// Multi-run routing for the trace service (docs/OBSERVABILITY.md, "Live
// streaming").
//
// A ServiceRegistry keys TraceServices by run id. The watched trace dir
// (when the daemon was started with one) is the run "default", so every
// pre-existing URL — GET /analyze, /heatmap, ... without a ?run= — keeps
// answering byte-identically. Push-backed runs are created on demand by
// POST /ingest?run=<id> (or a /live subscription) and feed the framed
// segments of serve/publisher.hpp through the same decode paths the file
// watcher uses.
//
// The registry also owns what no single run can: the /runs listing, the
// retention policy over push runs (--retain-bytes / --retain-runs,
// oldest-updated evicted first, with a log line per eviction), the /live
// SSE event source, and the service self-metrics appended to /metrics.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "serve/service.hpp"

namespace ap::serve {

/// Run id of the watched trace dir (requests without ?run=).
inline constexpr std::string_view kDefaultRun = "default";

struct RegistryOptions {
  ServiceOptions service;
  /// Evict oldest-updated push runs when their byte total exceeds this
  /// (0 = unlimited). The watched run is never evicted.
  std::uint64_t retain_bytes = 0;
  /// Keep at most this many push runs (0 = unlimited).
  std::size_t retain_runs = 0;
};

class ServiceRegistry {
 public:
  /// With a watched dir: that dir becomes run "default".
  ServiceRegistry(std::filesystem::path dir, RegistryOptions opts);
  /// Push-only daemon: every run arrives over POST /ingest.
  explicit ServiceRegistry(RegistryOptions opts);

  /// Refresh the watched run (no-op for push-only daemons). Returns true
  /// when anything changed.
  bool refresh();

  /// Route one request. GETs carry an optional ?run=<id> (default:
  /// "default"); POST /ingest?run=<id> feeds push frames. /runs lists all
  /// runs; /metrics appends registry self-metrics to the run's exposition.
  Response handle(std::string_view method, std::string_view target,
                  std::string_view body = {});

  /// The watched service, or nullptr for a push-only daemon.
  [[nodiscard]] TraceService* watched() { return watched_.get(); }
  /// Look up a run by id (nullptr when absent).
  [[nodiscard]] TraceService* find(std::string_view run_id);
  [[nodiscard]] std::size_t num_runs() const;
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Where eviction log lines go (nullptr = silent).
  void set_log(std::ostream* log) { log_ = log; }

  // ---- /live (SSE) ---------------------------------------------------------
  /// Progress position of one SSE subscriber. Starts at zero so the first
  /// poll delivers the run's current state as the initial delta.
  struct LiveCursor {
    std::string run;
    std::uint64_t version = 0;
    std::size_t anomalies = 0;
  };

  /// Open a /live subscription: resolves ?run= (creating a push run on an
  /// unknown id, so tailing can start before the first ingest), fills
  /// `cur`, and returns the SSE hello event (status 200,
  /// text/event-stream) or a JSON error.
  Response live_open(std::string_view query, LiveCursor& cur);

  /// Append any new SSE events ("superstep" deltas, "anomaly" lines) for
  /// `cur`'s run to `out` and advance the cursor. Returns false when the
  /// run no longer exists (subscriber should be disconnected).
  bool live_poll(LiveCursor& cur, std::string& out);

 private:
  Response runs_json();
  Response ingest(std::string_view query, std::string_view body);
  /// The run's /metrics body with registry self-metrics appended (always
  /// 200: a run without metrics.prom still exposes the service series).
  Response metrics_with_self(TraceService& svc);
  void append_self_metrics(std::string& out) const;
  void apply_retention();
  /// Find or create the push run `id`.
  TraceService& push_run(const std::string& id);

  RegistryOptions opts_;
  std::unique_ptr<TraceService> watched_;
  std::map<std::string, std::unique_ptr<TraceService>> push_runs_;
  std::map<std::string, std::uint64_t> requests_by_endpoint_;
  std::uint64_t ingest_rejected_ = 0;
  std::uint64_t evictions_ = 0;
  /// Bytes/segments of evicted runs (so totals stay monotonic counters).
  std::uint64_t evicted_segments_ = 0, evicted_bytes_ = 0;
  std::ostream* log_ = nullptr;
};

}  // namespace ap::serve
