#include "serve/service.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <system_error>

#include "analysis/analysis.hpp"
#include "check/checker.hpp"
#include "core/trace_binary.hpp"
#include "viz/heatmap_json.hpp"

namespace ap::serve {

namespace io = ap::prof::io;
namespace fs = std::filesystem;

namespace {

bool slurp(const fs::path& p, std::string& out) {
  std::ifstream is(p, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20)
      out.push_back(c);
  }
  return out;
}

Response json_error(int status, std::string_view msg) {
  Response r;
  r.status = status;
  r.body = "{\"error\":\"" + json_escape(msg) + "\"}\n";
  return r;
}

/// Minimal %XX + '+' decoding for query parameter values.
std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// Value of `key` in an application/x-www-form-urlencoded query string.
std::string query_param(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair = query.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key)
      return url_decode(pair.substr(eq + 1));
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return {};
}

bool any_steps(const io::TraceDir& t) {
  for (const auto& per_pe : t.steps)
    if (!per_pe.empty()) return true;
  return false;
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Kind of a per-PE shard name; accepts both the CSV and .apt spellings.
enum class ShardKind { send, papi, steps, none };

ShardKind parse_shard_name(std::string_view name, int& pe) {
  pe = -1;
  if (name.size() < 3 || name[0] != 'P' || name[1] != 'E') return ShardKind::none;
  std::size_t i = 2;
  int v = 0;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    v = v * 10 + (name[i] - '0');
    ++i;
  }
  if (i == 2) return ShardKind::none;
  pe = v;
  const std::string_view rest = name.substr(i);
  if (rest == "_send.csv" || rest == "_send.apt") return ShardKind::send;
  if (rest == "_PAPI.csv" || rest == "_PAPI.apt") return ShardKind::papi;
  if (rest == "_steps.csv" || rest == "_steps.apt") return ShardKind::steps;
  return ShardKind::none;
}

}  // namespace

TraceService::TraceService(fs::path dir, ServiceOptions opts)
    : dir_(std::move(dir)), opts_(opts) {
  refresh();
}

TraceService::TraceService(ServiceOptions opts)
    : opts_(opts), push_mode_(true) {
  if (opts_.num_pes > 0) resize_world(opts_.num_pes);
}

void TraceService::touch() { last_update_ms_ = now_ms(); }

TraceService::Sig TraceService::stat_file(const std::string& name) const {
  Sig s;
  std::error_code ec;
  const fs::path p = dir_ / name;
  const auto status = fs::status(p, ec);
  if (ec || !fs::is_regular_file(status)) return s;
  s.exists = true;
  s.size = static_cast<std::uint64_t>(fs::file_size(p, ec));
  const auto mtime = fs::last_write_time(p, ec);
  s.mtime = static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          mtime.time_since_epoch())
          .count());
  // Content signature over the file's head and tail: an atomically renamed
  // rewrite can keep size and (at coarse filesystem granularity) mtime, so
  // the stat pair alone misses it. 128 bytes cover the .apt header/flags
  // at the front and the final block's CRC at the back.
  std::ifstream is(p, std::ios::binary);
  if (is) {
    char head[64];
    is.read(head, sizeof head);
    const auto head_n = static_cast<std::size_t>(is.gcount());
    std::uint64_t h = io::fnv1a64(head, head_n);
    if (s.size > sizeof head) {
      char tail[64];
      const auto tail_n =
          static_cast<std::streamoff>(std::min<std::uint64_t>(s.size, 64));
      is.clear();
      is.seekg(-tail_n, std::ios::end);
      is.read(tail, tail_n);
      if (is.gcount() == tail_n)
        h = h * 1099511628211ull ^
            io::fnv1a64(tail, static_cast<std::size_t>(tail_n));
    }
    s.content = h;
  }
  return s;
}

void TraceService::scan(int num_pes, std::map<std::string, Sig>& out) const {
  const auto add = [&](const std::string& name) {
    out[name] = stat_file(name);
    out[io::binary_file_name(name)] = stat_file(io::binary_file_name(name));
  };
  out[io::kManifestFile] = stat_file(io::kManifestFile);
  out[io::kOverallFile] = stat_file(io::kOverallFile);
  out["metrics.prom"] = stat_file("metrics.prom");
  add(io::kPhysicalFile);
  add(io::kCheckFile);
  for (int pe = 0; pe < num_pes; ++pe) {
    add(io::logical_file_name(pe));
    add(io::papi_file_name(pe));
    add(io::steps_file_name(pe));
  }
}

void TraceService::full_reload() {
  if (num_pes_ <= 0) {
    trace_ = io::TraceDir{};
    return;
  }
  io::LoadOptions lo;
  lo.tolerate_partial = true;
  trace_ = io::load_trace_dir(dir_, num_pes_, lo);
}

void TraceService::reload_shard(const std::string& csv_name, int pe) {
  const auto idx = static_cast<std::size_t>(pe);
  const std::string bin_name = io::binary_file_name(csv_name);
  // Drop stale issues of this shard; a clean re-parse clears the warning.
  std::erase_if(trace_.issues, [&](const io::FileIssue& i) {
    return i.file == csv_name || i.file == bin_name;
  });

  std::string actual = bin_name;
  std::string body;
  if (!slurp(dir_ / bin_name, body)) {
    actual = csv_name;
    if (!slurp(dir_ / csv_name, body)) return;  // not flushed yet
  }

  const bool is_send = csv_name == io::logical_file_name(pe);
  const bool is_papi = csv_name == io::papi_file_name(pe);
  if (is_send)
    trace_.logical[idx].clear();
  else if (is_papi)
    trace_.papi[idx].clear();
  else
    trace_.steps[idx].clear();
  try {
    if (io::is_binary_trace(body)) {
      if (is_send) {
        io::decode_logical_into(body, trace_.logical[idx]);
      } else if (is_papi) {
        io::decode_papi_into(
            body, trace_.papi[idx],
            trace_.papi_events.empty() ? &trace_.papi_events : nullptr);
      } else {
        io::decode_steps_into(body, trace_.steps[idx]);
      }
    } else {
      std::istringstream is(body);
      if (is_send)
        io::parse_logical_into(is, trace_.logical[idx]);
      else if (is_papi)
        io::parse_papi_into(is, trace_.papi[idx]);
      else
        io::parse_steps_into(is, trace_.steps[idx]);
    }
  } catch (const io::TraceParseError& e) {
    // Mid-flush shard: keep the verified prefix, record the damage — the
    // next refresh re-parses the finished file and clears this issue.
    trace_.issues.push_back(io::FileIssue{actual, e.line_no(), e.what()});
  }
}

bool TraceService::refresh() {
  if (push_mode_) return false;
  const int np = opts_.num_pes > 0 ? opts_.num_pes : io::detect_num_pes(dir_);
  std::map<std::string, Sig> cur;
  scan(np, cur);
  if (np == num_pes_ && cur == sigs_) return false;

  // A shard that grew or appeared re-ingests alone; anything else — PE
  // count learned, MANIFEST/overall/physical/check changed, a file gone or
  // shrunk (rewritten dir) — reloads the whole directory.
  bool full = np != num_pes_;
  std::vector<std::pair<std::string, int>> changed_shards;
  if (!full) {
    for (const auto& [name, sig] : cur) {
      const auto it = sigs_.find(name);
      const Sig old = it == sigs_.end() ? Sig{} : it->second;
      if (sig == old) continue;
      if (old.exists && (!sig.exists || sig.size < old.size)) {
        full = true;
        break;
      }
      int pe = -1;
      if (name.size() > 2 && name[0] == 'P' && name[1] == 'E')
        pe = std::atoi(name.c_str() + 2);
      if (pe < 0 || pe >= num_pes_) {
        full = true;
        break;
      }
      // Map either form back to the canonical CSV shard name.
      std::string csv = name;
      if (csv.size() > 4 && csv.substr(csv.size() - 4) == ".apt") {
        if (csv.find("_send") != std::string::npos)
          csv = io::logical_file_name(pe);
        else if (csv.find("_PAPI") != std::string::npos)
          csv = io::papi_file_name(pe);
        else
          csv = io::steps_file_name(pe);
      }
      changed_shards.emplace_back(csv, pe);
    }
  }

  num_pes_ = np;
  if (full) {
    full_reload();
  } else {
    for (const auto& [csv, pe] : changed_shards) reload_shard(csv, pe);
  }
  sigs_ = std::move(cur);
  ++version_;
  ++reloads_;
  touch();
  return true;
}

// ------------------------------------------------------------- push ingest

void TraceService::resize_world(int np) {
  num_pes_ = np;
  trace_ = io::TraceDir{};
  trace_.num_pes = np;
  trace_.logical.resize(static_cast<std::size_t>(np));
  trace_.papi.resize(static_cast<std::size_t>(np));
  trace_.steps.resize(static_cast<std::size_t>(np));
}

void TraceService::apply_segment(const PushSegment& seg) {
  const std::string name(seg.name);
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find("..") != std::string::npos)
    throw std::runtime_error("bad segment file name");
  const std::string_view body = seg.body;

  const auto account = [&] {
    if (seg.append)
      file_bytes_[name] += body.size();
    else
      file_bytes_[name] = body.size();
  };

  if (name == io::kManifestFile) {
    std::istringstream is{std::string(body)};
    const io::Manifest m = io::parse_manifest(is);
    if (m.num_pes <= 0) throw std::runtime_error("manifest has no PE count");
    // A PE-count change resets the run: every shard indexed by the old
    // world is meaningless (the publisher always sends the MANIFEST before
    // any shard of a new world, so nothing real is lost).
    if (m.num_pes != num_pes_) resize_world(m.num_pes);
    trace_.dead_pes = m.dead_pes;
    account();
    return;
  }
  if (name == "metrics.prom") {
    if (seg.append)
      metrics_prom_ += body;
    else
      metrics_prom_ = std::string(body);
    account();
    return;
  }
  if (name == "anomalies.txt") {
    if (!seg.append) anomaly_lines_.clear();
    std::string_view rest = body;
    while (!rest.empty()) {
      const std::size_t nl = rest.find('\n');
      const std::string_view line = rest.substr(0, nl);
      if (!line.empty()) anomaly_lines_.emplace_back(line);
      if (nl == std::string_view::npos) break;
      rest.remove_prefix(nl + 1);
    }
    account();
    return;
  }
  if (name == io::kOverallFile) {
    std::istringstream is{std::string(body)};
    std::vector<ap::prof::OverallRecord> scratch;
    io::parse_overall_into(is, scratch);
    trace_.overall = std::move(scratch);
    account();
    return;
  }
  if (name == io::kMetricSamplesFile) {
    // Nothing in the endpoints renders the ring yet, but the segment is
    // still fully validated so damage is rejected, not stored.
    io::MetricSamples scratch;
    io::decode_metric_samples_into(body, scratch);
    account();
    return;
  }
  if (name == io::kPhysicalFile || name == io::binary_file_name(io::kPhysicalFile)) {
    std::vector<ap::prof::PhysicalRecord> scratch;
    if (io::is_binary_trace(body)) {
      io::decode_physical_into(body, scratch);
    } else {
      std::istringstream is{std::string(body)};
      io::parse_physical_into(is, scratch);
    }
    if (seg.append)
      trace_.physical.insert(trace_.physical.end(), scratch.begin(),
                             scratch.end());
    else
      trace_.physical = std::move(scratch);
    account();
    return;
  }
  if (name == io::kCheckFile || name == io::binary_file_name(io::kCheckFile)) {
    std::vector<ap::check::Violation> scratch;
    std::uint64_t dropped = 0;
    if (io::is_binary_trace(body)) {
      io::decode_check_into(body, scratch, dropped);
    } else {
      std::istringstream is{std::string(body)};
      io::parse_check_into(is, scratch, dropped);
    }
    trace_.check = std::move(scratch);
    trace_.check_dropped = dropped;
    trace_.check_recorded = true;
    account();
    return;
  }

  int pe = -1;
  const ShardKind kind = parse_shard_name(name, pe);
  if (kind == ShardKind::none)
    throw std::runtime_error("unknown trace file name");
  if (pe < 0 || pe >= num_pes_)
    throw std::runtime_error(
        "PE " + std::to_string(pe) +
        " out of range (is the MANIFEST segment missing?)");
  const auto idx = static_cast<std::size_t>(pe);

  // Decode into scratch first: a BinaryParseError mid-body must not leave
  // the run with half a segment spliced in.
  switch (kind) {
    case ShardKind::send: {
      std::vector<ap::prof::LogicalSendRecord> scratch;
      if (io::is_binary_trace(body)) {
        io::decode_logical_into(body, scratch);
      } else {
        std::istringstream is{std::string(body)};
        io::parse_logical_into(is, scratch);
      }
      if (seg.append)
        trace_.logical[idx].insert(trace_.logical[idx].end(), scratch.begin(),
                                   scratch.end());
      else
        trace_.logical[idx] = std::move(scratch);
      break;
    }
    case ShardKind::papi: {
      std::vector<ap::prof::PapiSegmentRecord> scratch;
      std::vector<ap::papi::Event> events;
      if (io::is_binary_trace(body)) {
        io::decode_papi_into(body, scratch, &events);
      } else {
        std::istringstream is{std::string(body)};
        io::parse_papi_into(is, scratch);
      }
      if (seg.append)
        trace_.papi[idx].insert(trace_.papi[idx].end(), scratch.begin(),
                                scratch.end());
      else
        trace_.papi[idx] = std::move(scratch);
      if (trace_.papi_events.empty() && !events.empty())
        trace_.papi_events = std::move(events);
      break;
    }
    case ShardKind::steps: {
      std::vector<ap::prof::SuperstepRecord> scratch;
      if (io::is_binary_trace(body)) {
        io::decode_steps_into(body, scratch);
      } else {
        std::istringstream is{std::string(body)};
        io::parse_steps_into(is, scratch);
      }
      if (seg.append)
        trace_.steps[idx].insert(trace_.steps[idx].end(), scratch.begin(),
                                 scratch.end());
      else
        trace_.steps[idx] = std::move(scratch);
      break;
    }
    case ShardKind::none: break;
  }
  account();
}

Response TraceService::ingest(std::string_view body) {
  if (!push_mode_)
    return json_error(403,
                      "run is file-backed; POST /ingest targets push runs");
  std::vector<PushSegment> segs;
  try {
    segs = parse_push_segments(body);
  } catch (const std::exception& e) {
    return json_error(400, e.what());
  }
  std::size_t applied = 0;
  for (const PushSegment& s : segs) {
    try {
      apply_segment(s);
      ++applied;
      ++ingested_segments_;
      ingested_bytes_ += s.body.size();
    } catch (const std::exception& e) {
      // Segments already applied were individually validated, so the run
      // stays consistent; report which one failed and why.
      if (applied > 0) ++version_;
      touch();
      return json_error(400, "segment " + std::to_string(applied + 1) + " (" +
                                 std::string(s.name) + "): " + e.what());
    }
  }
  if (applied > 0) {
    ++version_;
    touch();
  }
  Response r;
  r.body = "{\"applied\":" + std::to_string(applied) + "}\n";
  return r;
}

std::uint64_t TraceService::bytes() const {
  std::uint64_t total = 0;
  if (push_mode_) {
    for (const auto& [name, sz] : file_bytes_) total += sz;
  } else {
    for (const auto& [name, sig] : sigs_)
      if (sig.exists) total += sig.size;
  }
  return total;
}

TraceService::Progress TraceService::progress() const {
  Progress p;
  for (const auto& per_pe : trace_.steps) {
    p.steps_rows += per_pe.size();
    for (const auto& r : per_pe) {
      p.max_epoch = std::max(p.max_epoch, r.epoch);
      p.max_step = std::max(p.max_step, r.step);
    }
  }
  return p;
}

// --------------------------------------------------------------- endpoints

Response TraceService::analyze_json() {
  if (num_pes_ <= 0)
    return json_error(503,
                      "PE count unknown: no readable MANIFEST.txt yet; "
                      "start serve with --num-pes N to analyze mid-run");
  if (!any_steps(trace_))
    return json_error(503,
                      "no superstep records yet (PEi_steps missing — record "
                      "with ACTORPROF_SUPERSTEPS=1)");
  if (analyze_version_ != version_) {
    ++analyze_misses_;
    const auto a = ap::prof::analysis::analyze(trace_);
    std::ostringstream os;
    ap::prof::analysis::write_json(os, a);
    analyze_cache_ = os.str();
    analyze_version_ = version_;
  } else {
    ++analyze_hits_;
  }
  Response r;
  r.body = analyze_cache_;
  return r;
}

Response TraceService::diff_json(std::string_view query) {
  const std::string base = query_param(query, "base");
  if (base.empty())
    return json_error(400, "missing query parameter: base=<trace_dir>");
  if (num_pes_ <= 0 || !any_steps(trace_))
    return json_error(503, "watched trace has no superstep records yet");
  const int base_pes =
      opts_.num_pes > 0 ? opts_.num_pes : io::detect_num_pes(base);
  if (base_pes <= 0)
    return json_error(404, "cannot determine the PE count of " + base);
  io::TraceDir tb;
  try {
    io::LoadOptions lo;
    lo.tolerate_partial = true;
    tb = io::load_trace_dir(base, base_pes, lo);
  } catch (const std::exception& e) {
    return json_error(404, std::string("cannot load base trace: ") + e.what());
  }
  if (!any_steps(tb))
    return json_error(404, "base trace has no superstep records");
  const auto a_base = ap::prof::analysis::analyze(tb);
  const auto a_cur = ap::prof::analysis::analyze(trace_);
  const auto d = ap::prof::analysis::diff(a_base, a_cur,
                                          opts_.diff_threshold_pct / 100.0);
  std::ostringstream os;
  ap::prof::analysis::write_diff_json(os, d);
  Response r;
  r.body = os.str();
  return r;
}

Response TraceService::heatmap_json() {
  if (num_pes_ <= 0)
    return json_error(503, "PE count unknown: no readable MANIFEST.txt yet");
  std::ostringstream os;
  ap::viz::write_heatmap_json(os, trace_);
  Response r;
  r.body = os.str();
  return r;
}

Response TraceService::check_json() {
  if (!trace_.check_recorded)
    return json_error(404,
                      "no conformance report recorded (run with "
                      "ACTORPROF_CHECK=1 so write_traces() emits check.csv)");
  std::ostringstream os;
  ap::check::write_json(os, trace_.check, trace_.check_dropped);
  Response r;
  r.body = os.str();
  return r;
}

Response TraceService::metrics_text() {
  std::string body;
  if (push_mode_)
    body = metrics_prom_;
  else
    slurp(dir_ / "metrics.prom", body);
  if (body.empty()) {
    Response r;
    r.status = 404;
    r.content_type = "text/plain; charset=utf-8";
    r.body = "no metrics.prom in the trace dir (enable ACTORPROF_METRICS=1)\n";
    return r;
  }
  Response r;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = std::move(body);
  return r;
}

Response TraceService::healthz_json() {
  std::ostringstream os;
  std::size_t present = 0;
  for (const auto& [name, sig] : sigs_)
    if (sig.exists) ++present;
  if (push_mode_) present = file_bytes_.size();
  os << "{\"status\":\"" << (num_pes_ > 0 ? "ok" : "waiting")
     << "\",\"dir\":\"" << json_escape(push_mode_ ? "<push>" : dir_.string())
     << "\",\"num_pes\":" << num_pes_ << ",\"version\":" << version_
     << ",\"files\":" << present << ",\"issues\":" << trace_.issues.size()
     << ",\"check_recorded\":"
     << (trace_.check_recorded ? "true" : "false") << "}\n";
  Response r;
  r.body = os.str();
  return r;
}

Response TraceService::handle(std::string_view method,
                              std::string_view target) {
  if (method != "GET") {
    Response r = json_error(405, "only GET is supported");
    return r;
  }
  std::string_view path = target;
  std::string_view query;
  if (const std::size_t q = target.find('?'); q != std::string_view::npos) {
    path = target.substr(0, q);
    query = target.substr(q + 1);
  }
  if (path == "/healthz") return healthz_json();
  if (path == "/analyze") return analyze_json();
  if (path == "/diff") return diff_json(query);
  if (path == "/heatmap") return heatmap_json();
  if (path == "/check") return check_json();
  if (path == "/metrics") return metrics_text();
  return json_error(404,
                    "unknown endpoint; try /healthz /analyze /diff?base=DIR "
                    "/heatmap /check /metrics");
}

}  // namespace ap::serve
