// The always-on trace service behind `actorprof serve` (docs/OBSERVABILITY.md,
// "Live service").
//
// TraceService watches one trace directory and keeps an in-memory TraceDir
// loaded with the same tolerant-partial semantics the CLI uses, so a
// directory being written by a live run — shards appearing one by one,
// MANIFEST.txt last — is served continuously: refresh() re-stats the known
// file names and re-ingests only the shards whose size/mtime changed
// (a full reload happens only when the MANIFEST, the PE count, or a
// non-per-PE file changes, or a file shrinks/disappears).
//
// handle() is pure request-in/response-out — no sockets — so endpoint
// behavior is unit-testable; serve_http.hpp adds the HTTP/1.1 loop.
// Endpoint bodies are byte-identical to what the CLI prints for the same
// trace (`analyze --json`, `diff --json`, `check --json`,
// `heatmap --json`), which CI verifies by diffing the two.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>

#include "core/trace_io.hpp"

namespace ap::serve {

struct ServiceOptions {
  /// PE count of the watched trace. 0 = detect from MANIFEST.txt on every
  /// refresh (mid-run, before the MANIFEST lands, endpoints answer 503).
  int num_pes = 0;
  /// GET /diff regression threshold, like the CLI's --threshold.
  double diff_threshold_pct = 10.0;
};

/// One HTTP-shaped reply: status code, content type, body bytes.
struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class TraceService {
 public:
  explicit TraceService(std::filesystem::path dir, ServiceOptions opts = {});

  /// Re-scan the watched dir and re-ingest what changed. Returns true when
  /// anything was reloaded (the version advanced). Called by the server
  /// loop on every poll tick and before every request.
  bool refresh();

  /// Answer one request. Targets: /healthz /analyze /diff?base=DIR
  /// /heatmap /check /metrics. Unknown targets get 404, non-GET 405.
  Response handle(std::string_view method, std::string_view target);

  /// Monotonic reload counter (bumped by every refresh that changed state).
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const ap::prof::io::TraceDir& trace() const { return trace_; }
  [[nodiscard]] int num_pes() const { return num_pes_; }

 private:
  struct Sig {
    std::uint64_t size = 0;
    std::int64_t mtime = 0;
    bool exists = false;
    friend bool operator==(const Sig&, const Sig&) = default;
  };

  [[nodiscard]] Sig stat_file(const std::string& name) const;
  /// Stat every known trace file name (CSV and .apt forms) for a trace of
  /// `num_pes` PEs.
  void scan(int num_pes, std::map<std::string, Sig>& out) const;
  void full_reload();
  /// Re-parse one per-PE shard in place (the incremental path).
  void reload_shard(const std::string& csv_name, int pe);

  Response analyze_json();
  Response diff_json(std::string_view query);
  Response heatmap_json();
  Response check_json();
  Response metrics_text();
  Response healthz_json();

  std::filesystem::path dir_;
  ServiceOptions opts_;
  int num_pes_ = 0;
  ap::prof::io::TraceDir trace_;
  std::map<std::string, Sig> sigs_;
  std::uint64_t version_ = 0;
  /// Cached /analyze body (analysis is the expensive endpoint); valid for
  /// `analyze_version_ == version_`.
  std::string analyze_cache_;
  std::uint64_t analyze_version_ = ~0ull;
};

}  // namespace ap::serve
