// The always-on trace service behind `actorprof serve` (docs/OBSERVABILITY.md,
// "Live service").
//
// TraceService holds one run. It comes in two flavours:
//   * file-backed — watches one trace directory and keeps an in-memory
//     TraceDir loaded with the same tolerant-partial semantics the CLI
//     uses, so a directory being written by a live run — shards appearing
//     one by one, MANIFEST.txt last — is served continuously: refresh()
//     re-stats the known file names and re-ingests only the shards whose
//     signature (size/mtime/content) changed (a full reload happens only
//     when the MANIFEST, the PE count, or a non-per-PE file changes, or a
//     file shrinks/disappears).
//   * push-backed — no directory: trace content arrives as framed
//     segments over POST /ingest (serve/publisher.hpp), each validated
//     against its CRC and decoded into a scratch buffer before it is
//     spliced into the run, so a damaged segment 400s without corrupting
//     anything already ingested.
//
// handle() is pure request-in/response-out — no sockets — so endpoint
// behavior is unit-testable; registry.hpp keys many TraceServices by run
// id and http.hpp adds the HTTP/1.1 loop. Endpoint bodies are
// byte-identical to what the CLI prints for the same trace
// (`analyze --json`, `diff --json`, `check --json`, `heatmap --json`),
// which CI verifies by diffing the two.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/trace_io.hpp"
#include "serve/publisher.hpp"

namespace ap::serve {

struct ServiceOptions {
  /// PE count of the watched trace. 0 = detect from MANIFEST.txt on every
  /// refresh (mid-run, before the MANIFEST lands, endpoints answer 503).
  int num_pes = 0;
  /// GET /diff regression threshold, like the CLI's --threshold.
  double diff_threshold_pct = 10.0;
};

/// One HTTP-shaped reply: status code, content type, body bytes.
struct Response {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class TraceService {
 public:
  /// File-backed run: watch `dir`.
  explicit TraceService(std::filesystem::path dir, ServiceOptions opts = {});
  /// Push-backed run: content arrives via ingest().
  explicit TraceService(ServiceOptions opts);

  /// Re-scan the watched dir and re-ingest what changed. Returns true when
  /// anything was reloaded (the version advanced). Called by the server
  /// loop on every poll tick and before every request. No-op (false) for
  /// push-backed runs.
  bool refresh();

  /// Answer one request. Targets: /healthz /analyze /diff?base=DIR
  /// /heatmap /check /metrics. Unknown targets get 404, non-GET 405.
  Response handle(std::string_view method, std::string_view target);

  /// Apply one POST /ingest body (push framing, serve/publisher.hpp).
  /// Each segment is fully validated (CRC + decode) before being spliced
  /// in; the first bad segment 400s with segment/offset attribution and
  /// everything already applied stays intact. Push-backed runs only.
  Response ingest(std::string_view body);

  /// Monotonic reload counter (bumped by every refresh/ingest that changed
  /// state).
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const ap::prof::io::TraceDir& trace() const { return trace_; }
  [[nodiscard]] int num_pes() const { return num_pes_; }
  [[nodiscard]] bool push_mode() const { return push_mode_; }
  /// "file" or "push" — how this run's bytes arrive (the /runs listing).
  [[nodiscard]] const char* source() const {
    return push_mode_ ? "push" : "file";
  }
  /// Total trace bytes this run currently holds (on-disk sizes for a
  /// file-backed run, ingested segment totals for a push run). The
  /// retention policy evicts by this.
  [[nodiscard]] std::uint64_t bytes() const;
  /// steady-clock ms stamp of the last state change (0 = never).
  [[nodiscard]] std::int64_t last_update_ms() const { return last_update_ms_; }
  /// refresh() calls that actually reloaded something (self-metrics).
  [[nodiscard]] std::uint64_t reloads() const { return reloads_; }
  /// /analyze cache hit/miss counters (self-metrics).
  [[nodiscard]] std::uint64_t analyze_hits() const { return analyze_hits_; }
  [[nodiscard]] std::uint64_t analyze_misses() const {
    return analyze_misses_;
  }
  /// Push segments/bytes successfully applied by ingest() (self-metrics).
  [[nodiscard]] std::uint64_t ingested_segments() const {
    return ingested_segments_;
  }
  [[nodiscard]] std::uint64_t ingested_bytes() const {
    return ingested_bytes_;
  }
  /// Straggler/backpressure lines pushed by a live run ("anomalies.txt"
  /// append segments) — the /live SSE anomaly feed.
  [[nodiscard]] const std::vector<std::string>& anomaly_lines() const {
    return anomaly_lines_;
  }

  /// Superstep progress summary, the payload of /live "superstep" events.
  struct Progress {
    std::uint64_t steps_rows = 0;  ///< total rows over all PEs
    std::uint32_t max_epoch = 0, max_step = 0;
  };
  [[nodiscard]] Progress progress() const;

 private:
  struct Sig {
    std::uint64_t size = 0;
    std::int64_t mtime = 0;
    /// FNV-1a over the first and last 64 bytes. Catches the rewrite the
    /// size/mtime pair misses: an atomic-rename replacing a shard with a
    /// same-size body inside the filesystem's mtime granularity.
    std::uint64_t content = 0;
    bool exists = false;
    friend bool operator==(const Sig&, const Sig&) = default;
  };

  [[nodiscard]] Sig stat_file(const std::string& name) const;
  /// Stat every known trace file name (CSV and .apt forms) for a trace of
  /// `num_pes` PEs.
  void scan(int num_pes, std::map<std::string, Sig>& out) const;
  void full_reload();
  /// Re-parse one per-PE shard in place (the incremental path).
  void reload_shard(const std::string& csv_name, int pe);
  /// Reset the run to `np` empty PEs (push mode, on a PE-count change).
  void resize_world(int np);
  /// Splice one validated push segment into the run; throws on bad data
  /// before any state is touched.
  void apply_segment(const PushSegment& seg);
  void touch();

  Response analyze_json();
  Response diff_json(std::string_view query);
  Response heatmap_json();
  Response check_json();
  Response metrics_text();
  Response healthz_json();

  std::filesystem::path dir_;
  ServiceOptions opts_;
  bool push_mode_ = false;
  int num_pes_ = 0;
  ap::prof::io::TraceDir trace_;
  std::map<std::string, Sig> sigs_;
  std::uint64_t version_ = 0;
  /// Cached /analyze body (analysis is the expensive endpoint); valid for
  /// `analyze_version_ == version_`.
  std::string analyze_cache_;
  std::uint64_t analyze_version_ = ~0ull;
  /// Push-backed state: per-file ingested byte totals (bytes()), the
  /// pushed metrics.prom text, and the pushed anomaly lines.
  std::map<std::string, std::uint64_t> file_bytes_;
  std::string metrics_prom_;
  std::vector<std::string> anomaly_lines_;
  std::int64_t last_update_ms_ = 0;
  std::uint64_t reloads_ = 0, analyze_hits_ = 0, analyze_misses_ = 0;
  std::uint64_t ingested_segments_ = 0, ingested_bytes_ = 0;
};

}  // namespace ap::serve
