#include "shmem/profiling_interface.hpp"

namespace ap::shmem {

namespace {
thread_local RmaObserver* g_rma_observer = nullptr;
}

void set_rma_observer(RmaObserver* obs) { g_rma_observer = obs; }
RmaObserver* rma_observer() { return g_rma_observer; }

}  // namespace ap::shmem
