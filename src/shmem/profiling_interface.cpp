#include "shmem/profiling_interface.hpp"

namespace ap::shmem {

namespace {
// Plain global (was thread_local): installed on the launching thread
// before any worker thread exists (threads backend), cleared after they
// join — thread creation/join orders both transitions.
RmaObserver* g_rma_observer = nullptr;
}

void set_rma_observer(RmaObserver* obs) { g_rma_observer = obs; }
RmaObserver* rma_observer() { return g_rma_observer; }

}  // namespace ap::shmem
