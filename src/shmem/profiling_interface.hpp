// OpenSHMEM profiling interface (paper §V-B).
//
// The paper observes that no established profiler captures OpenSHMEM
// *non-blocking* routines (shmem_putmem_nbi) — score-p and TAU exclude
// them, CrayPat does not show them, VTune's fabric profiler only sees
// shmem_put — and suggests "a wrapper function for non-blocking routines"
// analogous to MPI's PMPI. minishmem provides exactly that seam: every
// RMA/synchronization routine reports to the registered RmaObserver
// *including* putmem_nbi and quiet, so a tool built on this interface can
// account for Conveyors traffic without instrumenting Conveyors itself.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ap::shmem {

/// Source position of the user-level RMA call, captured via
/// std::source_location at the public API boundary. `file` points at a
/// string literal baked into the binary, so storing the pointer is safe.
struct Callsite {
  const char* file = nullptr;
  unsigned line = 0;
};

class RmaObserver {
 public:
  virtual ~RmaObserver() = default;

  /// Blocking put of `bytes` to `target_pe`.
  virtual void on_put(int target_pe, std::size_t bytes) = 0;
  /// NON-BLOCKING put — the routine existing profilers cannot capture.
  virtual void on_put_nbi(int target_pe, std::size_t bytes) = 0;
  virtual void on_get(int target_pe, std::size_t bytes) = 0;
  /// quiet() completed `outstanding_puts` staged non-blocking puts.
  virtual void on_quiet(std::size_t outstanding_puts) = 0;
  virtual void on_barrier() = 0;
  virtual void on_atomic(int target_pe) = 0;
  /// The calling PE arrived at a collective round (barrier_all, sync_all,
  /// reductions, broadcast) and is about to block until release. Fires
  /// *before* the PE waits — this is the superstep boundary the profiler
  /// stamps. Default no-op so existing observers keep compiling.
  virtual void on_collective_arrive() {}

  // --- Conformance events (BSP happens-before checker, docs/CHECKING.md) ---
  //
  // The byte-range hooks below only fire when wants_conformance_events()
  // returns true; the default-false gate keeps the hot paths at one cached
  // branch when no checker is installed. All offsets are symmetric-heap
  // offsets on the *target* PE's heap (symmetric, so equal on every PE).

  /// Gate for every on_*_range/on_local_*/on_acquire_read/on_nbi_* hook.
  virtual bool wants_conformance_events() const { return false; }
  /// Blocking put wrote [offset, offset+bytes) on target_pe's heap.
  virtual void on_put_range(int /*target_pe*/, std::size_t /*offset*/,
                            std::size_t /*bytes*/, const Callsite&) {}
  /// Blocking get read [offset, offset+bytes) from target_pe's heap.
  virtual void on_get_range(int /*target_pe*/, std::size_t /*offset*/,
                            std::size_t /*bytes*/, const Callsite&) {}
  /// putmem_nbi staged a put of [offset, offset+bytes) to target_pe; the
  /// data is NOT visible anywhere until the initiator's quiet().
  virtual void on_put_nbi_range(int /*target_pe*/, std::size_t /*offset*/,
                                std::size_t /*bytes*/, const Callsite&) {}
  /// quiet() is starting; `outstanding` staged puts will now apply.
  virtual void on_quiet_begin(std::size_t /*outstanding*/) {}
  /// One staged put applied during the current quiet(). `index` is the
  /// put's position in the staging queue — a conforming quiet applies
  /// indices 0..n-1 in order, each exactly once; fault-injection schedules
  /// may reorder or duplicate them.
  virtual void on_nbi_applied(std::size_t /*index*/) {}
  /// The current quiet() suspended (yielded the fiber) after applying
  /// `applied` of its staged puts, leaving `remaining` not yet visible.
  virtual void on_quiet_suspend(std::size_t /*applied*/,
                                std::size_t /*remaining*/) {}
  /// Atomic op touched 8 bytes at `offset` on target_pe's heap.
  virtual void on_atomic_range(int /*target_pe*/, std::size_t /*offset*/,
                               const Callsite&) {}
  /// wait_until() on [offset, offset+bytes) of the caller's own heap was
  /// satisfied — an acquire: the caller now legitimately observes every
  /// write that produced the awaited value.
  virtual void on_wait_satisfied(std::size_t /*offset*/,
                                 std::size_t /*bytes*/) {}
  /// A raw store into target_pe's heap announced via annotate_store()
  /// (e.g. the conveyor's intra-node memcpy through shmem::ptr).
  virtual void on_local_store(int /*target_pe*/, std::size_t /*offset*/,
                              std::size_t /*bytes*/, const Callsite&) {}
  /// A plain local read of the caller's own heap announced via
  /// annotate_local_read() — race-checked against remote writes.
  virtual void on_local_read(std::size_t /*offset*/, std::size_t /*bytes*/,
                             const Callsite&) {}
  /// An acquiring local read (publication-flag poll) announced via
  /// annotate_acquire_read() — synchronizes with the writes it observed.
  virtual void on_acquire_read(std::size_t /*offset*/,
                               std::size_t /*bytes*/) {}
  /// The calling PE died (fault injection) and leaves every collective.
  virtual void on_pe_dead(int /*pe*/) {}
};

/// Install/read the process-wide (per-thread) observer; nullptr disables.
void set_rma_observer(RmaObserver* obs);
RmaObserver* rma_observer();

/// Convenience observer that just counts calls (per instance).
class CountingRmaObserver final : public RmaObserver {
 public:
  void on_put(int, std::size_t bytes) override {
    ++puts;
    put_bytes += bytes;
  }
  void on_put_nbi(int, std::size_t bytes) override {
    ++nbi_puts;
    nbi_bytes += bytes;
  }
  void on_get(int, std::size_t bytes) override {
    ++gets;
    get_bytes += bytes;
  }
  void on_quiet(std::size_t outstanding) override {
    ++quiets;
    completed_by_quiet += outstanding;
  }
  void on_barrier() override { ++barriers; }
  void on_atomic(int) override { ++atomics; }

  std::uint64_t puts = 0, nbi_puts = 0, gets = 0, quiets = 0, barriers = 0,
                atomics = 0;
  std::uint64_t put_bytes = 0, nbi_bytes = 0, get_bytes = 0,
                completed_by_quiet = 0;
};

}  // namespace ap::shmem
