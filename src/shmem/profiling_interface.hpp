// OpenSHMEM profiling interface (paper §V-B).
//
// The paper observes that no established profiler captures OpenSHMEM
// *non-blocking* routines (shmem_putmem_nbi) — score-p and TAU exclude
// them, CrayPat does not show them, VTune's fabric profiler only sees
// shmem_put — and suggests "a wrapper function for non-blocking routines"
// analogous to MPI's PMPI. minishmem provides exactly that seam: every
// RMA/synchronization routine reports to the registered RmaObserver
// *including* putmem_nbi and quiet, so a tool built on this interface can
// account for Conveyors traffic without instrumenting Conveyors itself.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ap::shmem {

class RmaObserver {
 public:
  virtual ~RmaObserver() = default;

  /// Blocking put of `bytes` to `target_pe`.
  virtual void on_put(int target_pe, std::size_t bytes) = 0;
  /// NON-BLOCKING put — the routine existing profilers cannot capture.
  virtual void on_put_nbi(int target_pe, std::size_t bytes) = 0;
  virtual void on_get(int target_pe, std::size_t bytes) = 0;
  /// quiet() completed `outstanding_puts` staged non-blocking puts.
  virtual void on_quiet(std::size_t outstanding_puts) = 0;
  virtual void on_barrier() = 0;
  virtual void on_atomic(int target_pe) = 0;
  /// The calling PE arrived at a collective round (barrier_all, sync_all,
  /// reductions, broadcast) and is about to block until release. Fires
  /// *before* the PE waits — this is the superstep boundary the profiler
  /// stamps. Default no-op so existing observers keep compiling.
  virtual void on_collective_arrive() {}
};

/// Install/read the process-wide (per-thread) observer; nullptr disables.
void set_rma_observer(RmaObserver* obs);
RmaObserver* rma_observer();

/// Convenience observer that just counts calls (per instance).
class CountingRmaObserver final : public RmaObserver {
 public:
  void on_put(int, std::size_t bytes) override {
    ++puts;
    put_bytes += bytes;
  }
  void on_put_nbi(int, std::size_t bytes) override {
    ++nbi_puts;
    nbi_bytes += bytes;
  }
  void on_get(int, std::size_t bytes) override {
    ++gets;
    get_bytes += bytes;
  }
  void on_quiet(std::size_t outstanding) override {
    ++quiets;
    completed_by_quiet += outstanding;
  }
  void on_barrier() override { ++barriers; }
  void on_atomic(int) override { ++atomics; }

  std::uint64_t puts = 0, nbi_puts = 0, gets = 0, quiets = 0, barriers = 0,
                atomics = 0;
  std::uint64_t put_bytes = 0, nbi_bytes = 0, get_bytes = 0,
                completed_by_quiet = 0;
};

}  // namespace ap::shmem
