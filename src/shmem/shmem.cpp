#include "shmem/shmem.hpp"

#include "faultinject/faultinject.hpp"
#include "papi/papi.hpp"
#include "runtime/backend.hpp"
#include "runtime/barrier.hpp"
#include "shmem/profiling_interface.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace ap::shmem {

namespace {

/// One staged non-blocking put. The source pointer is recorded, not copied:
/// like real OpenSHMEM, the caller must keep `src` stable until quiet().
struct PendingPut {
  int dst_pe;
  std::size_t dst_offset;
  const void* src;
  std::size_t nbytes;
};

/// Shared state for data-carrying collectives (reduce/broadcast — and any
/// round fault injection may have to complete on a dying PE's behalf). All
/// such collectives are rounds of this one object; OpenSHMEM already
/// requires identical collective call order on every PE, so a single
/// arrival counter suffices. The round's combine callback is stored so
/// that a PE dying mid-round (fault injection) can complete a round it
/// left one arrival short.
///
/// Thread safety (threads backend): every mutation happens under
/// World::coll_mu; `gen` is additionally atomic because the per-PE wait
/// predicate polls it lock-free from worker threads. The release store in
/// complete_round / the acquire load in the predicate order the result
/// bytes. Data-less barrier rounds take the dedicated arrival barrier
/// below instead and never touch this object.
struct CollectiveState {
  int arrived = 0;
  std::atomic<std::uint64_t> gen{0};
  std::vector<unsigned char> contrib;                 // npes * elem_bytes
  std::array<std::vector<unsigned char>, 2> result;   // double-buffered
  std::function<void(CollectiveState&)> combine;      // this round's combine
  std::size_t out_bytes = 0;                          // this round's result size
};

struct World {
  explicit World(const rt::LaunchConfig& cfg)
      : topo(cfg.num_pes, cfg.pes_per_node) {
    heaps.reserve(static_cast<std::size_t>(cfg.num_pes));
    for (int i = 0; i < cfg.num_pes; ++i)
      heaps.emplace_back(cfg.symm_heap_bytes);
    pending.resize(static_cast<std::size_t>(cfg.num_pes));
    stats.resize(static_cast<std::size_t>(cfg.num_pes));
    alive.assign(static_cast<std::size_t>(cfg.num_pes), 1);
    live = cfg.num_pes;
  }

  Topology topo;
  std::vector<SymmetricHeap> heaps;
  std::vector<std::vector<PendingPut>> pending;  // per source PE
  std::vector<PeStats> stats;
  std::vector<char> alive;  // fault injection can kill PEs mid-run
  int live = 0;
  CollectiveState coll;
  std::mutex coll_mu;  // guards coll, alive, live
  /// Sense-reversing (tree for large fleets) barrier for the data-less
  /// collective rounds — barrier_all/sync_all never touch CollectiveState
  /// unless fault injection is shrinking the fleet.
  rt::ArrivalBarrier barrier{topo.num_pes()};
};

// Plain global (not thread_local): the worker threads of the threads
// backend must reach the same world. Written on the launching thread
// before rt::launch creates any worker and cleared after they all joined.
World* g_world = nullptr;

World& world() {
  if (g_world == nullptr)
    throw std::logic_error("minishmem: call outside shmem::run()");
  return *g_world;
}

int require_pe() {
  const int pe = rt::my_pe();
  if (pe < 0)
    throw std::logic_error("minishmem: call outside an SPMD region");
  return pe;
}

SymmetricHeap& my_heap() {
  return world().heaps[static_cast<std::size_t>(require_pe())];
}

PeStats& my_stats() {
  return world().stats[static_cast<std::size_t>(require_pe())];
}

/// Single-writer counter bump: each PeStats row is only ever written by the
/// worker running that PE, but total_stats() reads every row from whatever
/// thread calls it, so the accesses must be atomic. Relaxed load+store (not
/// an RMW) keeps this two plain movs on x86 — zero cost on the fiber
/// backend's hot paths.
void bump(std::uint64_t& counter, std::uint64_t delta = 1) {
  std::atomic_ref<std::uint64_t> a(counter);
  a.store(a.load(std::memory_order_relaxed) + delta,
          std::memory_order_relaxed);
}

std::uint64_t read_stat(const std::uint64_t& counter) {
  return std::atomic_ref<const std::uint64_t>(counter).load(
      std::memory_order_relaxed);
}

/// An 8-byte aligned transfer is the substrate's word-sized signalling
/// unit (conveyor publication/ack counters, put_signal flags, wait_until
/// ivars). Those become release stores / acquire loads so the plain bytes
/// written before the flag are ordered for the PE that polls it — on x86
/// both compile to the same movs the fiber backend always did.
bool word_aligned(const void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) & 7u) == 0;
}

/// Resolve a local symmetric address to the same offset on `pe`.
unsigned char* translate(const void* local_sym_addr, int pe) {
  World& w = world();
  if (pe < 0 || pe >= w.topo.num_pes())
    throw std::out_of_range("minishmem: target PE out of range");
  SymmetricHeap& mine = w.heaps[static_cast<std::size_t>(require_pe())];
  const std::size_t off = mine.offset_of(local_sym_addr);
  return w.heaps[static_cast<std::size_t>(pe)].base() + off;
}

/// The installed observer iff it subscribed to conformance events — the
/// one cached gate every checker hook below hides behind.
RmaObserver* conformance_observer() {
  RmaObserver* o = rma_observer();
  return (o != nullptr && o->wants_conformance_events()) ? o : nullptr;
}

Callsite to_callsite(const std::source_location& loc) {
  return Callsite{loc.file_name(), static_cast<unsigned>(loc.line())};
}

void apply_pending(int src_pe) {
  World& w = world();
  auto& queue = w.pending[static_cast<std::size_t>(src_pe)];
  RmaObserver* co = conformance_observer();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const PendingPut& p = queue[i];
    unsigned char* dst =
        w.heaps[static_cast<std::size_t>(p.dst_pe)].base() + p.dst_offset;
    std::memcpy(dst, p.src, p.nbytes);
    if (co != nullptr) co->on_nbi_applied(i);
  }
  queue.clear();
}

/// Complete pending puts in an injected order: apply order[0..delayed_from),
/// yield, apply the rest. Every index is applied at least once, so quiet()
/// keeps its contract; reordering/duplication within one quiet is legal
/// OpenSHMEM weak ordering.
void apply_pending_scheduled(int src_pe, const fi::QuietSchedule& s) {
  World& w = world();
  auto& queue = w.pending[static_cast<std::size_t>(src_pe)];
  RmaObserver* co = conformance_observer();
  auto apply_one = [&w, &queue, co](std::uint32_t idx) {
    const PendingPut& p = queue[idx];
    unsigned char* dst =
        w.heaps[static_cast<std::size_t>(p.dst_pe)].base() + p.dst_offset;
    std::memcpy(dst, p.src, p.nbytes);
    if (co != nullptr) co->on_nbi_applied(idx);
  };
  for (std::size_t i = 0; i < s.delayed_from; ++i) apply_one(s.order[i]);
  if (s.delayed_from < s.order.size()) {
    if (co != nullptr)
      co->on_quiet_suspend(s.delayed_from, s.order.size() - s.delayed_from);
    for (int y = 0; y < s.yields; ++y) rt::yield();
  }
  for (std::size_t i = s.delayed_from; i < s.order.size(); ++i)
    apply_one(s.order[i]);
  queue.clear();
}

/// Finish the current collective round: run the stored combine (if any) and
/// advance the generation, waking every waiter. Caller holds w.coll_mu;
/// the release store on gen publishes the result bytes to the lock-free
/// waiter predicates.
void complete_round(World& w) {
  CollectiveState& c = w.coll;
  const std::uint64_t g = c.gen.load(std::memory_order_relaxed);
  if (c.combine) {
    auto& slot = c.result[g % 2];
    slot.assign(c.out_bytes, 0);
    c.combine(c);
  }
  c.combine = nullptr;
  c.out_bytes = 0;
  c.arrived = 0;
  c.gen.store(g + 1, std::memory_order_release);
}

/// Fault injection: take the calling PE out of the world. Its staged nbi
/// puts are dropped (their source buffers are about to unwind) and a
/// collective round it left one arrival short is completed so survivors
/// do not deadlock.
void mark_current_pe_dead() {
  World& w = world();
  const int me = require_pe();
  std::lock_guard<std::mutex> lk(w.coll_mu);
  if (!w.alive[static_cast<std::size_t>(me)]) return;
  if (RmaObserver* co = conformance_observer()) co->on_pe_dead(me);
  w.alive[static_cast<std::size_t>(me)] = 0;
  --w.live;
  w.pending[static_cast<std::size_t>(me)].clear();
  // The arrival barrier (data-less fast path) tracks the live set too:
  // deactivate completes a round the dead PE was the last holdout of, so
  // survivors parked in barrier_all are released. Kills fire at barrier
  // entry *before* arrive(), so the dead PE never holds a pending ticket.
  w.barrier.deactivate(me);
  CollectiveState& c = w.coll;
  if (c.arrived > 0 && c.arrived >= w.live) complete_round(w);
}

/// Generic round of the shared collective: every PE contributes
/// `elem_bytes` at contrib[me]; the last *live* arriver runs `combine`
/// which must fill result-slot bytes; every PE then copies the result out.
void collective_round(const void* contribution, std::size_t elem_bytes,
                      void* out, std::size_t out_bytes,
                      const std::function<void(CollectiveState&)>& combine) {
  World& w = world();
  CollectiveState& c = w.coll;
  const int me = require_pe();
  const int n = w.topo.num_pes();

  // Superstep boundary: the PE is about to block until every live PE
  // arrives. The profiler stamps its arrival here (before the wait).
  if (RmaObserver* o = rma_observer()) o->on_collective_arrive();

  // Data-less round: take the sense-reversing/tree arrival barrier and
  // skip CollectiveState entirely — O(1) contended lines flat, O(log P)
  // hops in the tree, no mutex. The barrier tracks the live set under
  // fault injection too (mark_current_pe_dead deactivates the dying PE),
  // so this stays the fast path even while PEs are being killed.
  if (elem_bytes == 0 && out == nullptr && !combine) {
    const std::uint64_t ticket = w.barrier.arrive(me);
    rt::wait_until([&w, ticket] { return w.barrier.passed(ticket); });
    return;
  }

  std::unique_lock<std::mutex> lk(w.coll_mu);
  const std::uint64_t g = c.gen.load(std::memory_order_relaxed);
  if (elem_bytes > 0) {
    if (c.contrib.size() < static_cast<std::size_t>(n) * elem_bytes)
      c.contrib.resize(static_cast<std::size_t>(n) * elem_bytes);
    std::memcpy(c.contrib.data() + static_cast<std::size_t>(me) * elem_bytes,
                contribution, elem_bytes);
  }
  // Every arriver deposits the (identical) combine so whichever PE — or a
  // dying PE's mark_current_pe_dead — completes the round can run it.
  c.combine = combine;
  c.out_bytes = out_bytes;
  if (++c.arrived >= w.live) {
    complete_round(w);
    lk.unlock();
  } else {
    lk.unlock();
    rt::wait_until(
        [&c, g] { return c.gen.load(std::memory_order_acquire) != g; });
  }
  if (out != nullptr && out_bytes > 0) {
    // Safe without the lock: gen's release/acquire ordered the result
    // bytes, and the double-buffered slot cannot be overwritten before
    // every PE of round g has arrived at rounds g+1 *and* g+2 — which is
    // after this copy in every PE's program order.
    const auto& slot = c.result[g % 2];
    if (slot.size() < out_bytes)
      throw std::logic_error("minishmem: collective result size mismatch");
    std::memcpy(out, slot.data(), out_bytes);
  }
}

template <class T, class Op>
T reduce_impl(T value, Op op, T identity) {
  World& w = world();
  T out{};
  collective_round(
      &value, sizeof(T), &out, sizeof(T),
      [&w, op, identity](CollectiveState& c) {
        // Dead PEs never arrived this round; their contrib slots hold stale
        // bytes and are skipped.
        T acc = identity;
        const int n = w.topo.num_pes();
        for (int i = 0; i < n; ++i) {
          if (!w.alive[static_cast<std::size_t>(i)]) continue;
          T v;
          std::memcpy(&v, c.contrib.data() + static_cast<std::size_t>(i) *
                                                 sizeof(T),
                      sizeof(T));
          acc = op(acc, v);
        }
        auto& slot = c.result[c.gen % 2];
        slot.resize(sizeof(T));
        std::memcpy(slot.data(), &acc, sizeof(T));
      });
  return out;
}

/// barrier_all entry hook: the configured kill point. Marks the PE dead
/// *before* throwing so destructors running during the unwind (conveyor
/// endpoints, symmetric arrays) see a consistent dead state.
void fi_on_barrier() {
  const int me = require_pe();
  if (fi::on_barrier(me) == fi::BarrierAction::kill) {
    mark_current_pe_dead();
    fi::note_killed(me);
    throw fi::PeKilledError(me, fi::plan().kill_at_barrier);
  }
}

}  // namespace

namespace {

/// Auto-install a fault plan from ACTORPROF_FI_* for the duration of one
/// run() — any existing binary becomes injectable without code changes.
/// A plan installed programmatically (fi::Session in tests) wins.
struct FiEnvGuard {
  bool installed = false;
  FiEnvGuard() {
    if (fi::active()) return;
    const fi::Plan p = fi::Plan::from_env();
    if (!p.enabled()) return;
    fi::install(p);
    installed = true;
  }
  ~FiEnvGuard() {
    if (installed) fi::uninstall();
  }
};

}  // namespace

void run(const rt::LaunchConfig& cfg, const std::function<void()>& body) {
  if (g_world != nullptr)
    throw std::logic_error("minishmem: shmem::run() cannot nest");
  // Resolve here (rt::launch resolves identically from the same inputs) so
  // backend-dependent gating happens before any state is built.
  const rt::Backend backend = rt::resolve_backend(cfg.backend);
  // Fresh virtual counters per SPMD run: the fleet-max clock sync must see
  // launch-relative values, or back-to-back runs in one process would
  // attribute waiting differently (and trace files would stop being
  // byte-reproducible).
  papi::reset_all();
  FiEnvGuard fi_guard;
  if (backend == rt::Backend::threads && fi::active())
    throw std::invalid_argument(
        "minishmem: fault-injection plans are fiber-backend-only — "
        "kill_pe/straggler/quiet schedules rely on the deterministic "
        "single-threaded scheduler; rerun with ACTORPROF_BACKEND=fiber");
  // Worker threads each carry their own virtual cycle counters; the fleet
  // clock sync must take the max across threads, not across one thread's
  // local fleet. See papi::set_shared_clock.
  papi::set_shared_clock(backend == rt::Backend::threads);
  World w(cfg);
  g_world = &w;
  // A fault-injected kill unwinds one PE's body and is contained here; the
  // PE was already marked dead at the kill point, so the launch continues
  // with the survivors instead of aborting the whole SPMD program.
  const std::function<void()> wrapped = fi::active()
      ? std::function<void()>([&body] {
          try {
            body();
          } catch (const fi::PeKilledError&) {
          }
        })
      : body;
  try {
    rt::launch(cfg, wrapped);
  } catch (...) {
    g_world = nullptr;
    papi::set_shared_clock(false);
    throw;
  }
  g_world = nullptr;
  papi::set_shared_clock(false);
}

int my_pe() { return require_pe(); }
int n_pes() { return world().topo.num_pes(); }
const Topology& topology() { return world().topo; }
int node_of(int pe) { return world().topo.node_of(pe); }
int local_rank(int pe) { return world().topo.local_rank(pe); }
int n_nodes() { return world().topo.num_nodes(); }

void* symm_malloc(std::size_t bytes) {
  // allocate() guarantees the block reads as zero without touching virgin
  // arena pages, so a huge symmetric allocation costs address space until
  // it is actually written (docs/PERFORMANCE.md, "Memory at scale").
  return my_heap().allocate(bytes);
}

void symm_free(void* p) {
  if (p == nullptr) return;
  // A symmetric free after the world is torn down (a SymmArray outliving
  // run(), or a fault-injected PE unwinding through teardown races) must
  // not crash: the heaps are gone, so the block is already reclaimed.
  // Warn and no-op instead of dereferencing a dead world.
  if (g_world == nullptr || rt::my_pe() < 0) {
    std::fprintf(stderr,
                 "minishmem: warning: symm_free(%p) outside shmem::run() — "
                 "the symmetric heap no longer exists; ignoring\n",
                 p);
    return;
  }
  my_heap().deallocate(p);
}

void* ptr(void* target, int pe) {
  World& w = world();
  const int me = require_pe();
  if (!w.topo.same_node(me, pe)) return nullptr;
  return translate(target, pe);
}

void put(void* dest, const void* src, std::size_t nbytes, int pe,
         std::source_location loc) {
  if (nbytes == 0) return;
  unsigned char* remote = translate(dest, pe);
  if (nbytes == 8 && word_aligned(remote)) {
    // Word-sized symmetric put = a release store: the signalling idiom
    // (conveyor publication counters, put_signal flags). Publishes every
    // plain byte this PE wrote before it to whoever acquire-reads it.
    std::uint64_t v;
    std::memcpy(&v, src, sizeof v);
    std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(remote))
        .store(v, std::memory_order_release);
  } else {
    std::memcpy(remote, src, nbytes);
  }
  PeStats& s = my_stats();
  bump(s.puts);
  bump(s.put_bytes, nbytes);
  if (RmaObserver* o = rma_observer()) {
    o->on_put(pe, nbytes);
    if (o->wants_conformance_events())
      o->on_put_range(pe, my_heap().offset_of(dest), nbytes,
                      to_callsite(loc));
  }
}

void get(void* dest, const void* src, std::size_t nbytes, int pe,
         std::source_location loc) {
  if (nbytes == 0) return;
  const unsigned char* remote = translate(src, pe);
  if (nbytes == 8 && word_aligned(remote)) {
    const std::uint64_t v =
        std::atomic_ref<const std::uint64_t>(
            *reinterpret_cast<const std::uint64_t*>(remote))
            .load(std::memory_order_acquire);
    std::memcpy(dest, &v, sizeof v);
  } else {
    std::memcpy(dest, remote, nbytes);
  }
  PeStats& s = my_stats();
  bump(s.gets);
  bump(s.get_bytes, nbytes);
  if (RmaObserver* o = rma_observer()) {
    o->on_get(pe, nbytes);
    if (o->wants_conformance_events())
      o->on_get_range(pe, my_heap().offset_of(src), nbytes, to_callsite(loc));
  }
}

void putmem_nbi(void* dest, const void* src, std::size_t nbytes, int pe,
                std::source_location loc) {
  if (nbytes == 0) return;
  World& w = world();
  const int me = require_pe();
  SymmetricHeap& mine = w.heaps[static_cast<std::size_t>(me)];
  const std::size_t off = mine.offset_of(dest);
  if (pe < 0 || pe >= w.topo.num_pes())
    throw std::out_of_range("putmem_nbi: target PE out of range");
  w.pending[static_cast<std::size_t>(me)].push_back(
      PendingPut{pe, off, src, nbytes});
  PeStats& s = my_stats();
  bump(s.nbi_puts);
  bump(s.nbi_put_bytes, nbytes);
  if (RmaObserver* o = rma_observer()) {
    o->on_put_nbi(pe, nbytes);
    if (o->wants_conformance_events())
      o->on_put_nbi_range(pe, off, nbytes, to_callsite(loc));
  }
}

void quiet() {
  const int me = require_pe();
  const std::size_t outstanding =
      world().pending[static_cast<std::size_t>(me)].size();
  if (RmaObserver* co = conformance_observer()) co->on_quiet_begin(outstanding);
  fi::QuietSchedule sched;
  if (fi::active() && fi::plan_quiet(me, outstanding, sched))
    apply_pending_scheduled(me, sched);
  else
    apply_pending(me);
  bump(my_stats().quiets);
  if (RmaObserver* o = rma_observer()) o->on_quiet(outstanding);
}

void fence() { quiet(); }

std::size_t pending_nbi_puts() {
  return world().pending[static_cast<std::size_t>(require_pe())].size();
}

void put_signal(void* dest, const void* src, std::size_t nbytes,
                std::int64_t* sig_addr, std::int64_t signal, int pe,
                std::source_location loc) {
  // Our blocking put is immediately visible, so data-then-signal ordering
  // holds trivially (real implementations fence between the two).
  put(dest, src, nbytes, pe, loc);
  put(sig_addr, &signal, sizeof signal, pe, loc);
}

void wait_until(std::int64_t* ivar, Cmp cmp, std::int64_t value) {
  (void)require_pe();
  // Validate the address once (same check a real symmetric-wait has).
  (void)translate(ivar, require_pe());
  rt::wait_until([ivar, cmp, value] {
    // Acquire: the predicate polls from the owning worker thread while
    // another PE's release-put flips the word; the acquire edge also
    // publishes whatever data the writer stored before the signal.
    const std::int64_t v = std::atomic_ref<const std::int64_t>(*ivar).load(
        std::memory_order_acquire);
    switch (cmp) {
      case Cmp::eq: return v == value;
      case Cmp::ne: return v != value;
      case Cmp::gt: return v > value;
      case Cmp::ge: return v >= value;
      case Cmp::lt: return v < value;
      case Cmp::le: return v <= value;
    }
    return false;
  });
  // The awaited value arrived: the caller now legitimately observes the
  // writes that produced it — an acquire edge for the checker.
  if (RmaObserver* co = conformance_observer())
    co->on_wait_satisfied(my_heap().offset_of(ivar), sizeof(std::int64_t));
}

std::int64_t atomic_fetch_add(std::int64_t* target, std::int64_t value, int pe,
                              std::source_location loc) {
  auto* remote = reinterpret_cast<std::int64_t*>(translate(target, pe));
  bump(my_stats().atomics);
  if (RmaObserver* o = rma_observer()) {
    o->on_atomic(pe);
    if (o->wants_conformance_events())
      o->on_atomic_range(pe, my_heap().offset_of(target), to_callsite(loc));
  }
  return std::atomic_ref<std::int64_t>(*remote).fetch_add(
      value, std::memory_order_acq_rel);
}

void atomic_add(std::int64_t* target, std::int64_t value, int pe,
                std::source_location loc) {
  (void)atomic_fetch_add(target, value, pe, loc);
}

void atomic_inc(std::int64_t* target, int pe, std::source_location loc) {
  atomic_add(target, 1, pe, loc);
}

std::int64_t atomic_fetch(const std::int64_t* target, int pe,
                          std::source_location loc) {
  const auto* remote = reinterpret_cast<const std::int64_t*>(
      translate(const_cast<std::int64_t*>(target), pe));
  bump(my_stats().atomics);
  if (RmaObserver* co = conformance_observer())
    co->on_atomic_range(pe, my_heap().offset_of(target), to_callsite(loc));
  return std::atomic_ref<const std::int64_t>(*remote).load(
      std::memory_order_acquire);
}

void atomic_set(std::int64_t* target, std::int64_t value, int pe,
                std::source_location loc) {
  auto* remote = reinterpret_cast<std::int64_t*>(translate(target, pe));
  bump(my_stats().atomics);
  if (RmaObserver* co = conformance_observer())
    co->on_atomic_range(pe, my_heap().offset_of(target), to_callsite(loc));
  std::atomic_ref<std::int64_t>(*remote).store(value,
                                               std::memory_order_release);
}

std::int64_t atomic_compare_swap(std::int64_t* target, std::int64_t cond,
                                 std::int64_t value, int pe,
                                 std::source_location loc) {
  auto* remote = reinterpret_cast<std::int64_t*>(translate(target, pe));
  bump(my_stats().atomics);
  if (RmaObserver* co = conformance_observer())
    co->on_atomic_range(pe, my_heap().offset_of(target), to_callsite(loc));
  // compare_exchange_strong leaves the observed old value in `expected`
  // whether or not the swap happened — exactly shmem's return contract.
  std::int64_t expected = cond;
  std::atomic_ref<std::int64_t>(*remote).compare_exchange_strong(
      expected, value, std::memory_order_acq_rel, std::memory_order_acquire);
  return expected;
}

void annotate_store(void* addr, std::size_t nbytes, int pe,
                    std::source_location loc) {
  if (nbytes == 0) return;
  if (RmaObserver* co = conformance_observer())
    co->on_local_store(pe, my_heap().offset_of(addr), nbytes,
                       to_callsite(loc));
}

void annotate_local_read(const void* addr, std::size_t nbytes,
                         std::source_location loc) {
  if (nbytes == 0) return;
  if (RmaObserver* co = conformance_observer())
    co->on_local_read(my_heap().offset_of(addr), nbytes, to_callsite(loc));
}

void annotate_acquire_read(const void* addr, std::size_t nbytes) {
  if (nbytes == 0) return;
  if (RmaObserver* co = conformance_observer())
    co->on_acquire_read(my_heap().offset_of(addr), nbytes);
}

void barrier_all() {
  if (fi::active()) fi_on_barrier();  // kill/straggle point (may throw)
  quiet();  // shmem_barrier_all completes outstanding puts first
  collective_round(nullptr, 0, nullptr, 0, nullptr);
  bump(my_stats().barriers);
  if (RmaObserver* o = rma_observer()) o->on_barrier();
}

void sync_all() {
  collective_round(nullptr, 0, nullptr, 0, nullptr);
  bump(my_stats().barriers);
}

std::int64_t sum_reduce(std::int64_t value) {
  return reduce_impl<std::int64_t>(
      value, [](std::int64_t a, std::int64_t b) { return a + b; }, 0);
}

std::int64_t max_reduce(std::int64_t value) {
  return reduce_impl<std::int64_t>(
      value, [](std::int64_t a, std::int64_t b) { return a > b ? a : b; },
      INT64_MIN);
}

std::int64_t min_reduce(std::int64_t value) {
  return reduce_impl<std::int64_t>(
      value, [](std::int64_t a, std::int64_t b) { return a < b ? a : b; },
      INT64_MAX);
}

double sum_reduce(double value) {
  return reduce_impl<double>(
      value, [](double a, double b) { return a + b; }, 0.0);
}

void broadcast(void* buf, std::size_t nbytes, int root) {
  World& w = world();
  CollectiveState& c = w.coll;
  const int me = require_pe();
  const int n = w.topo.num_pes();
  if (root < 0 || root >= n)
    throw std::out_of_range("broadcast: root out of range");
  // broadcast runs its own inline round, so it is a superstep boundary too.
  if (RmaObserver* o = rma_observer()) o->on_collective_arrive();
  std::unique_lock<std::mutex> lk(w.coll_mu);
  const std::uint64_t g = c.gen.load(std::memory_order_relaxed);
  if (me == root) {
    // The root publishes into the round's result slot before arriving, so
    // the bytes are there by the time the generation advances.
    auto& slot = c.result[g % 2];
    slot.resize(nbytes);
    std::memcpy(slot.data(), buf, nbytes);
  }
  if (++c.arrived >= w.live) {
    complete_round(w);
    lk.unlock();
  } else {
    lk.unlock();
    rt::wait_until(
        [&c, g] { return c.gen.load(std::memory_order_acquire) != g; });
  }
  const auto& slot = c.result[g % 2];
  if (slot.size() < nbytes)
    throw std::logic_error("broadcast: PEs disagree on message size");
  std::memcpy(buf, slot.data(), nbytes);
}

void alltoall64(std::int64_t* dest, const std::int64_t* source,
                std::size_t nelems) {
  World& w = world();
  const int me = require_pe();
  const int n = w.topo.num_pes();
  for (int j = 0; j < n; ++j) {
    // My j-th source block lands in PE j's dest at block index `me`.
    put(dest + static_cast<std::size_t>(me) * nelems,
        source + static_cast<std::size_t>(j) * nelems,
        nelems * sizeof(std::int64_t), j);
  }
  barrier_all();
}

bool pe_alive(int pe) {
  World& w = world();
  if (pe < 0 || pe >= w.topo.num_pes())
    throw std::out_of_range("pe_alive: PE out of range");
  return w.alive[static_cast<std::size_t>(pe)] != 0;
}

int live_pes() { return world().live; }

std::vector<int> dead_pes() {
  World& w = world();
  std::vector<int> out;
  for (int pe = 0; pe < w.topo.num_pes(); ++pe)
    if (!w.alive[static_cast<std::size_t>(pe)]) out.push_back(pe);
  return out;
}

const PeStats& stats() {
  return world().stats[static_cast<std::size_t>(require_pe())];
}

PeStats total_stats() {
  World& w = world();
  PeStats t;
  for (const PeStats& s : w.stats) {
    t.puts += read_stat(s.puts);
    t.put_bytes += read_stat(s.put_bytes);
    t.nbi_puts += read_stat(s.nbi_puts);
    t.nbi_put_bytes += read_stat(s.nbi_put_bytes);
    t.gets += read_stat(s.gets);
    t.get_bytes += read_stat(s.get_bytes);
    t.quiets += read_stat(s.quiets);
    t.barriers += read_stat(s.barriers);
    t.atomics += read_stat(s.atomics);
  }
  return t;
}

}  // namespace ap::shmem
