// minishmem: an in-process OpenSHMEM-compatible substrate.
//
// This is the simulated "cluster" layer described in DESIGN.md. It provides
// the subset of OpenSHMEM 1.4/1.5 that Conveyors and HClib-Actor use:
// symmetric allocation, blocking and non-blocking puts, quiet/fence,
// shmem_ptr (intra-node direct load/store), atomics, barriers and
// reductions. Non-blocking puts are *staged*: the data only becomes visible
// at the target after the initiating PE calls quiet() (or a routine that
// implies it). This is a legal OpenSHMEM behaviour and it is exactly the
// property ActorProf's physical trace depends on — see paper §III-C.
//
// Usage:
//   ap::shmem::run(cfg, [] {
//     long* x = ap::shmem::calloc_n<long>(8);   // symmetric
//     ap::shmem::barrier_all();
//     ap::shmem::put(&x[0], &v, sizeof v, (my_pe()+1) % n_pes());
//     ...
//   });
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <source_location>
#include <vector>

#include "runtime/scheduler.hpp"
#include "shmem/symmetric_heap.hpp"
#include "shmem/topology.hpp"

namespace ap::shmem {

/// Per-PE communication statistics maintained by the substrate itself
/// (independent of ActorProf; used by tests and micro-benchmarks).
struct PeStats {
  std::uint64_t puts = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t nbi_puts = 0;
  std::uint64_t nbi_put_bytes = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_bytes = 0;
  std::uint64_t quiets = 0;
  std::uint64_t barriers = 0;
  std::uint64_t atomics = 0;
};

/// Run `body` as an SPMD program with a live minishmem world.
/// Equivalent to shmem_init()/shmem_finalize() around every PE's body.
void run(const rt::LaunchConfig& cfg, const std::function<void()>& body);

/// ---- Queries (valid only inside run()) -----------------------------------
int my_pe();
int n_pes();
const Topology& topology();
/// Node that hosts `pe` and the rank of `pe` within that node.
int node_of(int pe);
int local_rank(int pe);
int n_nodes();

/// ---- Fault-injection liveness (docs/FAULT_INJECTION.md) -------------------
/// A PE killed by the fault-injection layer is marked dead: it stops
/// participating in collectives (they complete over the live PEs) and the
/// conveyor layer accounts its in-flight items as lost. All PEs are alive
/// unless an ACTORPROF_FI_KILL_PE plan fired.
bool pe_alive(int pe);
int live_pes();
std::vector<int> dead_pes();

/// ---- Symmetric memory -----------------------------------------------------
/// Collective in the OpenSHMEM sense: every PE must perform the same
/// allocation sequence. Memory is zero-initialized (like shmem_calloc).
void* symm_malloc(std::size_t bytes);
void symm_free(void* p);

template <class T>
T* calloc_n(std::size_t n) {
  return static_cast<T*>(symm_malloc(n * sizeof(T)));
}

/// shmem_ptr: a direct pointer to `target` (a symmetric address in the
/// caller's address space) as it exists on `pe`. Returns nullptr when `pe`
/// is on a different node — matching real shmem_ptr, which only works over
/// shared memory.
void* ptr(void* target, int pe);
template <class T>
T* ptr(T* target, int pe) {
  return static_cast<T*>(ptr(static_cast<void*>(target), pe));
}

/// ---- RMA -------------------------------------------------------------------
/// Every RMA routine captures its callsite via std::source_location so the
/// BSP conformance checker (docs/CHECKING.md) can attribute violations to
/// the user-level call; the defaulted parameter is free for callers.
/// Blocking put: visible at the target when the call returns.
void put(void* dest, const void* src, std::size_t nbytes, int pe,
         std::source_location loc = std::source_location::current());
/// Blocking get.
void get(void* dest, const void* src, std::size_t nbytes, int pe,
         std::source_location loc = std::source_location::current());
/// Non-blocking put: `src` must stay valid & unmodified until quiet().
/// Data is NOT visible at the target before the initiator's quiet().
void putmem_nbi(void* dest, const void* src, std::size_t nbytes, int pe,
                std::source_location loc = std::source_location::current());
/// Complete all outstanding non-blocking puts from this PE.
void quiet();
/// Order puts from this PE to each destination (our model: implies quiet).
void fence();
/// Number of this PE's staged-but-incomplete nbi puts (testing aid).
std::size_t pending_nbi_puts();

/// shmem_put_signal (OpenSHMEM 1.5): deliver `nbytes` to `dest` on `pe`,
/// then set the 8-byte `sig_addr` there to `signal` — both visible
/// together at the target. The receiver pairs this with wait_until.
void put_signal(void* dest, const void* src, std::size_t nbytes,
                std::int64_t* sig_addr, std::int64_t signal, int pe,
                std::source_location loc = std::source_location::current());

/// Comparison operators for wait_until (shmem_wait_until).
enum class Cmp { eq, ne, gt, ge, lt, le };

/// Block the calling PE (cooperatively yielding) until `*ivar cmp value`
/// holds. `ivar` is a local symmetric address some other PE writes.
void wait_until(std::int64_t* ivar, Cmp cmp, std::int64_t value);

/// ---- Atomics (target-side, any PE) ----------------------------------------
std::int64_t atomic_fetch_add(
    std::int64_t* target, std::int64_t value, int pe,
    std::source_location loc = std::source_location::current());
void atomic_add(std::int64_t* target, std::int64_t value, int pe,
                std::source_location loc = std::source_location::current());
void atomic_inc(std::int64_t* target, int pe,
                std::source_location loc = std::source_location::current());
std::int64_t atomic_fetch(
    const std::int64_t* target, int pe,
    std::source_location loc = std::source_location::current());
void atomic_set(std::int64_t* target, std::int64_t value, int pe,
                std::source_location loc = std::source_location::current());
std::int64_t atomic_compare_swap(
    std::int64_t* target, std::int64_t cond, std::int64_t value, int pe,
    std::source_location loc = std::source_location::current());

/// ---- Conformance annotations (docs/CHECKING.md) ---------------------------
/// The conveyor's zero-copy data plane bypasses put()/get() on the
/// intra-node path (raw memcpy through ptr()) and raw-polls publication
/// flags; these annotations tell the conformance checker about those
/// accesses. All three are no-ops (one cached branch) unless an installed
/// RmaObserver asks for conformance events. Addresses are local symmetric
/// addresses, like put()'s `dest`.
/// A raw store of [addr, addr+nbytes) into `pe`'s heap just happened.
void annotate_store(void* addr, std::size_t nbytes, int pe,
                    std::source_location loc = std::source_location::current());
/// A plain local read of the caller's own heap (race-checked).
void annotate_local_read(
    const void* addr, std::size_t nbytes,
    std::source_location loc = std::source_location::current());
/// An acquiring local read: the caller legitimately observed a value
/// another PE published into this range (synchronizes-with the writes).
void annotate_acquire_read(const void* addr, std::size_t nbytes);

/// ---- Collectives ------------------------------------------------------------
/// All collectives must be called by every PE in the same program order.
void barrier_all();  // implies quiet()
void sync_all();     // synchronization only, no quiet
std::int64_t sum_reduce(std::int64_t value);
std::int64_t max_reduce(std::int64_t value);
std::int64_t min_reduce(std::int64_t value);
double sum_reduce(double value);
/// Root's buffer contents are copied into every PE's `buf`.
void broadcast(void* buf, std::size_t nbytes, int root);
/// Classic alltoall64: `dest`/`source` are symmetric, nelems per pair.
void alltoall64(std::int64_t* dest, const std::int64_t* source,
                std::size_t nelems);

/// Per-PE statistics of the calling PE.
const PeStats& stats();
/// Aggregate statistics across all PEs (callable inside run()).
PeStats total_stats();

/// RAII helper for a symmetric array of trivially-copyable T. Safe to
/// destroy after run() returned (or while a fault-injected PE unwinds past
/// world teardown): the free becomes a warned no-op, not a crash.
template <class T>
class SymmArray {
 public:
  explicit SymmArray(std::size_t n) : n_(n), data_(calloc_n<T>(n)) {}
  ~SymmArray() { symm_free(data_); }
  SymmArray(const SymmArray&) = delete;
  SymmArray& operator=(const SymmArray&) = delete;

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  std::size_t n_;
  T* data_;
};

}  // namespace ap::shmem
