#include "shmem/symmetric_heap.hpp"

#include <new>
#include <stdexcept>

namespace ap::shmem {

namespace {
std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}
}  // namespace

SymmetricHeap::SymmetricHeap(std::size_t capacity_bytes)
    : capacity_(round_up(capacity_bytes, kAlignment)),
      arena_(new unsigned char[capacity_ > 0 ? capacity_ : kAlignment]) {
  if (capacity_ == 0) capacity_ = kAlignment;
  free_blocks_.emplace(0, capacity_);
}

void* SymmetricHeap::allocate(std::size_t bytes) {
  const std::size_t need = round_up(bytes == 0 ? 1 : bytes, kAlignment);
  // First fit: deterministic and identical across PEs given identical
  // allocation sequences.
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    const auto [offset, size] = *it;
    if (size < need) continue;
    free_blocks_.erase(it);
    if (size > need) free_blocks_.emplace(offset + need, size - need);
    allocated_.emplace(offset, need);
    in_use_ += need;
    return arena_.get() + offset;
  }
  throw std::bad_alloc();
}

void SymmetricHeap::deallocate(void* p) {
  if (p == nullptr) return;
  if (!contains(p))
    throw std::invalid_argument("SymmetricHeap: foreign pointer in deallocate");
  const std::size_t offset = offset_of(p);
  auto it = allocated_.find(offset);
  if (it == allocated_.end())
    throw std::invalid_argument(
        "SymmetricHeap: pointer is not a live allocation (double free?)");
  std::size_t block_off = it->first;
  std::size_t block_size = it->second;
  allocated_.erase(it);
  in_use_ -= block_size;

  // Coalesce with the following free block.
  auto next = free_blocks_.lower_bound(block_off);
  if (next != free_blocks_.end() && block_off + block_size == next->first) {
    block_size += next->second;
    next = free_blocks_.erase(next);
  }
  // Coalesce with the preceding free block.
  if (next != free_blocks_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == block_off) {
      block_off = prev->first;
      block_size += prev->second;
      free_blocks_.erase(prev);
    }
  }
  free_blocks_.emplace(block_off, block_size);
}

bool SymmetricHeap::contains(const void* p) const {
  const auto* b = static_cast<const unsigned char*>(p);
  return b >= arena_.get() && b < arena_.get() + capacity_;
}

std::size_t SymmetricHeap::offset_of(const void* p) const {
  if (!contains(p))
    throw std::invalid_argument("SymmetricHeap: pointer outside arena");
  return static_cast<std::size_t>(static_cast<const unsigned char*>(p) -
                                  arena_.get());
}

}  // namespace ap::shmem
