#include "shmem/symmetric_heap.hpp"

#include <cstring>
#include <new>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define AP_SYMM_HEAP_HAVE_MMAP 1
#endif

namespace ap::shmem {

namespace {
std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}
}  // namespace

SymmetricHeap::SymmetricHeap(std::size_t capacity_bytes)
    : capacity_(round_up(capacity_bytes, kAlignment)) {
  if (capacity_ == 0) capacity_ = kAlignment;
#ifdef AP_SYMM_HEAP_HAVE_MMAP
  void* p = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    arena_ = static_cast<unsigned char*>(p);
    mmapped_ = true;  // demand-zero pages: virgin blocks need no memset
  }
#endif
  if (arena_ == nullptr) {
    // Fallback arena may recycle dirty process heap; treating every byte
    // as touched restores the always-memset behaviour.
    arena_ = new unsigned char[capacity_];
    touched_ = capacity_;
  }
  free_blocks_.emplace(0, capacity_);
}

void SymmetricHeap::release_arena() noexcept {
  if (arena_ == nullptr) return;
#ifdef AP_SYMM_HEAP_HAVE_MMAP
  if (mmapped_) {
    ::munmap(arena_, capacity_);
    arena_ = nullptr;
    return;
  }
#endif
  delete[] arena_;
  arena_ = nullptr;
}

SymmetricHeap::~SymmetricHeap() { release_arena(); }

SymmetricHeap::SymmetricHeap(SymmetricHeap&& other) noexcept
    : capacity_(other.capacity_),
      arena_(other.arena_),
      mmapped_(other.mmapped_),
      touched_(other.touched_),
      free_blocks_(std::move(other.free_blocks_)),
      allocated_(std::move(other.allocated_)),
      in_use_(other.in_use_) {
  other.arena_ = nullptr;
  other.capacity_ = 0;
  other.in_use_ = 0;
}

SymmetricHeap& SymmetricHeap::operator=(SymmetricHeap&& other) noexcept {
  if (this == &other) return *this;
  release_arena();
  capacity_ = other.capacity_;
  arena_ = other.arena_;
  mmapped_ = other.mmapped_;
  touched_ = other.touched_;
  free_blocks_ = std::move(other.free_blocks_);
  allocated_ = std::move(other.allocated_);
  in_use_ = other.in_use_;
  other.arena_ = nullptr;
  other.capacity_ = 0;
  other.in_use_ = 0;
  return *this;
}

void* SymmetricHeap::allocate(std::size_t bytes) {
  const std::size_t need = round_up(bytes == 0 ? 1 : bytes, kAlignment);
  // First fit: deterministic and identical across PEs given identical
  // allocation sequences.
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    const auto [offset, size] = *it;
    if (size < need) continue;
    free_blocks_.erase(it);
    if (size > need) free_blocks_.emplace(offset + need, size - need);
    allocated_.emplace(offset, need);
    in_use_ += need;
    // Zero only the recycled prefix; bytes past the high-water mark have
    // never been written and read as zero straight from the kernel.
    if (offset < touched_)
      std::memset(arena_ + offset, 0, std::min(offset + need, touched_) - offset);
    if (offset + need > touched_) touched_ = offset + need;
    return arena_ + offset;
  }
  throw std::bad_alloc();
}

void SymmetricHeap::deallocate(void* p) {
  if (p == nullptr) return;
  if (!contains(p))
    throw std::invalid_argument("SymmetricHeap: foreign pointer in deallocate");
  const std::size_t offset = offset_of(p);
  auto it = allocated_.find(offset);
  if (it == allocated_.end())
    throw std::invalid_argument(
        "SymmetricHeap: pointer is not a live allocation (double free?)");
  std::size_t block_off = it->first;
  std::size_t block_size = it->second;
  allocated_.erase(it);
  in_use_ -= block_size;

  // Coalesce with the following free block.
  auto next = free_blocks_.lower_bound(block_off);
  if (next != free_blocks_.end() && block_off + block_size == next->first) {
    block_size += next->second;
    next = free_blocks_.erase(next);
  }
  // Coalesce with the preceding free block.
  if (next != free_blocks_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == block_off) {
      block_off = prev->first;
      block_size += prev->second;
      free_blocks_.erase(prev);
    }
  }
  free_blocks_.emplace(block_off, block_size);
}

bool SymmetricHeap::contains(const void* p) const {
  const auto* b = static_cast<const unsigned char*>(p);
  return b >= arena_ && b < arena_ + capacity_;
}

std::size_t SymmetricHeap::offset_of(const void* p) const {
  if (!contains(p))
    throw std::invalid_argument("SymmetricHeap: pointer outside arena");
  return static_cast<std::size_t>(static_cast<const unsigned char*>(p) -
                                  arena_);
}

}  // namespace ap::shmem
