// Per-PE symmetric heap.
//
// Every PE owns one arena of identical capacity. Because SPMD programs make
// the same sequence of symmetric allocations on every PE (an OpenSHMEM
// requirement), the first-fit allocator on every PE evolves identically and
// a symmetric object lives at the same *offset* in every arena. Remote
// addressing is therefore (remote base + local offset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>

namespace ap::shmem {

/// One PE's arena plus its (deterministic, per-PE) allocator state.
class SymmetricHeap {
 public:
  static constexpr std::size_t kAlignment = 16;

  explicit SymmetricHeap(std::size_t capacity_bytes);

  SymmetricHeap(const SymmetricHeap&) = delete;
  SymmetricHeap& operator=(const SymmetricHeap&) = delete;
  SymmetricHeap(SymmetricHeap&&) = default;
  SymmetricHeap& operator=(SymmetricHeap&&) = default;

  /// Allocate `bytes` (rounded up to kAlignment); throws std::bad_alloc when
  /// the arena is exhausted. Zero-size allocations get a distinct non-null
  /// address of size kAlignment.
  void* allocate(std::size_t bytes);

  /// Release a block previously returned by allocate(); coalesces with
  /// adjacent free blocks. Throws std::invalid_argument for foreign or
  /// double-freed pointers.
  void deallocate(void* p);

  [[nodiscard]] unsigned char* base() { return arena_.get(); }
  [[nodiscard]] const unsigned char* base() const { return arena_.get(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  [[nodiscard]] std::size_t live_allocations() const {
    return allocated_.size();
  }

  /// True if `p` points into this arena (not necessarily to a block start).
  [[nodiscard]] bool contains(const void* p) const;
  /// Offset of `p` from the arena base; throws if `p` is foreign.
  [[nodiscard]] std::size_t offset_of(const void* p) const;

 private:
  std::size_t capacity_;
  std::unique_ptr<unsigned char[]> arena_;
  std::map<std::size_t, std::size_t> free_blocks_;  // offset -> size
  std::map<std::size_t, std::size_t> allocated_;    // offset -> size
  std::size_t in_use_ = 0;
};

}  // namespace ap::shmem
