// Per-PE symmetric heap.
//
// Every PE owns one arena of identical capacity. Because SPMD programs make
// the same sequence of symmetric allocations on every PE (an OpenSHMEM
// requirement), the first-fit allocator on every PE evolves identically and
// a symmetric object lives at the same *offset* in every arena. Remote
// addressing is therefore (remote base + local offset).
//
// The arena is anonymous-mmap backed where available: pages are
// demand-zeroed by the kernel, so capacity is virtual address space, not
// resident memory. allocate() hands out zeroed blocks but only memsets the
// part of a block that lies below the recycled-bytes high-water mark —
// blocks carved from virgin arena are zero without ever being touched.
// That is what lets per-PE-dense symmetric structures (conveyor landing
// rings, publication/ack counters) scale to thousands of PEs: their
// resident cost is proportional to the slots actually written, not to
// their declared size (docs/PERFORMANCE.md, "Memory at scale").
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace ap::shmem {

/// One PE's arena plus its (deterministic, per-PE) allocator state.
class SymmetricHeap {
 public:
  static constexpr std::size_t kAlignment = 16;

  explicit SymmetricHeap(std::size_t capacity_bytes);
  ~SymmetricHeap();

  SymmetricHeap(const SymmetricHeap&) = delete;
  SymmetricHeap& operator=(const SymmetricHeap&) = delete;
  SymmetricHeap(SymmetricHeap&& other) noexcept;
  SymmetricHeap& operator=(SymmetricHeap&& other) noexcept;

  /// Allocate `bytes` (rounded up to kAlignment); throws std::bad_alloc when
  /// the arena is exhausted. Zero-size allocations get a distinct non-null
  /// address of size kAlignment. The returned block reads as zero; only the
  /// recycled prefix (below the touched high-water mark) is memset — virgin
  /// arena stays untouched and therefore non-resident.
  void* allocate(std::size_t bytes);

  /// Release a block previously returned by allocate(); coalesces with
  /// adjacent free blocks. Throws std::invalid_argument for foreign or
  /// double-freed pointers.
  void deallocate(void* p);

  [[nodiscard]] unsigned char* base() { return arena_; }
  [[nodiscard]] const unsigned char* base() const { return arena_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  [[nodiscard]] std::size_t live_allocations() const {
    return allocated_.size();
  }
  /// High-water mark of bytes ever handed out: everything at or above this
  /// offset is untouched (demand-zero) arena. Exposed for memory-at-scale
  /// tests.
  [[nodiscard]] std::size_t touched_bytes() const { return touched_; }

  /// True if `p` points into this arena (not necessarily to a block start).
  [[nodiscard]] bool contains(const void* p) const;
  /// Offset of `p` from the arena base; throws if `p` is foreign.
  [[nodiscard]] std::size_t offset_of(const void* p) const;

 private:
  void release_arena() noexcept;

  std::size_t capacity_ = 0;
  unsigned char* arena_ = nullptr;
  bool mmapped_ = false;
  /// Offsets below this were handed out before and may hold stale bytes;
  /// allocate() re-zeroes only that prefix of a new block.
  std::size_t touched_ = 0;
  std::map<std::size_t, std::size_t> free_blocks_;  // offset -> size
  std::map<std::size_t, std::size_t> allocated_;    // offset -> size
  std::size_t in_use_ = 0;
};

}  // namespace ap::shmem
