// PE <-> node topology of the simulated cluster.
//
// PEs are numbered 0..n-1 and packed onto nodes in rank order, exactly as
// `srun --ntasks-per-node` lays out OpenSHMEM PEs on Perlmutter in the
// paper's experiments: node k owns PEs [k*ppn, (k+1)*ppn).
#pragma once

#include <stdexcept>

namespace ap::shmem {

/// Immutable PE/node layout for one launch.
class Topology {
 public:
  Topology() = default;
  Topology(int num_pes, int pes_per_node)
      : num_pes_(num_pes),
        pes_per_node_(pes_per_node > 0 ? pes_per_node : num_pes) {
    if (num_pes_ <= 0) throw std::invalid_argument("Topology: num_pes <= 0");
    if (pes_per_node_ <= 0)
      throw std::invalid_argument("Topology: pes_per_node <= 0");
  }

  [[nodiscard]] int num_pes() const { return num_pes_; }
  [[nodiscard]] int pes_per_node() const { return pes_per_node_; }
  [[nodiscard]] int num_nodes() const {
    return (num_pes_ + pes_per_node_ - 1) / pes_per_node_;
  }

  [[nodiscard]] int node_of(int pe) const {
    check_pe(pe);
    return pe / pes_per_node_;
  }
  /// Rank of `pe` within its node (the "column" of the 2D-mesh routing grid).
  [[nodiscard]] int local_rank(int pe) const {
    check_pe(pe);
    return pe % pes_per_node_;
  }
  [[nodiscard]] int pe_at(int node, int local_rank) const {
    const int pe = node * pes_per_node_ + local_rank;
    check_pe(pe);
    return pe;
  }
  [[nodiscard]] bool same_node(int a, int b) const {
    return node_of(a) == node_of(b);
  }

 private:
  void check_pe(int pe) const {
    if (pe < 0 || pe >= num_pes_)
      throw std::out_of_range("Topology: PE id out of range");
  }

  int num_pes_ = 1;
  int pes_per_node_ = 1;
};

}  // namespace ap::shmem
