// actorprof_viz — the visualization CLI of ActorProf (paper §III-D).
//
// Run-time flags follow the paper:
//   -l   logical-trace heatmap   (from PEi_send.csv)
//   -lp  PAPI bar graphs         (from PEi_PAPI.csv, up to 4 counters)
//   -s   overall stacked bars    (from overall.txt, absolute + relative)
//   -p   physical-trace heatmap  (from physical.txt)
// plus:
//   --violin       also render quartile violin plots (Fig. 5/7 style)
//   --svg PREFIX   additionally write PREFIX_<plot>.svg files
//   --linear       linear color ramp instead of log
//   --num-pes N    number of PEs the trace was collected with (required)
// The trace directory is the positional argument, as in the paper's
// python scripts.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/checker.hpp"

#include "analysis/analysis.hpp"
#include "core/advisor.hpp"
#include "core/sink.hpp"
#include "core/trace_binary.hpp"
#include "core/trace_io.hpp"
#include "serve/http.hpp"
#include "serve/publisher.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "shmem/topology.hpp"
#include "viz/heatmap_json.hpp"
#include "viz/render.hpp"
#include "viz/svg.hpp"

namespace {

/// Read a whole file; false when it cannot be opened.
bool slurp_file(const std::filesystem::path& p, std::string& out) {
  std::ifstream is(p, std::ios::binary);
  if (!is) return false;
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

void usage(const char* argv0) {
  std::cerr
      << "Usage: " << argv0
      << " <subcommand|flags> ...\n"
         "\n"
         "Subcommands:\n"
         "  analyze [--json] [--what-if PCT] [--num-pes N]\n"
         "          [--tolerate-partial] <trace_dir>\n"
         "            reconstruct the superstep timeline (PEi_steps.csv):\n"
         "            per-superstep MAIN/PROC/COMM/WAIT breakdown, barrier-\n"
         "            wait attribution, critical path, what-if estimates\n"
         "  diff    [--json] [--threshold PCT] [--num-pes N]\n"
         "          [--tolerate-partial] <trace_dir_a> <trace_dir_b>\n"
         "            epoch-align two runs and compare per-superstep\n"
         "            durations; exits 3 when any superstep (or the total)\n"
         "            regressed by more than PCT percent (default 10)\n"
         "  check   [--json] <trace_dir>\n"
         "            report the BSP conformance violations of a run\n"
         "            recorded under ACTORPROF_CHECK=1 (check.csv or\n"
         "            check.apt): races, reads before quiet(), un-quiesced\n"
         "            puts at barriers, API misuse — with PE/superstep/\n"
         "            heap-range/callsite attribution; exits 4 when\n"
         "            violations were recorded (see docs/CHECKING.md)\n"
         "  heatmap [--json] [--num-pes N] [--tolerate-partial] <trace_dir>\n"
         "            the -l/-p communication heatmaps as one report;\n"
         "            --json emits the dense matrices (byte-identical to\n"
         "            the trace service's GET /heatmap)\n"
         "  export  --csv [--num-pes N] [-o OUTDIR] <trace_dir>\n"
         "            convert binary (.apt) trace files back to the CSV/\n"
         "            text layout the paper describes; with -o, OUTDIR\n"
         "            becomes a complete CSV trace dir (MANIFEST included)\n"
         "  serve   [--host A] [--port P] [--num-pes N] [--max-requests N]\n"
         "          [--retain-bytes B] [--retain-runs N] <trace_dir>\n"
         "            watch a trace dir (works mid-run) and answer\n"
         "            GET /healthz /analyze /diff?base=DIR /heatmap /check\n"
         "            /metrics /runs /live over HTTP; every endpoint takes\n"
         "            ?run=<id> and POST /ingest?run=<id> accepts pushed\n"
         "            runs (ACTORPROF_PUBLISH=host:port on the profiled\n"
         "            run); --retain-* bound the pushed-run store\n"
         "            (see docs/OBSERVABILITY.md)\n"
         "  tail    [--run ID] [--max-events N] <host:port>\n"
         "            subscribe to a serve daemon's GET /live SSE stream\n"
         "            and print superstep/anomaly events as text\n"
         "  compact [--num-pes N] <trace_dir>\n"
         "            re-encode the directory's .apt shards into dense\n"
         "            blocks (merging incremental/multi-epoch appends) and\n"
         "            rewrite the MANIFEST atomically\n"
         "  --num-pes defaults to the MANIFEST.txt PE count everywhere;\n"
         "  see docs/ANALYSIS.md and docs/TRACE_FORMAT.md for reference.\n"
         "\n"
         "Exit codes:\n"
         "  0  success\n"
         "  1  trace load/parse failure (or damaged files without\n"
         "     --tolerate-partial)\n"
         "  2  usage error\n"
         "  3  diff: a superstep (or the total) regressed past --threshold\n"
         "  4  check: violations (or dropped violations) were recorded\n"
         "\n"
         "Plot flags (no subcommand):\n"
         "  " << argv0
      << " [-l] [-lp] [-s] [-p] [--violin] [--advise] [--by-node]\n"
         "       [--ppn N] [--svg PREFIX] [--linear] [--tolerate-partial]\n"
         "       --num-pes N <trace_dir>\n"
         "  -l        logical trace heatmap (PEi_send.csv)\n"
         "  -lp       PAPI counter bar graphs (PEi_PAPI.csv)\n"
         "  -s        overall MAIN/COMM/PROC stacked bars (overall.txt)\n"
         "  -p        physical trace heatmap (physical.txt)\n"
         "  --violin  add quartile violin plots of send/recv totals\n"
         "  --advise  run the bottleneck advisor over the loaded traces\n"
         "  --by-node collapse heatmaps to node granularity\n"
         "  --ppn N   PEs per node (for --by-node/--advise; default: all "
         "on one node)\n"
         "  --svg P   also write SVG files with prefix P\n"
         "  --linear  linear (not log) color scale\n"
         "  --num-pes total number of PEs in the trace (required)\n"
         "  --tolerate-partial\n"
         "            accept missing/truncated per-PE files (e.g. after a\n"
         "            fault-injected kill): render every record that parsed,\n"
         "            warn per damaged file, mark dead PEs in heatmaps, and\n"
         "            exit 0. Without it, damaged files are still reported\n"
         "            and rendered but the exit code is nonzero.\n";
}

struct Args {
  bool logical = false, papi = false, overall = false, physical = false;
  bool violin = false, linear = false, advise = false, by_node = false;
  bool tolerate_partial = false;
  std::string svg_prefix;
  int num_pes = 0;
  int ppn = 0;
  std::string dir;
};

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-l") {
      a.logical = true;
    } else if (arg == "-lp") {
      a.papi = true;
    } else if (arg == "-s") {
      a.overall = true;
    } else if (arg == "-p") {
      a.physical = true;
    } else if (arg == "--violin") {
      a.violin = true;
    } else if (arg == "--advise") {
      a.advise = true;
    } else if (arg == "--by-node") {
      a.by_node = true;
    } else if (arg == "--ppn") {
      if (++i >= argc) return false;
      a.ppn = std::atoi(argv[i]);
    } else if (arg == "--linear") {
      a.linear = true;
    } else if (arg == "--tolerate-partial") {
      a.tolerate_partial = true;
    } else if (arg == "--svg") {
      if (++i >= argc) return false;
      a.svg_prefix = argv[i];
    } else if (arg == "--num-pes") {
      if (++i >= argc) return false;
      a.num_pes = std::atoi(argv[i]);
    } else if (arg == "-h" || arg == "--help") {
      return false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    } else {
      a.dir = arg;
    }
  }
  if (!a.logical && !a.papi && !a.overall && !a.physical && !a.advise)
    return false;
  return a.num_pes > 0 && !a.dir.empty();
}

void maybe_svg(const Args& a, const std::string& name,
               const std::string& svg) {
  if (a.svg_prefix.empty()) return;
  const std::string path = a.svg_prefix + "_" + name + ".svg";
  ap::viz::write_svg_file(path, svg);
  std::cout << "[svg] wrote " << path << "\n";
}

// ------------------------------------------------------- analyze / diff

/// Load one trace dir for analysis. num_pes <= 0 auto-detects from the
/// MANIFEST. Returns 0 on success, the process exit code otherwise.
/// Damage is warned about and tolerated for rendering (like the plot
/// flags); without tolerate_partial it still fails the exit code.
int load_analysis_dir(const std::string& dir, int num_pes,
                      bool tolerate_partial, ap::prof::io::TraceDir& out) {
  if (num_pes <= 0) num_pes = ap::prof::io::detect_num_pes(dir);
  if (num_pes <= 0) {
    std::cerr << "error: cannot determine the PE count of " << dir
              << " (no readable MANIFEST.txt) — pass --num-pes N\n";
    return 2;
  }
  try {
    ap::prof::io::LoadOptions lo;
    lo.tolerate_partial = true;
    out = ap::prof::io::load_trace_dir(dir, num_pes, lo);
  } catch (const std::exception& e) {
    std::cerr << "error loading traces from " << dir << ": " << e.what()
              << "\n";
    return 1;
  }
  for (const auto& issue : out.issues) {
    std::cerr << "warning: " << issue.file;
    if (issue.line_no > 0) std::cerr << ":" << issue.line_no;
    std::cerr << ": " << issue.message << " — continuing with remaining PEs\n";
  }
  for (int pe : out.dead_pes)
    std::cerr << "note: PE" << pe
              << " was killed mid-run; its trace is a partial prefix\n";
  bool any_steps = false;
  for (const auto& per_pe : out.steps) any_steps |= !per_pe.empty();
  if (!any_steps) {
    std::cerr << "error: no superstep records in " << dir
              << " (PEi_steps.csv missing — record with Config::supersteps "
                 "or ACTORPROF_SUPERSTEPS=1)\n";
    return 1;
  }
  if (!out.issues.empty() && !tolerate_partial) {
    std::cerr << "error: " << out.issues.size()
              << " damaged trace file(s); rerun with --tolerate-partial to "
                 "accept a partial trace\n";
    return 1;
  }
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  bool json = false, tolerate_partial = false;
  int num_pes = 0;
  ap::prof::analysis::Options opts;
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--tolerate-partial") {
      tolerate_partial = true;
    } else if (arg == "--num-pes") {
      if (++i >= argc) return usage(argv[0]), 2;
      num_pes = std::atoi(argv[i]);
    } else if (arg == "--what-if") {
      if (++i >= argc) return usage(argv[0]), 2;
      opts.what_if_factor = std::atof(argv[i]) / 100.0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]), 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage(argv[0]), 2;
    }
  }
  if (dir.empty()) return usage(argv[0]), 2;

  ap::prof::io::TraceDir trace;
  if (const int rc = load_analysis_dir(dir, num_pes, tolerate_partial, trace))
    return rc;
  const auto a = ap::prof::analysis::analyze(trace, opts);
  if (json) {
    ap::prof::analysis::write_json(std::cout, a);
    return 0;
  }
  ap::prof::analysis::write_text(std::cout, a);

  // Per-superstep stacked bars: fleet cycles per step, split into the
  // three busy components plus the reconstructed barrier wait.
  std::vector<std::string> labels;
  std::vector<std::vector<std::uint64_t>> rows;
  for (const auto& s : a.steps) {
    labels.push_back("e" + std::to_string(s.epoch) + "/s" +
                     std::to_string(s.step));
    std::uint64_t m = 0, p = 0, c = 0;
    for (const auto& r : s.recs) {
      m += r.t_main;
      p += r.t_proc;
      c += r.t_comm;
    }
    rows.push_back({m, p, c, s.total_wait});
  }
  ap::viz::StackedBarOptions so;
  so.title = "\nPer-superstep fleet cycles";
  std::cout << ap::viz::render_stacked(labels, {"MAIN", "PROC", "COMM", "WAIT"},
                                       rows, so);

  const auto findings = ap::prof::analysis::barrier_wait_findings(a);
  if (!findings.empty()) {
    ap::prof::Report rep;
    rep.findings = findings;
    std::cout << "\n" << ap::prof::format_report(rep);
  }
  return 0;
}

int cmd_check(int argc, char** argv) {
  bool json = false;
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]), 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage(argv[0]), 2;
    }
  }
  if (dir.empty()) return usage(argv[0]), 2;

  // Prefer the binary shard, fall back to CSV, and dispatch on content:
  // check.csv / check.apt hold the same rows, only the container differs.
  namespace io = ap::prof::io;
  const std::filesystem::path base = std::filesystem::path(dir);
  std::filesystem::path path = base / io::binary_file_name(io::kCheckFile);
  std::string body;
  if (!slurp_file(path, body)) {
    path = base / io::kCheckFile;
    if (!slurp_file(path, body)) {
      std::cerr << "error: cannot open " << path.string()
                << " — record the run with ACTORPROF_CHECK=1 (or "
                   "Config::check) so write_traces() emits check.csv\n";
      return 1;
    }
  }
  std::vector<ap::check::Violation> violations;
  std::uint64_t dropped = 0;
  try {
    if (io::is_binary_trace(body)) {
      io::decode_check_into(body, violations, dropped);
    } else {
      std::istringstream is(body);
      io::parse_check_into(is, violations, dropped);
    }
  } catch (const std::exception& e) {
    std::cerr << "error parsing " << path.string() << ": " << e.what()
              << "\n";
    return 1;
  }
  if (json)
    ap::check::write_json(std::cout, violations, dropped);
  else
    ap::check::write_text(std::cout, violations, dropped);
  return violations.empty() && dropped == 0 ? 0 : 4;
}

int cmd_diff(int argc, char** argv) {
  bool json = false, tolerate_partial = false;
  int num_pes = 0;
  double threshold_pct = 10.0;
  std::vector<std::string> dirs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--tolerate-partial") {
      tolerate_partial = true;
    } else if (arg == "--num-pes") {
      if (++i >= argc) return usage(argv[0]), 2;
      num_pes = std::atoi(argv[i]);
    } else if (arg == "--threshold") {
      if (++i >= argc) return usage(argv[0]), 2;
      threshold_pct = std::atof(argv[i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]), 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.size() != 2 || threshold_pct < 0) return usage(argv[0]), 2;

  ap::prof::io::TraceDir ta, tb;
  if (const int rc =
          load_analysis_dir(dirs[0], num_pes, tolerate_partial, ta))
    return rc;
  if (const int rc =
          load_analysis_dir(dirs[1], num_pes, tolerate_partial, tb))
    return rc;
  const auto aa = ap::prof::analysis::analyze(ta);
  const auto ab = ap::prof::analysis::analyze(tb);
  const auto d = ap::prof::analysis::diff(aa, ab, threshold_pct / 100.0);
  if (json)
    ap::prof::analysis::write_diff_json(std::cout, d);
  else
    ap::prof::analysis::write_diff_text(std::cout, d);
  return d.any_regression() ? 3 : 0;
}

// ------------------------------------------------------ heatmap / export

int cmd_heatmap(int argc, char** argv) {
  bool json = false, tolerate_partial = false;
  int num_pes = 0;
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--tolerate-partial") {
      tolerate_partial = true;
    } else if (arg == "--num-pes") {
      if (++i >= argc) return usage(argv[0]), 2;
      num_pes = std::atoi(argv[i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]), 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage(argv[0]), 2;
    }
  }
  if (dir.empty()) return usage(argv[0]), 2;
  if (num_pes <= 0) num_pes = ap::prof::io::detect_num_pes(dir);
  if (num_pes <= 0) {
    std::cerr << "error: cannot determine the PE count of " << dir
              << " (no readable MANIFEST.txt) — pass --num-pes N\n";
    return 2;
  }
  ap::prof::io::TraceDir trace;
  try {
    ap::prof::io::LoadOptions lo;
    lo.tolerate_partial = true;
    trace = ap::prof::io::load_trace_dir(dir, num_pes, lo);
  } catch (const std::exception& e) {
    std::cerr << "error loading traces from " << dir << ": " << e.what()
              << "\n";
    return 1;
  }
  for (const auto& issue : trace.issues) {
    std::cerr << "warning: " << issue.file;
    if (issue.line_no > 0) std::cerr << ":" << issue.line_no;
    std::cerr << ": " << issue.message << " — continuing with remaining PEs\n";
  }
  if (json) {
    ap::viz::write_heatmap_json(std::cout, trace);
  } else {
    ap::viz::HeatmapOptions ho;
    ho.title = "Logical Trace Heatmap (messages before aggregation)";
    ho.dead_pes = trace.dead_pes;
    // Sparse accessors + the sparse renderer: bucketing happens before any
    // densification, so no P^2 matrix exists even for thousands of PEs.
    std::cout << ap::viz::render_heatmap(trace.logical_sparse(), ho) << "\n";
    ho.title =
        "Physical Trace Heatmap (aggregated buffers: local_send + "
        "nonblock_send)";
    std::cout << ap::viz::render_heatmap(trace.physical_sparse(), ho) << "\n";
  }
  if (!trace.issues.empty() && !tolerate_partial) {
    std::cerr << "error: " << trace.issues.size()
              << " damaged trace file(s); rerun with --tolerate-partial to "
                 "accept a partial trace\n";
    return 1;
  }
  return 0;
}

/// `export --csv`: decode every .apt shard back to the CSV/text files the
/// paper describes. With -o OUTDIR the result is a complete, loadable CSV
/// trace dir — text files are copied, the MANIFEST is regenerated (same
/// entry order as write_all, so a deterministic workload recorded in both
/// formats exports to byte-identical directories). Without -o the CSV
/// siblings land next to the .apt files and the MANIFEST is left alone.
int cmd_export(int argc, char** argv) {
  namespace io = ap::prof::io;
  namespace fs = std::filesystem;
  bool csv = false;
  int num_pes = 0;
  std::string dir, outdir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--num-pes") {
      if (++i >= argc) return usage(argv[0]), 2;
      num_pes = std::atoi(argv[i]);
    } else if (arg == "-o" || arg == "--output") {
      if (++i >= argc) return usage(argv[0]), 2;
      outdir = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]), 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage(argv[0]), 2;
    }
  }
  if (dir.empty()) return usage(argv[0]), 2;
  if (!csv) {
    std::cerr << "error: export needs a target format (only --csv for now)\n";
    return 2;
  }
  if (num_pes <= 0) num_pes = io::detect_num_pes(dir);
  if (num_pes <= 0) {
    std::cerr << "error: cannot determine the PE count of " << dir
              << " (no readable MANIFEST.txt) — pass --num-pes N\n";
    return 2;
  }
  const bool in_place = outdir.empty() || fs::path(outdir) == fs::path(dir);
  const fs::path out = in_place ? fs::path(dir) : fs::path(outdir);
  if (!in_place) {
    std::error_code ec;
    fs::create_directories(out, ec);
    if (ec) {
      std::cerr << "error: cannot create " << out.string() << ": "
                << ec.message() << "\n";
      return 1;
    }
  }

  // Source MANIFEST (optional) supplies the dead-PE markers.
  io::Manifest manifest;
  if (std::string body; slurp_file(fs::path(dir) / io::kManifestFile, body)) {
    std::istringstream is(body);
    try {
      manifest = io::parse_manifest(is);
    } catch (const io::TraceParseError&) {
    }
  }

  std::vector<io::ManifestEntry> written;
  int failures = 0;
  const auto put = [&](const std::string& name, const std::string& body,
                       std::uint64_t records) {
    std::ofstream os(out / name, std::ios::binary | std::ios::trunc);
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.flush();
    if (!os.good()) {
      std::cerr << "error: cannot write " << (out / name).string() << "\n";
      ++failures;
      return;
    }
    written.push_back(io::ManifestEntry{
        name, records, body.size(), io::fnv1a64(body.data(), body.size())});
  };
  // Convert name.apt when present; otherwise carry the existing CSV/text
  // file over (copy on -o). `records(body)` counts rows for the MANIFEST.
  const auto convert = [&](const std::string& name, auto&& decode_to_csv,
                           auto&& count_records) {
    std::string body;
    if (slurp_file(fs::path(dir) / io::binary_file_name(name), body) &&
        io::is_binary_trace(body)) {
      std::string csv_body;
      try {
        csv_body = decode_to_csv(body);
      } catch (const std::exception& e) {
        std::cerr << "error decoding " << io::binary_file_name(name) << ": "
                  << e.what() << "\n";
        ++failures;
        return;
      }
      put(name, csv_body, count_records(csv_body));
    } else if (slurp_file(fs::path(dir) / name, body)) {
      if (!in_place) put(name, body, count_records(body));
    }
  };
  const auto count_rows = [](auto&& parse) {
    return [parse](const std::string& body) -> std::uint64_t {
      std::istringstream is(body);
      try {
        return parse(is);
      } catch (const std::exception&) {
        return 0;
      }
    };
  };

  for (int pe = 0; pe < num_pes; ++pe) {
    convert(
        io::logical_file_name(pe),
        [](std::string_view b) {
          std::vector<ap::prof::LogicalSendRecord> rows;
          io::decode_logical_into(b, rows);
          ap::prof::io::Sink s;
          io::write_logical(s, rows);
          return std::move(s).str();
        },
        count_rows([](std::istream& is) {
          return ap::prof::io::parse_logical(is).size();
        }));
  }
  for (int pe = 0; pe < num_pes; ++pe) {
    convert(
        io::papi_file_name(pe),
        [](std::string_view b) {
          std::vector<ap::prof::PapiSegmentRecord> rows;
          std::vector<ap::papi::Event> events;
          io::decode_papi_into(b, rows, &events);
          // Rebuild the CSV header from the event ids the .apt header
          // carries.
          ap::prof::Config cfg;
          cfg.papi_events.fill(ap::papi::Event::kCount);
          for (std::size_t i = 0;
               i < events.size() && i < cfg.papi_events.size(); ++i)
            cfg.papi_events[i] = events[i];
          ap::prof::io::Sink s;
          io::write_papi(s, rows, cfg);
          return std::move(s).str();
        },
        count_rows(
            [](std::istream& is) { return ap::prof::io::parse_papi(is).size(); }));
  }
  for (int pe = 0; pe < num_pes; ++pe) {
    convert(
        io::steps_file_name(pe),
        [](std::string_view b) {
          std::vector<ap::prof::SuperstepRecord> rows;
          io::decode_steps_into(b, rows);
          ap::prof::io::Sink s;
          io::write_steps(s, rows);
          return std::move(s).str();
        },
        count_rows([](std::istream& is) {
          return ap::prof::io::parse_steps(is).size();
        }));
  }
  convert(
      io::kOverallFile, [](std::string_view) { return std::string{}; },
      count_rows([](std::istream& is) {
        return ap::prof::io::parse_overall(is).size();
      }));
  convert(
      io::kCheckFile,
      [](std::string_view b) {
        std::vector<ap::check::Violation> rows;
        std::uint64_t dropped = 0;
        io::decode_check_into(b, rows, dropped);
        ap::prof::io::Sink s;
        io::write_check(s, rows, dropped);
        return std::move(s).str();
      },
      [](const std::string& body) -> std::uint64_t {
        std::istringstream is(body);
        std::vector<ap::check::Violation> rows;
        std::uint64_t dropped = 0;
        try {
          ap::prof::io::parse_check_into(is, rows, dropped);
        } catch (const std::exception&) {
        }
        return rows.size();
      });
  convert(
      io::kPhysicalFile,
      [](std::string_view b) {
        std::vector<ap::prof::PhysicalRecord> rows;
        io::decode_physical_into(b, rows);
        ap::prof::io::Sink s;
        io::write_physical(s, rows);
        return std::move(s).str();
      },
      count_rows([](std::istream& is) {
        return ap::prof::io::parse_physical(is).size();
      }));

  if (!in_place) {
    // Regenerate the MANIFEST over what landed, same shape as write_all.
    ap::prof::io::Sink s;
    s.append(
        "# ActorProf trace manifest: file <name> records=<n> bytes=<n> "
        "fnv1a=<hex64>\n");
    s.append("num_pes ");
    s.dec(num_pes);
    s.put('\n');
    for (const io::ManifestEntry& m : written) {
      s.append("file ");
      s.append(m.file);
      s.append(" records=");
      s.dec(m.records);
      s.append(" bytes=");
      s.dec(m.bytes);
      s.append(" fnv1a=");
      char buf[17];
      static const char* digits = "0123456789abcdef";
      std::uint64_t v = m.fnv1a;
      for (int i = 15; i >= 0; --i) {
        buf[i] = digits[v & 0xf];
        v >>= 4;
      }
      buf[16] = '\0';
      s.append(buf);
      s.put('\n');
    }
    for (int pe : manifest.dead_pes) {
      s.append("dead_pe ");
      s.dec(pe);
      s.put('\n');
    }
    std::ofstream os(out / io::kManifestFile,
                     std::ios::binary | std::ios::trunc);
    os << std::move(s).str();
    if (!os.good()) {
      std::cerr << "error: cannot write "
                << (out / io::kManifestFile).string() << "\n";
      ++failures;
    }
  }
  std::cerr << "export: wrote " << written.size() << " file(s) to "
            << out.string() << "\n";
  return failures == 0 ? 0 : 1;
}

// --------------------------------------------------------------- serve

int cmd_serve(int argc, char** argv) {
  ap::serve::RegistryOptions ro;
  ap::serve::ServerOptions ho;
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host") {
      if (++i >= argc) return usage(argv[0]), 2;
      ho.host = argv[i];
    } else if (arg == "--port") {
      if (++i >= argc) return usage(argv[0]), 2;
      ho.port = std::atoi(argv[i]);
    } else if (arg == "--num-pes") {
      if (++i >= argc) return usage(argv[0]), 2;
      ro.service.num_pes = std::atoi(argv[i]);
    } else if (arg == "--max-requests") {
      if (++i >= argc) return usage(argv[0]), 2;
      ho.max_requests = std::atol(argv[i]);
    } else if (arg == "--threshold") {
      if (++i >= argc) return usage(argv[0]), 2;
      ro.service.diff_threshold_pct = std::atof(argv[i]);
    } else if (arg == "--retain-bytes") {
      if (++i >= argc) return usage(argv[0]), 2;
      ro.retain_bytes = std::strtoull(argv[i], nullptr, 10);
    } else if (arg == "--retain-runs") {
      if (++i >= argc) return usage(argv[0]), 2;
      ro.retain_runs = static_cast<std::size_t>(std::atol(argv[i]));
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]), 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage(argv[0]), 2;
    }
  }
  if (dir.empty() || ho.port < 0 || ho.port > 65535)
    return usage(argv[0]), 2;
  ap::serve::ServiceRegistry reg(dir, ro);
  reg.set_log(&std::cerr);
  if (reg.watched()->num_pes() <= 0)
    std::cerr << "serve: PE count unknown so far (no MANIFEST.txt yet); "
                 "watching " << dir << " — pass --num-pes N to analyze "
                 "mid-run\n";
  return ap::serve::run_server(reg, ho, std::cout, std::cerr);
}

// ---------------------------------------------------------------- tail

/// Minimal SSE client for GET /live: prints each event as one text line,
/// which is all a terminal next to a running job needs.
int cmd_tail(int argc, char** argv) {
  std::string endpoint, run = "default";
  long max_events = -1;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--run") {
      if (++i >= argc) return usage(argv[0]), 2;
      run = argv[i];
    } else if (arg == "--max-events") {
      if (++i >= argc) return usage(argv[0]), 2;
      max_events = std::atol(argv[i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]), 2;
    } else if (endpoint.empty()) {
      endpoint = arg;
    } else {
      return usage(argv[0]), 2;
    }
  }
  std::string host;
  int port = 0;
  if (endpoint.empty() ||
      !ap::serve::Publisher::parse_endpoint(endpoint, host, port)) {
    std::cerr << "tail: expected <host:port> (e.g. 127.0.0.1:7077)\n";
    return 2;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "tail: socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    std::cerr << "tail: cannot connect to " << endpoint << ": "
              << std::strerror(errno) << "\n";
    ::close(fd);
    return 1;
  }
  const std::string req = "GET /live?run=" + run +
                          " HTTP/1.1\r\nHost: " + host +
                          "\r\nAccept: text/event-stream\r\n"
                          "Connection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), MSG_NOSIGNAL) < 0) {
    std::cerr << "tail: send(): " << std::strerror(errno) << "\n";
    ::close(fd);
    return 1;
  }

  // Stream line by line: remember the last "event:" name, print each
  // "data:" payload as "<event> <data>".
  std::string buf, event;
  long printed = 0;
  bool headers_done = false;
  char chunk[4096];
  int status = 0;
  while (max_events < 0 || printed < max_events) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos &&
           (max_events < 0 || printed < max_events)) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!headers_done) {
        if (status == 0 && line.rfind("HTTP/", 0) == 0)
          status = std::atoi(line.c_str() + line.find(' ') + 1);
        if (line.empty()) headers_done = true;
        continue;
      }
      if (line.rfind("event: ", 0) == 0) {
        event = line.substr(7);
      } else if (line.rfind("data: ", 0) == 0) {
        std::cout << (event.empty() ? "message" : event) << " "
                  << line.substr(6) << "\n";
        std::cout.flush();
        ++printed;
      }
    }
    if (status != 0 && status != 200) break;
  }
  ::close(fd);
  if (status != 200) {
    std::cerr << "tail: server answered HTTP " << status << "\n";
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------- compact

/// `compact <dir>`: re-encode every .apt shard through its decoder and
/// encoder, merging the small blocks left by incremental/multi-epoch
/// appends into dense kRowsPerBlock runs. Compression state is preserved
/// per file (a version-2 shard stays compressed). Each rewrite goes
/// through a ".tmp" sibling + rename; the MANIFEST is rewritten last with
/// the new byte counts and checksums, so a reader (or a kill) never sees
/// a half-compacted directory.
int cmd_compact(int argc, char** argv) {
  namespace io = ap::prof::io;
  namespace fs = std::filesystem;
  int num_pes = 0;
  std::string dir;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--num-pes") {
      if (++i >= argc) return usage(argv[0]), 2;
      num_pes = std::atoi(argv[i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return usage(argv[0]), 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage(argv[0]), 2;
    }
  }
  if (dir.empty()) return usage(argv[0]), 2;
  if (num_pes <= 0) num_pes = io::detect_num_pes(dir);
  if (num_pes <= 0) {
    std::cerr << "error: cannot determine the PE count of " << dir
              << " (no readable MANIFEST.txt) — pass --num-pes N\n";
    return 2;
  }
  const fs::path base(dir);

  // The existing MANIFEST supplies entry order, record counts of files we
  // do not touch, and the dead-PE markers.
  io::Manifest manifest;
  bool have_manifest = false;
  if (std::string body; slurp_file(base / io::kManifestFile, body)) {
    std::istringstream is(body);
    try {
      manifest = io::parse_manifest(is);
      have_manifest = true;
    } catch (const io::TraceParseError&) {
    }
  }

  int failures = 0;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> rewritten;
  // Decode rows, re-encode densely, and atomically swap the file when the
  // bytes changed; missing/CSV files are silently skipped.
  const auto compact_file = [&](const std::string& name,
                                auto&& reencode) -> void {
    const fs::path path = base / name;
    std::string body;
    if (!slurp_file(path, body) || !io::is_binary_trace(body)) return;
    const bool was_compressed = io::is_compressed_trace(body);
    std::string dense;
    std::uint64_t records = 0;
    try {
      dense = reencode(body, records);
    } catch (const std::exception& e) {
      std::cerr << "compact: cannot re-encode " << name << ": " << e.what()
                << "\n";
      ++failures;
      return;
    }
    if (was_compressed) dense = io::compress_trace(dense);
    if (dense == body) return;  // already dense
    const fs::path tmp = base / (name + ".tmp");
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      os.write(dense.data(), static_cast<std::streamsize>(dense.size()));
      os.flush();
      if (!os.good()) {
        std::cerr << "compact: cannot write " << tmp.string() << "\n";
        ++failures;
        return;
      }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      std::cerr << "compact: cannot replace " << name << ": " << ec.message()
                << "\n";
      fs::remove(tmp, ec);
      ++failures;
      return;
    }
    std::cout << "compact: " << name << " " << body.size() << " -> "
              << dense.size() << " bytes\n";
    rewritten[name] = {records, dense.size()};
  };

  for (int pe = 0; pe < num_pes; ++pe) {
    compact_file(io::binary_file_name(io::logical_file_name(pe)),
                 [](std::string_view b, std::uint64_t& records) {
                   std::vector<ap::prof::LogicalSendRecord> rows;
                   io::decode_logical_into(b, rows);
                   records = rows.size();
                   return io::encode_logical(rows);
                 });
    compact_file(io::binary_file_name(io::papi_file_name(pe)),
                 [](std::string_view b, std::uint64_t& records) {
                   std::vector<ap::prof::PapiSegmentRecord> rows;
                   std::vector<ap::papi::Event> events;
                   io::decode_papi_into(b, rows, &events);
                   records = rows.size();
                   ap::prof::Config cfg;
                   cfg.papi_events.fill(ap::papi::Event::kCount);
                   for (std::size_t i = 0;
                        i < events.size() && i < cfg.papi_events.size(); ++i)
                     cfg.papi_events[i] = events[i];
                   return io::encode_papi(rows, cfg);
                 });
    compact_file(io::binary_file_name(io::steps_file_name(pe)),
                 [](std::string_view b, std::uint64_t& records) {
                   std::vector<ap::prof::SuperstepRecord> rows;
                   io::decode_steps_into(b, rows);
                   records = rows.size();
                   return io::encode_steps(rows);
                 });
  }
  compact_file(io::binary_file_name(io::kPhysicalFile),
               [](std::string_view b, std::uint64_t& records) {
                 std::vector<ap::prof::PhysicalRecord> rows;
                 io::decode_physical_into(b, rows);
                 records = rows.size();
                 return io::encode_physical(rows);
               });
  compact_file(io::binary_file_name(io::kCheckFile),
               [](std::string_view b, std::uint64_t& records) {
                 std::vector<ap::check::Violation> rows;
                 std::uint64_t dropped = 0;
                 io::decode_check_into(b, rows, dropped);
                 records = rows.size();
                 return io::encode_check(rows, dropped);
               });

  // MANIFEST rewrite: entries of rewritten files get the new byte counts
  // and checksums (write_all's exact line format); everything else is
  // carried over. Without a readable MANIFEST there is nothing to rewrite.
  if (have_manifest && !rewritten.empty()) {
    ap::prof::io::Sink s;
    s.append(
        "# ActorProf trace manifest: file <name> records=<n> bytes=<n> "
        "fnv1a=<hex64>\n");
    s.append("num_pes ");
    s.dec(num_pes);
    s.put('\n');
    for (const io::ManifestEntry& m : manifest.files) {
      std::uint64_t records = m.records;
      std::uint64_t fnv = m.fnv1a;
      std::uint64_t bytes = m.bytes;
      if (const auto it = rewritten.find(m.file); it != rewritten.end()) {
        records = it->second.first;
        bytes = it->second.second;
        std::string body;
        slurp_file(base / m.file, body);
        fnv = io::fnv1a64(body.data(), body.size());
      }
      s.append("file ");
      s.append(m.file);
      s.append(" records=");
      s.dec(records);
      s.append(" bytes=");
      s.dec(bytes);
      s.append(" fnv1a=");
      char buf[17];
      static const char* digits = "0123456789abcdef";
      std::uint64_t v = fnv;
      for (int i = 15; i >= 0; --i) {
        buf[i] = digits[v & 0xf];
        v >>= 4;
      }
      buf[16] = '\0';
      s.append(buf);
      s.put('\n');
    }
    for (int pe : manifest.dead_pes) {
      s.append("dead_pe ");
      s.dec(pe);
      s.put('\n');
    }
    const fs::path tmp = base / (std::string(io::kManifestFile) + ".tmp");
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      os << std::move(s).str();
      os.flush();
      if (!os.good()) {
        std::cerr << "compact: cannot write " << tmp.string() << "\n";
        return 1;
      }
    }
    std::error_code ec;
    fs::rename(tmp, base / io::kManifestFile, ec);
    if (ec) {
      std::cerr << "compact: cannot replace MANIFEST.txt: " << ec.message()
                << "\n";
      return 1;
    }
  }
  if (rewritten.empty() && failures == 0)
    std::cout << "compact: nothing to do (shards already dense)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const std::string sub = argv[1];
    if (sub == "analyze") return cmd_analyze(argc, argv);
    if (sub == "diff") return cmd_diff(argc, argv);
    if (sub == "check") return cmd_check(argc, argv);
    if (sub == "heatmap") return cmd_heatmap(argc, argv);
    if (sub == "export") return cmd_export(argc, argv);
    if (sub == "serve") return cmd_serve(argc, argv);
    if (sub == "tail") return cmd_tail(argc, argv);
    if (sub == "compact") return cmd_compact(argc, argv);
    // A non-flag first argument that is not a trace dir is a misspelled
    // subcommand — name the real ones instead of dumping plot usage.
    if (sub[0] != '-' && !std::filesystem::is_directory(sub)) {
      std::cerr << "unknown subcommand '" << sub
                << "'; available: analyze, diff, check, heatmap, export, "
                   "serve, tail, compact\n";
      usage(argv[0]);
      return 2;
    }
  }
  Args a;
  if (!parse_args(argc, argv, a)) {
    usage(argv[0]);
    return 2;
  }

  // Always load tolerantly: per-file parse errors become warnings and the
  // surviving records still render. --tolerate-partial only decides the
  // exit code (0 vs 1) when damage was found.
  ap::prof::io::TraceDir trace;
  try {
    ap::prof::io::LoadOptions lo;
    lo.tolerate_partial = true;
    trace = ap::prof::io::load_trace_dir(a.dir, a.num_pes, lo);
  } catch (const std::exception& e) {
    std::cerr << "error loading traces from " << a.dir << ": " << e.what()
              << "\n";
    return 1;
  }
  for (const auto& issue : trace.issues) {
    std::cerr << "warning: " << issue.file;
    if (issue.line_no > 0) std::cerr << ":" << issue.line_no;
    std::cerr << ": " << issue.message
              << " — continuing with remaining PEs\n";
  }
  for (int pe : trace.dead_pes)
    std::cerr << "note: PE" << pe
              << " was killed mid-run; its trace is a partial prefix\n";

  const bool log_scale = !a.linear;
  const ap::shmem::Topology topo(a.num_pes,
                                 a.ppn > 0 ? a.ppn : a.num_pes);

  // Both heatmap families run off the sparse accumulations: with --by-node
  // the collapse is sparse-to-small-dense, otherwise the sparse renderer
  // buckets before densifying. Either way no P^2 object is built.
  const auto plot_heatmap = [&](const ap::prof::SparseCommMatrix& sm,
                                const std::string& file_stem,
                                ap::viz::HeatmapOptions ho,
                                std::vector<std::uint64_t>& sends,
                                std::vector<std::uint64_t>& recvs) {
    if (a.by_node) {
      const auto m = ap::prof::collapse_to_nodes(sm, topo);
      std::cout << ap::viz::render_heatmap(m, ho) << "\n";
      maybe_svg(a, file_stem, ap::viz::svg_heatmap(m, ho.title, log_scale));
      sends = m.row_sums();
      recvs = m.col_sums();
    } else {
      ho.dead_pes = trace.dead_pes;
      std::cout << ap::viz::render_heatmap(sm, ho) << "\n";
      maybe_svg(a, file_stem, ap::viz::svg_heatmap(sm, ho.title, log_scale));
      sends = sm.row_sums();
      recvs = sm.col_sums();
    }
  };

  if (a.logical) {
    const auto sm = trace.logical_sparse();
    if (sm.total() == 0)
      std::cerr << "warning: no logical events found (PEi_send.csv missing "
                   "or empty)\n";
    ap::viz::HeatmapOptions ho;
    ho.title = "Logical Trace Heatmap (messages before aggregation)";
    ho.log_scale = log_scale;
    std::vector<std::uint64_t> sends, recvs;
    plot_heatmap(sm, "logical_heatmap", ho, sends, recvs);
    if (a.violin) {
      ap::viz::ViolinOptions vo;
      vo.title = "Logical Trace Violin (total send/recv per PE)";
      const std::string v =
          ap::viz::render_violins({"sends", "recvs"}, {sends, recvs}, vo);
      std::cout << v << "\n";
      maybe_svg(a, "logical_violin",
                ap::viz::svg_violins({"sends", "recvs"}, {sends, recvs},
                                     vo.title));
    }
  }

  if (a.papi) {
    // One bar graph per recorded counter (up to four in one run, matching
    // the paper's "-lp ... four PAPI counters in one run").
    std::vector<std::string> counter_names;
    {
      // Counter columns are positional; recover names from any header-free
      // data by numbering, or read them from the profiler default order.
      counter_names = {"PAPI_TOT_INS", "PAPI_LST_INS", "counter2", "counter3"};
    }
    std::vector<std::string> labels;
    for (int pe = 0; pe < a.num_pes; ++pe)
      labels.push_back("PE" + std::to_string(pe));
    bool any = false;
    for (int c = 0; c < 4; ++c) {
      std::vector<double> totals(static_cast<std::size_t>(a.num_pes), 0);
      bool nonzero = false;
      for (int pe = 0; pe < a.num_pes; ++pe) {
        for (const auto& row : trace.papi[static_cast<std::size_t>(pe)]) {
          const double v = static_cast<double>(
              row.counters[static_cast<std::size_t>(c)]);
          totals[static_cast<std::size_t>(pe)] += v;
          if (v > 0) nonzero = true;
        }
      }
      if (!nonzero) continue;
      any = true;
      ap::viz::BarOptions bo;
      bo.title = counter_names[static_cast<std::size_t>(c)] +
                 " per PE (MAIN+PROC segments)";
      std::cout << ap::viz::render_bars(labels, totals, bo) << "\n";
      maybe_svg(a, "papi_" + std::to_string(c),
                ap::viz::svg_bars(labels, totals, bo.title));
    }
    if (!any)
      std::cerr << "warning: no PAPI rows found (PEi_PAPI.csv missing?)\n";
  }

  if (a.overall) {
    if (trace.overall.empty()) {
      std::cerr << "warning: overall.txt missing or empty\n";
    } else {
      ap::viz::StackedBarOptions so;
      so.title = "Overall Profiling (absolute rdtsc cycles)";
      so.relative = false;
      std::cout << ap::viz::render_overall_stacked(trace.overall, so) << "\n";
      maybe_svg(a, "overall_absolute",
                ap::viz::svg_overall_stacked(trace.overall, so.title, false));
      so.title = "Overall Profiling (relative)";
      so.relative = true;
      std::cout << ap::viz::render_overall_stacked(trace.overall, so) << "\n";
      maybe_svg(a, "overall_relative",
                ap::viz::svg_overall_stacked(trace.overall, so.title, true));
    }
  }

  if (a.physical) {
    const auto sm = trace.physical_sparse();
    if (sm.total() == 0)
      std::cerr << "warning: no physical events found (physical.txt "
                   "missing or empty)\n";
    ap::viz::HeatmapOptions ho;
    ho.title =
        "Physical Trace Heatmap (aggregated buffers: local_send + "
        "nonblock_send)";
    ho.log_scale = log_scale;
    std::vector<std::uint64_t> sends, recvs;
    plot_heatmap(sm, "physical_heatmap", ho, sends, recvs);
    if (a.violin) {
      ap::viz::ViolinOptions vo;
      vo.title = "Physical Trace Violin (total buffers per PE)";
      std::cout << ap::viz::render_violins({"sends", "recvs"},
                                           {sends, recvs}, vo)
                << "\n";
      maybe_svg(a, "physical_violin",
                ap::viz::svg_violins({"sends", "recvs"}, {sends, recvs},
                                     vo.title));
    }
  }

  if (a.advise) {
    std::vector<std::uint64_t> ins(static_cast<std::size_t>(a.num_pes), 0);
    for (int pe = 0; pe < a.num_pes; ++pe)
      for (const auto& row : trace.papi[static_cast<std::size_t>(pe)])
        ins[static_cast<std::size_t>(pe)] += row.counters[0];
    bool any_ins = false;
    for (auto v : ins) any_ins |= (v != 0);
    // The advisor's per-PE diagnostics stay dense on purpose: its findings
    // quote individual PEs, and its callers run it at report-sized fleets.
    const auto report = ap::prof::advise(
        trace.logical_matrix(), trace.physical_matrix(), trace.overall,
        any_ins ? ins : std::vector<std::uint64_t>{}, topo);
    std::cout << ap::prof::format_report(report);
  }

  if (!trace.issues.empty() && !a.tolerate_partial) {
    std::cerr << "error: " << trace.issues.size()
              << " damaged trace file(s); rerun with --tolerate-partial to "
                 "accept a partial trace\n";
    return 1;
  }
  return 0;
}
