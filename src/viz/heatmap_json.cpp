#include "viz/heatmap_json.hpp"

#include <ostream>

#include "core/aggregate.hpp"

namespace ap::viz {

namespace {

void write_matrix(std::ostream& os, const ap::prof::CommMatrix& m) {
  os << "{\"rows\":[";
  for (int src = 0; src < m.size(); ++src) {
    if (src > 0) os << ",";
    os << "[";
    for (int dst = 0; dst < m.size(); ++dst) {
      if (dst > 0) os << ",";
      os << m.at(src, dst);
    }
    os << "]";
  }
  os << "],\"send_totals\":[";
  const auto rows = m.row_sums();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) os << ",";
    os << rows[i];
  }
  os << "],\"recv_totals\":[";
  const auto cols = m.col_sums();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) os << ",";
    os << cols[i];
  }
  os << "],\"total\":" << m.total() << "}";
}

}  // namespace

void write_heatmap_json(std::ostream& os, const ap::prof::io::TraceDir& t) {
  os << "{\"num_pes\":" << t.num_pes << ",\"dead_pes\":[";
  for (std::size_t i = 0; i < t.dead_pes.size(); ++i) {
    if (i > 0) os << ",";
    os << t.dead_pes[i];
  }
  os << "],\"logical\":";
  write_matrix(os, t.logical_matrix());
  os << ",\"physical\":";
  write_matrix(os, t.physical_matrix());
  os << "}\n";
}

}  // namespace ap::viz
