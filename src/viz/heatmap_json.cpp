#include "viz/heatmap_json.hpp"

#include <ostream>

#include "core/aggregate.hpp"

namespace ap::viz {

namespace {

/// Matrices above this many PEs are bucketed before serialization; a JSON
/// consumer should treat each row/col as a PE range (see bucket_ranges).
constexpr int kMaxJsonCells = 64;

void write_matrix(std::ostream& os, const ap::prof::CommMatrix& m) {
  os << "{\"rows\":[";
  for (int src = 0; src < m.size(); ++src) {
    if (src > 0) os << ",";
    os << "[";
    for (int dst = 0; dst < m.size(); ++dst) {
      if (dst > 0) os << ",";
      os << m.at(src, dst);
    }
    os << "]";
  }
  os << "],\"send_totals\":[";
  const auto rows = m.row_sums();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) os << ",";
    os << rows[i];
  }
  os << "],\"recv_totals\":[";
  const auto cols = m.col_sums();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) os << ",";
    os << cols[i];
  }
  os << "],\"total\":" << m.total() << "}";
}

}  // namespace

void write_heatmap_json(std::ostream& os, const ap::prof::io::TraceDir& t) {
  os << "{\"num_pes\":" << t.num_pes << ",\"dead_pes\":[";
  for (std::size_t i = 0; i < t.dead_pes.size(); ++i) {
    if (i > 0) os << ",";
    os << t.dead_pes[i];
  }
  os << "]";
  // Large fleets are bucketed while still sparse — the serialized rows
  // (and the in-memory objects building them) are at most 64x64 whatever
  // num_pes is. The extra keys only appear when bucketing happened, so
  // small-trace output is byte-identical to the unbucketed format.
  const bool bucketed = t.num_pes > kMaxJsonCells;
  if (bucketed) {
    const int buckets = prof::bucket_count(t.num_pes, kMaxJsonCells);
    os << ",\"bucketed\":true,\"bucket_ranges\":[";
    for (int b = 0; b < buckets; ++b) {
      const prof::BucketRange r = prof::bucket_range(b, t.num_pes, kMaxJsonCells);
      if (b > 0) os << ",";
      os << "[" << r.begin << "," << r.end << "]";
    }
    os << "]";
  }
  os << ",\"logical\":";
  write_matrix(os, t.logical_sparse().bucketed(kMaxJsonCells));
  os << ",\"physical\":";
  write_matrix(os, t.physical_sparse().bucketed(kMaxJsonCells));
  os << "}\n";
}

}  // namespace ap::viz
