// Deterministic JSON rendering of the communication heatmaps — the data
// behind the paper's -l/-p plots, as machine-readable matrices. Shared by
// `actorprof heatmap --json` and the trace service's GET /heatmap so both
// produce byte-identical output for the same trace.
#pragma once

#include <iosfwd>

#include "core/trace_io.hpp"

namespace ap::viz {

/// Writes {"num_pes":N,"dead_pes":[...],"logical":{...},"physical":{...}}
/// where each matrix object carries the dense src-by-dst counts plus the
/// row/col totals the rendered heatmaps show as their last column/row.
/// Byte-identical output for identical inputs (no floats, no locale).
void write_heatmap_json(std::ostream& os, const ap::prof::io::TraceDir& t);

}  // namespace ap::viz
