#include "viz/render.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace ap::viz {

namespace {

/// Intensity ramp from cold to hot.
constexpr std::string_view kRamp = " .:-=+*#%@";

char ramp_char(double x01) {
  if (x01 <= 0) return kRamp[0];
  const auto idx = static_cast<std::size_t>(
      std::min(x01, 1.0) * static_cast<double>(kRamp.size() - 1) + 0.5);
  return kRamp[std::min(idx, kRamp.size() - 1)];
}

double scale01(std::uint64_t v, std::uint64_t max, bool log_scale) {
  if (v == 0 || max == 0) return 0;
  if (!log_scale) return static_cast<double>(v) / static_cast<double>(max);
  return std::log1p(static_cast<double>(v)) /
         std::log1p(static_cast<double>(max));
}

std::string pad(const std::string& s, int w) {
  return s.size() >= static_cast<std::size_t>(w)
             ? s
             : std::string(static_cast<std::size_t>(w) - s.size(), ' ') + s;
}

std::string human(std::uint64_t v) {
  std::ostringstream os;
  if (v >= 10'000'000) {
    os << v / 1'000'000 << "M";
  } else if (v >= 10'000) {
    os << v / 1'000 << "k";
  } else {
    os << v;
  }
  return os.str();
}

/// Shared body of the dense and sparse entry points: `m` is already at
/// renderable size (bucketed if the original was larger), `orig_n` is the
/// pre-bucketing PE count the labels must describe.
std::string render_heatmap_impl(const prof::CommMatrix& m, int orig_n,
                                bool bucketed, const HeatmapOptions& opts) {
  std::ostringstream os;
  const int n = m.size();
  if (n <= 0) {
    // 0-PE / fully-unparsable trace: emit a stub instead of dereferencing
    // max_element(end()) on the empty totals below.
    if (!opts.title.empty()) os << opts.title << "\n";
    os << "(empty matrix: no PEs)\n";
    return os.str();
  }
  const std::uint64_t max = m.max_cell();
  const auto sends = m.row_sums();
  const auto recvs = m.col_sums();
  const std::uint64_t max_total =
      std::max(*std::max_element(sends.begin(), sends.end()),
               *std::max_element(recvs.begin(), recvs.end()));

  if (!opts.title.empty()) os << opts.title << "\n";
  os << "rows = source PE, cols = destination PE; ramp \"" << kRamp
     << "\" (max cell = " << max << ")\n";
  if (bucketed) {
    // bucket_range is the attribution's source of truth; when the bucket
    // width does not divide the PE count the last bucket is short and the
    // label must say so (a uniform "aggregates K PEs" would double-count).
    const prof::BucketRange first =
        prof::bucket_range(0, orig_n, opts.max_cells);
    const prof::BucketRange last =
        prof::bucket_range(n - 1, orig_n, opts.max_cells);
    os << "(downsampled: each row/col aggregates " << first.width() << " PEs";
    if (last.width() != first.width())
      os << "; last bucket " << last.width() << " PEs";
    os << ")\n";
  }
  const auto is_dead = [&](int pe) {
    for (int d : opts.dead_pes)
      if (d == pe) return true;
    return false;
  };
  if (!opts.dead_pes.empty()) {
    os << "dead PEs (killed mid-run, trace is a partial prefix):";
    for (int d : opts.dead_pes) os << " PE" << d;
    if (!bucketed) os << "  — rows marked '!'";
    os << '\n';
  }

  // Column header.
  os << pad("", 6);
  for (int d = 0; d < n; ++d) os << pad(std::to_string(d), opts.cell_width);
  if (opts.totals) os << "  | " << pad("send", 8);
  os << '\n';

  for (int s = 0; s < n; ++s) {
    const bool mark = !bucketed && is_dead(s);
    os << pad("PE" + std::to_string(s) + (mark ? "!" : ""), 5) << ' ';
    for (int d = 0; d < n; ++d) {
      const char c = ramp_char(scale01(m.at(s, d), max, opts.log_scale));
      os << std::string(static_cast<std::size_t>(opts.cell_width - 1), ' ')
         << c;
    }
    if (opts.totals)
      os << "  | "
         << pad(human(sends[static_cast<std::size_t>(s)]), 8);
    os << '\n';
  }
  if (opts.totals) {
    os << pad("recv", 5) << ' ';
    for (int d = 0; d < n; ++d) {
      const char c = ramp_char(
          scale01(recvs[static_cast<std::size_t>(d)], max_total, opts.log_scale));
      os << std::string(static_cast<std::size_t>(opts.cell_width - 1), ' ')
         << c;
    }
    os << "  | " << pad(human(m.total()), 8) << '\n';
  }
  return os.str();
}

}  // namespace

std::string render_heatmap(const prof::CommMatrix& m,
                           const HeatmapOptions& opts) {
  const bool bucketed = opts.max_cells > 0 && m.size() > opts.max_cells;
  if (!bucketed) return render_heatmap_impl(m, m.size(), false, opts);
  return render_heatmap_impl(prof::bucket_matrix(m, opts.max_cells), m.size(),
                             true, opts);
}

std::string render_heatmap(const prof::SparseCommMatrix& m,
                           const HeatmapOptions& opts) {
  if (m.size() <= 0)
    return render_heatmap_impl(prof::CommMatrix{}, 0, false, opts);
  const bool bucketed = opts.max_cells > 0 && m.size() > opts.max_cells;
  // Bucket while still sparse: the dense object that reaches the renderer
  // is at most max_cells^2, never P^2.
  return render_heatmap_impl(
      bucketed ? m.bucketed(opts.max_cells) : m.dense(), m.size(), bucketed,
      opts);
}

std::string render_bars(const std::vector<std::string>& labels,
                        const std::vector<double>& values,
                        const BarOptions& opts) {
  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  double max = 0;
  for (double v : values) max = std::max(max, v);
  auto bar_len = [&](double v) {
    if (max <= 0 || v <= 0) return 0;
    const double x = opts.log_scale
                         ? std::log1p(v) / std::log1p(max)
                         : v / max;
    return static_cast<int>(x * opts.width + 0.5);
  };
  std::size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::string label = i < labels.size() ? labels[i] : "";
    os << pad(label, static_cast<int>(label_w)) << " |"
       << std::string(static_cast<std::size_t>(bar_len(values[i])), '#')
       << ' ' << std::setprecision(6) << values[i];
    if (!opts.unit.empty()) os << ' ' << opts.unit;
    os << '\n';
  }
  return os.str();
}

std::string render_overall_stacked(
    const std::vector<prof::OverallRecord>& recs,
    const StackedBarOptions& opts) {
  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  os << "legend: '#' = T_MAIN, '~' = T_COMM, '=' = T_PROC ("
     << (opts.relative ? "relative" : "absolute") << ")\n";
  std::uint64_t max_total = 0;
  for (const auto& r : recs) max_total = std::max(max_total, r.t_total);
  for (const auto& r : recs) {
    const double scale =
        opts.relative
            ? (r.t_total == 0 ? 0.0
                              : static_cast<double>(opts.width) /
                                    static_cast<double>(r.t_total))
            : (max_total == 0 ? 0.0
                              : static_cast<double>(opts.width) /
                                    static_cast<double>(max_total));
    const int wm = static_cast<int>(static_cast<double>(r.t_main) * scale + 0.5);
    const int wc = static_cast<int>(static_cast<double>(r.t_comm()) * scale + 0.5);
    const int wp = static_cast<int>(static_cast<double>(r.t_proc) * scale + 0.5);
    os << pad("PE" + std::to_string(r.pe), 5) << " |"
       << std::string(static_cast<std::size_t>(wm), '#')
       << std::string(static_cast<std::size_t>(wc), '~')
       << std::string(static_cast<std::size_t>(wp), '=');
    os << "  (" << r.t_main << ", " << r.t_comm() << ", " << r.t_proc << ")";
    if (opts.relative) {
      os << std::fixed << std::setprecision(1) << "  [" << 100 * r.rel_main()
         << "% " << 100 * r.rel_comm() << "% " << 100 * r.rel_proc() << "%]"
         << std::defaultfloat;
    }
    os << '\n';
  }
  return os.str();
}

std::string render_stacked(
    const std::vector<std::string>& labels,
    const std::vector<std::string>& segment_names,
    const std::vector<std::vector<std::uint64_t>>& values,
    const StackedBarOptions& opts) {
  constexpr std::string_view kGlyphs = "#~=+*o";
  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  os << "legend:";
  for (std::size_t s = 0; s < segment_names.size(); ++s)
    os << (s ? "," : "") << " '" << kGlyphs[s % kGlyphs.size()] << "' = "
       << segment_names[s];
  os << " (" << (opts.relative ? "relative" : "absolute") << ")\n";

  std::uint64_t max_total = 0;
  for (const auto& row : values) {
    std::uint64_t t = 0;
    for (std::uint64_t v : row) t += v;
    max_total = std::max(max_total, t);
  }
  std::size_t label_w = 5;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto& row = values[i];
    std::uint64_t total = 0;
    for (std::uint64_t v : row) total += v;
    const std::uint64_t base = opts.relative ? total : max_total;
    const double scale =
        base == 0 ? 0.0
                  : static_cast<double>(opts.width) /
                        static_cast<double>(base);
    os << pad(i < labels.size() ? labels[i] : "",
              static_cast<int>(label_w))
       << " |";
    for (std::size_t s = 0; s < row.size(); ++s) {
      const auto w = static_cast<std::size_t>(
          static_cast<double>(row[s]) * scale + 0.5);
      os << std::string(w, kGlyphs[s % kGlyphs.size()]);
    }
    os << "  (";
    for (std::size_t s = 0; s < row.size(); ++s)
      os << (s ? ", " : "") << row[s];
    os << ")\n";
  }
  return os.str();
}

std::string quartile_line(const prof::QuartileStats& q) {
  std::ostringstream os;
  os << "min=" << q.min << " q1=" << q.q1 << " med=" << q.median
     << " q3=" << q.q3 << " max=" << q.max << " mean=" << std::fixed
     << std::setprecision(1) << q.mean;
  return os.str();
}

std::string render_violin(const std::vector<std::uint64_t>& samples,
                          const ViolinOptions& opts) {
  return render_violins({""}, {samples}, opts);
}

std::string render_violins(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<std::uint64_t>>& sample_sets,
    const ViolinOptions& opts) {
  std::ostringstream os;
  if (!opts.title.empty()) os << opts.title << "\n";
  if (sample_sets.empty()) return os.str();

  // Common vertical axis across all violins.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& s : sample_sets) {
    for (std::uint64_t v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (lo == UINT64_MAX) {
    lo = 0;
    hi = 0;
  }
  const int rows = std::max(3, opts.rows);
  const int width = opts.width | 1;  // force odd
  const double span = hi > lo ? static_cast<double>(hi - lo) : 1.0;

  struct Shape {
    std::vector<int> halfwidth;  // per row
    int median_row = 0, q1_row = 0, q3_row = 0;
    prof::QuartileStats q;
  };
  std::vector<Shape> shapes;
  for (const auto& s : sample_sets) {
    Shape sh;
    sh.halfwidth.assign(static_cast<std::size_t>(rows), 0);
    std::vector<int> bins(static_cast<std::size_t>(rows), 0);
    for (std::uint64_t v : s) {
      const int r = static_cast<int>(
          (static_cast<double>(v) - static_cast<double>(lo)) / span *
          (rows - 1));
      bins[static_cast<std::size_t>(std::clamp(r, 0, rows - 1))]++;
    }
    const int max_bin = *std::max_element(bins.begin(), bins.end());
    for (int r = 0; r < rows; ++r) {
      if (max_bin > 0 && bins[static_cast<std::size_t>(r)] > 0)
        sh.halfwidth[static_cast<std::size_t>(r)] = std::max(
            1, bins[static_cast<std::size_t>(r)] * (width / 2) / max_bin);
    }
    sh.q = prof::quartiles_u64(s);
    auto row_of = [&](double v) {
      return std::clamp(
          static_cast<int>((v - static_cast<double>(lo)) / span * (rows - 1)),
          0, rows - 1);
    };
    sh.median_row = row_of(sh.q.median);
    sh.q1_row = row_of(sh.q.q1);
    sh.q3_row = row_of(sh.q.q3);
    shapes.push_back(std::move(sh));
  }

  // Header labels.
  bool have_labels = false;
  for (const auto& l : labels)
    if (!l.empty()) have_labels = true;
  if (have_labels) {
    os << pad("", 12);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      std::string l = i < labels.size() ? labels[i] : "";
      if (l.size() > static_cast<std::size_t>(width)) l.resize(static_cast<std::size_t>(width));
      const int padding = width + 2 - static_cast<int>(l.size());
      os << std::string(static_cast<std::size_t>(padding / 2), ' ') << l
         << std::string(static_cast<std::size_t>(padding - padding / 2), ' ');
    }
    os << '\n';
  }

  // Top row = max value.
  for (int r = rows - 1; r >= 0; --r) {
    const double row_value =
        static_cast<double>(lo) + span * r / (rows - 1);
    os << pad(human(static_cast<std::uint64_t>(row_value)), 10) << "  ";
    for (const Shape& sh : shapes) {
      const int hw = sh.halfwidth[static_cast<std::size_t>(r)];
      std::string line(static_cast<std::size_t>(width), ' ');
      const int mid = width / 2;
      const bool in_iqr = r >= sh.q1_row && r <= sh.q3_row;
      for (int c = mid - hw; c <= mid + hw; ++c)
        line[static_cast<std::size_t>(c)] = in_iqr ? '#' : '+';
      if (r == sh.median_row) line[static_cast<std::size_t>(mid)] = 'O';
      os << line << "  ";
    }
    os << '\n';
  }
  os << pad("", 12);
  for (const Shape& sh : shapes) {
    std::string l = "n=" + std::to_string(sh.q.n);
    l.resize(static_cast<std::size_t>(width), ' ');
    os << l << "  ";
  }
  os << "\n";
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    os << "  [" << (i < labels.size() ? labels[i] : "") << "] "
       << quartile_line(shapes[i].q) << '\n';
  }
  return os.str();
}

}  // namespace ap::viz
