// Terminal renderers for ActorProf traces (paper §III-D).
//
// The paper's visualizer draws heatmaps (communication matrices with total
// send/recv in the last row/column — the CrayPat "Mosaic Report" style),
// quartile violin plots, and (stacked) bar graphs with matplotlib. This
// module renders the same plot families as text so they work anywhere a
// terminal does; svg.hpp produces graphical versions of the same plots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregate.hpp"
#include "core/records.hpp"

namespace ap::viz {

struct HeatmapOptions {
  std::string title;
  /// Append the totals row/column ("total outgoing send/recv for every PE,
  /// represented in the last row and the last column").
  bool totals = true;
  /// Log-scale the color ramp (power-law counts are unreadable linearly).
  bool log_scale = true;
  int cell_width = 3;
  /// Downsample matrices larger than this to PE buckets so the heatmap
  /// stays terminal-sized (0 disables).
  int max_cells = 64;
  /// PEs killed mid-run (fault injection): their rows are marked with '!'
  /// and a legend line names them, so a sparse row reads as "died", not
  /// "idle". Marks are skipped when the matrix is bucketed (a bucket mixes
  /// live and dead PEs); the legend still prints.
  std::vector<int> dead_pes;
};

/// Render a src-by-dst matrix as an ASCII heatmap. An empty matrix (0 PEs,
/// e.g. a fully-unparsable trace dir) renders as a stub, not UB. The
/// sparse overload buckets before densifying, so it never materializes
/// P^2 cells — use it for large fleets.
std::string render_heatmap(const prof::CommMatrix& m,
                           const HeatmapOptions& opts = {});
std::string render_heatmap(const prof::SparseCommMatrix& m,
                           const HeatmapOptions& opts = {});

struct BarOptions {
  std::string title;
  std::string unit;
  int width = 50;  // bar columns at max value
  bool log_scale = false;
};

/// One horizontal bar per labelled value (the Fig. 10/11 per-PE bars).
std::string render_bars(const std::vector<std::string>& labels,
                        const std::vector<double>& values,
                        const BarOptions& opts = {});

struct StackedBarOptions {
  std::string title;
  int width = 60;
  /// If true, every bar spans the full width (the paper's Relative plot);
  /// otherwise bars scale with their absolute totals (Absolute plot).
  bool relative = false;
};

/// MAIN/COMM/PROC stacked bars, one per PE (Fig. 12/13).
/// Segment glyphs: MAIN '#', COMM '~', PROC '='.
std::string render_overall_stacked(const std::vector<prof::OverallRecord>& recs,
                                   const StackedBarOptions& opts = {});

/// Generic stacked bars: one bar per row, one glyph per segment (cycled
/// from "#~=+*o" when there are more segments than glyphs). Used by the
/// `analyze` subcommand for per-superstep MAIN/PROC/COMM/WAIT bars.
/// `values[row][seg]` must be rectangular with one column per segment.
std::string render_stacked(const std::vector<std::string>& labels,
                           const std::vector<std::string>& segment_names,
                           const std::vector<std::vector<std::uint64_t>>& values,
                           const StackedBarOptions& opts = {});

struct ViolinOptions {
  std::string title;
  int width = 41;   // odd, so the spine is centered
  int rows = 16;    // vertical resolution
};

/// Quartile violin of one sample set: density silhouette, median dot,
/// quartile band — the information content of the paper's Fig. 5/7.
std::string render_violin(const std::vector<std::uint64_t>& samples,
                          const ViolinOptions& opts = {});

/// Several violins side by side with labels (e.g. sends vs recvs,
/// Cyclic vs Range).
std::string render_violins(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<std::uint64_t>>& sample_sets,
    const ViolinOptions& opts = {});

/// Pretty one-line summary of quartiles (used under each violin).
std::string quartile_line(const prof::QuartileStats& q);

}  // namespace ap::viz
