#include "viz/svg.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ap::viz {

namespace {

/// Simple perceptual-ish ramp: dark blue -> teal -> yellow (viridis-like).
std::string heat_color(double x01) {
  x01 = std::clamp(x01, 0.0, 1.0);
  const double r = std::clamp(x01 * 2.0 - 0.8, 0.0, 1.0);
  const double g = std::clamp(0.1 + 0.9 * x01, 0.0, 1.0);
  const double b = std::clamp(0.45 - 0.4 * x01 + 0.2 * (1 - x01), 0.0, 1.0);
  std::ostringstream os;
  os << "rgb(" << static_cast<int>(40 + 215 * r) << ','
     << static_cast<int>(40 + 200 * g) << ','
     << static_cast<int>(60 + 180 * b) << ')';
  return os.str();
}

double scale01(std::uint64_t v, std::uint64_t max, bool log_scale) {
  if (v == 0 || max == 0) return 0;
  if (!log_scale) return static_cast<double>(v) / static_cast<double>(max);
  return std::log1p(static_cast<double>(v)) /
         std::log1p(static_cast<double>(max));
}

std::string header(int w, int h, const std::string& title) {
  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w << "' height='"
     << h << "' viewBox='0 0 " << w << ' ' << h << "'>\n"
     << "<rect width='100%' height='100%' fill='white'/>\n"
     << "<text x='10' y='18' font-family='sans-serif' font-size='14' "
        "font-weight='bold'>"
     << title << "</text>\n";
  return os.str();
}

}  // namespace

std::string svg_heatmap(const prof::CommMatrix& m, const std::string& title,
                        bool log_scale) {
  const int n = m.size();
  const int cell = std::max(6, 420 / std::max(1, n));
  const int ox = 50, oy = 40;
  const int w = ox + (n + 2) * cell + 60;
  const int h = oy + (n + 2) * cell + 30;
  const std::uint64_t max = m.max_cell();
  const auto sends = m.row_sums();
  const auto recvs = m.col_sums();
  std::uint64_t tmax = 0;
  for (auto v : sends) tmax = std::max(tmax, v);
  for (auto v : recvs) tmax = std::max(tmax, v);

  std::ostringstream os;
  os << header(w, h, title);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      os << "<rect x='" << ox + d * cell << "' y='" << oy + s * cell
         << "' width='" << cell << "' height='" << cell << "' fill='"
         << heat_color(scale01(m.at(s, d), max, log_scale)) << "'/>\n";
    }
    // totals column (send per source).
    os << "<rect x='" << ox + (n + 1) * cell << "' y='" << oy + s * cell
       << "' width='" << cell << "' height='" << cell << "' fill='"
       << heat_color(scale01(sends[static_cast<std::size_t>(s)], tmax,
                             log_scale))
       << "'/>\n";
  }
  for (int d = 0; d < n; ++d) {
    // totals row (recv per destination).
    os << "<rect x='" << ox + d * cell << "' y='" << oy + (n + 1) * cell
       << "' width='" << cell << "' height='" << cell << "' fill='"
       << heat_color(scale01(recvs[static_cast<std::size_t>(d)], tmax,
                             log_scale))
       << "'/>\n";
  }
  os << "<text x='" << ox << "' y='" << oy - 8
     << "' font-family='sans-serif' font-size='10'>destination PE &#8594; "
        "(last row = total recv, last col = total send; max cell = "
     << max << ")</text>\n";
  os << "<text x='12' y='" << oy + n * cell / 2
     << "' font-family='sans-serif' font-size='10' transform='rotate(-90 12 "
     << oy + n * cell / 2 << ")'>source PE</text>\n";
  os << "</svg>\n";
  return os.str();
}

std::string svg_heatmap(const prof::SparseCommMatrix& m,
                        const std::string& title, bool log_scale,
                        int max_cells) {
  // Bucket while still sparse so the dense object (and the SVG itself)
  // stays at most max_cells^2 whatever the fleet size.
  const bool bucketed = max_cells > 0 && m.size() > max_cells;
  std::string t = title;
  if (bucketed) {
    const prof::BucketRange first = prof::bucket_range(0, m.size(), max_cells);
    const prof::BucketRange last = prof::bucket_range(
        prof::bucket_count(m.size(), max_cells) - 1, m.size(), max_cells);
    std::ostringstream note;
    note << t << " (bucketed: " << first.width() << " PEs/cell";
    if (last.width() != first.width())
      note << ", last " << last.width();
    note << ")";
    t = note.str();
  }
  return svg_heatmap(bucketed ? m.bucketed(max_cells) : m.dense(), t,
                     log_scale);
}

std::string svg_bars(const std::vector<std::string>& labels,
                     const std::vector<double>& values,
                     const std::string& title) {
  const int n = static_cast<int>(values.size());
  const int row_h = 18, ox = 90, oy = 36;
  const int w = 560, h = oy + n * row_h + 20;
  double max = 0;
  for (double v : values) max = std::max(max, v);
  std::ostringstream os;
  os << header(w, h, title);
  for (int i = 0; i < n; ++i) {
    const double frac = max > 0 ? values[static_cast<std::size_t>(i)] / max : 0;
    const int bw = static_cast<int>(frac * (w - ox - 90));
    os << "<text x='" << ox - 6 << "' y='" << oy + i * row_h + 12
       << "' font-family='sans-serif' font-size='11' text-anchor='end'>"
       << (i < static_cast<int>(labels.size())
               ? labels[static_cast<std::size_t>(i)]
               : "")
       << "</text>\n"
       << "<rect x='" << ox << "' y='" << oy + i * row_h << "' width='"
       << std::max(1, bw) << "' height='" << row_h - 4
       << "' fill='#4878a8'/>\n"
       << "<text x='" << ox + bw + 4 << "' y='" << oy + i * row_h + 12
       << "' font-family='sans-serif' font-size='10'>"
       << values[static_cast<std::size_t>(i)] << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

std::string svg_overall_stacked(const std::vector<prof::OverallRecord>& recs,
                                const std::string& title, bool relative) {
  const int n = static_cast<int>(recs.size());
  const int row_h = 18, ox = 60, oy = 50;
  const int w = 620, h = oy + n * row_h + 20;
  std::uint64_t max_total = 0;
  for (const auto& r : recs) max_total = std::max(max_total, r.t_total);
  std::ostringstream os;
  os << header(w, h, title);
  os << "<text x='10' y='34' font-family='sans-serif' font-size='10'>"
        "<tspan fill='#2a6f3c'>T_MAIN</tspan>  "
        "<tspan fill='#a84848'>T_COMM</tspan>  "
        "<tspan fill='#4878a8'>T_PROC</tspan>  ("
     << (relative ? "relative" : "absolute") << ")</text>\n";
  const int span = w - ox - 120;
  for (int i = 0; i < n; ++i) {
    const auto& r = recs[static_cast<std::size_t>(i)];
    const double denom = relative ? static_cast<double>(r.t_total)
                                  : static_cast<double>(max_total);
    auto seg_w = [&](std::uint64_t v) {
      return denom > 0 ? static_cast<int>(static_cast<double>(v) / denom * span)
                       : 0;
    };
    const int y = oy + i * row_h;
    int x = ox;
    os << "<text x='" << ox - 6 << "' y='" << y + 12
       << "' font-family='sans-serif' font-size='11' text-anchor='end'>PE"
       << r.pe << "</text>\n";
    const struct {
      std::uint64_t v;
      const char* color;
    } segs[] = {{r.t_main, "#2a6f3c"}, {r.t_comm(), "#a84848"},
                {r.t_proc, "#4878a8"}};
    for (const auto& s : segs) {
      const int sw = seg_w(s.v);
      os << "<rect x='" << x << "' y='" << y << "' width='" << std::max(0, sw)
         << "' height='" << row_h - 4 << "' fill='" << s.color << "'/>\n";
      x += sw;
    }
    os << "<text x='" << x + 4 << "' y='" << y + 12
       << "' font-family='sans-serif' font-size='9'>" << r.t_total
       << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

std::string svg_violins(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<std::uint64_t>>& sample_sets,
    const std::string& title) {
  const int k = static_cast<int>(sample_sets.size());
  const int vw = 120, vh = 220, ox = 60, oy = 40;
  const int w = ox + k * vw + 30, h = oy + vh + 50;
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& s : sample_sets)
    for (std::uint64_t v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  if (lo == UINT64_MAX) lo = hi = 0;
  const double span = hi > lo ? static_cast<double>(hi - lo) : 1.0;
  const int bins = 24;

  std::ostringstream os;
  os << header(w, h, title);
  os << "<text x='" << ox - 44 << "' y='" << oy + 8
     << "' font-family='sans-serif' font-size='9'>" << hi << "</text>\n";
  os << "<text x='" << ox - 44 << "' y='" << oy + vh
     << "' font-family='sans-serif' font-size='9'>" << lo << "</text>\n";

  for (int i = 0; i < k; ++i) {
    const auto& s = sample_sets[static_cast<std::size_t>(i)];
    std::vector<int> hist(bins, 0);
    for (std::uint64_t v : s) {
      const int b = std::clamp(
          static_cast<int>((static_cast<double>(v) - static_cast<double>(lo)) /
                           span * (bins - 1)),
          0, bins - 1);
      hist[static_cast<std::size_t>(b)]++;
    }
    const int maxb = std::max(1, *std::max_element(hist.begin(), hist.end()));
    const int cx = ox + i * vw + vw / 2;
    // Density polygon (mirrored).
    std::ostringstream left, right;
    for (int b = 0; b < bins; ++b) {
      const double y = oy + vh - static_cast<double>(b) / (bins - 1) * vh;
      const double hw =
          static_cast<double>(hist[static_cast<std::size_t>(b)]) / maxb *
          (vw / 2.0 - 10);
      right << (b == 0 ? "M" : "L") << cx + hw << ',' << y << ' ';
      left << 'L' << cx - hw << ',' << y << ' ';
    }
    // Close the polygon by walking back down the left side.
    std::string left_rev;
    {
      std::vector<std::string> parts;
      std::string tmp = left.str();
      std::stringstream ss(tmp);
      std::string tok;
      while (std::getline(ss, tok, 'L'))
        if (!tok.empty()) parts.push_back(tok);
      std::ostringstream back;
      for (auto it = parts.rbegin(); it != parts.rend(); ++it)
        back << 'L' << *it << ' ';
      left_rev = back.str();
    }
    os << "<path d='" << right.str() << left_rev
       << "Z' fill='#7aa8d2' stroke='#30507a' stroke-width='1' "
          "fill-opacity='0.8'/>\n";
    const auto q = prof::quartiles_u64(s);
    auto ypix = [&](double v) {
      return oy + vh - (v - static_cast<double>(lo)) / span * vh;
    };
    os << "<line x1='" << cx - 6 << "' y1='" << ypix(q.q1) << "' x2='"
       << cx + 6 << "' y2='" << ypix(q.q1)
       << "' stroke='#222' stroke-width='1'/>\n";
    os << "<line x1='" << cx - 6 << "' y1='" << ypix(q.q3) << "' x2='"
       << cx + 6 << "' y2='" << ypix(q.q3)
       << "' stroke='#222' stroke-width='1'/>\n";
    os << "<circle cx='" << cx << "' cy='" << ypix(q.median)
       << "' r='3.5' fill='white' stroke='#222'/>\n";
    os << "<text x='" << cx << "' y='" << oy + vh + 16
       << "' font-family='sans-serif' font-size='10' text-anchor='middle'>"
       << (i < static_cast<int>(labels.size())
               ? labels[static_cast<std::size_t>(i)]
               : "")
       << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

void write_svg_file(const std::string& path, const std::string& svg) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(p);
  if (!os) throw std::runtime_error("write_svg_file: cannot open " + path);
  os << svg;
}

}  // namespace ap::viz
